GO ?= go

.PHONY: all build vet test race check lint bench fig6bench store-bench fleet-bench fleet-suite metrics-smoke explain-smoke crash-suite obs-bench obs-smoke stream-bench stream-suite

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the packages with dedicated concurrency machinery under the
# race detector (full -race ./... is covered by check).
race:
	$(GO) test -race ./internal/sim ./internal/bench ./internal/core

check:
	./scripts/check.sh

# lint runs the project-native static analyzer (see DESIGN.md §9 and
# §14). Findings not in lint.baseline fail the build; stale baseline
# entries and stale //imcf:allow waivers fail it too. -timing prints a
# per-rule cost breakdown.
lint:
	$(GO) run ./cmd/imcf-lint -timing ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# fig6bench regenerates the machine-readable perf artifact.
fig6bench:
	$(GO) run ./cmd/imcf-bench -reps 3 -benchjson BENCH_fig6.json

# store-bench regenerates the storage-engine write-throughput artifact
# (baseline vs group commit vs sharded; see DESIGN.md §12). Use
# -store-ops for a quick smoke run: make store-bench STORE_OPS=50.
STORE_OPS ?= 0
store-bench:
	$(GO) run ./cmd/imcf-bench -store -store-ops $(STORE_OPS) -storejson BENCH_store.json

# fleet-bench regenerates the fleet-scheduler artifact: per-tenant plan
# latency percentiles at 1k and 10k simulated homes, workers 1 and 8
# (see DESIGN.md §13). Override the matrix for a smoke run:
# make fleet-bench FLEET_HOMES=50,100 FLEET_WORKERS=1,4.
FLEET_HOMES ?=
FLEET_WORKERS ?=
fleet-bench:
	$(GO) run ./cmd/imcf-bench -fleet -fleet-homes '$(FLEET_HOMES)' \
		-fleet-workers '$(FLEET_WORKERS)' -fleetjson BENCH_fleet.json

# fleet-suite runs the multi-home proof obligations in isolation,
# verbosely: the tenant-equivalence harness (bit-identical solo vs
# fleet-tenant hosting) and the multi-tenant kill-at-every-failpoint
# crash suite. Both are part of check.
fleet-suite:
	$(GO) test -count=1 -v \
		-run 'FleetTenantEquivalence|FleetCrashSharedWAL|FleetCrashPerTenantSharded' \
		./internal/daemon

# crash-suite runs the kill-at-every-failpoint recovery harness (see
# DESIGN.md §11): store and journal crash/recovery at every I/O
# failpoint, compaction-rename durability, and the daemon degraded-mode
# e2e. Part of check; this target reruns it in isolation, verbosely.
crash-suite:
	$(GO) test -count=1 -v \
		-run 'CrashRecoveryEveryFailpoint|ShardedCrashBetweenShardCommits|CompactionRenameDurability|FailedCompactionLeavesCleanErrors|ProbeRecordsAreInvisible|JournalCrashRecoveryEveryFailpoint|JournalSyncCadence|DaemonDegradedMode|FleetCrashSharedWAL|FleetCrashPerTenantSharded' \
		./internal/store ./internal/persistence ./internal/daemon

# obs-bench regenerates the observability-overhead artifact: the REST
# serving path with logging enabled vs disabled (acceptance bar <2%)
# plus the SLO feed's direct per-plan cost (see DESIGN.md §15).
obs-bench:
	$(GO) run ./cmd/imcf-bench -obs -obsjson BENCH_obs.json

# stream-bench regenerates the cloud↔edge sync-protocol artifact:
# plain polling vs conditional GET vs the delta stream over a steady
# and a changing window (see DESIGN.md §16).
stream-bench:
	$(GO) run ./cmd/imcf-bench -stream -streamjson BENCH_stream.json

# stream-suite reruns the delta-sync proof obligations in isolation,
# verbosely: the stream-equivalence harness (sync-maintained mirror
# bit-identical to poll-built, workers 1 and 8, across chaos-proxy
# disconnects and a daemon restart) plus the relay aggregator and
# SSE-through-relay tests. Part of check.
stream-suite:
	$(GO) test -count=1 -v \
		-run 'StreamEquivalence|Aggregator|ProxyStreamsSSE|StreamWithoutAggregator' \
		./internal/daemon ./internal/cloud

# obs-smoke proves the flight recorder end to end: the degraded-flip
# e2e (a disk-full tenant produces a correlated bundle), then a live
# imcfd bundle via POST /debug/flight and SIGQUIT, read back with
# imcf-debug.
obs-smoke:
	./scripts/obs_smoke.sh

# metrics-smoke boots imcfd, runs a planning cycle and checks that
# /metrics serves the core families and /healthz reports ok.
metrics-smoke:
	./scripts/metrics_smoke.sh

# explain-smoke boots imcfd with persistence, forces a rule drop,
# restarts the daemon and checks imcf-explain answers "why was rule R
# dropped" from the replayed journal.
explain-smoke:
	./scripts/explain_smoke.sh
