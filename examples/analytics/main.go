// Analytics: the measurement side of the IMCF GUI — "record OpenHAB
// item measurements/values on local storage and present those on a
// table". A controller runs three simulated winter days with
// persistence enabled; the Go client SDK then queries the recorded
// readings back over REST and renders per-zone daily statistics and a
// temperature sparkline.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"github.com/imcf/imcf/internal/client"
	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/simclock"
)

func main() {
	dir, err := os.MkdirTemp("", "imcf-analytics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	svc, err := persistence.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	res, err := home.Prototype(42)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2015, time.January, 12, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSimClock(start)
	ctl, err := controller.New(controller.Config{
		Residence:    res,
		Clock:        clock,
		WeeklyBudget: home.PrototypeWeeklyBudget,
		Persistence:  svc,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three days of hourly EP cycles, each recording zone measurements.
	const hours = 3 * 24
	for i := 0; i < hours; i++ {
		if _, err := ctl.Step(); err != nil {
			log.Fatal(err)
		}
		clock.Advance(time.Hour)
	}

	srv := httptest.NewServer(controller.API(ctl))
	defer srv.Close()
	cl, err := client.New(srv.URL, srv.Client())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	items, err := cl.PersistenceItems(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded items: %v\n\n", items)

	end := start.Add(hours * time.Hour)
	fmt.Println("per-zone daily statistics (°C):")
	for z := 0; z < len(res.Zones); z++ {
		item := fmt.Sprintf("zone%d/temperature", z)
		buckets, err := cl.Aggregates(ctx, item, start, end, 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range buckets {
			fmt.Printf("  %-20s %s  n=%2d  min %5.1f  mean %5.1f  max %5.1f\n",
				item, b.Start.Format("Jan 02"), b.Count, b.Min, b.Mean, b.Max)
		}
	}

	// A terminal sparkline of zone 0's hourly temperature.
	points, err := cl.Readings(ctx, "zone0/temperature", start, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzone0 temperature, %d hourly readings:\n%s\n", len(points), sparkline(points))
}

// sparkline renders readings as a block-character strip.
func sparkline(points []client.Point) string {
	if len(points) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := points[0].Value, points[0].Value
	for _, p := range points {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	out := make([]rune, len(points))
	for i, p := range points {
		idx := int((p.Value - lo) / span * float64(len(blocks)-1))
		out[i] = blocks[idx]
	}
	return fmt.Sprintf("%.1f°C %s %.1f°C", lo, string(out), hi)
}
