// Dorms: the SAVES inter-dormitory energy-saving competition scenario
// that motivates the paper (Section I). The campus sets an 8 % savings
// target — the figure SAVES aimed for and students only reached 4.44 %
// of by manual effort — and the Energy Planner meets it automatically,
// reporting the convenience cost.
package main

import (
	"fmt"
	"log"

	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/sim"
	"github.com/imcf/imcf/internal/units"
)

func main() {
	dorms, err := home.Dorms(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus: %d dorm rooms, %d meta-rules, %.0f kWh budget over %d years\n",
		len(dorms.Zones), len(dorms.MRT.Convenience()), dorms.Budget.KWh(), dorms.Years)

	fmt.Println("building trace workload (three years × 100 zones)...")
	w, err := sim.BuildWorkload(dorms, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the Energy Planner at the full budget.
	base := sim.Options{}
	base.Planner.Seed = 1
	baseline, err := sim.Run(w, sim.EP, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-18s F_E=%11.0f kWh   F_CE=%5.2f%%\n",
		"full budget", baseline.Energy.KWh(), float64(baseline.ConvenienceError))

	// The SAVES sweep: what do 4.44 % (achieved manually) and 8 %
	// (the target) cost in convenience when enforced automatically?
	for _, saving := range []float64{0.0444, 0.08, 0.15} {
		opts := sim.Options{Savings: saving}
		opts.Planner.Seed = 1
		r, err := sim.Run(w, sim.EP, opts)
		if err != nil {
			log.Fatal(err)
		}
		saved := baseline.Energy - r.Energy
		fmt.Printf("%-18s F_E=%11.0f kWh   F_CE=%5.2f%%   (%.0f kWh ≈ %v CO₂e below full-budget plan)\n",
			fmt.Sprintf("save %.2f%%", saving*100), r.Energy.KWh(), float64(r.ConvenienceError),
			saved.KWh(), saved.Emissions(units.EUGridIntensity))
	}

	fmt.Println("\nSAVES context: students saved 4.44% manually; the 8% target is")
	fmt.Println("reached here by only filtering the lowest-value rule executions.")
}
