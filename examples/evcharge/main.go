// Evcharge: deferrable-workload scheduling on top of the Energy Planner
// — the paper's future-work scenario of rescheduling power-hungry
// workloads (white goods, electric vehicles) in a budget-friendly way.
// The flat's EP plans its comfort rules for a January day; the spare
// budget (headroom) per hour is then packed with a washing-machine
// cycle and an overnight EV charge.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/shift"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

func main() {
	flat, err := home.Flat(42)
	if err != nil {
		log.Fatal(err)
	}
	plan := ecp.Plan{Formula: ecp.EAF, Profile: flat.Profile, Budget: flat.Budget, Years: flat.Years}
	hourly, err := plan.HourlyBudget(time.January)
	if err != nil {
		log.Fatal(err)
	}

	// Run EP for the day and derive per-hour headroom: slot budget
	// minus the energy the comfort rules claim.
	planner, err := core.NewPlanner(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model := rules.DefaultErrorModel()
	day := time.Date(2015, time.January, 20, 0, 0, 0, 0, time.UTC)
	var headroom shift.Headroom
	var comfort float64
	for h := 0; h < 24; h++ {
		at := day.Add(time.Duration(h) * time.Hour)
		amb := flat.Zones[0].Ambient.AmbientAt(at)
		var problem core.Problem
		for _, r := range flat.MRT.Convenience() {
			if !r.ActiveAt(h) {
				continue
			}
			dev, err := flat.RuleDevice(r)
			if err != nil {
				log.Fatal(err)
			}
			actual := amb.Temperature
			if r.Action == rules.ActionSetLight {
				actual = amb.Light
			}
			problem.Costs = append(problem.Costs, core.RuleCost{
				DropError: model.Error(r.Action, r.Value, actual),
				Energy:    dev.EnergyPerSlot(time.Hour).KWh(),
			})
		}
		problem.Budget = hourly.KWh()
		_, eval, err := planner.Plan(problem)
		if err != nil {
			log.Fatal(err)
		}
		headroom[h] = hourly.KWh() - eval.Energy
		comfort += eval.Energy
	}
	fmt.Printf("comfort rules claim %.2f kWh of the day's %.2f kWh budget\n\n", comfort, hourly.KWh()*24)

	loads := []shift.Load{
		{ID: "wash", Name: "Washing Machine", Power: 2 * units.Kilowatt, Hours: 2,
			Window: simclock.TimeWindow{StartHour: 8, EndHour: 22}, Contiguous: true},
		{ID: "ev", Name: "EV Charger", Power: 3 * units.Kilowatt, Hours: 4,
			Window: simclock.TimeWindow{StartHour: 20, EndHour: 8}},
	}
	a, err := shift.Schedule(loads, headroom)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range a.Placements {
		fmt.Printf("%-16s %d h at %v", p.Load.Name, p.Load.Hours, fmtHours(p.Hours))
		if p.Overdraw > 0 {
			fmt.Printf("  (overdraws plan by %v)", p.Overdraw)
		}
		fmt.Println()
	}
	fmt.Printf("\ndeferred loads: %v total, %v above the plan's headroom\n", a.Energy, a.Overdraw)
	fmt.Printf("at the EU grid intensity that is %v CO₂e — shifted into hours the plan left free\n",
		a.Energy.Emissions(units.EUGridIntensity))
}

func fmtHours(hours []int) string {
	out := ""
	for i, h := range hours {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%02d:00", h)
	}
	return out
}
