// Smarthome: the full IMCF stack end to end. It boots the three-person
// prototype residence with emulated Daikin/Hue devices, wires the HTTP
// binding through the meta-control firewall, runs the controller for two
// simulated winter days, exercises the REST API, and shows that dropped
// meta-rules produce iptables-style block rules and zero device traffic.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
)

func main() {
	res, err := home.Prototype(42)
	if err != nil {
		log.Fatal(err)
	}

	// Start one emulated device per Thing and map the endpoints.
	endpoints := make(map[string]string)
	daikins := make(map[string]*devicesim.Daikin)
	hues := make(map[string]*devicesim.Hue)
	for _, z := range res.Zones {
		d, err := devicesim.StartDaikin()
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		daikins[z.HVAC.ID] = d
		endpoints[z.HVAC.ID] = d.URL()

		h, err := devicesim.StartHue()
		if err != nil {
			log.Fatal(err)
		}
		defer h.Close()
		hues[z.Light.ID] = h
		endpoints[z.Light.ID] = h.URL()
	}
	fmt.Printf("emulating %d devices on loopback HTTP\n", len(endpoints))

	clock := simclock.NewSimClock(time.Date(2015, time.January, 12, 0, 0, 0, 0, time.UTC))
	fw := firewall.New(clock)
	c, err := controller.New(controller.Config{
		Residence:     res,
		Clock:         clock,
		WeeklyBudget:  home.PrototypeWeeklyBudget,
		CarryCapHours: 5.5,
		Firewall:      fw,
		Binding:       &controller.HTTPBinding{Endpoints: endpoints, Firewall: fw},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two simulated days of hourly EP cycles.
	for i := 0; i < 48; i++ {
		report, err := c.Step()
		if err != nil {
			log.Fatal(err)
		}
		if len(report.Dropped) > 0 {
			fmt.Printf("%s  budget %.2f kWh: executed %d, dropped %v\n",
				report.Time.Format("Jan 02 15:04"), report.Budget, len(report.Executed), report.Dropped)
		}
		clock.Advance(time.Hour)
	}

	fmt.Println("\nactive firewall rules (iptables syntax):")
	for _, r := range fw.Rules() {
		fmt.Println(" ", r)
	}
	allowed, dropped := fw.Counters()
	fmt.Printf("firewall: %d flows allowed, %d dropped\n", allowed, dropped)

	fmt.Println("\ndevice states:")
	for id, d := range daikins {
		power, _, temp := d.State()
		fmt.Printf("  %-22s power=%-5v setpoint=%.1f°C commands=%d\n", id, power, temp, d.Commands())
	}
	for id, h := range hues {
		st := h.State()
		fmt.Printf("  %-22s on=%-5v bri=%.0f commands=%d\n", id, st.On, st.Bri, h.Commands())
	}

	// The REST API the mobile APP would call.
	srv := httptest.NewServer(controller.API(c))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/rest/summary")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var summary controller.Summary
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary after %d cycles: F_E=%.2f kWh, F_CE=%s\n",
		summary.Steps, summary.Energy.KWh(), summary.ConvenienceError)
	for owner, ce := range summary.PerOwner {
		fmt.Printf("  %-9s F_CE=%s\n", owner, ce)
	}
}
