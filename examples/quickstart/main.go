// Quickstart: define a Meta-Rule Table and an energy budget, run the
// Energy Planner for one winter day, and print which convenience rules
// survive the budget hour by hour.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
)

func main() {
	// The paper's flat: Table II rules, Table I consumption profile,
	// an 11,000 kWh three-year budget, and synthetic CASAS-like traces.
	flat, err := home.Flat(42)
	if err != nil {
		log.Fatal(err)
	}

	// Amortize the budget with the ECP-based formula (EAF).
	plan := ecp.Plan{
		Formula: ecp.EAF,
		Profile: flat.Profile,
		Budget:  flat.Budget,
		Years:   flat.Years,
	}
	janBudget, err := plan.HourlyBudget(time.January)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("January hourly budget E_p = %.3f kWh\n\n", janBudget.KWh())

	planner, err := core.NewPlanner(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model := rules.DefaultErrorModel()

	day := time.Date(2015, time.January, 15, 0, 0, 0, 0, time.UTC)
	fmt.Println("hour  ambient   budget-kWh  decision")
	var spent, carry float64
	for h := 0; h < 24; h++ {
		at := day.Add(time.Duration(h) * time.Hour)
		amb := flat.Zones[0].Ambient.AmbientAt(at)

		// Collect the rules active this hour and their costs.
		var active []rules.MetaRule
		var problem core.Problem
		for _, r := range flat.MRT.Convenience() {
			if !r.ActiveAt(h) {
				continue
			}
			active = append(active, r)
			dev, err := flat.RuleDevice(r)
			if err != nil {
				log.Fatal(err)
			}
			actual := amb.Temperature
			if r.Action == rules.ActionSetLight {
				actual = amb.Light
			}
			problem.Costs = append(problem.Costs, core.RuleCost{
				DropError: model.Error(r.Action, r.Value, actual),
				Energy:    dev.EnergyPerSlot(time.Hour).KWh(),
			})
		}
		problem.Budget = janBudget.KWh() + carry

		sol, eval, err := planner.Plan(problem)
		if err != nil {
			log.Fatal(err)
		}
		carry = problem.Budget - eval.Energy
		spent += eval.Energy

		decision := "idle"
		if len(active) > 0 {
			decision = ""
			for i, r := range active {
				verb := "EXEC"
				if !sol[i] {
					verb = "drop"
				}
				decision += fmt.Sprintf("%s %s(%g)  ", verb, r.Name, r.Value)
			}
		}
		fmt.Printf("%02d:00  %5.1f°C  %10.3f  %s\n", h, amb.Temperature, problem.Budget, decision)
	}
	fmt.Printf("\ntotal consumed: %.2f kWh (day budget %.2f kWh)\n", spent, janBudget.KWh()*24)
}
