// Campus: the cloud tier of the IMCF architecture (Fig. 3). Three dorm
// sites each run their own Local Controller; a Cloud Controller relay
// gives remote access to every site, and the Cloud Meta-Controller role
// pushes a campus-wide energy policy — a reduced Meta-Rule Table — to
// all sites at once, then triggers an EP cycle everywhere.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/imcf/imcf/internal/cloud"
	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
)

func main() {
	relay := cloud.NewRelay("campus-token", nil)
	relaySrv := httptest.NewServer(relay.Handler())
	defer relaySrv.Close()

	// Boot three dorm sites, each its own controller + REST API.
	controllers := make(map[string]*controller.Controller)
	for i, name := range []string{"dorm-a", "dorm-b", "dorm-c"} {
		res, err := home.Prototype(uint64(100 + i))
		if err != nil {
			log.Fatal(err)
		}
		cfg := controller.Config{
			Residence:    res,
			Clock:        simclock.NewSimClock(time.Date(2015, time.January, 12, 19, 0, 0, 0, time.UTC)),
			WeeklyBudget: home.PrototypeWeeklyBudget,
		}
		cfg.Planner.Seed = uint64(i)
		c, err := controller.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		controllers[name] = c
		srv := httptest.NewServer(controller.API(c))
		defer srv.Close()
		if err := relay.Register(name, srv.URL); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %-7s LC at %s\n", name, srv.URL)
	}

	auth := func(req *http.Request) *http.Request {
		req.Header.Set("Authorization", "Bearer campus-token")
		return req
	}

	// Remote APP path: list one site's devices through the CC.
	req, _ := http.NewRequest(http.MethodGet, relaySrv.URL+"/cc/sites/dorm-b/rest/items", nil)
	resp, err := http.DefaultClient.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	var items []map[string]any
	json.NewDecoder(resp.Body).Decode(&items) //nolint:errcheck
	resp.Body.Close()
	fmt.Printf("\nthrough the CC, dorm-b reports %d devices\n", len(items))

	// CMC path: push a campus-wide curfew policy — evening rules only —
	// to every site.
	policy, err := rules.ParseMRT(`
rule "Evening Heat"   window 18:00-22:00 set temperature 21 zone 0
rule "Evening Lights" window 18:00-22:00 set light 30 zone 0
budget "Campus Cap"   limit 120 kWh
`)
	if err != nil {
		log.Fatal(err)
	}
	payload, _ := json.Marshal(policy)
	req, _ = http.NewRequest(http.MethodPost, relaySrv.URL+"/cmc/broadcast/mrt", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	var results []cloud.BroadcastResult
	json.NewDecoder(resp.Body).Decode(&results) //nolint:errcheck
	resp.Body.Close()
	fmt.Println("\nCMC broadcast of the campus policy:")
	for _, r := range results {
		fmt.Printf("  %-7s HTTP %d %s\n", r.Site, r.Status, r.Error)
	}

	// Trigger an EP cycle everywhere and show the outcome per site.
	req, _ = http.NewRequest(http.MethodPost, relaySrv.URL+"/cmc/broadcast/plan", nil)
	resp, err = http.DefaultClient.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Println("\nper-site state after the campus-wide EP cycle (19:00, winter):")
	for _, name := range []string{"dorm-a", "dorm-b", "dorm-c"} {
		c := controllers[name]
		report, _ := c.LastStep()
		fmt.Printf("  %-7s executed %v  dropped %v  (%.2f kWh)\n",
			name, report.Executed, report.Dropped, report.Energy)
	}
}
