// Conservation: the amortization formulas side by side. It first
// reproduces the paper's Section II worked examples for LAF, BLAF and
// EAF on the Table I profile, then replays the flat through the Energy
// Planner under each formula to show how budget shaping changes the
// energy/convenience trade-off.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/sim"
)

func main() {
	profile := ecp.Flat()
	fmt.Printf("flat ECP (Table I): TE = %.0f kWh/year\n\n", profile.Total().KWh())

	// LAF: uniform amortization (Eq. 3).
	laf := ecp.Plan{Formula: ecp.LAF, Profile: profile, Years: 1}
	h, err := laf.HourlyBudget(time.June)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LAF:  E_h = TE/t = %.0f/%d = %.3f kWh for every hour of the year\n",
		profile.Total().KWh(), ecp.HoursPerYear, h.KWh())

	// BLAF: save 30 % across April–October, spend the balloon in
	// winter (Eq. 4, the paper's example).
	blaf := ecp.Plan{
		Formula:      ecp.BLAF,
		Profile:      profile,
		Years:        1,
		SaveFraction: 0.3,
		SaveMonths:   ecp.SummerSaveMonths(),
	}
	jun, _ := blaf.MonthlyBudget(time.June)
	dec, _ := blaf.MonthlyBudget(time.December)
	fmt.Printf("BLAF: π=30%% over Apr–Oct → save months %.2f kWh/month, balloon months %.2f kWh/month\n",
		jun.KWh(), dec.KWh())

	// EAF: ECP-weighted budgets (Eq. 5, E = 3500 kWh).
	eaf := ecp.Plan{Formula: ecp.EAF, Profile: profile, Budget: 3500, Years: 1}
	fmt.Println("EAF:  E = 3500 kWh shaped by monthly weights:")
	for _, m := range []time.Month{time.January, time.April, time.August} {
		hb, _ := eaf.HourlyBudget(m)
		fmt.Printf("      %-9s w=%.3f → E_h = %.3f kWh\n", m, profile.Weight(m), hb.KWh())
	}

	// Now the planner under each formula, full three-year flat replay.
	flat, err := home.Flat(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplaying the flat (3 years) under each amortization formula:")
	w, err := sim.BuildWorkload(flat, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		name string
		opts sim.Options
	}{
		{"LAF", sim.Options{Formula: ecp.LAF}},
		{"BLAF π=30%", sim.Options{Formula: ecp.BLAF, SaveFraction: 0.3, SaveMonths: ecp.SummerSaveMonths()}},
		{"EAF", sim.Options{Formula: ecp.EAF}},
	}
	for _, c := range configs {
		c.opts.Planner.Seed = 1
		r, err := sim.Run(w, sim.EP, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s F_E=%9.0f kWh of %.0f budget   F_CE=%5.2f%%\n",
			c.name, r.Energy.KWh(), r.BudgetTotal.KWh(), float64(r.ConvenienceError))
	}
	fmt.Println("\nLAF's flat hourly allowance starves the winter peaks (highest F_CE);")
	fmt.Println("BLAF's balloon buys winter comfort by spending more of the budget;")
	fmt.Println("EAF balances both by following the household's historical shape.")
}
