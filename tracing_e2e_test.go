package imcf_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/client"
	"github.com/imcf/imcf/internal/cloud"
	"github.com/imcf/imcf/internal/daemon"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/simclock"
)

// TestE2ETracing drives a simulated day through the full APP → cloud
// relay → Local Controller chain with one minted trace, then checks the
// causal record end to end: the trace ID spans every hop, each dropped
// rule has exactly one journal event per slot, and after a daemon
// restart the real imcf-explain binary still answers "why was rule R
// dropped at slot S" from the replayed journal.
func TestE2ETracing(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	persistDir := t.TempDir()
	start := time.Date(2021, time.January, 9, 0, 0, 0, 0, time.UTC)
	newDaemon := func(at time.Time) (*daemon.Daemon, *simclock.SimClock) {
		clock := simclock.NewSimClock(at)
		d, err := daemon.New(daemon.Options{
			Addr:        "127.0.0.1:0",
			MetricsAddr: "127.0.0.1:0",
			Residence:   "flat",
			Seed:        7,
			Mode:        "EP",
			// Tight weekly budget: every day must drop something.
			WeeklyBudgetKWh: 5,
			PersistDir:      persistDir,
			Clock:           clock,
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d, clock
	}

	d, clock := newDaemon(start)

	// The cloud relay fronts the daemon, the SDK talks through it —
	// the paper's APP → CC → LC chain, over real loopback HTTP.
	relay := cloud.NewRelay("", nil)
	relaySrv := httptest.NewServer(relay.Handler())
	defer relaySrv.Close()
	if err := relay.Register("home", "http://"+d.APIAddr()); err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(relaySrv.URL+"/cc/sites/home", nil)
	if err != nil {
		t.Fatal(err)
	}

	tc := metrics.NewTrace()
	ctx := metrics.ContextWithTrace(t.Context(), tc)

	// One simulated day, all cycles under the same trace.
	type slotVerdicts struct {
		at       time.Time
		dropped  []string
		executed []string
	}
	var day []slotVerdicts
	totalDropped := 0
	for hour := 0; hour < 24; hour++ {
		report, err := cl.RunPlan(ctx)
		if err != nil {
			t.Fatalf("hour %d: %v", hour, err)
		}
		day = append(day, slotVerdicts{at: report.Time, dropped: report.Dropped, executed: report.Executed})
		totalDropped += len(report.Dropped)
		clock.Advance(time.Hour)
	}
	if totalDropped == 0 {
		t.Fatal("a 5 kWh/week budget dropped nothing all day")
	}

	// The trace endpoint ties every hop to the one minted ID.
	var tr struct {
		Spans     []metrics.SpanRecord `json:"spans"`
		Decisions []journal.Event      `json:"decisions"`
	}
	resp, err := http.Get("http://" + d.MetricsAddr() + "/debug/trace/" + tc.TraceIDString())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spanNames := make(map[string]bool)
	for _, sp := range tr.Spans {
		spanNames[sp.Name] = true
	}
	for _, hop := range []string{"client.request", "http.cloud", "cloud.proxy", "http.api", "controller.step"} {
		if !spanNames[hop] {
			t.Errorf("trace %s missing hop %q (have %v)", tc.TraceIDString(), hop, spanNames)
		}
	}
	if len(tr.Decisions) == 0 {
		t.Fatal("trace carries no journal decisions")
	}

	// Every dropped rule at every slot: exactly one journal event.
	j := d.Journal()
	for _, sv := range day {
		for _, id := range sv.dropped {
			evs := j.Recent(journal.Filter{Rule: id, Slot: sv.at, Verdict: journal.VerdictDropped})
			if len(evs) != 1 {
				t.Fatalf("rule %s at %v: %d dropped events, want 1", id, sv.at, len(evs))
			}
			if evs[0].Trace != tc.TraceIDString() {
				t.Errorf("rule %s at %v: trace %q, want %q", id, sv.at, evs[0].Trace, tc.TraceIDString())
			}
		}
		for _, id := range sv.executed {
			evs := j.Recent(journal.Filter{Rule: id, Slot: sv.at, Verdict: journal.VerdictExecuted})
			if len(evs) != 1 {
				t.Fatalf("rule %s at %v: %d executed events, want 1", id, sv.at, len(evs))
			}
		}
	}
	before := j.Len()

	// Pick a dropped (rule, slot) to explain after the restart.
	var explainRule string
	var explainSlot time.Time
	for _, sv := range day {
		if len(sv.dropped) > 0 {
			explainRule, explainSlot = sv.dropped[0], sv.at
			break
		}
	}

	// Restart the daemon on the same persistence directory: the journal
	// replays and the real imcf-explain binary explains the old verdict.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, _ := newDaemon(start.Add(24 * time.Hour))
	defer d2.Close() //nolint:errcheck
	if got := d2.Journal().Len(); got != before {
		t.Fatalf("restarted daemon replayed %d events, want %d", got, before)
	}

	bin := buildBinary(t, "./cmd/imcf-explain")
	out, err := exec.Command(bin,
		"-rule", explainRule,
		"-slot", explainSlot.Format(time.RFC3339),
		"-verdict", "dropped",
		"-daemon", "http://"+d2.MetricsAddr(),
	).CombinedOutput()
	if err != nil {
		t.Fatalf("imcf-explain: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"was dropped", "E_p remaining", "k-opt", tc.TraceIDString()} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
}
