package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/persistence"
)

func writeDump(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "decisions.jnl")
	jl, err := persistence.OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := time.Date(2021, time.January, 9, 3, 0, 0, 0, time.UTC)
	events := []journal.Event{
		{Seq: 1, Slot: slot, Window: 0, Rule: "flat/night-heat", Owner: "alice",
			Verdict: journal.VerdictDropped, Trace: "aaaabbbbccccddddaaaabbbbccccdddd",
			EpRemainingKWh: 1.2, EnergyKWh: 4.2, FCEDelta: 0.31, FlipIter: 17},
		{Seq: 2, Slot: slot, Window: 0, Rule: "flat/hallway-light",
			Verdict: journal.VerdictExecuted, EpRemainingKWh: 1.2, EnergyKWh: 0.06},
		{Seq: 3, Slot: slot.Add(time.Hour), Window: 1, Rule: "flat/night-heat",
			Verdict: journal.VerdictDropped, EpRemainingKWh: 0.9, EnergyKWh: 4.2,
			FCEDelta: 0.28, FlipIter: journal.FlipRepair},
	}
	for _, ev := range events {
		if err := jl.AppendEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExplainFromFile(t *testing.T) {
	path := writeDump(t)
	var out, errw bytes.Buffer
	code := run([]string{"-rule", "flat/night-heat", "-journal", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	text := out.String()
	for _, want := range []string{
		"rule flat/night-heat was dropped",
		"E_p remaining:  1.200 kWh",
		"last flipped at k-opt iteration 17",
		"switched off by the feasibility repair",
		"trace:          aaaabbbbccccddddaaaabbbbccccdddd",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainSlotAndVerdictFilter(t *testing.T) {
	path := writeDump(t)
	var out, errw bytes.Buffer
	code := run([]string{
		"-rule", "flat/night-heat",
		"-slot", "2021-01-09T04:00:00Z",
		"-verdict", "dropped",
		"-journal", path,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if n := strings.Count(out.String(), "rule flat/night-heat"); n != 1 {
		t.Fatalf("slot filter matched %d events, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "feasibility repair") {
		t.Errorf("wrong event selected:\n%s", out.String())
	}
}

func TestExplainJSONOutput(t *testing.T) {
	path := writeDump(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-rule", "flat/hallway-light", "-journal", path, "-json"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	var evs []journal.Event
	if err := json.Unmarshal(out.Bytes(), &evs); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(evs) != 1 || evs[0].Verdict != journal.VerdictExecuted {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestExplainFromDaemon(t *testing.T) {
	j := journal.New(16)
	j.Append(journal.Event{Slot: time.Date(2021, time.January, 9, 3, 0, 0, 0, time.UTC),
		Rule: "flat/night-heat", Verdict: journal.VerdictDropped,
		EpRemainingKWh: 2.5, EnergyKWh: 4.2, FCEDelta: 0.5, FlipIter: journal.FlipNever})
	// The CLI appends /debug/decisions to the daemon base URL.
	mux := http.NewServeMux()
	mux.Handle("GET /debug/decisions", j.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out, errw bytes.Buffer
	code := run([]string{"-rule", "flat/night-heat", "-daemon", srv.URL}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "E_p remaining:  2.500 kWh") {
		t.Errorf("daemon-mode output wrong:\n%s", out.String())
	}
}

// writeTenantDump lays out a multi-home persistence root: a default
// decisions.jnl plus per-tenant logs under tenants/<id>/.
func writeTenantDump(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	slot := time.Date(2021, time.January, 9, 3, 0, 0, 0, time.UTC)
	write := func(dir, rule string) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		jl, err := persistence.OpenJournalFile(filepath.Join(dir, persistence.JournalFile))
		if err != nil {
			t.Fatal(err)
		}
		ev := journal.Event{Seq: 1, Slot: slot, Rule: rule,
			Verdict: journal.VerdictExecuted, EpRemainingKWh: 3.0, EnergyKWh: 0.5}
		if err := jl.AppendEvent(ev); err != nil {
			t.Fatal(err)
		}
		if err := jl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(root, "default/rule")
	write(filepath.Join(root, "tenants", "h1"), "h1/rule")
	write(filepath.Join(root, "tenants", "h2"), "h2/rule")
	return root
}

func TestExplainTenantFromPersistenceRoot(t *testing.T) {
	root := writeTenantDump(t)

	var out, errw bytes.Buffer
	if code := run([]string{"-rule", "h2/rule", "-journal", root, "-tenant", "h2"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "rule h2/rule was executed") {
		t.Errorf("tenant log not selected:\n%s", out.String())
	}

	// Without -tenant a root directory reads the single-home log.
	out.Reset()
	if code := run([]string{"-rule", "default/rule", "-journal", root}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "rule default/rule was executed") {
		t.Errorf("root log not selected:\n%s", out.String())
	}

	// The wrong tenant's log cannot match another home's rule.
	if code := run([]string{"-rule", "h2/rule", "-journal", root, "-tenant", "h1"}, &out, &errw); code != 1 {
		t.Errorf("cross-tenant match: exit %d, want 1", code)
	}
	// -tenant needs a directory, not a file.
	if code := run([]string{"-rule", "x", "-journal", filepath.Join(root, persistence.JournalFile), "-tenant", "h1"}, &out, &errw); code != 2 {
		t.Errorf("-tenant with a file: exit %d, want 2", code)
	}
}

func TestExplainTenantFromDaemon(t *testing.T) {
	slot := time.Date(2021, time.January, 9, 3, 0, 0, 0, time.UTC)
	// A multi-home daemon decorates merged events with their tenant and
	// filters on the tenant query parameter — mimic that contract.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		evs := []journal.Event{
			{Seq: 1, Slot: slot, Tenant: "h1", Rule: "shared/rule", Verdict: journal.VerdictExecuted, EpRemainingKWh: 1},
			{Seq: 1, Slot: slot, Tenant: "h2", Rule: "shared/rule", Verdict: journal.VerdictDropped, EpRemainingKWh: 2, FlipIter: journal.FlipRepair},
		}
		f, err := journal.ParseFilter(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := []journal.Event{}
		for _, ev := range evs {
			if f.Match(ev) {
				out = append(out, ev)
			}
		}
		json.NewEncoder(w).Encode(out) //nolint:errcheck // test server
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out, errw bytes.Buffer
	code := run([]string{"-rule", "shared/rule", "-daemon", srv.URL, "-tenant", "h2"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "home:           h2") || strings.Contains(text, "home:           h1") {
		t.Errorf("tenant filter not applied server-side:\n%s", text)
	}
	if !strings.Contains(text, "feasibility repair") {
		t.Errorf("wrong event selected:\n%s", text)
	}
}

func TestExplainExitCodes(t *testing.T) {
	path := writeDump(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-journal", path}, &out, &errw); code != 2 {
		t.Errorf("missing -rule: exit %d, want 2", code)
	}
	if code := run([]string{"-rule", "x"}, &out, &errw); code != 2 {
		t.Errorf("no source: exit %d, want 2", code)
	}
	if code := run([]string{"-rule", "x", "-journal", path, "-daemon", "http://x"}, &out, &errw); code != 2 {
		t.Errorf("both sources: exit %d, want 2", code)
	}
	if code := run([]string{"-rule", "no/such-rule", "-journal", path}, &out, &errw); code != 1 {
		t.Errorf("no match: exit %d, want 1", code)
	}
	if code := run([]string{"-rule", "x", "-slot", "yesterday", "-journal", path}, &out, &errw); code != 2 {
		t.Errorf("bad slot: exit %d, want 2", code)
	}
	if code := run([]string{"-rule", "x", "-verdict", "maybe", "-journal", path}, &out, &errw); code != 2 {
		t.Errorf("bad verdict: exit %d, want 2", code)
	}
}
