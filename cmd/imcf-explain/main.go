// Command imcf-explain answers "why was rule R dropped (or executed)
// at slot S?" from the Energy Planner's decision-provenance journal —
// either a live daemon's /debug/decisions endpoint or a persisted
// decisions.jnl dump.
//
// Usage:
//
//	imcf-explain -rule ID [-slot RFC3339] [-verdict executed|dropped]
//	             [-daemon http://host:8089 | -journal path/decisions.jnl]
//	             [-tenant HOME] [-limit N] [-json]
//
// Exactly one of -daemon or -journal selects the source. The answer
// cites the verdict, the E_p budget remaining when the planner decided,
// the rule's energy cost, the convenience-error delta its drop cost,
// and the k-opt iteration that last flipped the bit.
//
// Against a multi-home daemon, -tenant selects one home's decisions
// (the server merges all tenants by default). Against persisted dumps,
// -journal may name a persistence root directory instead of a file:
// the command then reads <dir>/decisions.jnl, or with -tenant the
// home's own <dir>/tenants/<HOME>/decisions.jnl.
//
// Naming note: cmd/imcf-trace is the synthetic sensor-trace workload
// generator and is unrelated to the causal tracing this command reads;
// trace IDs here are the traceparent IDs minted by the SDK and
// propagated through the relay and controller.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/persistence"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: exit 0 on success, 1 when no event
// matches, 2 on usage or source errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imcf-explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rule       = fs.String("rule", "", "meta-rule ID to explain (required)")
		slotStr    = fs.String("slot", "", "slot time, RFC 3339 (empty: all slots)")
		verdictStr = fs.String("verdict", "", "filter: executed or dropped")
		daemonURL  = fs.String("daemon", "", "metrics base URL of a live imcfd (e.g. http://127.0.0.1:8089)")
		jnlPath    = fs.String("journal", "", "path to a persisted decisions.jnl, or a persistence root directory")
		tenant     = fs.String("tenant", "", "home ID on a multi-tenant daemon or persistence root (empty: all homes / the single-home log)")
		limit      = fs.Int("limit", 0, "at most N most recent events (0: all)")
		asJSON     = fs.Bool("json", false, "emit matching events as JSON instead of prose")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rule == "" {
		fmt.Fprintln(stderr, "imcf-explain: -rule is required")
		fs.Usage()
		return 2
	}
	if (*daemonURL == "") == (*jnlPath == "") {
		fmt.Fprintln(stderr, "imcf-explain: exactly one of -daemon or -journal must be set")
		return 2
	}

	f := journal.Filter{Rule: *rule, Limit: *limit}
	if *slotStr != "" {
		at, err := time.Parse(time.RFC3339, *slotStr)
		if err != nil {
			fmt.Fprintf(stderr, "imcf-explain: bad -slot: %v\n", err)
			return 2
		}
		f.Slot = at
	}
	if *verdictStr != "" {
		v, err := journal.ParseVerdict(*verdictStr)
		if err != nil {
			fmt.Fprintf(stderr, "imcf-explain: %v\n", err)
			return 2
		}
		f.Verdict = v
	}

	var (
		evs []journal.Event
		err error
	)
	if *daemonURL != "" {
		// Server-side: a multi-home daemon filters its merged stream by
		// the serving-time tenant decoration.
		f.Tenant = *tenant
		evs, err = fromDaemon(*daemonURL, f)
	} else {
		// Persisted logs are per-home and carry no tenant field (each
		// holds exactly what a single-home daemon would write), so here
		// the tenant selects which home's log to open.
		path, perr := resolveJournalPath(*jnlPath, *tenant)
		if perr != nil {
			fmt.Fprintf(stderr, "imcf-explain: %v\n", perr)
			return 2
		}
		evs, err = fromFile(path, f)
	}
	if err != nil {
		fmt.Fprintf(stderr, "imcf-explain: %v\n", err)
		return 2
	}
	if len(evs) == 0 {
		fmt.Fprintf(stderr, "imcf-explain: no journaled decision matches rule %q\n", *rule)
		return 1
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(evs) //nolint:errcheck // stdout write
		return 0
	}
	for _, ev := range evs {
		explain(stdout, ev)
	}
	return 0
}

// resolveJournalPath maps -journal/-tenant onto a concrete log file:
// a file path is used as-is, a persistence root directory resolves to
// its single-home decisions.jnl or, with a tenant, to the home's
// tenants/<id>/decisions.jnl.
func resolveJournalPath(path, tenant string) (string, error) {
	info, err := os.Stat(path)
	switch {
	case err == nil && info.IsDir():
		if tenant != "" {
			return filepath.Join(path, "tenants", tenant, persistence.JournalFile), nil
		}
		return filepath.Join(path, persistence.JournalFile), nil
	case tenant != "":
		return "", fmt.Errorf("-tenant with -journal requires a persistence root directory, not a file (%s)", path)
	default:
		return path, nil
	}
}

// fromDaemon queries a live daemon's /debug/decisions with the filter
// as query parameters, so filtering happens server-side.
func fromDaemon(base string, f journal.Filter) ([]journal.Event, error) {
	q := url.Values{}
	q.Set("rule", f.Rule)
	if f.Tenant != "" {
		q.Set("tenant", f.Tenant)
	}
	if f.Verdict != 0 {
		q.Set("verdict", f.Verdict.String())
	}
	if !f.Slot.IsZero() {
		q.Set("slot", f.Slot.Format(time.RFC3339))
	}
	if f.Limit > 0 {
		q.Set("limit", fmt.Sprint(f.Limit))
	}
	u := base + "/debug/decisions?" + q.Encode()
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort detail
		return nil, fmt.Errorf("GET %s: %d: %s", u, resp.StatusCode, body)
	}
	var evs []journal.Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		return nil, fmt.Errorf("decode %s: %w", u, err)
	}
	return evs, nil
}

// fromFile replays a persisted journal and filters client-side.
func fromFile(path string, f journal.Filter) ([]journal.Event, error) {
	jl, err := persistence.OpenJournalFile(path)
	if err != nil {
		return nil, err
	}
	defer jl.Close() //nolint:errcheck // read-only use
	var evs []journal.Event
	if _, err := jl.Replay(func(ev journal.Event) {
		if f.Match(ev) {
			evs = append(evs, ev)
		}
	}); err != nil {
		return nil, err
	}
	if f.Limit > 0 && len(evs) > f.Limit {
		evs = evs[len(evs)-f.Limit:]
	}
	return evs, nil
}

// explain renders one decision as prose, citing the planner state that
// produced it.
func explain(w io.Writer, ev journal.Event) {
	fmt.Fprintf(w, "rule %s was %s at slot %s (planning window %d)\n",
		ev.Rule, ev.Verdict, ev.Slot.Format(time.RFC3339), ev.Window)
	if ev.Tenant != "" {
		fmt.Fprintf(w, "  home:           %s\n", ev.Tenant)
	}
	if ev.Owner != "" {
		fmt.Fprintf(w, "  owner:          %s\n", ev.Owner)
	}
	fmt.Fprintf(w, "  E_p remaining:  %.3f kWh at decision time\n", ev.EpRemainingKWh)
	fmt.Fprintf(w, "  energy cost:    %.3f kWh per window\n", ev.EnergyKWh)
	if ev.Verdict == journal.VerdictDropped {
		fmt.Fprintf(w, "  F_CE delta:     dropping it added %.4f to the convenience error\n", ev.FCEDelta)
	}
	fmt.Fprintf(w, "  k-opt:          %s\n", ev.FlipIterString())
	if ev.Trace != "" {
		fmt.Fprintf(w, "  trace:          %s\n", ev.Trace)
	}
	switch {
	case ev.Verdict == journal.VerdictDropped && ev.FlipIter == journal.FlipRepair:
		fmt.Fprintf(w, "  why: the candidate plan exceeded the amortized budget, and the feasibility repair switched this rule off (%.3f kWh remained).\n", ev.EpRemainingKWh)
	case ev.Verdict == journal.VerdictDropped:
		fmt.Fprintf(w, "  why: keeping it was not worth %.3f kWh against the %.3f kWh E_p remaining — the search left it off (%s).\n",
			ev.EnergyKWh, ev.EpRemainingKWh, ev.FlipIterString())
	default:
		fmt.Fprintf(w, "  why: the plan fit the budget with %.3f kWh E_p remaining, so the rule ran.\n", ev.EpRemainingKWh)
	}
}
