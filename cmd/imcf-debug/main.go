// Command imcf-debug reads flight-recorder diagnostic bundles — the
// correlated evidence trail the daemon dumps on degraded-mode entry,
// SLO page transitions, SIGQUIT, or POST /debug/flight.
//
// Usage:
//
//	imcf-debug [-dir diagnostics]             list bundles (torn ones flagged)
//	imcf-debug -bundle DIR                    summarize one bundle
//	imcf-debug -bundle DIR -section logs      print one section raw
//	imcf-debug -bundle DIR -json              the bundle manifest as JSON
//
// Sections: logs (logs.jsonl), spans (spans.json), journal
// (journal.jsonl), metrics (metrics.prom), goroutines (goroutines.txt),
// meta (meta.json). A bundle is well-formed iff its meta.json — written
// last, atomically — parses; directories without one are torn leftovers
// of a crash mid-dump and are reported as such, never read as truth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/imcf/imcf/internal/obs"
)

func main() {
	var (
		dir     = flag.String("dir", "diagnostics", "diagnostics root to list bundles from")
		bundle  = flag.String("bundle", "", "bundle directory to inspect")
		section = flag.String("section", "", "bundle section to print raw: logs, spans, journal, metrics, goroutines or meta")
		asJSON  = flag.Bool("json", false, "print the bundle manifest as JSON")
	)
	flag.Parse()

	if *bundle == "" {
		if err := list(*dir); err != nil {
			fatal(err)
		}
		return
	}
	meta, err := obs.ReadMeta(*bundle)
	if err != nil {
		fatal(err)
	}
	switch {
	case *section != "":
		if err := printSection(*bundle, *section); err != nil {
			fatal(err)
		}
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(meta); err != nil {
			fatal(err)
		}
	default:
		summarize(*bundle, meta)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "imcf-debug: %v\n", err)
	os.Exit(1)
}

// list enumerates the diagnostics root: one line per bundle, well-formed
// or torn.
func list(root string) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Printf("no bundles under %s\n", root)
		return nil
	}
	for _, name := range names {
		path := filepath.Join(root, name)
		meta, err := obs.ReadMeta(path)
		if err != nil {
			fmt.Printf("%-50s TORN (crash mid-dump; safe to delete)\n", path)
			continue
		}
		target := meta.Tenant
		if meta.Trace != "" {
			target += " trace=" + meta.Trace
		}
		fmt.Printf("%-50s %-10s %s %s\n", path, meta.Reason,
			meta.Time.Format("2006-01-02T15:04:05Z"), target)
	}
	return nil
}

// summarize prints one bundle's manifest and section inventory.
func summarize(dir string, meta obs.Meta) {
	fmt.Printf("bundle:  %s\n", dir)
	fmt.Printf("reason:  %s\n", meta.Reason)
	fmt.Printf("time:    %s\n", meta.Time.Format("2006-01-02T15:04:05.000Z"))
	if meta.Tenant != "" {
		fmt.Printf("tenant:  %s\n", meta.Tenant)
	}
	if meta.Trace != "" {
		fmt.Printf("trace:   %s\n", meta.Trace)
	}
	fmt.Println("sections:")
	for _, f := range meta.Files {
		count := ""
		if n, ok := meta.Counts[f]; ok && n > 0 {
			count = fmt.Sprintf(" (%d records)", n)
		}
		info, err := os.Stat(filepath.Join(dir, f))
		size := int64(0)
		if err == nil {
			size = info.Size()
		}
		fmt.Printf("  %-16s %8d bytes%s\n", f, size, count)
	}
}

// printSection streams one section file raw to stdout.
func printSection(dir, section string) error {
	name, ok := map[string]string{
		"logs":       "logs.jsonl",
		"spans":      "spans.json",
		"journal":    "journal.jsonl",
		"metrics":    "metrics.prom",
		"goroutines": "goroutines.txt",
		"meta":       obs.MetaName,
	}[section]
	if !ok {
		return fmt.Errorf("unknown section %q (logs, spans, journal, metrics, goroutines, meta)", section)
	}
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}
