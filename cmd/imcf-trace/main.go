// Command imcf-trace generates, inspects and aggregates the synthetic
// CASAS-like sensor traces the simulator replays.
//
// Usage:
//
//	imcf-trace gen     -out FILE -kind temperature|light|door [-days 30]
//	                   [-interval 29s] [-seed 42] [-zone 0] [-start 2013-10-01]
//	imcf-trace dataset -dir DIR [-zones 1] [-days 30] [-seed 42] [-start 2013-10-01]
//	imcf-trace info    -in FILE
//	imcf-trace cat     -in FILE [-n 10]
//	imcf-trace agg     -in FILE
//
// gen streams readings into the compressed block format; dataset writes
// a full multi-zone dataset directory with a manifest; info reports
// record counts and compression ratio; cat dumps records; agg prints
// hourly means.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/weather"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imcf-trace: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: imcf-trace gen|dataset|info|cat|agg [flags]")
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "dataset":
		err = runDataset(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "cat":
		err = runCat(os.Args[2:])
	case "agg":
		err = runAgg(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		log.Fatal(err)
	}
}

func parseKind(s string) (trace.Kind, error) {
	switch s {
	case "temperature":
		return trace.KindTemperature, nil
	case "light":
		return trace.KindLight, nil
	case "door":
		return trace.KindDoor, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output trace file")
	kindName := fs.String("kind", "temperature", "sensor kind: temperature, light or door")
	days := fs.Int("days", 30, "days of readings")
	interval := fs.Duration("interval", 29*time.Second, "mean reading interval")
	seed := fs.Uint64("seed", 42, "weather/zone seed")
	zone := fs.Int("zone", 0, "zone index (decorrelates noise)")
	startStr := fs.String("start", "2013-10-01", "start date (YYYY-MM-DD)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}
	start, err := time.Parse("2006-01-02", *startStr)
	if err != nil {
		return fmt.Errorf("gen: bad -start: %w", err)
	}
	wx, err := weather.New(*seed, weather.Nicosia())
	if err != nil {
		return err
	}
	zoneModel := trace.DefaultZone(*seed + uint64(*zone)*7919)
	gen, err := trace.NewGenerator(wx, zoneModel)
	if err != nil {
		return err
	}
	w, err := trace.CreateFile(*out, kind, 0)
	if err != nil {
		return err
	}
	end := start.AddDate(0, 0, *days)
	if err := gen.Readings(kind, start.UTC(), end.UTC(), *interval, w.Append); err != nil {
		w.Close() //nolint:errcheck
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %s readings over %d days to %s (%d bytes, %.2f bytes/reading)\n",
		w.Count(), kind, *days, *out, info.Size(), float64(info.Size())/float64(w.Count()))
	return nil
}

func runDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	dir := fs.String("dir", "", "output dataset directory")
	zones := fs.Int("zones", 1, "number of zones")
	days := fs.Int("days", 30, "days of readings")
	seed := fs.Uint64("seed", 42, "weather/zone seed")
	startStr := fs.String("start", "2013-10-01", "start date (YYYY-MM-DD)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *dir == "" {
		return fmt.Errorf("dataset: -dir is required")
	}
	if *zones < 1 {
		return fmt.Errorf("dataset: -zones must be ≥ 1")
	}
	start, err := time.Parse("2006-01-02", *startStr)
	if err != nil {
		return fmt.Errorf("dataset: bad -start: %w", err)
	}
	wx, err := weather.New(*seed, weather.Nicosia())
	if err != nil {
		return err
	}
	spec := trace.DatasetSpec{
		Name: filepath.Base(*dir),
		Seed: *seed,
		From: start.UTC(),
		To:   start.UTC().AddDate(0, 0, *days),
	}
	for z := 0; z < *zones; z++ {
		spec.Zones = append(spec.Zones, trace.DefaultZone(*seed+uint64(z)*7919))
	}
	m, err := trace.GenerateDataset(*dir, wx, spec)
	if err != nil {
		return err
	}
	d, err := trace.OpenDataset(*dir)
	if err != nil {
		return err
	}
	size, err := d.Size()
	if err != nil {
		return err
	}
	fmt.Printf("dataset %q: %d zones, %d readings over %d days, %.1f MB (%.2f bytes/reading)\n",
		m.Name, m.Zones, m.Records, *days, float64(size)/(1<<20), float64(size)/float64(m.Records))
	return nil
}

func openTrace(args []string, name string, extra func(*flag.FlagSet)) (*trace.Reader, error) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	if extra != nil {
		extra(fs)
	}
	fs.Parse(args) //nolint:errcheck
	if *in == "" {
		return nil, fmt.Errorf("%s: -in is required", name)
	}
	return trace.OpenFile(*in)
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	fs.Parse(args) //nolint:errcheck
	if *in == "" {
		return fmt.Errorf("info: -in is required")
	}
	r, err := trace.OpenFile(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	recs, err := r.ReadAll()
	if err != nil {
		return err
	}
	st, err := os.Stat(*in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("%s: empty %s trace\n", *in, r.Kind())
		return nil
	}
	minV, maxV := recs[0].Value, recs[0].Value
	for _, rec := range recs {
		if rec.Value < minV {
			minV = rec.Value
		}
		if rec.Value > maxV {
			maxV = rec.Value
		}
	}
	raw := 16 * len(recs)
	fmt.Printf("%s: %s trace\n", *in, r.Kind())
	fmt.Printf("  records:     %d\n", len(recs))
	fmt.Printf("  range:       %s .. %s\n", recs[0].Time.Format(time.RFC3339), recs[len(recs)-1].Time.Format(time.RFC3339))
	fmt.Printf("  values:      %.2f .. %.2f\n", minV, maxV)
	fmt.Printf("  size:        %d bytes (%.2fx vs %d raw)\n", st.Size(), float64(raw)/float64(st.Size()), raw)
	return nil
}

func runCat(args []string) error {
	var n *int
	r, err := openTrace(args, "cat", func(fs *flag.FlagSet) {
		n = fs.Int("n", 10, "records to print (0 = all)")
	})
	if err != nil {
		return err
	}
	defer r.Close()
	printed := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s %.3f\n", rec.Time.Format(time.RFC3339), rec.Value)
		printed++
		if *n > 0 && printed >= *n {
			return nil
		}
	}
}

func runAgg(args []string) error {
	r, err := openTrace(args, "agg", nil)
	if err != nil {
		return err
	}
	defer r.Close()
	recs, err := r.ReadAll()
	if err != nil {
		return err
	}
	means := trace.HourlyMeans(recs)
	hours := make([]time.Time, 0, len(means))
	for h := range means {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i].Before(hours[j]) })
	for _, h := range hours {
		fmt.Printf("%s %.3f\n", h.Format("2006-01-02T15"), means[h])
	}
	return nil
}
