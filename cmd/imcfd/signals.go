package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/imcf/imcf/internal/daemon"
)

// handleSignals closes the daemon on the first interrupt. SIGQUIT does
// not exit: it dumps a flight-recorder bundle — the on-demand "what is
// this process doing right now" snapshot (logs, spans, decisions,
// metrics, goroutines) — and keeps serving.
func handleSignals(d *daemon.Daemon) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGQUIT)
	for s := range sig {
		if s == syscall.SIGQUIT {
			dir, err := d.TriggerFlight("sigquit", "", "")
			if err != nil {
				log.Printf("flight recorder: %v", err)
				continue
			}
			log.Printf("flight bundle written to %s (read it with imcf-debug)", dir)
			continue
		}
		log.Print("shutting down")
		d.Close() //nolint:errcheck // exiting anyway
		return
	}
}
