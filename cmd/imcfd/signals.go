package main

import (
	"log"
	"os"
	"os/signal"

	"github.com/imcf/imcf/internal/daemon"
)

// handleSignals closes the daemon on the first interrupt.
func handleSignals(d *daemon.Daemon) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	d.Close() //nolint:errcheck // exiting anyway
}
