// Command imcfd runs the IMCF Local Controller as a daemon: it builds a
// residence, optionally starts emulated Daikin/Hue devices and drives
// them over HTTP, schedules the Energy Planner on a cron interval, and
// serves the openHAB-style REST API plus Prometheus metrics.
//
// Usage:
//
//	imcfd [-addr :8088] [-metrics-addr :8089] [-residence prototype|flat|house]
//	      [-store DIR] [-interval 1h] [-weekly-budget 165] [-emulate] [-seed 42]
//	      [-tenants h1,h2,...] [-fleet-workers 8]
//
// With -tenants, one daemon hosts a fleet: each comma-separated home ID
// becomes a tenant with its own controller, store namespace, and
// decision journal, served under /t/<id>/rest/... (legacy un-prefixed
// routes alias the first tenant). Per-home trace seeds derive from
// -seed plus the tenant's position. -fleet-workers bounds how many
// homes plan concurrently per cron cycle.
//
// Each tenant also serves the delta-sync decision stream (DESIGN.md
// §16) at /rest/stream/snapshot and /rest/stream; -stream-ring sizes
// its delta ring (negative disables streaming).
//
// With -emulate, every HVAC and light in the residence gets an
// in-process device emulator and commands flow over real loopback HTTP
// through the meta-control firewall. The metrics listener serves
// GET /metrics (Prometheus text exposition), GET /healthz,
// GET /debug/spans, GET /debug/exemplars, GET /debug/decisions (the
// Energy-Planner decision journal, see cmd/imcf-explain) and
// GET /debug/trace/{id}; -metrics-addr "" disables it.
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"github.com/imcf/imcf/internal/daemon"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8088", "REST API listen address")
		metricsAddr  = flag.String("metrics-addr", ":8089", "metrics/health listen address (empty disables)")
		residence    = flag.String("residence", "prototype", "residence: prototype, flat or house")
		storeDir     = flag.String("store", "", "persistence directory (empty disables)")
		storeBackend = flag.String("store-backend", "wal", "storage engine: wal, sharded or mem")
		storeShards  = flag.Int("store-shards", 0, "shard count for -store-backend sharded (0: adopt the directory's manifest, or 8 when fresh)")
		interval     = flag.Duration("interval", time.Hour, "EP scheduling interval")
		weekly       = flag.Float64("weekly-budget", home.PrototypeWeeklyBudget.KWh(), "weekly energy budget in kWh")
		emulate      = flag.Bool("emulate", false, "start HTTP device emulators and drive them")
		seed         = flag.Uint64("seed", 42, "residence seed")
		mrtPath      = flag.String("mrt", "", "Meta-Rule Table file in the textual format (overrides the residence's)")
		persist      = flag.String("persist", "", "directory for measurement persistence (empty disables)")
		mode         = flag.String("mode", "EP", "planning mode: EP, IFTTT or manual")
		journalCap   = flag.Int("journal-cap", daemon.DefaultJournalCap, "decision journal ring capacity (negative disables journaling)")
		journalSync  = flag.Int("journal-sync", 1, "fsync the decision journal every N events (negative: only on shutdown)")
		tenants      = flag.String("tenants", "", "comma-separated home IDs for multi-tenant hosting (empty: one single-home tenant)")
		fleetWorkers = flag.Int("fleet-workers", 1, "tenants planning concurrently per fleet cycle")
		streamRing   = flag.Int("stream-ring", 0, "decision-stream delta ring capacity per tenant (0: default, negative disables streaming)")
		debugAddr    = flag.String("debug-addr", "", "debug listen address for pprof, /debug/logs and POST /debug/flight (empty disables)")
		diagnostics  = flag.String("diagnostics", "diagnostics", "flight-recorder bundle directory (empty disables; SIGQUIT dumps a bundle)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("imcfd: -log-level: %v", err)
	}
	obs.SetLevel(lvl)
	// Mirror structured records to stderr as JSON lines; the in-memory
	// ring (served at /debug/logs) retains them regardless.
	obs.DefaultHandler().SetOutput(os.Stderr)

	var specs []daemon.TenantSpec
	if *tenants != "" {
		for i, id := range strings.Split(*tenants, ",") {
			id = strings.TrimSpace(id)
			if err := daemon.ParseTenantID(id); err != nil {
				log.Fatalf("imcfd: -tenants: %v", err)
			}
			specs = append(specs, daemon.TenantSpec{ID: id, Seed: *seed + uint64(i)})
		}
	}

	d, err := daemon.New(daemon.Options{
		Addr:             *addr,
		MetricsAddr:      *metricsAddr,
		Residence:        *residence,
		Seed:             *seed,
		Tenants:          specs,
		FleetWorkers:     *fleetWorkers,
		StoreDir:         *storeDir,
		StoreBackend:     *storeBackend,
		StoreShards:      *storeShards,
		PersistDir:       *persist,
		MRTPath:          *mrtPath,
		Mode:             *mode,
		Interval:         *interval,
		WeeklyBudgetKWh:  *weekly,
		Emulate:          *emulate,
		JournalCap:       *journalCap,
		JournalSyncEvery: *journalSync,
		StreamRingCap:    *streamRing,
		DebugAddr:        *debugAddr,
		DiagnosticsDir:   *diagnostics,
	})
	if err != nil {
		log.Fatalf("imcfd: %v", err)
	}
	defer d.Close() //nolint:errcheck // best-effort shutdown

	go handleSignals(d)
	log.Printf("REST API on %s", d.APIAddr())
	if ma := d.MetricsAddr(); ma != "" {
		log.Printf("metrics on http://%s/metrics (health: /healthz)", ma)
	}
	if da := d.DebugAddr(); da != "" {
		log.Printf("debug on http://%s/debug/pprof/ (logs: /debug/logs, flight: POST /debug/flight)", da)
	}
	if err := d.Serve(); err != nil {
		log.Fatalf("imcfd: %v", err)
	}
}
