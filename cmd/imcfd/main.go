// Command imcfd runs the IMCF Local Controller as a daemon: it builds a
// residence, optionally starts emulated Daikin/Hue devices and drives
// them over HTTP, schedules the Energy Planner on a cron interval, and
// serves the openHAB-style REST API.
//
// Usage:
//
//	imcfd [-addr :8088] [-residence prototype|flat|house] [-store DIR]
//	      [-interval 1h] [-weekly-budget 165] [-emulate] [-seed 42]
//
// With -emulate, every HVAC and light in the residence gets an
// in-process device emulator and commands flow over real loopback HTTP
// through the meta-control firewall.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/units"
)

func main() {
	var (
		addr      = flag.String("addr", ":8088", "REST API listen address")
		residence = flag.String("residence", "prototype", "residence: prototype, flat or house")
		storeDir  = flag.String("store", "", "persistence directory (empty disables)")
		interval  = flag.Duration("interval", time.Hour, "EP scheduling interval")
		weekly    = flag.Float64("weekly-budget", home.PrototypeWeeklyBudget.KWh(), "weekly energy budget in kWh")
		emulate   = flag.Bool("emulate", false, "start HTTP device emulators and drive them")
		seed      = flag.Uint64("seed", 42, "residence seed")
		mrtPath   = flag.String("mrt", "", "Meta-Rule Table file in the textual format (overrides the residence's)")
		persist   = flag.String("persist", "", "directory for measurement persistence (empty disables)")
		mode      = flag.String("mode", "EP", "planning mode: EP, IFTTT or manual")
	)
	flag.Parse()
	if err := run(*addr, *residence, *storeDir, *mrtPath, *persist, *mode, *interval, *weekly, *emulate, *seed); err != nil {
		log.Fatalf("imcfd: %v", err)
	}
}

func run(addr, residence, storeDir, mrtPath, persistDir, modeName string, interval time.Duration, weekly float64, emulate bool, seed uint64) error {
	var (
		res *home.Residence
		err error
	)
	switch residence {
	case "prototype":
		res, err = home.Prototype(seed)
	case "flat":
		res, err = home.Flat(seed)
	case "house":
		res, err = home.House(seed)
	default:
		return fmt.Errorf("unknown residence %q", residence)
	}
	if err != nil {
		return err
	}
	if mrtPath != "" {
		src, err := os.ReadFile(mrtPath)
		if err != nil {
			return err
		}
		mrt, err := rules.ParseMRT(string(src))
		if err != nil {
			return err
		}
		res.MRT = mrt
		if err := res.Validate(); err != nil {
			return fmt.Errorf("MRT from %s: %w", mrtPath, err)
		}
		log.Printf("loaded %d meta-rules from %s", len(mrt.Rules), mrtPath)
	}

	cfg := controller.Config{
		Residence:    res,
		WeeklyBudget: units.Energy(weekly),
	}
	switch modeName {
	case "EP", "ep":
		cfg.Mode = controller.ModeEP
	case "IFTTT", "ifttt":
		cfg.Mode = controller.ModeIFTTT
	case "manual":
		cfg.Mode = controller.ModeManual
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	if storeDir != "" {
		db, err := store.Open(store.Options{Dir: storeDir, SyncWrites: true})
		if err != nil {
			return err
		}
		defer db.Close()
		cfg.Store = db
	}
	if persistDir != "" {
		svc, err := persistence.Open(persistDir)
		if err != nil {
			return err
		}
		defer svc.Close()
		cfg.Persistence = svc
		log.Printf("recording measurements to %s", persistDir)
	}

	var closers []func() error
	defer func() {
		for _, c := range closers {
			c() //nolint:errcheck // best-effort shutdown
		}
	}()
	if emulate {
		fw := firewall.New(nil)
		endpoints := make(map[string]string)
		for _, z := range res.Zones {
			d, err := devicesim.StartDaikin()
			if err != nil {
				return err
			}
			closers = append(closers, d.Close)
			endpoints[z.HVAC.ID] = d.URL()
			log.Printf("emulated %s at %s (LAN addr %s)", z.HVAC.ID, d.URL(), z.HVAC.Addr)

			h, err := devicesim.StartHue()
			if err != nil {
				return err
			}
			closers = append(closers, h.Close)
			endpoints[z.Light.ID] = h.URL()
			log.Printf("emulated %s at %s (LAN addr %s)", z.Light.ID, h.URL(), z.Light.Addr)
		}
		cfg.Firewall = fw
		cfg.Binding = &controller.HTTPBinding{Endpoints: endpoints, Firewall: fw}
	}

	c, err := controller.New(cfg)
	if err != nil {
		return err
	}

	cron := controller.NewCron(nil)
	defer cron.Stop()
	stop := c.Schedule(cron, interval, func(err error) { log.Printf("EP cycle: %v", err) })
	defer stop()
	log.Printf("EP scheduled every %v for %q (weekly budget %.0f kWh)", interval, residence, weekly)

	srv := &http.Server{Addr: addr, Handler: controller.API(c)}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Print("shutting down")
		srv.Close() //nolint:errcheck
	}()
	log.Printf("REST API on %s", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
