// Command imcf-lint runs the project-native static-analysis suite over
// the module: the noalloc, determinism, metrics-hygiene, err-drop and
// atomic-mix rules plus the CFG-based lockdiscipline, tenantisolation,
// osbypass and goleak rules (see internal/analysis).
//
// Usage:
//
//	imcf-lint [flags] [./...]
//
// The positional package pattern is accepted for familiarity; the
// linter always analyzes the whole module rooted at -C (the rules are
// module-wide by design). Rules fan out over -parallel workers;
// -timing prints a per-rule cost breakdown.
//
// Exit status: 0 when clean, 1 when findings remain after baseline
// filtering, 2 on usage, load or baseline errors — including stale
// baseline entries for files that no longer exist, and //imcf:allow
// waivers that suppress no findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"github.com/imcf/imcf/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imcf-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root          = fs.String("C", ".", "module root directory to analyze")
		jsonOut       = fs.Bool("json", false, "emit findings as JSON")
		baselinePath  = fs.String("baseline", "lint.baseline", "baseline file, relative to the module root (absent file = empty baseline)")
		writeBaseline = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
		listRules     = fs.Bool("list", false, "list the rules and exit")
		parallel      = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for rule×package units")
		timing        = fs.Bool("timing", false, "print per-rule execution time")
	)
	enabled := make(map[string]*bool, len(analysis.AllRules()))
	for _, r := range analysis.AllRules() {
		enabled[r.Name()] = fs.Bool(r.Name(), true, "enable the "+r.Name()+" rule")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range analysis.AllRules() {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	for _, arg := range fs.Args() {
		// "./..." and "." are the familiar go-tool spellings for "the
		// whole module" — anything else is a misunderstanding of scope.
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "imcf-lint: unsupported package pattern %q (the suite always analyzes the whole module; use -C to pick the module)\n", arg)
			return 2
		}
	}

	mod, err := analysis.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(stderr, "imcf-lint: %v\n", err)
		return 2
	}
	var rules []analysis.Rule
	var ruleNames []string
	for _, r := range analysis.AllRules() {
		if *enabled[r.Name()] {
			rules = append(rules, r)
			ruleNames = append(ruleNames, r.Name())
		}
	}
	rep := analysis.NewReporter(mod)
	perRule := analysis.RunWith(rep, mod, rules, *parallel)
	findings := rep.Findings()
	if *timing {
		for _, name := range ruleNames {
			fmt.Fprintf(stderr, "imcf-lint: %-16s %8.1fms\n", name, float64(perRule[name].Microseconds())/1000)
		}
	}

	blPath := *baselinePath
	if !filepath.IsAbs(blPath) {
		blPath = filepath.Join(mod.Root, blPath)
	}
	if *writeBaseline {
		if err := os.WriteFile(blPath, []byte(analysis.FormatBaseline(findings)), 0o644); err != nil {
			fmt.Fprintf(stderr, "imcf-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "imcf-lint: wrote %d finding(s) to %s\n", len(findings), blPath)
		return 0
	}
	baseline, err := analysis.LoadBaseline(blPath)
	if err != nil {
		fmt.Fprintf(stderr, "imcf-lint: %v\n", err)
		return 2
	}
	if stale := baseline.Stale(mod.Root); len(stale) > 0 {
		for _, f := range stale {
			fmt.Fprintf(stderr, "imcf-lint: stale baseline entry: %s no longer exists\n", f)
		}
		fmt.Fprintf(stderr, "imcf-lint: regenerate the baseline with -write-baseline\n")
		return 2
	}
	// A waiver that suppresses nothing has outlived the code it
	// excuses: like a stale baseline entry, it must be deleted, not
	// left to silence a future finding nobody audited.
	if stale := rep.StaleWaivers(ruleNames); len(stale) > 0 {
		for _, w := range stale {
			fmt.Fprintf(stderr, "imcf-lint: stale waiver: %s suppresses no findings; delete it\n", w)
		}
		return 2
	}
	remaining := baseline.Filter(findings)

	if *jsonOut {
		out := struct {
			Module     string             `json:"module"`
			Findings   []analysis.Finding `json:"findings"`
			Suppressed int                `json:"suppressed"`
		}{mod.Path, remaining, len(findings) - len(remaining)}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "imcf-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range remaining {
			fmt.Fprintln(stdout, f.String())
		}
		if len(remaining) > 0 {
			fmt.Fprintf(stderr, "imcf-lint: %d finding(s)\n", len(remaining))
		}
	}
	if len(remaining) > 0 {
		return 1
	}
	return 0
}
