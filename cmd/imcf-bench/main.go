// Command imcf-bench regenerates the tables and figures of the IMCF
// paper's evaluation (ICDE 2021, Section III).
//
// Usage:
//
//	imcf-bench [-run all|table1|table2|table3|fig6|fig7|fig8|fig9|table4|table5|ablations|fig6bench]
//	           [-reps N] [-datasets Flat,House,Dorms] [-seed N] [-parallel N]
//	           [-cpuprofile out.pprof] [-memprofile out.pprof] [-benchjson BENCH_fig6.json]
//	           [-store [-storejson BENCH_store.json]]
//	           [-fleet [-fleet-homes 1000,10000] [-fleet-workers 1,8] [-fleetjson BENCH_fleet.json]]
//	           [-obs [-obs-homes 200] [-obsjson BENCH_obs.json]]
//	           [-stream [-stream-ticks 20] [-stream-steps 10] [-streamjson BENCH_stream.json]]
//
// Each experiment prints the same rows/series the paper reports, with
// mean ± standard deviation over the configured repetitions. -store
// benches the storage engines; -fleet benches the multi-home fleet
// scheduler (per-tenant plan-latency percentiles at 1k/10k homes);
// -obs measures the observability layer's serving-path overhead;
// -stream prices the cloud↔edge sync protocols (poll vs conditional
// GET vs delta stream).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/imcf/imcf/internal/bench"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment to run: all, table1, table2, table3, fig6, fig7, fig8, fig9, table4, table5, ablations, fig6bench")
		reps       = flag.Int("reps", 10, "repetitions per configuration")
		datasets   = flag.String("datasets", "Flat,House,Dorms", "comma-separated datasets")
		seed       = flag.Uint64("seed", 42, "base random seed")
		format     = flag.String("format", "text", "output format: text or json (json covers fig6-9 and the prototype)")
		specPath   = flag.String("spec", "", "JSON experiment spec file (runs instead of the built-in experiments)")
		parallel   = flag.Int("parallel", 0, "suite-wide simulation runs in flight (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchjson  = flag.String("benchjson", "", "write the fig6bench before/after artifact (BENCH_fig6.json) to this file")
		storeBench = flag.Bool("store", false, "run the storage-engine write benchmark (baseline vs group commit vs sharded)")
		storejson  = flag.String("storejson", "", "with -store, also write the BENCH_store.json artifact to this file")
		storeOps   = flag.Int("store-ops", 0, "with -store, Puts per writer in sync cells (0 = default matrix)")
		fleetBench = flag.Bool("fleet", false, "run the fleet-scheduler benchmark (per-tenant plan latency percentiles)")
		fleetHomes = flag.String("fleet-homes", "", "with -fleet, comma-separated fleet sizes (default 1000,10000)")
		fleetWork  = flag.String("fleet-workers", "", "with -fleet, comma-separated worker-pool sizes (default 1,8)")
		fleetCyc   = flag.Int("fleet-cycles", 0, "with -fleet, planning cycles per cell (default 2)")
		fleetjson  = flag.String("fleetjson", "", "with -fleet, also write the BENCH_fleet.json artifact to this file")
		obsBench   = flag.Bool("obs", false, "run the observability-overhead benchmark (serving path with logging enabled vs disabled)")
		obsReqs    = flag.Int("obs-requests", 0, "with -obs, requests per measured batch (default 2000)")
		obsRounds  = flag.Int("obs-rounds", 0, "with -obs, interleaved enabled/disabled rounds (default 25)")
		obsHomes   = flag.Int("obs-homes", 0, "with -obs, tenant count for the SLO-feed measurement (default 200)")
		obsjson    = flag.String("obsjson", "", "with -obs, also write the BENCH_obs.json artifact to this file")
		strBench   = flag.Bool("stream", false, "run the cloud↔edge sync-protocol benchmark (poll vs etag vs delta stream)")
		strTicks   = flag.Int("stream-ticks", 0, "with -stream, steady-phase poll ticks (default 20)")
		strSteps   = flag.Int("stream-steps", 0, "with -stream, changing-phase planning cycles (default 10)")
		streamjson = flag.String("streamjson", "", "with -stream, also write the BENCH_stream.json artifact to this file")
	)
	flag.Parse()

	suite := &bench.Suite{Reps: *reps, Seed: *seed, Parallel: *parallel}
	for _, d := range strings.Split(*datasets, ",") {
		if d = strings.TrimSpace(d); d != "" {
			suite.Datasets = append(suite.Datasets, d)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			}
		}()
	}

	if *benchjson != "" {
		f, err := os.Create(*benchjson)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		err = suite.WriteFig6Bench(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: fig6bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storeBench {
		opts := bench.StoreBenchOptions{SyncOps: *storeOps}
		if *storeOps != 0 {
			// A reduced op count is a smoke run; shrink the unsynced
			// cells proportionally too.
			opts.NoSyncOps = *storeOps * 4
		}
		res, err := bench.RunStoreBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: store: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: store: %v\n", err)
			os.Exit(1)
		}
		if *storejson != "" {
			f, err := os.Create(*storejson)
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
				os.Exit(1)
			}
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: store: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *fleetBench {
		opts := bench.FleetBenchOptions{Cycles: *fleetCyc, Seed: *seed}
		var err error
		if opts.Homes, err = parseIntList(*fleetHomes); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: -fleet-homes: %v\n", err)
			os.Exit(2)
		}
		if opts.Workers, err = parseIntList(*fleetWork); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: -fleet-workers: %v\n", err)
			os.Exit(2)
		}
		res, err := bench.RunFleetBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: fleet: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: fleet: %v\n", err)
			os.Exit(1)
		}
		if *fleetjson != "" {
			f, err := os.Create(*fleetjson)
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
				os.Exit(1)
			}
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: fleet: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *strBench {
		res, err := bench.RunStreamBench(bench.StreamBenchOptions{
			SteadyTicks: *strTicks, ChangingSteps: *strSteps, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: stream: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: stream: %v\n", err)
			os.Exit(1)
		}
		if *streamjson != "" {
			f, err := os.Create(*streamjson)
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
				os.Exit(1)
			}
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: stream: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *obsBench {
		res, err := bench.RunObsBench(bench.ObsBenchOptions{
			Requests: *obsReqs, Rounds: *obsRounds, Homes: *obsHomes, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: obs: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: obs: %v\n", err)
			os.Exit(1)
		}
		if *obsjson != "" {
			f, err := os.Create(*obsjson)
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
				os.Exit(1)
			}
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "imcf-bench: obs: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := suite.RunSpecFile(f, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *format == "json" {
		if err := emitJSON(suite, *run); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *format != "text" {
		fmt.Fprintf(os.Stderr, "imcf-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	experiments := []struct {
		name string
		// explicitOnly experiments are skipped by -run all and must be
		// named directly (perf harnesses, not paper figures).
		explicitOnly bool
		fn           func() error
	}{
		{name: "table1", fn: func() error { return bench.Table1(os.Stdout) }},
		{name: "table2", fn: func() error { return bench.Table2(os.Stdout) }},
		{name: "table3", fn: func() error { return bench.Table3(os.Stdout) }},
		{name: "fig6", fn: func() error { return suite.Fig6(os.Stdout) }},
		{name: "fig7", fn: func() error { return suite.Fig7(os.Stdout) }},
		{name: "fig8", fn: func() error { return suite.Fig8(os.Stdout) }},
		{name: "fig9", fn: func() error { return suite.Fig9(os.Stdout) }},
		{name: "table4", fn: func() error { return suite.Table4(os.Stdout) }},
		{name: "table5", fn: func() error { return suite.Table5(os.Stdout) }},
		{name: "ablations", fn: func() error { return suite.Ablations(os.Stdout) }},
		{name: "fig6bench", explicitOnly: true, fn: func() error { return suite.WriteFig6Bench(os.Stdout) }},
	}

	ran := false
	for _, e := range experiments {
		if *run == "all" && e.explicitOnly {
			continue
		}
		if *run != "all" && *run != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "imcf-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "imcf-bench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

// parseIntList parses a comma-separated list of positive integers; an
// empty string means "use the benchmark's default".
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// emitJSON runs the structured experiments and prints one JSON document.
func emitJSON(suite *bench.Suite, run string) error {
	out := make(map[string]any)
	want := func(name string) bool { return run == "all" || run == name }
	if want("fig6") {
		rows, err := suite.RunFig6()
		if err != nil {
			return err
		}
		out["fig6"] = rows
	}
	if want("fig7") {
		rows, err := suite.RunFig7()
		if err != nil {
			return err
		}
		out["fig7"] = rows
	}
	if want("fig8") {
		rows, err := suite.RunFig8()
		if err != nil {
			return err
		}
		out["fig8"] = rows
	}
	if want("fig9") {
		rows, err := suite.RunFig9()
		if err != nil {
			return err
		}
		out["fig9"] = rows
	}
	if want("table4") || want("table5") {
		r, err := suite.RunPrototype()
		if err != nil {
			return err
		}
		out["prototype"] = r
	}
	if len(out) == 0 {
		return fmt.Errorf("experiment %q has no JSON form (use -format text)", run)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
