package imcf_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/imcf/imcf"
	"github.com/imcf/imcf/internal/simclock"
)

// TestFacadeEndToEnd drives the whole system through the public package
// only: build a residence, run the controller, check the REST API, run a
// trace-driven experiment, parse a rule table.
func TestFacadeEndToEnd(t *testing.T) {
	res, err := imcf.NewPrototype(42)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := imcf.NewController(imcf.ControllerConfig{
		Residence:    res,
		Clock:        simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC)),
		WeeklyBudget: imcf.PrototypeWeeklyBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed)+len(report.Dropped) == 0 {
		t.Errorf("winter evening step planned nothing: %+v", report)
	}

	srv := httptest.NewServer(imcf.API(ctl))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/rest/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("summary = %d", resp.StatusCode)
	}

	// Trace-driven experiment over a shortened flat.
	flat, err := imcf.NewFlat(42)
	if err != nil {
		t.Fatal(err)
	}
	flat.Years = 1
	w, err := imcf.BuildWorkload(flat, imcf.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	result, err := imcf.Run(w, imcf.EP, imcf.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if result.Energy <= 0 || result.Energy > result.BudgetTotal {
		t.Errorf("EP result = %+v", result)
	}

	// Rule language round trip and money conversion.
	mrt, err := imcf.ParseMRT(`budget "Cap" limit 100 EUR`)
	if err != nil {
		t.Fatal(err)
	}
	limit, ok := mrt.BudgetLimit("Cap")
	if !ok || limit != imcf.EUTariff.Energy(100) {
		t.Errorf("limit = %v", limit)
	}
	if imcf.FormatMRT(mrt) == "" {
		t.Error("empty formatted table")
	}

	// The paper's input tables are reachable.
	if len(imcf.FlatMRT().Rules) != 9 || len(imcf.FlatIFTTT()) != 10 {
		t.Error("paper tables wrong size")
	}
	if imcf.FlatProfile().Total().KWh() != 3666 {
		t.Error("Table I total wrong")
	}
}

func TestFacadePlanner(t *testing.T) {
	pl, err := imcf.NewPlanner(imcf.DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	sol, eval, err := pl.Plan(imcf.Problem{Budget: 1})
	if err != nil || len(sol) != 0 || eval.Energy != 0 {
		t.Errorf("empty plan = %v %+v %v", sol, eval, err)
	}
}
