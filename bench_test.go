// Package imcf_test hosts the repository-level benchmarks: one per table
// and figure of the paper's evaluation (regenerate the full reports with
// cmd/imcf-bench), plus micro-benchmarks for the substrates that bound
// end-to-end performance.
package imcf_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/shift"
	"github.com/imcf/imcf/internal/sim"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/weather"
)

// BenchmarkTable1ECP measures the Amortization Plan arithmetic behind
// Table I: deriving a full year of hourly EAF budgets.
func BenchmarkTable1ECP(b *testing.B) {
	plan := ecp.Plan{Formula: ecp.EAF, Profile: ecp.Flat(), Budget: 3500, Years: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for m := time.January; m <= time.December; m++ {
			if _, err := plan.HourlyBudget(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2MRT measures Meta-Rule Table validation and the hourly
// activation scan behind Table II.
func BenchmarkTable2MRT(b *testing.B) {
	mrt := rules.FlatMRT()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mrt.Validate(); err != nil {
			b.Fatal(err)
		}
		active := 0
		for h := 0; h < 24; h++ {
			for _, r := range mrt.Rules {
				if r.ActiveAt(h) {
					active++
				}
			}
		}
		if active != 39 {
			b.Fatalf("active rule-hours = %d", active)
		}
	}
}

// BenchmarkTable3IFTTT measures trigger-action resolution of the Table
// III rule set against a changing environment.
func BenchmarkTable3IFTTT(b *testing.B) {
	ruleSet := rules.FlatIFTTT()
	envs := make([]rules.Env, 24)
	for h := range envs {
		envs[h] = rules.Env{
			Season:      simclock.Winter,
			Condition:   weather.Condition(h % 2),
			OutdoorTemp: float64(5 + h%20),
			Light:       float64(h * 4),
			DoorOpen:    h%5 == 0,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := rules.Outputs(ruleSet, envs[i%len(envs)])
		if len(out) == 0 {
			b.Fatal("no outputs")
		}
	}
}

// monthWorkload builds a flat residence workload shortened to one year
// (shared across Fig. 6–9 benchmarks; each iteration replays one run).
func flatWorkload(b *testing.B) *sim.Workload {
	b.Helper()
	res, err := home.Flat(42)
	if err != nil {
		b.Fatal(err)
	}
	res.Years = 1
	w, err := sim.BuildWorkload(res, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkBuildWorkload measures workload construction at dorm scale
// (600 rules, 26,280 slots × 100 zones): the per-slot trace/environment
// precompute that fronts every experiment, sequentially and sharded
// over the worker pool.
func BenchmarkBuildWorkload(b *testing.B) {
	res, err := home.Dorms(42)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.BuildWorkload(res, sim.Options{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Performance replays a one-year flat run per iteration for
// each compared algorithm — the workload behind Fig. 6.
func BenchmarkFig6Performance(b *testing.B) {
	w := flatWorkload(b)
	for _, alg := range []sim.Algorithm{sim.NR, sim.IFTTT, sim.EP, sim.MR} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := sim.Options{}
				opts.Planner.Seed = uint64(i)
				r, err := sim.Run(w, alg, opts)
				if err != nil {
					b.Fatal(err)
				}
				if alg != sim.NR && r.Energy == 0 {
					b.Fatal("no energy consumed")
				}
			}
		})
	}
}

// BenchmarkFig7KOpt replays EP with each k — the sweep behind Fig. 7.
func BenchmarkFig7KOpt(b *testing.B) {
	w := flatWorkload(b)
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sim.Options{}
				opts.Planner = core.DefaultConfig()
				opts.Planner.K = k
				opts.Planner.Seed = uint64(i)
				if _, err := sim.Run(w, sim.EP, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Init replays EP with each initialization strategy — the
// sweep behind Fig. 8.
func BenchmarkFig8Init(b *testing.B) {
	w := flatWorkload(b)
	for _, init := range []core.InitStrategy{core.InitAllOn, core.InitRandom, core.InitAllOff} {
		b.Run(init.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sim.Options{}
				opts.Planner = core.DefaultConfig()
				opts.Planner.Init = init
				opts.Planner.Seed = uint64(i)
				if _, err := sim.Run(w, sim.EP, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Conservation replays EP under reduced budgets — the
// sweep behind Fig. 9.
func BenchmarkFig9Conservation(b *testing.B) {
	w := flatWorkload(b)
	for _, saving := range []float64{0.05, 0.20, 0.40} {
		b.Run(fmt.Sprintf("save=%.0f%%", saving*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sim.Options{Savings: saving}
				opts.Planner.Seed = uint64(i)
				if _, err := sim.Run(w, sim.EP, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Prototype runs the week-long prototype controller
// deployment per iteration — the pipeline behind Table IV.
func BenchmarkTable4Prototype(b *testing.B) {
	res, err := home.Prototype(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
		cfg := controller.Config{
			Residence:     res,
			Clock:         clock,
			WeeklyBudget:  home.PrototypeWeeklyBudget,
			CarryCapHours: 5.5,
		}
		cfg.Planner.Seed = uint64(i)
		c, err := controller.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 7*24; s++ {
			if _, err := c.Step(); err != nil {
				b.Fatal(err)
			}
			clock.Advance(time.Hour)
		}
		if c.Summary().Energy == 0 {
			b.Fatal("no energy")
		}
	}
}

// BenchmarkTable5Residents measures the per-resident attribution path
// behind Table V: a week-long run plus per-owner summary extraction.
func BenchmarkTable5Residents(b *testing.B) {
	res, err := home.Prototype(42)
	if err != nil {
		b.Fatal(err)
	}
	clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
	cfg := controller.Config{Residence: res, Clock: clock, WeeklyBudget: home.PrototypeWeeklyBudget}
	c, err := controller.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 7*24; s++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := c.Summary()
		if len(sum.PerOwner) != 3 {
			b.Fatalf("PerOwner = %v", sum.PerOwner)
		}
	}
}

// BenchmarkPlannerSlot measures one EP hill-climbing invocation at dorm
// scale (hundreds of active rules), the inner loop of every experiment.
func BenchmarkPlannerSlot(b *testing.B) {
	const n = 300
	problem := core.Problem{Budget: 40}
	for i := 0; i < n; i++ {
		problem.Costs = append(problem.Costs, core.RuleCost{
			DropError: math.Mod(float64(i)*0.37, 1),
			Energy:    0.23,
		})
	}
	pl, err := core.NewPlanner(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Plan(problem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerFairSlot measures the minimax-fair planning variant at
// dorm scale.
func BenchmarkPlannerFairSlot(b *testing.B) {
	const n = 300
	problem := core.Problem{Budget: 40}
	group := make([]int, n)
	for i := 0; i < n; i++ {
		problem.Costs = append(problem.Costs, core.RuleCost{
			DropError: math.Mod(float64(i)*0.37, 1),
			Energy:    0.23,
		})
		group[i] = i % 50 // 50 apartments
	}
	pl, err := core.NewPlanner(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.PlanFair(problem, group, 50, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistenceRecord measures measurement ingestion into the
// segment store.
func BenchmarkPersistenceRecord(b *testing.B) {
	svc, err := persistence.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := trace.Record{Time: t0.Add(time.Duration(i) * time.Second), Value: 20 + float64(i%7)}
		if err := svc.Record("zone0/temperature", trace.KindTemperature, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShiftSchedule measures deferrable-load packing.
func BenchmarkShiftSchedule(b *testing.B) {
	loads := []shift.Load{
		{ID: "wash", Power: 2000, Hours: 2, Window: simclock.TimeWindow{StartHour: 8, EndHour: 22}, Contiguous: true},
		{ID: "dry", Power: 2500, Hours: 1, Window: simclock.TimeWindow{StartHour: 8, EndHour: 22}, Contiguous: true},
		{ID: "ev", Power: 3000, Hours: 4, Window: simclock.TimeWindow{StartHour: 20, EndHour: 8}},
		{ID: "boiler", Power: 1500, Hours: 3, Window: simclock.TimeWindow{StartHour: 0, EndHour: 24}},
	}
	var headroom shift.Headroom
	for h := range headroom {
		headroom[h] = float64(h%5) * 0.8
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := shift.Schedule(loads, headroom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRTParse and BenchmarkMRTFormat measure the textual rule
// table codec.
func BenchmarkMRTParse(b *testing.B) {
	text := rules.FormatMRT(rules.FlatMRT())
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if _, err := rules.ParseMRT(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRTFormat(b *testing.B) {
	mrt := rules.FlatMRT()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := rules.FormatMRT(mrt); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkTraceEncode and BenchmarkTraceDecode measure the Gorilla-style
// block codec at the CASAS reading cadence.
func BenchmarkTraceEncode(b *testing.B) {
	recs := make([]trace.Record, 4096)
	t0 := time.Date(2013, 10, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i] = trace.Record{
			Time:  t0.Add(time.Duration(i) * 29 * time.Second),
			Value: math.Round((20+5*math.Sin(float64(i)/100))*10) / 10,
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(recs) * 16))
	for i := 0; i < b.N; i++ {
		if _, err := trace.EncodeBlock(trace.KindTemperature, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	recs := make([]trace.Record, 4096)
	t0 := time.Date(2013, 10, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i] = trace.Record{
			Time:  t0.Add(time.Duration(i) * 29 * time.Second),
			Value: math.Round((20+5*math.Sin(float64(i)/100))*10) / 10,
		}
	}
	block, err := trace.EncodeBlock(trace.KindTemperature, recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(recs) * 16))
	for i := 0; i < b.N; i++ {
		if _, _, err := trace.DecodeBlock(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures WAL-backed writes in the embedded store.
func BenchmarkStorePut(b *testing.B) {
	db, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	value := []byte(`{"name":"Night Heat","window":"01:00-07:00","value":25}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("mrt/%d", i%1024), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAmbient measures the synthetic trace model evaluation that
// dominates workload construction.
func BenchmarkAmbient(b *testing.B) {
	wx, err := weather.New(42, weather.Nicosia())
	if err != nil {
		b.Fatal(err)
	}
	gen, err := trace.NewGenerator(wx, trace.DefaultZone(7))
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := gen.AmbientAt(t0.Add(time.Duration(i%8760) * time.Hour))
		if a.Temperature < -50 || a.Temperature > 60 {
			b.Fatalf("implausible ambient %v", a)
		}
	}
}
