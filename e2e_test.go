package imcf_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestE2EDaemon builds the real imcfd binary, boots it with device
// emulators and persistence, drives its REST API over the network, and
// shuts it down — the closest this repository gets to the paper's live
// prototype deployment.
func TestE2EDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	bin := buildBinary(t, "./cmd/imcfd")

	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	mrt := filepath.Join(t.TempDir(), "table.mrt")
	if err := os.WriteFile(mrt, []byte(`
rule "Night Heat" window 00:00-24:00 set temperature 22 zone 0 owner "Tester"
budget "Cap" limit 165 kWh
`), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin,
		"-addr", addr,
		"-metrics-addr", "127.0.0.1:0",
		"-residence", "prototype",
		"-emulate",
		"-interval", "250ms",
		"-mrt", mrt,
		"-persist", t.TempDir(),
		"-store", t.TempDir(),
	)
	var logs strings.Builder
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt) //nolint:errcheck
		cmd.Wait()                       //nolint:errcheck
		if t.Failed() {
			t.Logf("daemon logs:\n%s", logs.String())
		}
	}()

	base := "http://" + addr
	waitReady(t, base+"/rest/items")

	// The daemon loaded the custom MRT.
	resp, err := http.Get(base + "/rest/mrt")
	if err != nil {
		t.Fatal(err)
	}
	var mrtBody struct {
		Rules []struct {
			Name string `json:"name"`
		} `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mrtBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mrtBody.Rules) != 2 || mrtBody.Rules[0].Name != "Night Heat" {
		t.Fatalf("mrt = %+v", mrtBody)
	}

	// The cron schedule fires EP cycles against the emulated devices.
	deadline := time.Now().Add(20 * time.Second)
	var steps int
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/rest/summary")
		if err != nil {
			t.Fatal(err)
		}
		var sum struct {
			Steps int `json:"steps"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		steps = sum.Steps
		if steps >= 2 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if steps < 2 {
		t.Fatalf("daemon ran %d EP cycles in 20s", steps)
	}

	// The dashboard serves.
	resp, err = http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("dashboard = %d", resp.StatusCode)
	}

	// The emulated device reflects the executed rule: the always-on
	// 22 °C heat rule must have powered the father's unit.
	resp, err = http.Get(base + "/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	var items []struct {
		ID       string  `json:"id"`
		On       bool    `json:"on"`
		Setpoint float64 `json:"setpoint"`
		Commands int     `json:"commands"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// With the emulated HTTP binding the registry state stays zeroed;
	// what matters is that the API serves the devices.
	if len(items) != 6 {
		t.Fatalf("items = %d", len(items))
	}
}

// TestE2EBenchBinary runs the real imcf-bench binary on a fast spec.
func TestE2EBenchBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	bin := buildBinary(t, "./cmd/imcf-bench")
	out, err := exec.Command(bin, "-run", "table2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Night Heat") {
		t.Errorf("table2 output:\n%s", out)
	}

	spec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(spec,
		[]byte(`{"name":"quick","dataset":"Flat","algorithms":["NR"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-spec", spec, "-reps", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "quick") {
		t.Errorf("spec output:\n%s", out)
	}
}

// TestE2ETraceBinary generates and inspects a trace with the real
// imcf-trace binary.
func TestE2ETraceBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	bin := buildBinary(t, "./cmd/imcf-trace")
	out := filepath.Join(t.TempDir(), "t.imt")
	if b, err := exec.Command(bin, "gen", "-out", out, "-days", "2").CombinedOutput(); err != nil {
		t.Fatalf("gen: %v\n%s", err, b)
	}
	b, err := exec.Command(bin, "info", "-in", out).CombinedOutput()
	if err != nil {
		t.Fatalf("info: %v\n%s", err, b)
	}
	if !strings.Contains(string(b), "temperature trace") {
		t.Errorf("info output:\n%s", b)
	}
}

// buildBinary compiles a command once per test into a temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// waitReady polls a URL until it answers or the test deadline hits.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode < 500 {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", url)
}
