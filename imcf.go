// Package imcf is the public face of the IoT Meta-Control Firewall — a
// Go reproduction of "The IoT Meta-Control Firewall" (Constantinou,
// Konstantinidis, Zeinalipour-Yazti, Chrysanthis; IEEE ICDE 2021).
//
// IMCF filters a smart space's Rule Automation Workflows against a
// long-term energy objective: users keep their convenience rules (the
// Meta-Rule Table), declare a budget ("11,000 kWh over three years"),
// and the Energy Planner — a k-opt hill-climbing search — decides per
// decision window which rules execute and which are dropped, enforcing
// drops like a network firewall.
//
// The package re-exports the building blocks from the internal
// subsystems so downstream code has one import:
//
//	res, _ := imcf.NewFlat(42)
//	ctl, _ := imcf.NewController(imcf.ControllerConfig{
//	    Residence:    res,
//	    WeeklyBudget: 165 * imcf.KilowattHour,
//	})
//	report, _ := ctl.Step()              // one EP cycle
//	http.ListenAndServe(":8088", imcf.API(ctl))
//
// For trace-driven experiments use Workload and Run:
//
//	w, _ := imcf.BuildWorkload(res, imcf.SimOptions{})
//	result, _ := imcf.Run(w, imcf.EP, imcf.SimOptions{})
//
// The cmd/ directory ships a controller daemon (imcfd), the experiment
// harness regenerating every table and figure of the paper
// (imcf-bench), and a trace tool (imcf-trace); examples/ holds runnable
// scenarios. See DESIGN.md for the architecture and EXPERIMENTS.md for
// measured-vs-paper results.
package imcf

import (
	"github.com/imcf/imcf/internal/client"
	"github.com/imcf/imcf/internal/cloud"
	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/shift"
	"github.com/imcf/imcf/internal/sim"
	"github.com/imcf/imcf/internal/units"
)

// Quantities.
type (
	// Energy is an amount of energy in kWh.
	Energy = units.Energy
	// Power is an electrical draw in watts.
	Power = units.Power
	// Percent is a percentage value (F_CE is reported as one).
	Percent = units.Percent
	// Tariff converts energy to money (€/kWh).
	Tariff = units.Tariff
)

// Common unit constants.
const (
	KilowattHour = units.KilowattHour
	Watt         = units.Watt
	Kilowatt     = units.Kilowatt
	// EUTariff is the paper's quoted ≈0.20 €/kWh.
	EUTariff = units.EUTariff
	// EUGridIntensity converts kWh to CO₂-equivalent kilograms.
	EUGridIntensity = units.EUGridIntensity
)

// Rules: the Meta-Rule Table and the IFTTT baseline language.
type (
	// MetaRule is one MRT row: a convenience preference, a necessity
	// rule, or an energy-budget limit.
	MetaRule = rules.MetaRule
	// MRT is a Meta-Rule Table.
	MRT = rules.MRT
	// IFTTTRule is one trigger-action rule (Table III's language).
	IFTTTRule = rules.IFTTTRule
	// Conflict is a detected MRT problem (clash, shadow, infeasible
	// budget).
	Conflict = rules.Conflict
	// ErrorModel is the convenience-error function (deadband + scale).
	ErrorModel = rules.ErrorModel
)

// Rule helpers.
var (
	// FlatMRT returns the paper's Table II.
	FlatMRT = rules.FlatMRT
	// FlatIFTTT returns the paper's Table III.
	FlatIFTTT = rules.FlatIFTTT
	// ParseMRT parses the textual Meta-Rule Table format.
	ParseMRT = rules.ParseMRT
	// FormatMRT renders a table in the textual format.
	FormatMRT = rules.FormatMRT
	// AnalyzeConflicts reports clashes, shadows and infeasible budgets.
	AnalyzeConflicts = rules.AnalyzeConflicts
)

// ECP: consumption profiles and budget amortization.
type (
	// Profile is an Energy Consumption Profile (Table I).
	Profile = ecp.Profile
	// AmortizationPlan derives per-slot budgets via LAF/BLAF/EAF.
	AmortizationPlan = ecp.Plan
)

// Amortization formulas.
const (
	LAF  = ecp.LAF
	BLAF = ecp.BLAF
	EAF  = ecp.EAF
)

// FlatProfile returns the paper's Table I profile.
var FlatProfile = ecp.Flat

// Core: the Energy Planner.
type (
	// Planner runs the EP search over per-window rule activations.
	Planner = core.Planner
	// PlannerConfig parameterizes k, τ_max, initialization, engine.
	PlannerConfig = core.Config
	// Problem is one window's planning input.
	Problem = core.Problem
	// Solution is the binary activation vector s = ⟨s_1 … s_N⟩.
	Solution = core.Solution
)

// Planner constructors and defaults.
var (
	// NewPlanner validates a config and returns a planner.
	NewPlanner = core.NewPlanner
	// DefaultPlannerConfig returns the evaluation defaults.
	DefaultPlannerConfig = core.DefaultConfig
)

// Residences: the evaluation datasets.
type Residence = home.Residence

// Residence builders.
var (
	// NewFlat builds the paper's single-zone flat (Table II rules,
	// 11,000 kWh / 3 y budget).
	NewFlat = home.Flat
	// NewHouse builds the four-zone house dataset.
	NewHouse = home.House
	// NewDorms builds the 50-apartment campus dataset.
	NewDorms = home.Dorms
	// NewPrototype builds the three-person prototype deployment.
	NewPrototype = home.Prototype
)

// PrototypeWeeklyBudget is the prototype evaluation's 165 kWh weekly
// limit.
const PrototypeWeeklyBudget = home.PrototypeWeeklyBudget

// Simulation: trace-driven experiments.
type (
	// Workload is a residence's precomputed replay data.
	Workload = sim.Workload
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimResult is one run's F_CE / F_E / F_T outcome.
	SimResult = sim.Result
	// Algorithm selects NR, IFTTT, EP or MR.
	Algorithm = sim.Algorithm
)

// The compared methods.
const (
	NR    = sim.NR
	IFTTT = sim.IFTTT
	EP    = sim.EP
	MR    = sim.MR
)

// Simulation entry points.
var (
	// BuildWorkload precomputes a residence's replay data.
	BuildWorkload = sim.BuildWorkload
	// Run replays a workload through an algorithm.
	Run = sim.Run
)

// Controller: the runtime system.
type (
	// Controller is the IMCF Local Controller.
	Controller = controller.Controller
	// ControllerConfig assembles one.
	ControllerConfig = controller.Config
	// StepReport summarizes one EP cycle.
	StepReport = controller.StepReport
	// Summary aggregates lifetime metrics (Tables IV–V).
	Summary = controller.Summary
)

// Controller entry points.
var (
	// NewController builds a Local Controller.
	NewController = controller.New
	// API wraps a controller with the REST interface and panel UI.
	API = controller.API
)

// Cloud: the CC/CMC tier.
type Relay = cloud.Relay

// NewRelay returns a Cloud Controller relay.
var NewRelay = cloud.NewRelay

// Client: the Go SDK for the controller's REST API.
type APIClient = client.Client

// NewAPIClient returns a REST client for a controller (or a relay site
// path).
var NewAPIClient = client.New

// Deferrable workloads: the shift scheduler.
type (
	// Load is one deferrable appliance run (wash cycle, EV charge).
	Load = shift.Load
	// Headroom is the spare energy per hour of day.
	Headroom = shift.Headroom
	// Assignment is a day's deferrable schedule.
	Assignment = shift.Assignment
)

// Schedule packs deferrable loads into the plan's spare budget.
var Schedule = shift.Schedule
