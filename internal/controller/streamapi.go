package controller

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"github.com/imcf/imcf/internal/stream"
)

// componentETag stamps the response with the component's stream
// version and answers 304 when the request's If-None-Match already
// names it. With streaming disabled, or a component never published,
// it does nothing and reports false so the caller serves the full
// body.
func componentETag(w http.ResponseWriter, r *http.Request, h *stream.Hub, kind stream.Kind) bool {
	if h == nil {
		return false
	}
	seq := h.ComponentSeq("", kind)
	if seq == 0 {
		return false
	}
	tag := `"` + h.Instance() + "." + strconv.FormatUint(seq, 10) + `"`
	w.Header().Set("ETag", tag)
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, tag) {
		stream.StreamNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatches reports whether an If-None-Match header names tag. Weak
// validators compare equal to their strong form — these ETags version
// byte-identical canonical state, so weakness adds nothing.
func etagMatches(header, tag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == tag {
			return true
		}
	}
	return false
}

// streamSnapshotHandler serves GET /rest/stream/snapshot — the full
// component state plus the resume coordinates (instance, seq) the
// delta endpoint continues from. 404 when streaming is disabled.
func streamSnapshotHandler(c *Controller) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h := c.Stream()
		if h == nil {
			writeError(w, r, http.StatusNotFound, errors.New("streaming is disabled"))
			return
		}
		h.SnapshotHandler()(w, r)
	}
}

// streamHandler serves GET /rest/stream — the delta feed (long-poll or
// SSE; see stream.DeltaHandler). 404 when streaming is disabled.
func streamHandler(c *Controller) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h := c.Stream()
		if h == nil {
			writeError(w, r, http.StatusNotFound, errors.New("streaming is disabled"))
			return
		}
		h.DeltaHandler()(w, r)
	}
}
