package controller

import (
	"sync"
	"time"

	"github.com/imcf/imcf/internal/simclock"
)

// Cron schedules recurring jobs against a Clock, standing in for the
// Linux crontab daemon the prototype uses to "reliably execute the EP
// every few minutes". With a SimClock, tests and simulations drive the
// schedule deterministically by advancing time.
type Cron struct {
	clock simclock.Clock

	mu      sync.Mutex
	stopped bool
	stops   []func()
	wg      sync.WaitGroup
}

// NewCron returns a scheduler on the given clock (nil means wall clock).
func NewCron(clock simclock.Clock) *Cron {
	if clock == nil {
		clock = simclock.RealClock{}
	}
	return &Cron{clock: clock}
}

// Every runs job every interval until the returned stop function or
// Stop is called. The first run happens after one interval. The job
// receives the scheduled firing time.
func (c *Cron) Every(interval time.Duration, job func(time.Time)) (stop func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return func() {}
	}
	ch := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(ch) }) }
	c.stops = append(c.stops, stop)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case at := <-c.clock.After(interval):
				job(at)
			case <-ch:
				return
			}
		}
	}()
	return stop
}

// Stop cancels all jobs and waits for their goroutines to exit. Jobs
// currently executing finish first.
func (c *Cron) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	for _, stop := range c.stops {
		stop()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
