package controller

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/stream"
)

// API wraps a controller with the REST interface the openHAB panel and
// the IMCF GUI call. Routes (all JSON):
//
//	GET  /rest/items                  — devices and their runtime state
//	POST /rest/items/{id}/command     — manual actuation {"value": 25}
//	GET  /rest/mrt                    — the active Meta-Rule Table
//	POST /rest/mrt                    — replace the Meta-Rule Table
//	POST /rest/plan/run               — run one EP cycle now
//	GET  /rest/plan                   — the last EP step report
//	GET  /rest/plan/history           — the last week of step reports
//	GET  /rest/summary                — lifetime F_E / F_CE metrics
//	GET  /rest/firewall               — active block rules and counters
//	GET  /rest/persistence/items      — recorded measurement items
//	GET  /rest/persistence/data/{item} — readings or ?bucket= aggregates
//	GET  /rest/mrt/conflicts          — MRT clash/shadow/budget analysis
//	GET  /rest/stream/snapshot        — decision-stream snapshot (DESIGN.md §16)
//	GET  /rest/stream                 — decision-stream deltas (long-poll or SSE)
//	GET  /                            — the embedded panel UI (Fig. 5 stand-in)
//
// GET /rest/mrt, /rest/plan and /rest/firewall?rules=only carry stream-
// versioned ETags and honor If-None-Match with 304.
//
// Every route runs behind metrics.TraceMiddleware: an incoming
// traceparent header is propagated (and echoed on the response) or a
// fresh trace is minted, so POST /rest/plan/run ties the cycle's span,
// journal events and firewall blocks to the caller's trace.
func API(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", dashboardHandler())
	mux.HandleFunc("GET /rest/items", func(w http.ResponseWriter, r *http.Request) {
		type item struct {
			ID       string  `json:"id"`
			Name     string  `json:"name"`
			Class    string  `json:"class"`
			Zone     int     `json:"zone"`
			Addr     string  `json:"addr"`
			On       bool    `json:"on"`
			Setpoint float64 `json:"setpoint"`
			Commands int     `json:"commands"`
			Blocked  bool    `json:"blocked"`
		}
		var items []item
		for _, d := range c.Registry().List() {
			_, st, _ := c.Registry().Get(d.ID)
			on, sp, _, n := st.Snapshot()
			items = append(items, item{
				ID: d.ID, Name: d.Name, Class: d.Class.String(), Zone: d.Zone,
				Addr: d.Addr, On: on, Setpoint: sp, Commands: n,
				Blocked: c.Firewall().Blocked(d.Addr),
			})
		}
		writeJSON(w, http.StatusOK, items)
	})

	// Device IDs contain slashes ("proto/z0/hvac"), so the command
	// route captures the remainder and strips the "/command" suffix.
	mux.HandleFunc("POST /rest/items/{path...}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := strings.CutSuffix(r.PathValue("path"), "/command")
		if !ok {
			writeError(w, r, http.StatusNotFound, errors.New("unknown item action"))
			return
		}
		var body struct {
			Value float64 `json:"value"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		err := c.Command(id, body.Value)
		switch {
		case errors.Is(err, ErrBlocked):
			writeError(w, r, http.StatusForbidden, err)
		case err != nil:
			writeError(w, r, http.StatusNotFound, err)
		default:
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		}
	})

	mux.HandleFunc("GET /rest/mrt", func(w http.ResponseWriter, r *http.Request) {
		if componentETag(w, r, c.Stream(), stream.KindMRT) {
			return
		}
		writeJSON(w, http.StatusOK, c.MRT())
	})

	mux.HandleFunc("GET /rest/mrt/conflicts", func(w http.ResponseWriter, r *http.Request) {
		conflicts, err := c.AnalyzeConflicts()
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		if conflicts == nil {
			conflicts = []rules.Conflict{}
		}
		writeJSON(w, http.StatusOK, conflicts)
	})

	mux.HandleFunc("POST /rest/mrt", func(w http.ResponseWriter, r *http.Request) {
		var t rules.MRT
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		if err := c.SetMRT(t); err != nil {
			// A table that failed to persist is a server fault, not a
			// client one: the new MRT is active in memory but a restart
			// would lose it.
			var pe *PersistError
			if errors.As(err, &pe) {
				writeError(w, r, http.StatusInternalServerError, err)
				return
			}
			writeError(w, r, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("POST /rest/plan/run", func(w http.ResponseWriter, r *http.Request) {
		report, err := c.StepCtx(r.Context())
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, report)
	})

	mux.HandleFunc("GET /rest/plan", func(w http.ResponseWriter, r *http.Request) {
		report, ok := c.LastStep()
		if !ok {
			writeError(w, r, http.StatusNotFound, errors.New("no plan has run yet"))
			return
		}
		if componentETag(w, r, c.Stream(), stream.KindPlan) {
			return
		}
		writeJSON(w, http.StatusOK, report)
	})

	mux.HandleFunc("GET /rest/summary", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Summary())
	})

	mux.HandleFunc("GET /rest/plan/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.History())
	})

	mux.HandleFunc("GET /rest/persistence/items", func(w http.ResponseWriter, r *http.Request) {
		p := c.Persistence()
		if p == nil {
			writeError(w, r, http.StatusNotFound, errors.New("persistence is disabled"))
			return
		}
		items, err := p.Items()
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, items)
	})

	// GET /rest/persistence/data/{item}?from=RFC3339&to=RFC3339[&bucket=1h]
	mux.HandleFunc("GET /rest/persistence/data/{item...}", func(w http.ResponseWriter, r *http.Request) {
		p := c.Persistence()
		if p == nil {
			writeError(w, r, http.StatusNotFound, errors.New("persistence is disabled"))
			return
		}
		item := r.PathValue("item")
		q := r.URL.Query()
		from, err := time.Parse(time.RFC3339, q.Get("from"))
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
			return
		}
		to, err := time.Parse(time.RFC3339, q.Get("to"))
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad to: %w", err))
			return
		}
		if bucketStr := q.Get("bucket"); bucketStr != "" {
			bucket, err := time.ParseDuration(bucketStr)
			if err != nil {
				writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad bucket: %w", err))
				return
			}
			buckets, err := p.Aggregate(item, from, to, bucket)
			if err != nil {
				writeError(w, r, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, buckets)
			return
		}
		recs, err := p.Query(item, from, to)
		if err != nil {
			writeError(w, r, http.StatusNotFound, err)
			return
		}
		type point struct {
			Time  time.Time `json:"time"`
			Value float64   `json:"value"`
		}
		out := make([]point, len(recs))
		for i, rec := range recs {
			out[i] = point{Time: rec.Time, Value: rec.Value}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /rest/firewall", func(w http.ResponseWriter, r *http.Request) {
		// The ETag versions the block set only; the allowed/dropped
		// counters advance with every flow check and are not part of
		// the streamed state.
		if r.URL.Query().Get("rules") == "only" && componentETag(w, r, c.Stream(), stream.KindFirewall) {
			return
		}
		allowed, dropped := c.Firewall().Counters()
		writeJSON(w, http.StatusOK, map[string]any{
			"rules":   c.Firewall().Rules(),
			"allowed": allowed,
			"dropped": dropped,
		})
	})

	mux.HandleFunc("GET /rest/stream/snapshot", streamSnapshotHandler(c))
	mux.HandleFunc("GET /rest/stream", streamHandler(c))

	return metrics.TraceMiddleware("http.api", mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

// writeError answers an error response and logs it through the obs
// layer with the request's correlation identity: server faults at
// Error (they page), client faults at Debug (they don't). The level
// check runs before any attribute is built.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
	lvl := slog.LevelDebug
	if status >= http.StatusInternalServerError {
		lvl = slog.LevelError
	}
	ctx := r.Context()
	l := obs.L()
	if !l.Enabled(ctx, lvl) {
		return
	}
	l.LogAttrs(ctx, lvl, "api error",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		obs.Error(err))
}
