// Package controller implements the IMCF Local Controller (LC): the
// openHAB-like service that registers Things, actuates them through
// bindings, runs the Energy Planner on a cron schedule, enforces plan
// decisions through the meta-control firewall, persists configuration in
// the embedded store, and exposes a REST API for apps.
package controller

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/firewall"
)

// ErrBlocked is returned when the firewall drops a device command flow.
var ErrBlocked = errors.New("controller: flow blocked by meta-control firewall")

// Binding actuates devices. It is the controller's abstraction over
// openHAB's binding ecosystem: HTTPBinding drives the emulated Daikin
// and Hue endpoints over real HTTP ("extended mode"); DirectBinding
// mutates in-memory device state, used by fast simulations.
type Binding interface {
	// Apply powers the device and sets its output value (temperature
	// setpoint or dimmer level).
	Apply(dev device.Descriptor, value float64) error
	// TurnOff powers the device down.
	TurnOff(dev device.Descriptor) error
}

// DirectBinding actuates devices by mutating their registry state.
type DirectBinding struct {
	Registry *device.Registry
	Firewall *firewall.Firewall
	Clock    interface{ Now() time.Time }
}

// Apply implements Binding.
func (b *DirectBinding) Apply(dev device.Descriptor, value float64) error {
	if b.Firewall != nil && b.Firewall.Check(dev.Addr) == firewall.Drop {
		return fmt.Errorf("%w: %s", ErrBlocked, dev.Addr)
	}
	_, st, ok := b.Registry.Get(dev.ID)
	if !ok {
		return fmt.Errorf("controller: unknown device %q", dev.ID)
	}
	st.Apply(value, b.now())
	return nil
}

// TurnOff implements Binding.
func (b *DirectBinding) TurnOff(dev device.Descriptor) error {
	if b.Firewall != nil && b.Firewall.Check(dev.Addr) == firewall.Drop {
		return fmt.Errorf("%w: %s", ErrBlocked, dev.Addr)
	}
	_, st, ok := b.Registry.Get(dev.ID)
	if !ok {
		return fmt.Errorf("controller: unknown device %q", dev.ID)
	}
	st.TurnOff(b.now())
	return nil
}

func (b *DirectBinding) now() time.Time {
	if b.Clock != nil {
		return b.Clock.Now()
	}
	return time.Now()
}

// HTTPBinding actuates devices over their local HTTP control protocols,
// routing every flow through the firewall first, exactly as the
// prototype's LC does before its traffic reaches the Things.
type HTTPBinding struct {
	// Endpoints maps device IDs to base URLs (the emulators listen on
	// loopback ports rather than the descriptors' LAN addresses).
	Endpoints map[string]string
	Firewall  *firewall.Firewall
	Client    *http.Client
}

func (b *HTTPBinding) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

func (b *HTTPBinding) base(dev device.Descriptor) (string, error) {
	if b.Firewall != nil && b.Firewall.Check(dev.Addr) == firewall.Drop {
		return "", fmt.Errorf("%w: %s", ErrBlocked, dev.Addr)
	}
	u, ok := b.Endpoints[dev.ID]
	if !ok {
		return "", fmt.Errorf("controller: no endpoint for device %q", dev.ID)
	}
	return u, nil
}

// Apply implements Binding.
func (b *HTTPBinding) Apply(dev device.Descriptor, value float64) error {
	base, err := b.base(dev)
	if err != nil {
		return err
	}
	switch dev.Class {
	case device.ClassHVAC:
		return b.daikinSet(base, true, value)
	case device.ClassLight:
		return b.hueSet(base, devicesim.HueState{On: true, Bri: value})
	default:
		return fmt.Errorf("controller: cannot actuate %v device %q", dev.Class, dev.ID)
	}
}

// TurnOff implements Binding.
func (b *HTTPBinding) TurnOff(dev device.Descriptor) error {
	base, err := b.base(dev)
	if err != nil {
		return err
	}
	switch dev.Class {
	case device.ClassHVAC:
		return b.daikinSet(base, false, 0)
	case device.ClassLight:
		return b.hueSet(base, devicesim.HueState{})
	default:
		return fmt.Errorf("controller: cannot actuate %v device %q", dev.Class, dev.ID)
	}
}

func (b *HTTPBinding) daikinSet(base string, power bool, stemp float64) error {
	url := base + "/aircon/set_control_info?pow=0"
	if power {
		url = fmt.Sprintf("%s/aircon/set_control_info?pow=1&mode=3&stemp=%.1f&shum=0", base, stemp)
	}
	resp, err := b.client().Get(url)
	if err != nil {
		return fmt.Errorf("controller: daikin command: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return fmt.Errorf("controller: daikin response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("controller: daikin command rejected: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func (b *HTTPBinding) hueSet(base string, st devicesim.HueState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, base+"/api/state", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return fmt.Errorf("controller: hue command: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("controller: hue command rejected: %d", resp.StatusCode)
	}
	return nil
}
