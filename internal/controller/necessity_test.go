package controller

import (
	"testing"

	"github.com/imcf/imcf/internal/units"
)

func TestNecessityRuleSurvivesZeroBudget(t *testing.T) {
	c := newController(t, func(cfg *Config) {
		cfg.WeeklyBudget = units.Energy(1e-9)
		for i := range cfg.Residence.MRT.Rules {
			if cfg.Residence.MRT.Rules[i].ID == "proto/father/night-heat" {
				cfg.Residence.MRT.Rules[i].Necessity = true
			}
		}
	})
	// 03:00 in January: only the father's (now necessity) night heat is
	// active. Despite the zero budget it must execute.
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 1 || report.Executed[0] != "proto/father/night-heat" {
		t.Fatalf("report = %+v, want the necessity rule executed", report)
	}
	_, st, _ := c.Registry().Get("proto/z0/hvac")
	on, sp, _, _ := st.Snapshot()
	if !on || sp != 23 {
		t.Errorf("necessity device state: on=%v sp=%v", on, sp)
	}
	if c.Firewall().Blocked("192.168.2.10") {
		t.Error("necessity rule's device blocked")
	}
	if report.Energy <= 0 {
		t.Errorf("report energy = %v", report.Energy)
	}
}
