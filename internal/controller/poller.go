package controller

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/trace"
)

// Poller implements trigger-condition-aware flexible sensor polling in
// the style of RT-IFTTT (Heo et al., RTSS 2017), which the paper
// discusses as complementary work: when a sensed value approaches a
// rule's trigger threshold the sensor is sampled more often, and when it
// is far away polling relaxes, saving sensor and network energy without
// missing trigger crossings.
type Poller struct {
	// Source provides the sensed values.
	Source trace.AmbientSource
	// Thresholds are the trigger boundaries to track.
	Thresholds []Threshold
	// Min and Max bound the polling interval.
	Min, Max time.Duration
	// TempScale and LightScale normalize threshold distances; zero
	// means the defaults (5 °C, 20 dimmer units): a reading at least
	// one scale away from every threshold polls at Max.
	TempScale  float64
	LightScale float64
}

// Threshold is one numeric trigger boundary.
type Threshold struct {
	// Temp selects the temperature signal; otherwise light.
	Temp  bool
	Value float64
}

// ThresholdsFromIFTTT extracts the numeric trigger boundaries of an
// IFTTT rule set (Table III's "Temperature >30", "Light Level >15", …).
func ThresholdsFromIFTTT(ruleSet []rules.IFTTTRule) []Threshold {
	var out []Threshold
	for _, r := range ruleSet {
		switch r.Trigger {
		case rules.TrigTemperature:
			out = append(out, Threshold{Temp: true, Value: r.Threshold})
		case rules.TrigLight:
			out = append(out, Threshold{Temp: false, Value: r.Threshold})
		}
	}
	return out
}

// Validate reports whether the poller is usable.
func (p *Poller) Validate() error {
	if p.Source == nil {
		return errors.New("controller: poller needs a source")
	}
	if p.Min <= 0 || p.Max < p.Min {
		return fmt.Errorf("controller: poller interval bounds [%v, %v] invalid", p.Min, p.Max)
	}
	if len(p.Thresholds) == 0 {
		return errors.New("controller: poller needs at least one threshold")
	}
	return nil
}

// NextInterval samples the source at the given instant and returns the
// reading together with the interval until the next poll: Min when a
// signal sits on a threshold, growing linearly to Max one scale away.
func (p *Poller) NextInterval(at time.Time) (trace.Ambient, time.Duration, error) {
	if err := p.Validate(); err != nil {
		return trace.Ambient{}, 0, err
	}
	tempScale := p.TempScale
	if tempScale <= 0 {
		tempScale = 5
	}
	lightScale := p.LightScale
	if lightScale <= 0 {
		lightScale = 20
	}
	amb := p.Source.AmbientAt(at)

	nearest := math.Inf(1)
	for _, th := range p.Thresholds {
		var d float64
		if th.Temp {
			d = math.Abs(amb.Temperature-th.Value) / tempScale
		} else {
			d = math.Abs(amb.Light-th.Value) / lightScale
		}
		nearest = math.Min(nearest, d)
	}
	if nearest > 1 {
		nearest = 1
	}
	interval := time.Duration(float64(p.Min) + nearest*float64(p.Max-p.Min))
	return amb, interval, nil
}

// Run polls the source on its adaptive schedule, invoking observe with
// every reading, until stop is closed. It uses the controller Clock
// abstraction so tests and simulations drive it deterministically.
func (p *Poller) Run(clock interface {
	Now() time.Time
	After(time.Duration) <-chan time.Time
}, observe func(time.Time, trace.Ambient), stop <-chan struct{}) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for {
		now := clock.Now()
		amb, interval, err := p.NextInterval(now)
		if err != nil {
			return err
		}
		observe(now, amb)
		select {
		case <-clock.After(interval):
		case <-stop:
			return nil
		}
	}
}
