package controller

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/stream"
)

func streamServer(t *testing.T) (*Controller, *httptest.Server, *stream.Hub) {
	t.Helper()
	hub := stream.NewHub("test-boot", 64)
	c, srv := apiServer(t, func(cfg *Config) { cfg.Stream = hub })
	return c, srv, hub
}

func TestStreamDisabledIs404(t *testing.T) {
	_, srv := apiServer(t, nil)
	if code := getJSON(t, srv.URL+"/rest/stream/snapshot", nil); code != http.StatusNotFound {
		t.Fatalf("snapshot without hub = %d", code)
	}
	if code := getJSON(t, srv.URL+"/rest/stream?wait=0", nil); code != http.StatusNotFound {
		t.Fatalf("stream without hub = %d", code)
	}
}

func TestStreamSnapshotSeeded(t *testing.T) {
	_, srv, hub := streamServer(t)
	var snap stream.Snapshot
	if code := getJSON(t, srv.URL+"/rest/stream/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	// New seeds the MRT and the (empty) firewall set.
	if snap.Instance != "test-boot" || snap.Seq != hub.Seq() {
		t.Fatalf("snapshot position = %q/%d", snap.Instance, snap.Seq)
	}
	for _, key := range []string{"mrt", "firewall"} {
		if _, ok := snap.State[key]; !ok {
			t.Errorf("snapshot missing %q: %v", key, snap.State)
		}
	}
}

func TestStreamStepPublishesPlanAndFirewall(t *testing.T) {
	c, srv, hub := streamServer(t)
	seq := hub.Seq()
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	var b stream.Batch
	url := srv.URL + "/rest/stream?wait=0&instance=test-boot&seq=" + itoa(seq)
	if code := getJSON(t, url, &b); code != http.StatusOK {
		t.Fatalf("delta poll = %d", code)
	}
	kinds := map[stream.Kind]bool{}
	for _, ev := range b.Events {
		kinds[ev.Kind] = true
	}
	if !kinds[stream.KindPlan] || !kinds[stream.KindFirewall] {
		t.Fatalf("step deltas = %+v", b.Events)
	}
	// The streamed plan is the report the API serves.
	var want, got StepReport
	if code := getJSON(t, srv.URL+"/rest/plan", &want); code != http.StatusOK {
		t.Fatal("no last plan")
	}
	for _, ev := range b.Events {
		if ev.Kind == stream.KindPlan {
			if err := json.Unmarshal(ev.Data, &got); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got.Time != want.Time || got.Energy != want.Energy || len(got.Executed) != len(want.Executed) {
		t.Fatalf("streamed plan %+v != served plan %+v", got, want)
	}
}

func TestStreamResyncOn409(t *testing.T) {
	_, srv, _ := streamServer(t)
	// Wrong instance: the producer "restarted".
	if code := getJSON(t, srv.URL+"/rest/stream?wait=0&instance=old-boot&seq=1", nil); code != http.StatusConflict {
		t.Fatalf("cross-instance poll = %d", code)
	}
	// A position ahead of the hub is equally unresumable.
	if code := getJSON(t, srv.URL+"/rest/stream?wait=0&instance=test-boot&seq=999", nil); code != http.StatusConflict {
		t.Fatalf("future poll = %d", code)
	}
	// Malformed positions are the client's fault, not a resync.
	if code := getJSON(t, srv.URL+"/rest/stream?wait=0&seq=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad seq = %d", code)
	}
	if code := getJSON(t, srv.URL+"/rest/stream?wait=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad wait = %d", code)
	}
}

func TestStreamETags(t *testing.T) {
	c, srv, _ := streamServer(t)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/rest/mrt", "/rest/plan", "/rest/firewall?rules=only"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		tag := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || tag == "" {
			t.Fatalf("%s: status %d etag %q", path, resp.StatusCode, tag)
		}
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("If-None-Match", tag)
		resp2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("%s with matching If-None-Match = %d", path, resp2.StatusCode)
		}
	}
	// Changing the MRT rolls the ETag and revalidation misses.
	resp, err := http.Get(srv.URL + "/rest/mrt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	oldTag := resp.Header.Get("ETag")
	mrt := c.MRT()
	if err := c.SetMRT(mrt); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/rest/mrt", nil)
	req.Header.Set("If-None-Match", oldTag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("ETag") == oldTag {
		t.Fatal("ETag did not roll with the MRT")
	}
}

func TestStreamSSEDeliversBatches(t *testing.T) {
	c, srv, hub := streamServer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/rest/stream?seq="+itoa(hub.Seq()), nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var id, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var b stream.Batch
			if err := json.Unmarshal([]byte(data), &b); err != nil {
				t.Fatal(err)
			}
			if id != itoa(b.Through) {
				t.Fatalf("SSE id %s != batch through %d", id, b.Through)
			}
			if len(b.Events) == 0 {
				t.Fatal("empty SSE batch")
			}
			return
		}
	}
	t.Fatalf("no SSE batch arrived: %v", sc.Err())
}

func TestStreamSSEUnresumableIs409(t *testing.T) {
	_, srv, _ := streamServer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/rest/stream?instance=old-boot&seq=3", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unresumable SSE connect = %d", resp.StatusCode)
	}
}

func TestFinishStepCoalescesFirewallProgramming(t *testing.T) {
	fw := firewall.New(nil)
	c, _ := apiServer(t, func(cfg *Config) { cfg.Firewall = fw })
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Every dropped rule's device is blocked, every executed rule's is
	// not — same contract the per-rule programming had.
	for _, id := range report.Dropped {
		r, ok := findRule(c.MRT(), id)
		if !ok {
			t.Fatalf("dropped rule %s not in MRT", id)
		}
		dev, err := c.cfg.Residence.RuleDevice(r)
		if err != nil {
			t.Fatal(err)
		}
		if !fw.Blocked(dev.Addr) {
			t.Errorf("dropped rule %s device %s not blocked", id, dev.Addr)
		}
	}
	for _, id := range report.Executed {
		r, ok := findRule(c.MRT(), id)
		if !ok {
			t.Fatalf("executed rule %s not in MRT", id)
		}
		dev, err := c.cfg.Residence.RuleDevice(r)
		if err != nil {
			t.Fatal(err)
		}
		// A device may back several rules; only assert unblocked when no
		// dropped rule shares it (the block deliberately wins ties).
		shared := false
		for _, did := range report.Dropped {
			dr, _ := findRule(c.MRT(), did)
			ddev, err := c.cfg.Residence.RuleDevice(dr)
			if err == nil && ddev.Addr == dev.Addr {
				shared = true
			}
		}
		if !shared && fw.Blocked(dev.Addr) {
			t.Errorf("executed rule %s device %s blocked", id, dev.Addr)
		}
	}
}

func findRule(mrt rules.MRT, id string) (rules.MetaRule, bool) {
	for _, r := range mrt.Rules {
		if r.ID == id {
			return r, true
		}
	}
	return rules.MetaRule{}, false
}

func TestFirewallApplyBatchBlockWins(t *testing.T) {
	fw := firewall.New(nil)
	fw.Block("10.0.0.1", "old")
	fw.ApplyBatch([]string{"10.0.0.1", "10.0.0.2"}, []firewall.BlockRule{
		{Addr: "10.0.0.2", Reason: "dropped", Trace: "tr-1"},
	})
	if fw.Blocked("10.0.0.1") {
		t.Error("batched unblock did not clear 10.0.0.1")
	}
	if !fw.Blocked("10.0.0.2") {
		t.Error("block did not win over unblock for 10.0.0.2")
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
