package controller

import (
	"errors"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/units"
)

// winterNight is an instant when the prototype's night-heat rule is
// active (03:00 in January).
var winterNight = time.Date(2015, time.January, 10, 3, 0, 0, 0, time.UTC)

func newController(t *testing.T, mut func(*Config)) *Controller {
	t.Helper()
	res, err := home.Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Residence:    res,
		Clock:        simclock.NewSimClock(winterNight),
		WeeklyBudget: home.PrototypeWeeklyBudget,
	}
	cfg.Planner.Seed = 9
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	res, err := home.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Residence: res}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(Config{Residence: res, WeeklyBudget: 165 * units.KilowattHour, CarryCapHours: -1}); err == nil {
		t.Error("negative carry cap accepted")
	}
}

func TestStepActuatesDevices(t *testing.T) {
	c := newController(t, nil)
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	// At 03:00 only the father's night-heat rule is active.
	if len(report.Executed)+len(report.Dropped) != 1 {
		t.Fatalf("report = %+v, want exactly one active rule", report)
	}
	if len(report.Executed) == 1 {
		// Executed: the father's HVAC must be on at 23 °C.
		_, st, _ := c.Registry().Get("proto/z0/hvac")
		on, sp, _, _ := st.Snapshot()
		if !on || sp != 23 {
			t.Errorf("device state after execute: on=%v sp=%v", on, sp)
		}
	}
	sum := c.Summary()
	if sum.Steps != 1 || sum.ActiveRuleSlots != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestStepBlocksDroppedRules(t *testing.T) {
	// A zero budget forces EP to drop everything.
	c := newController(t, func(cfg *Config) { cfg.WeeklyBudget = units.Energy(1e-9) })
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 0 || len(report.Dropped) != 1 {
		t.Fatalf("report = %+v, want everything dropped", report)
	}
	// The father's HVAC must be off and its address blocked.
	_, st, _ := c.Registry().Get("proto/z0/hvac")
	on, _, _, n := st.Snapshot()
	if on || n == 0 {
		t.Errorf("dropped device state: on=%v commands=%d", on, n)
	}
	if !c.Firewall().Blocked("192.168.2.10") {
		t.Error("dropped device not blocked in firewall")
	}
	// Manual commands to the blocked device are rejected.
	if err := c.Command("proto/z0/hvac", 28); !errors.Is(err, ErrBlocked) {
		t.Errorf("Command on blocked device = %v, want ErrBlocked", err)
	}
}

func TestWeekLongRunStaysWithinBudget(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) { cfg.Clock = clock })
	for i := 0; i < 7*24; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	sum := c.Summary()
	t.Logf("week: F_E=%.2f kWh F_CE=%.2f%% perOwner=%v",
		sum.Energy.KWh(), float64(sum.ConvenienceError), sum.PerOwner)
	if sum.Steps != 168 {
		t.Errorf("steps = %d", sum.Steps)
	}
	if sum.Energy.KWh() > home.PrototypeWeeklyBudget.KWh()*1.05 {
		t.Errorf("weekly energy %.1f exceeds the 165 kWh budget", sum.Energy.KWh())
	}
	if sum.Energy.KWh() < 50 {
		t.Errorf("weekly energy %.1f implausibly low", sum.Energy.KWh())
	}
	if len(sum.PerOwner) != 3 {
		t.Errorf("PerOwner = %v, want 3 residents", sum.PerOwner)
	}
	for owner, ce := range sum.PerOwner {
		if float64(ce) > 25 {
			t.Errorf("resident %s error %v implausibly high", owner, ce)
		}
	}
}

func TestMRTPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := newController(t, func(cfg *Config) { cfg.Store = db })

	// Change the MRT: drop everything but the father's rules.
	mrt := c.MRT()
	var kept rules.MRT
	for _, r := range mrt.Rules {
		if r.Owner == "Father" || r.IsBudget() {
			kept.Rules = append(kept.Rules, r)
		}
	}
	if err := c.SetMRT(kept); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted controller sees the persisted table.
	db2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2 := newController(t, func(cfg *Config) { cfg.Store = db2 })
	if got := len(c2.MRT().Rules); got != len(kept.Rules) {
		t.Errorf("restarted controller has %d rules, want %d", got, len(kept.Rules))
	}
}

func TestSetMRTValidation(t *testing.T) {
	c := newController(t, nil)
	bad := rules.MRT{Rules: []rules.MetaRule{{ID: "x", Action: rules.ActionSetTemperature, Value: 22,
		Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}, Zone: 99}}}
	if err := c.SetMRT(bad); err == nil {
		t.Error("MRT referencing missing zone accepted")
	}
	dup := rules.MRT{Rules: []rules.MetaRule{
		{ID: "d", Action: rules.ActionSetKWhLimit, Value: 10},
		{ID: "d", Action: rules.ActionSetKWhLimit, Value: 20},
	}}
	if err := c.SetMRT(dup); err == nil {
		t.Error("duplicate rule IDs accepted")
	}
}

func TestCommandUnknownDevice(t *testing.T) {
	c := newController(t, nil)
	if err := c.Command("nope", 1); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestCarryLedgerBounded(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2015, time.July, 1, 9, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.CarryCapHours = 5
	})
	// Many summer daytime steps with little demand: carry must stay
	// bounded by cap × hourly budget.
	for i := 0; i < 100; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	hourly := home.PrototypeWeeklyBudget.KWh() / 168
	c.mu.Lock()
	carry := c.carry
	c.mu.Unlock()
	if carry > 5*hourly+1e-9 {
		t.Errorf("carry %v exceeds cap %v", carry, 5*hourly)
	}
}

func TestScheduleRunsViaCron(t *testing.T) {
	clock := simclock.NewSimClock(winterNight)
	c := newController(t, func(cfg *Config) { cfg.Clock = clock })
	cron := NewCron(clock)
	defer cron.Stop()

	done := make(chan struct{}, 4)
	stop := cron.Every(time.Hour, func(time.Time) {
		if _, err := c.Step(); err == nil {
			done <- struct{}{}
		}
	})
	defer stop()

	for i := 0; i < 3; i++ {
		// Ensure the job goroutine has re-armed before advancing.
		waitForWaiter(t, clock)
		clock.Advance(time.Hour)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("cron job did not fire")
		}
	}
	if got := c.Summary().Steps; got != 3 {
		t.Errorf("steps = %d, want 3", got)
	}
}

func waitForWaiter(t *testing.T, clock *simclock.SimClock) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clock.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no pending cron waiter")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSummaryZeroValue(t *testing.T) {
	c := newController(t, nil)
	sum := c.Summary()
	if sum.Steps != 0 || sum.Energy != 0 || sum.ConvenienceError != 0 {
		t.Errorf("fresh summary = %+v", sum)
	}
	if _, ok := c.LastStep(); ok {
		t.Error("LastStep on fresh controller reported a step")
	}
}

func TestHistoryRing(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) { cfg.Clock = clock })
	if len(c.History()) != 0 {
		t.Error("fresh controller has history")
	}
	const steps = historyCap + 10 // overflow the ring
	for i := 0; i < steps; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	h := c.History()
	if len(h) != historyCap {
		t.Fatalf("history = %d entries, want %d", len(h), historyCap)
	}
	for i := 1; i < len(h); i++ {
		if !h[i].Time.After(h[i-1].Time) {
			t.Fatalf("history out of order at %d: %v then %v", i, h[i-1].Time, h[i].Time)
		}
	}
	// The newest entry is the last step.
	last, _ := c.LastStep()
	if !h[len(h)-1].Time.Equal(last.Time) {
		t.Errorf("history tail %v != last step %v", h[len(h)-1].Time, last.Time)
	}
}
