package controller

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/trace"
)

// Concurrent multi-tenant stepping: a multi-home daemon hangs N
// controllers off one Cron on one shared SimClock, and N adaptive
// pollers off the same clock. These tests (run under -race by
// scripts/check.sh) pin the concurrency contract of cron.go and
// poller.go in that regime: lockstep fan-out on Advance, per-tenant
// stop isolation, idempotent shutdown, and data-race freedom of the
// read-only poller paths.

// waitPendingWaiters blocks until the clock has exactly want armed
// After channels — the signal that every fired job has finished and
// re-armed, so the next Advance is a clean lockstep cycle.
func waitPendingWaiters(t *testing.T, clk *simclock.SimClock, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for clk.PendingWaiters() != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d armed waiters (have %d)", want, clk.PendingWaiters())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestCronConcurrentMultiTenantStepping drives four controllers off
// one Cron and one SimClock — the multi-tenant daemon's shape — and
// asserts every tenant steps exactly once per cycle, that stopping one
// tenant's schedule leaves the others running, and that Stop is
// idempotent and final.
func TestCronConcurrentMultiTenantStepping(t *testing.T) {
	const tenants = 4
	clk := simclock.NewSimClock(winterNight)
	cron := NewCron(clk)

	var errCount atomic.Int64
	ctrls := make([]*Controller, tenants)
	stops := make([]func(), tenants)
	for i := range ctrls {
		i := i
		ctrls[i] = newController(t, func(cfg *Config) {
			cfg.Clock = clk
			cfg.Planner.Seed = uint64(100 + i)
		})
		stops[i] = ctrls[i].Schedule(cron, time.Hour, func(error) { errCount.Add(1) })
	}
	waitPendingWaiters(t, clk, tenants)

	const cycles = 6
	for c := 0; c < cycles; c++ {
		clk.Advance(time.Hour)
		waitPendingWaiters(t, clk, tenants)
	}
	for i, ctrl := range ctrls {
		if got := len(ctrl.History()); got != cycles {
			t.Errorf("tenant %d stepped %d times, want %d", i, got, cycles)
		}
	}
	if n := errCount.Load(); n != 0 {
		t.Errorf("scheduled steps reported %d errors", n)
	}

	// Stopping one tenant must not perturb its neighbors. A stop is
	// also idempotent per schedule. The stopped tenant's already-armed
	// (buffered) waiter is absorbed by the next Advance, after which
	// only the live tenants re-arm.
	stops[0]()
	stops[0]()
	clk.Advance(time.Hour)
	waitPendingWaiters(t, clk, tenants-1)
	if got := len(ctrls[0].History()); got != cycles {
		t.Errorf("stopped tenant stepped to %d, want frozen at %d", got, cycles)
	}
	for i := 1; i < tenants; i++ {
		if got := len(ctrls[i].History()); got != cycles+1 {
			t.Errorf("tenant %d stepped %d times, want %d", i, got, cycles+1)
		}
	}

	// Stop cancels everything, twice over; a post-Stop Every is a
	// registered no-op whose stop function is safe to call.
	cron.Stop()
	cron.Stop()
	fired := make(chan struct{}, 1)
	lateStop := cron.Every(time.Hour, func(time.Time) { fired <- struct{}{} })
	lateStop()
	clk.Advance(2 * time.Hour)
	select {
	case <-fired:
		t.Error("job scheduled after Stop fired")
	default:
	}
	for i, ctrl := range ctrls {
		want := cycles
		if i > 0 {
			want++
		}
		if got := len(ctrl.History()); got != want {
			t.Errorf("tenant %d stepped after Stop: %d, want %d", i, got, want)
		}
	}
}

// TestCronNilClockIsWallClock covers the RealClock default: jobs
// schedule and tear down cleanly without a simulated clock.
func TestCronNilClockIsWallClock(t *testing.T) {
	cron := NewCron(nil)
	stop := cron.Every(time.Hour, func(time.Time) {})
	stop()
	cron.Stop()
}

// TestPollerConcurrentMultiTenantPolling runs one adaptive poller per
// tenant against a shared SimClock: a tenant sitting on its trigger
// threshold polls every Min while a far-away tenant polls every Max,
// and the schedules interleave without cross-talk or data races.
func TestPollerConcurrentMultiTenantPolling(t *testing.T) {
	const (
		minIvl = time.Minute
		maxIvl = 4 * time.Minute
	)
	clk := simclock.NewSimClock(winterNight)

	// Tenant 0 and 1 sit exactly on a threshold (interval Min); tenant
	// 2 and 3 are at least one scale away (interval Max).
	temps := []float64{10, 10, 40, 40}
	pollers := make([]*Poller, len(temps))
	counts := make([]atomic.Int64, len(temps))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, temp := range temps {
		i := i
		pollers[i] = &Poller{
			Source:     fixedAmbient{trace.Ambient{Temperature: temp, Light: 50}},
			Thresholds: []Threshold{{Temp: true, Value: 10}},
			Min:        minIvl,
			Max:        maxIvl,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pollers[i].Run(clk, func(time.Time, trace.Ambient) {
				counts[i].Add(1)
			}, stop); err != nil {
				t.Errorf("tenant %d: Run: %v", i, err)
			}
		}()
	}
	// Run observes immediately, then arms its first waiter.
	waitPendingWaiters(t, clk, len(temps))

	const steps = 8 // 8 × Min = 2 × Max
	for s := 0; s < steps; s++ {
		clk.Advance(minIvl)
		waitPendingWaiters(t, clk, len(temps))
	}
	for i := range temps {
		want := int64(1 + steps) // on-threshold: every Min
		if temps[i] > 10 {
			want = 1 + steps/4 // far away: every Max
		}
		if got := counts[i].Load(); got != want {
			t.Errorf("tenant %d observed %d readings, want %d", i, got, want)
		}
	}

	close(stop)
	wg.Wait()

	// An invalid poller must refuse to run, not spin.
	bad := &Poller{Min: time.Second, Max: time.Minute}
	if err := bad.Run(clk, func(time.Time, trace.Ambient) {}, stop); err == nil {
		t.Error("invalid poller ran")
	}
}

// TestPollerNextIntervalConcurrentReads hammers one shared Poller from
// many tenants' goroutines: NextInterval is a read-only path and must
// be race-free without external locking.
func TestPollerNextIntervalConcurrentReads(t *testing.T) {
	p := &Poller{
		Source:     fixedAmbient{trace.Ambient{Temperature: 12, Light: 30}},
		Thresholds: []Threshold{{Temp: true, Value: 10}, {Temp: false, Value: 15}},
		Min:        time.Second,
		Max:        time.Minute,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := winterNight
			for i := 0; i < 200; i++ {
				if _, _, err := p.NextInterval(at); err != nil {
					t.Errorf("NextInterval: %v", err)
					return
				}
				at = at.Add(time.Minute)
			}
		}()
	}
	wg.Wait()
}
