package controller

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/stream"
	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/units"
)

// mrtStoreKey is where the controller persists its Meta-Rule Table.
const mrtStoreKey = "imcf/mrt"

// PersistError marks a request that was validated and accepted but
// could not be made durable: the fault is in the storage layer, not
// the input. The REST API maps it to 500 (and the daemon's degraded-
// mode probe to 503) instead of the 422 a bad table gets.
type PersistError struct{ Err error }

// Error implements error.
func (e *PersistError) Error() string { return "controller: persist: " + e.Err.Error() }

// Unwrap exposes the storage-layer cause, so errors.Is sees ENOSPC/EIO
// through the wrapper.
func (e *PersistError) Unwrap() error { return e.Err }

// Step-outcome counters, resolved once at init.
var (
	stepsVec = metrics.NewCounterVec("imcf_controller_steps_total",
		"Planning cycles run by the local controller, by outcome.", "outcome")
	stepsOK  = stepsVec.With("ok")
	stepsErr = stepsVec.With("error")
)

// Mode selects the controller's planning behaviour, the spectrum of
// Fig. 2 in the paper: the budget-aware Energy Planner (the
// contribution), the energy-oblivious IFTTT trigger-action engine (the
// baseline), or no automation at all (manual control only).
type Mode int

// Operating modes.
const (
	// ModeEP runs the Energy Planner each cycle (the default).
	ModeEP Mode = iota
	// ModeIFTTT executes the residence's trigger-action rules
	// greedily, ignoring the budget — live IFTTT baseline behaviour.
	ModeIFTTT
	// ModeManual plans nothing; only explicit Command calls actuate.
	ModeManual
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeEP:
		return "EP"
	case ModeIFTTT:
		return "IFTTT"
	case ModeManual:
		return "manual"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles a controller.
type Config struct {
	// Residence is the smart space the controller manages.
	Residence *home.Residence
	// Store persists the MRT and summaries; nil disables persistence.
	// Any store.Adapter backend works: the durable WAL DB, the sharded
	// group-commit store, or the in-memory backend.
	Store store.Adapter
	// Clock drives scheduling; nil means the wall clock.
	Clock simclock.Clock
	// Planner configures the Energy Planner.
	Planner core.Config
	// WeeklyBudget is the energy allowance per week (the prototype
	// evaluation's "165 kWh weekly limit"). It is amortized linearly
	// per hour with the standard bounded carry ledger.
	WeeklyBudget units.Energy
	// CarryCapHours bounds the ledger (default 72 mean-budget hours).
	CarryCapHours float64
	// ErrorModel overrides the convenience-error model.
	ErrorModel rules.ErrorModel
	// Binding actuates devices; nil means a DirectBinding over the
	// controller's registry.
	Binding Binding
	// Firewall enforces plan decisions; nil creates a fresh one.
	Firewall *firewall.Firewall
	// Persistence, when set, records every zone's ambient temperature
	// and light readings at each planning cycle and serves them via
	// the REST API, like openHAB's persistence layer.
	Persistence *persistence.Service
	// FairPlanning switches the Energy Planner to the minimax-fair
	// variant: the plan minimizes the worst per-resident convenience
	// error before total error, so no resident is sacrificed for the
	// others ("multiple energy planners with conflicting interests").
	FairPlanning bool
	// Mode selects EP (default), IFTTT or manual operation.
	Mode Mode
	// Health, when set, tracks step outcomes: any Step error marks the
	// process unhealthy (503 on /healthz) until a cycle succeeds again.
	Health *metrics.Health
	// Journal, when set, records one decision-provenance event per rule
	// verdict each cycle (see internal/journal); the daemon serves it at
	// /debug/decisions and persists it across restarts.
	Journal *journal.Journal
	// Stream, when set, carries the controller's decision stream: the
	// MRT on install, and each cycle's planner verdict and firewall
	// block set, as seq-stamped deltas subscribers resume from
	// (internal/stream, DESIGN.md §16).
	Stream *stream.Hub
}

// StepReport summarizes one planning cycle.
type StepReport struct {
	Time     time.Time          `json:"time"`
	Budget   float64            `json:"budgetKWh"`
	Executed []string           `json:"executed"`
	Dropped  []string           `json:"dropped"`
	Energy   float64            `json:"energyKWh"`
	Error    float64            `json:"errorSum"`
	PerRule  map[string]float64 `json:"perRuleError,omitempty"`
}

// Summary aggregates the controller's lifetime metrics, the quantities
// behind the prototype evaluation's Tables IV and V.
type Summary struct {
	Steps             int                      `json:"steps"`
	Energy            units.Energy             `json:"energyKWh"`
	ConvenienceError  units.Percent            `json:"convenienceErrorPct"`
	PerOwner          map[string]units.Percent `json:"perOwnerErrorPct"`
	ActiveRuleSlots   int64                    `json:"activeRuleSlots"`
	ExecutedRuleSlots int64                    `json:"executedRuleSlots"`
}

// Controller is the IMCF Local Controller.
type Controller struct {
	cfg      Config
	registry *device.Registry
	fw       *firewall.Firewall
	binding  Binding
	planner  *core.Planner
	model    rules.ErrorModel
	clock    simclock.Clock
	rec      *stepRecorder

	mu          sync.Mutex
	mrt         rules.MRT
	carry       float64
	carryCap    float64
	totalEnergy float64
	totalError  float64
	active      int64
	executed    int64
	steps       int
	ownerErr    map[string]float64
	ownerActive map[string]int64
	lastStep    *StepReport
	history     []StepReport // ring of the most recent step reports
	historyAt   int
}

// historyCap bounds the in-memory step-report ring (a week of hourly
// cycles).
const historyCap = 7 * 24

// New builds a controller: it registers the residence's devices, loads
// any persisted MRT (falling back to the residence's), and prepares the
// planner.
func New(cfg Config) (*Controller, error) {
	if cfg.Residence == nil {
		return nil, errors.New("controller: Residence is required")
	}
	if err := cfg.Residence.Validate(); err != nil {
		return nil, err
	}
	if cfg.WeeklyBudget <= 0 {
		return nil, fmt.Errorf("controller: weekly budget %v must be positive", cfg.WeeklyBudget)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.RealClock{}
	}
	if cfg.Planner.K == 0 && cfg.Planner.MaxIter == 0 && cfg.Planner.Init == 0 {
		cfg.Planner = core.DefaultConfig()
	}
	if cfg.ErrorModel == (rules.ErrorModel{}) {
		cfg.ErrorModel = rules.DefaultErrorModel()
	}
	if cfg.CarryCapHours == 0 {
		cfg.CarryCapHours = 72
	}
	if cfg.CarryCapHours < 0 {
		return nil, fmt.Errorf("controller: negative carry cap %v", cfg.CarryCapHours)
	}

	planner, err := core.NewPlanner(cfg.Planner)
	if err != nil {
		return nil, err
	}

	c := &Controller{
		cfg:         cfg,
		registry:    device.NewRegistry(),
		fw:          cfg.Firewall,
		binding:     cfg.Binding,
		planner:     planner,
		model:       cfg.ErrorModel,
		clock:       cfg.Clock,
		mrt:         cfg.Residence.MRT,
		ownerErr:    make(map[string]float64),
		ownerActive: make(map[string]int64),
	}
	if c.fw == nil {
		c.fw = firewall.New(cfg.Clock)
	}
	if cfg.Journal != nil {
		c.rec = &stepRecorder{j: cfg.Journal}
		planner.SetRecorder(c.rec)
	}
	for _, d := range cfg.Residence.Devices() {
		if err := c.registry.Add(d); err != nil {
			return nil, err
		}
	}
	if c.binding == nil {
		c.binding = &DirectBinding{Registry: c.registry, Firewall: c.fw, Clock: cfg.Clock}
	}

	hourly := cfg.WeeklyBudget.KWh() / (7 * 24)
	c.carryCap = hourly * cfg.CarryCapHours

	// Restore a persisted MRT if one exists; otherwise persist the
	// residence's table so a restart reproduces this configuration.
	if cfg.Store != nil {
		var persisted rules.MRT
		ok, err := cfg.Store.GetJSON(mrtStoreKey, &persisted)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := persisted.Validate(); err != nil {
				return nil, fmt.Errorf("controller: persisted MRT invalid: %w", err)
			}
			c.mrt = persisted
		} else if err := cfg.Store.PutJSON(mrtStoreKey, c.mrt); err != nil {
			return nil, err
		}
	}
	// Seed the decision stream so a subscriber's first snapshot already
	// carries the active MRT and the (empty) firewall block set.
	if cfg.Stream != nil {
		c.publishStream(stream.KindMRT, c.mrt)
		c.publishStream(stream.KindFirewall, c.fw.Rules())
	}
	return c, nil
}

// publishStream pushes one component's new value onto the decision
// stream, when streaming is enabled. Failures are logged rather than
// returned: the stream observes decisions already made, and any
// subscriber that misses a delta resynchronizes from a snapshot.
func (c *Controller) publishStream(kind stream.Kind, v any) {
	if c.cfg.Stream == nil {
		return
	}
	data, err := json.Marshal(v)
	if err == nil {
		_, err = c.cfg.Stream.Publish("", kind, data)
	}
	if err != nil {
		obs.L().LogAttrs(context.Background(), slog.LevelWarn, "stream publish failed",
			slog.String("kind", string(kind)), obs.Error(err))
	}
}

// Stream exposes the controller's decision stream hub, or nil when
// streaming is disabled.
func (c *Controller) Stream() *stream.Hub { return c.cfg.Stream }

// Registry exposes the controller's device registry (the Things view).
func (c *Controller) Registry() *device.Registry { return c.registry }

// Persistence exposes the measurement recorder, or nil if disabled.
func (c *Controller) Persistence() *persistence.Service { return c.cfg.Persistence }

// Firewall exposes the meta-control firewall.
func (c *Controller) Firewall() *firewall.Firewall { return c.fw }

// MRT returns the active Meta-Rule Table.
func (c *Controller) MRT() rules.MRT {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := rules.MRT{Rules: make([]rules.MetaRule, len(c.mrt.Rules))}
	copy(out.Rules, c.mrt.Rules)
	return out
}

// SetMRT validates, installs and persists a new Meta-Rule Table.
func (c *Controller) SetMRT(t rules.MRT) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for _, r := range t.Convenience() {
		if r.Zone >= len(c.cfg.Residence.Zones) {
			return fmt.Errorf("controller: rule %s references missing zone %d", r.ID, r.Zone)
		}
	}
	c.mu.Lock()
	c.mrt = t
	c.mu.Unlock()
	c.publishStream(stream.KindMRT, t)
	if c.cfg.Store != nil {
		if err := c.cfg.Store.PutJSON(mrtStoreKey, t); err != nil {
			return &PersistError{Err: err}
		}
	}
	return nil
}

// AnalyzeConflicts inspects the active MRT for clashes, shadowed rules
// and infeasible budgets, rating rule energy via the residence's device
// inventory.
func (c *Controller) AnalyzeConflicts() ([]rules.Conflict, error) {
	rater := func(r rules.MetaRule) float64 {
		dev, err := c.cfg.Residence.RuleDevice(r)
		if err != nil {
			return 0
		}
		return dev.EnergyPerSlot(time.Hour).KWh()
	}
	return rules.AnalyzeConflicts(c.MRT(), rater)
}

// Step runs one planning cycle for the hour containing the clock's
// current time: it amortizes the budget, runs EP over the active rules,
// actuates executed rules through the binding, and blocks dropped rules
// in the firewall.
func (c *Controller) Step() (StepReport, error) {
	return c.StepCtx(context.Background())
}

// StepCtx is Step carrying the caller's causal trace: when ctx holds a
// metrics.TraceContext (the REST API's TraceMiddleware installs one),
// the cycle's span, journal events, firewall blocks and latency
// exemplar are all tagged with the trace ID.
func (c *Controller) StepCtx(ctx context.Context) (StepReport, error) {
	traceID := metrics.TraceIDFrom(ctx)
	sp := metrics.StartSpanTrace("controller.step", nil, traceID)
	start := time.Now()
	report, err := c.step(traceID)
	metrics.PlannerWindowSeconds.ObserveExemplar(time.Since(start).Seconds(), traceID)
	sp.End(err)
	if err != nil {
		stepsErr.Inc()
		if c.cfg.Health != nil {
			c.cfg.Health.SetError(err)
		}
		obs.L().LogAttrs(ctx, slog.LevelError, "planning cycle failed",
			slog.String("trace", traceID),
			obs.Error(err))
	} else {
		stepsOK.Inc()
		if c.cfg.Health != nil {
			c.cfg.Health.SetHealthy()
		}
	}
	return report, err
}

// step is the uninstrumented planning cycle. traceID tags the cycle's
// provenance (journal events, firewall blocks), "" when untraced.
func (c *Controller) step(traceID string) (StepReport, error) {
	now := c.clock.Now().UTC().Truncate(time.Hour)
	hour := now.Hour()

	c.mu.Lock()
	conv := c.mrt.Convenience()
	var activeRules []rules.MetaRule
	for _, r := range conv {
		if r.ActiveAt(hour) {
			activeRules = append(activeRules, r)
		}
	}
	budget := c.cfg.WeeklyBudget.KWh()/(7*24) + c.carry
	stepNo := c.steps
	c.mu.Unlock()

	report := StepReport{
		Time:    now,
		Budget:  budget,
		PerRule: make(map[string]float64),
	}

	// Record every zone's ambient readings, the openHAB-persistence
	// role of the GUI's measurements table.
	if c.cfg.Persistence != nil {
		for z, zone := range c.cfg.Residence.Zones {
			amb := zone.Ambient.AmbientAt(now)
			itemBase := fmt.Sprintf("zone%d/", z)
			if err := c.cfg.Persistence.Record(itemBase+"temperature", trace.KindTemperature,
				trace.Record{Time: now, Value: amb.Temperature}); err != nil {
				return report, err
			}
			if err := c.cfg.Persistence.Record(itemBase+"light", trace.KindLight,
				trace.Record{Time: now, Value: amb.Light}); err != nil {
				return report, err
			}
		}
	}

	// Necessity rules commit their energy up front; convenience rules
	// compete for the remainder.
	var problem core.Problem
	devs := make([]device.Descriptor, len(activeRules))
	drops := make([]float64, len(activeRules))
	planned := make([]int, 0, len(activeRules))
	necessityEnergy := 0.0
	for i, r := range activeRules {
		dev, err := c.cfg.Residence.RuleDevice(r)
		if err != nil {
			return report, err
		}
		devs[i] = dev
		if r.Necessity {
			necessityEnergy += dev.EnergyPerSlot(time.Hour).KWh()
			continue
		}
		amb := c.cfg.Residence.Zones[r.Zone].Ambient.AmbientAt(now)
		actual := amb.Temperature
		if r.Action == rules.ActionSetLight {
			actual = amb.Light
		}
		drops[i] = c.model.Error(r.Action, r.Value, actual)
		planned = append(planned, i)
		problem.Costs = append(problem.Costs, core.RuleCost{
			DropError: drops[i],
			Energy:    dev.EnergyPerSlot(time.Hour).KWh(),
		})
	}
	problem.Budget = max(budget-necessityEnergy, 0)

	// Non-EP modes bypass the planner entirely; finishStep journals
	// their verdicts since the planner's recorder never fires.
	switch c.cfg.Mode {
	case ModeManual:
		return c.finishStep(report, activeRules, devs, drops, nil,
			make(core.Solution, len(activeRules)), core.Eval{Error: sum(drops)}, budget, false,
			traceID, stepNo, false)
	case ModeIFTTT:
		sol, setpoints, eval := c.iftttPlan(now, activeRules, devs)
		// IFTTT accrues drop errors for unmatched rules and mismatch
		// errors for executed ones; both are inside eval already.
		return c.finishStep(report, activeRules, devs, drops, setpoints, sol, eval, budget, true,
			traceID, stepNo, false)
	}

	// Point the planner's decision recorder at this cycle before the
	// search runs: its per-rule callbacks fire inside Plan/PlanFair.
	if c.rec != nil {
		c.rec.bind(traceID, now, stepNo, activeRules, planned)
	}

	var planSol core.Solution
	var eval core.Eval
	var err error
	if c.cfg.FairPlanning {
		owners := make(map[string]int)
		group := make([]int, 0, len(planned))
		for _, i := range planned {
			owner := activeRules[i].Owner
			g, ok := owners[owner]
			if !ok {
				g = len(owners)
				owners[owner] = g
			}
			group = append(group, g)
		}
		nGroups := len(owners)
		if nGroups == 0 {
			nGroups = 1
		}
		// Seed each owner's group with the error debt accumulated in
		// earlier cycles, so fairness holds over time, not per slot.
		offsets := make([]float64, nGroups)
		c.mu.Lock()
		for owner, g := range owners {
			offsets[g] = c.ownerErr[owner]
		}
		c.mu.Unlock()
		var ge core.GroupEval
		planSol, ge, err = c.planner.PlanFair(problem, group, nGroups, offsets)
		eval = ge.Eval
	} else {
		planSol, eval, err = c.planner.Plan(problem)
	}
	if err != nil {
		return report, err
	}
	eval.Energy += necessityEnergy
	// Expand the plan back over all active rules; necessity rules are
	// always on.
	sol := make(core.Solution, len(activeRules))
	for i, r := range activeRules {
		if r.Necessity {
			sol[i] = true
		}
	}
	for j, i := range planned {
		sol[i] = planSol[j]
	}
	return c.finishStep(report, activeRules, devs, drops, nil, sol, eval, budget, true,
		traceID, stepNo, true)
}

// sum adds a float slice.
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// iftttPlan resolves the trigger-action rule set for the current hour:
// every active rule whose action kind the IFTTT table sets executes at
// the IFTTT output value, budget ignored; the eval carries the energy
// and the desired-vs-set mismatch errors.
func (c *Controller) iftttPlan(now time.Time, activeRules []rules.MetaRule, devs []device.Descriptor) (core.Solution, []float64, core.Eval) {
	obs := c.cfg.Residence.Weather.At(now)
	amb := c.cfg.Residence.Zones[0].Ambient.AmbientAt(now)
	env := rules.Env{
		Season:      obs.Season,
		Condition:   obs.Condition,
		OutdoorTemp: obs.Temperature.Celsius(),
		Light:       amb.Light,
	}
	outputs := rules.Outputs(c.cfg.Residence.IFTTT, env)

	sol := make(core.Solution, len(activeRules))
	setpoints := make([]float64, len(activeRules))
	var eval core.Eval
	for i, r := range activeRules {
		set, ok := outputs[r.Action]
		if !ok {
			// Unmatched: falls back to ambient, like a drop.
			zoneAmb := c.cfg.Residence.Zones[r.Zone].Ambient.AmbientAt(now)
			actual := zoneAmb.Temperature
			if r.Action == rules.ActionSetLight {
				actual = zoneAmb.Light
			}
			eval.Error += c.model.Error(r.Action, r.Value, actual)
			continue
		}
		sol[i] = true
		setpoints[i] = set
		eval.Energy += devs[i].EnergyPerSlot(time.Hour).KWh()
		eval.Error += c.model.Error(r.Action, r.Value, set)
	}
	return sol, setpoints, eval
}

// finishStep actuates a plan (when actuate is true), updates the
// accounting and history, and returns the report. setpoints, when
// non-nil, overrides each executed rule's actuation value (IFTTT mode).
// traceID and stepNo tag provenance; plannerJournaled reports whether
// the planner's recorder already journaled the convenience-rule
// verdicts, in which case finishStep journals only the necessity rules
// the planner never saw.
func (c *Controller) finishStep(report StepReport, activeRules []rules.MetaRule, devs []device.Descriptor,
	drops []float64, setpoints []float64, sol core.Solution, eval core.Eval, budget float64, actuate bool,
	traceID string, stepNo int, plannerJournaled bool) (StepReport, error) {

	var firstErr error
	// Coalesced firewall programming: one batched unblock up front (so
	// every actuation — on and off commands alike — passes the
	// firewall), per-rule binding I/O in rule order, then one batched
	// block installing the cycle's drops. Two lock acquisitions per
	// cycle instead of two per rule. When one device backs both an
	// executed and a dropped rule the block wins deterministically; the
	// old per-rule interleaving made the outcome depend on rule order.
	var blocks []firewall.BlockRule
	if actuate {
		unblock := make([]string, len(activeRules))
		for i := range activeRules {
			unblock[i] = devs[i].Addr
		}
		c.fw.ApplyBatch(unblock, nil)
	}
	for i, r := range activeRules {
		dev := devs[i]
		if sol[i] {
			if actuate {
				value := r.Value
				if setpoints != nil {
					value = setpoints[i]
				}
				if err := c.binding.Apply(dev, value); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			report.Executed = append(report.Executed, r.ID)
		} else {
			if actuate {
				if err := c.binding.TurnOff(dev); err != nil && firstErr == nil {
					firstErr = err
				}
				blocks = append(blocks, firewall.BlockRule{
					Addr:   dev.Addr,
					Reason: "meta-rule " + r.ID + " dropped by " + c.cfg.Mode.String(),
					Trace:  traceID,
				})
			}
			report.Dropped = append(report.Dropped, r.ID)
			report.PerRule[r.ID] = drops[i]
		}
		// Journal the verdicts the planner's recorder did not cover:
		// every rule in manual/IFTTT mode, only necessity rules under EP.
		if c.cfg.Journal != nil && (!plannerJournaled || r.Necessity) {
			v := journal.VerdictDropped
			delta := drops[i]
			if sol[i] {
				v = journal.VerdictExecuted
				delta = 0
			}
			c.cfg.Journal.Append(journal.Event{
				Slot:           report.Time,
				Window:         stepNo,
				Rule:           r.ID,
				Owner:          r.Owner,
				Verdict:        v,
				Trace:          traceID,
				EpRemainingKWh: budget - eval.Energy,
				EnergyKWh:      dev.EnergyPerSlot(time.Hour).KWh(),
				FCEDelta:       delta,
				FlipIter:       journal.FlipNever,
			})
		}
	}
	if len(blocks) > 0 {
		c.fw.ApplyBatch(nil, blocks)
	}
	sort.Strings(report.Executed)
	sort.Strings(report.Dropped)
	report.Energy = eval.Energy
	report.Error = eval.Error

	c.mu.Lock()
	c.carry = min(max(budget-eval.Energy, 0), c.carryCap)
	c.totalEnergy += eval.Energy
	c.totalError += eval.Error
	c.active += int64(len(activeRules))
	c.executed += int64(len(report.Executed))
	c.steps++
	for i, r := range activeRules {
		if !sol[i] {
			c.ownerErr[r.Owner] += drops[i]
		}
		c.ownerActive[r.Owner]++
	}
	c.lastStep = &report
	if len(c.history) < historyCap {
		c.history = append(c.history, report)
	} else {
		c.history[c.historyAt] = report
		c.historyAt = (c.historyAt + 1) % historyCap
	}
	c.mu.Unlock()

	// Every active rule lands in exactly one of Executed/Dropped, so
	// these satisfy considered == executed + dropped by construction —
	// the invariant /metrics scrapers can assert.
	metrics.RulesConsidered.Add(uint64(len(activeRules)))
	metrics.RulesExecuted.Add(uint64(len(report.Executed)))
	metrics.RulesDropped.Add(uint64(len(report.Dropped)))
	metrics.EnergyConsumedKWh.Add(eval.Energy)
	metrics.ConvenienceErrorSum.Add(eval.Error)

	// Stream the cycle's outcome: the verdict, then the block set it
	// left installed.
	if c.cfg.Stream != nil {
		c.publishStream(stream.KindPlan, report)
		c.publishStream(stream.KindFirewall, c.fw.Rules())
	}

	return report, firstErr
}

// History returns the most recent step reports, oldest first, up to a
// week of hourly cycles.
func (c *Controller) History() []StepReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StepReport, 0, len(c.history))
	if len(c.history) == historyCap {
		out = append(out, c.history[c.historyAt:]...)
		out = append(out, c.history[:c.historyAt]...)
	} else {
		out = append(out, c.history...)
	}
	return out
}

// LastStep returns the most recent step report, or false if none ran.
func (c *Controller) LastStep() (StepReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastStep == nil {
		return StepReport{}, false
	}
	return *c.lastStep, true
}

// Summary returns the lifetime metrics.
func (c *Controller) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		Steps:             c.steps,
		Energy:            units.Energy(c.totalEnergy),
		PerOwner:          make(map[string]units.Percent, len(c.ownerErr)),
		ActiveRuleSlots:   c.active,
		ExecutedRuleSlots: c.executed,
	}
	if c.active > 0 {
		s.ConvenienceError = units.FromFraction(c.totalError / float64(c.active))
	}
	for owner, n := range c.ownerActive {
		if n > 0 {
			s.PerOwner[owner] = units.FromFraction(c.ownerErr[owner] / float64(n))
		}
	}
	return s
}

// Command manually actuates a device (the APP → LC path). The firewall
// still applies: commands to blocked devices fail with ErrBlocked.
func (c *Controller) Command(deviceID string, value float64) error {
	dev, _, ok := c.registry.Get(deviceID)
	if !ok {
		return fmt.Errorf("controller: unknown device %q", deviceID)
	}
	return c.binding.Apply(dev, value)
}

// Schedule runs Step every interval on the cron scheduler and returns
// the stop function.
func (c *Controller) Schedule(cron *Cron, interval time.Duration, onErr func(error)) (stop func()) {
	return cron.Every(interval, func(time.Time) {
		if _, err := c.Step(); err != nil && onErr != nil {
			onErr(err)
		}
	})
}
