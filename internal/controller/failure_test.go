package controller

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/simclock"
)

// flakyBinding fails every n-th actuation, modelling a device that
// drops commands (the paper's unencrypted HTTP links are lossy in
// practice).
type flakyBinding struct {
	mu    sync.Mutex
	n     int
	calls int
	fails int
}

var errFlaky = errors.New("device timed out")

func (b *flakyBinding) tick() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls++
	if b.n > 0 && b.calls%b.n == 0 {
		b.fails++
		return errFlaky
	}
	return nil
}

func (b *flakyBinding) Apply(device.Descriptor, float64) error { return b.tick() }
func (b *flakyBinding) TurnOff(device.Descriptor) error        { return b.tick() }

func TestStepSurvivesBindingFailures(t *testing.T) {
	flaky := &flakyBinding{n: 3}
	clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Binding = flaky
	})

	var stepErrs int
	for i := 0; i < 48; i++ {
		if _, err := c.Step(); err != nil {
			if !errors.Is(err, errFlaky) && !strings.Contains(err.Error(), "timed out") {
				t.Fatalf("unexpected error class: %v", err)
			}
			stepErrs++
		}
		clock.Advance(time.Hour)
	}
	// Failures surfaced but did not stop the loop, and accounting
	// stayed consistent.
	if flaky.fails == 0 {
		t.Fatal("flaky binding never fired")
	}
	if stepErrs == 0 {
		t.Fatal("binding failures were swallowed")
	}
	sum := c.Summary()
	if sum.Steps != 48 {
		t.Errorf("steps = %d, want 48 (every cycle counted)", sum.Steps)
	}
	if sum.ExecutedRuleSlots == 0 || sum.Energy <= 0 {
		t.Errorf("summary degenerate after failures: %+v", sum)
	}
	if sum.ExecutedRuleSlots > sum.ActiveRuleSlots {
		t.Errorf("executed %d > active %d", sum.ExecutedRuleSlots, sum.ActiveRuleSlots)
	}
}

func TestScheduleReportsBindingFailures(t *testing.T) {
	flaky := &flakyBinding{n: 1} // always fails
	clock := simclock.NewSimClock(winterNight)
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Binding = flaky
	})
	cron := NewCron(clock)
	defer cron.Stop()

	errs := make(chan error, 4)
	stop := c.Schedule(cron, time.Hour, func(err error) { errs <- err })
	defer stop()

	waitForWaiter(t, clock)
	clock.Advance(time.Hour)
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error reported")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("error callback never fired")
	}
}
