package controller

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
)

func apiServer(t *testing.T, mut func(*Config)) (*Controller, *httptest.Server) {
	t.Helper()
	c := newController(t, mut)
	srv := httptest.NewServer(API(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, v any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestAPIItems(t *testing.T) {
	_, srv := apiServer(t, nil)
	var items []map[string]any
	if code := getJSON(t, srv.URL+"/rest/items", &items); code != http.StatusOK {
		t.Fatalf("GET items = %d", code)
	}
	if len(items) != 6 {
		t.Fatalf("items = %d, want 6 (3 zones × 2 devices)", len(items))
	}
	for _, it := range items {
		if it["id"] == "" || it["class"] == "" {
			t.Errorf("item missing fields: %v", it)
		}
	}
}

func TestAPICommandAndPlan(t *testing.T) {
	c, srv := apiServer(t, nil)

	// Manual command before any plan: allowed.
	code := postJSON(t, srv.URL+"/rest/items/proto/z0/hvac/command", map[string]float64{"value": 25}, nil)
	if code != http.StatusOK {
		t.Fatalf("command = %d", code)
	}
	_, st, _ := c.Registry().Get("proto/z0/hvac")
	if on, sp, _, _ := st.Snapshot(); !on || sp != 25 {
		t.Errorf("manual command not applied: on=%v sp=%v", on, sp)
	}

	// No plan yet.
	if code := getJSON(t, srv.URL+"/rest/plan", nil); code != http.StatusNotFound {
		t.Errorf("GET plan before run = %d", code)
	}

	// Run a plan via the API.
	var report StepReport
	if code := postJSON(t, srv.URL+"/rest/plan/run", nil, &report); code != http.StatusOK {
		t.Fatalf("plan/run = %d", code)
	}
	if report.Budget <= 0 {
		t.Errorf("report = %+v", report)
	}
	if code := getJSON(t, srv.URL+"/rest/plan", &report); code != http.StatusOK {
		t.Errorf("GET plan after run = %d", code)
	}

	var summary Summary
	if code := getJSON(t, srv.URL+"/rest/summary", &summary); code != http.StatusOK || summary.Steps != 1 {
		t.Errorf("summary = %d %+v", code, summary)
	}
}

func TestAPICommandBlockedDevice(t *testing.T) {
	c, srv := apiServer(t, func(cfg *Config) { cfg.WeeklyBudget = 1e-9 })
	if _, err := c.Step(); err != nil { // drops and blocks the night-heat device
		t.Fatal(err)
	}
	code := postJSON(t, srv.URL+"/rest/items/proto/z0/hvac/command", map[string]float64{"value": 30}, nil)
	if code != http.StatusForbidden {
		t.Errorf("command to blocked device = %d, want 403", code)
	}

	var fw map[string]any
	if code := getJSON(t, srv.URL+"/rest/firewall", &fw); code != http.StatusOK {
		t.Fatalf("GET firewall = %d", code)
	}
	ruleList, _ := fw["rules"].([]any)
	if len(ruleList) == 0 || !strings.Contains(ruleList[0].(string), "-j DROP") {
		t.Errorf("firewall rules = %v", fw["rules"])
	}
}

func TestAPICommandUnknownDevice(t *testing.T) {
	_, srv := apiServer(t, nil)
	code := postJSON(t, srv.URL+"/rest/items/nope/command", map[string]float64{"value": 1}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown device command = %d", code)
	}
}

func TestAPIMRTRoundTrip(t *testing.T) {
	c, srv := apiServer(t, nil)
	var mrt rules.MRT
	if code := getJSON(t, srv.URL+"/rest/mrt", &mrt); code != http.StatusOK {
		t.Fatalf("GET mrt = %d", code)
	}
	if len(mrt.Rules) != 10 {
		t.Fatalf("mrt has %d rules", len(mrt.Rules))
	}

	// Update: keep only the budget rule and one convenience rule.
	update := rules.MRT{Rules: []rules.MetaRule{mrt.Rules[0], mrt.Rules[9]}}
	if code := postJSON(t, srv.URL+"/rest/mrt", update, nil); code != http.StatusOK {
		t.Fatalf("POST mrt = %d", code)
	}
	if got := len(c.MRT().Rules); got != 2 {
		t.Errorf("controller MRT has %d rules after update", got)
	}

	// Invalid update rejected.
	bad := rules.MRT{Rules: []rules.MetaRule{{ID: "x", Action: rules.ActionSetLight, Value: 500}}}
	if code := postJSON(t, srv.URL+"/rest/mrt", bad, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("invalid MRT accepted: %d", code)
	}

	// Malformed JSON rejected.
	resp, err := http.Post(srv.URL+"/rest/mrt", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed MRT accepted: %d", resp.StatusCode)
	}
}

func TestAPIMRTConflicts(t *testing.T) {
	c, srv := apiServer(t, nil)
	var conflicts []rules.Conflict
	if code := getJSON(t, srv.URL+"/rest/mrt/conflicts", &conflicts); code != http.StatusOK {
		t.Fatalf("conflicts = %d", code)
	}
	if len(conflicts) != 0 {
		t.Errorf("prototype MRT reported conflicts: %+v", conflicts)
	}

	// Install a clashing pair and re-check.
	mrt := c.MRT()
	mrt.Rules = append(mrt.Rules, rules.MetaRule{
		ID: "clash", Name: "Cold Evening", Window: simclock.TimeWindow{StartHour: 18, EndHour: 23},
		Action: rules.ActionSetTemperature, Value: 17, Zone: 0, Owner: "Father",
	})
	if err := c.SetMRT(mrt); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/rest/mrt/conflicts", &conflicts); code != http.StatusOK {
		t.Fatalf("conflicts = %d", code)
	}
	if len(conflicts) == 0 {
		t.Fatal("clash not reported")
	}
	if conflicts[0].Kind != rules.ConflictClash {
		t.Errorf("kind = %v", conflicts[0].Kind)
	}
}

func TestDashboardServed(t *testing.T) {
	_, srv := apiServer(t, nil)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IMCF", "/rest/items", "/rest/mrt/conflicts", "run EP now"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
