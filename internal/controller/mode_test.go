package controller

import (
	"testing"
	"time"

	"github.com/imcf/imcf/internal/simclock"
)

func TestModeManualPlansNothing(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.Mode = ModeManual })
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 0 {
		t.Errorf("manual mode executed %v", report.Executed)
	}
	if report.Energy != 0 {
		t.Errorf("manual mode consumed %v", report.Energy)
	}
	// Manual mode never blocks devices: the user keeps full control.
	if c.Firewall().Blocked("192.168.2.10") {
		t.Error("manual mode installed a firewall rule")
	}
	// Devices are untouched by the step...
	_, st, _ := c.Registry().Get("proto/z0/hvac")
	if _, _, _, n := st.Snapshot(); n != 0 {
		t.Errorf("manual mode sent %d device commands", n)
	}
	// ...but Command still works.
	if err := c.Command("proto/z0/hvac", 21); err != nil {
		t.Fatal(err)
	}
	// Convenience error accrues, like the NR bound.
	if c.Summary().ConvenienceError <= 0 {
		t.Error("manual mode reported zero error on a cold winter night")
	}
}

func TestModeIFTTTExecutesGreedily(t *testing.T) {
	// A winter week: IFTTT must consume more than EP (budget-oblivious)
	// and err more (setpoint mismatches), the live Fig. 2 spectrum.
	runMode := func(mode Mode) Summary {
		clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
		c := newController(t, func(cfg *Config) {
			cfg.Clock = clock
			cfg.Mode = mode
			cfg.CarryCapHours = 5.5
		})
		for i := 0; i < 7*24; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
			clock.Advance(time.Hour)
		}
		return c.Summary()
	}
	ep := runMode(ModeEP)
	ifttt := runMode(ModeIFTTT)
	t.Logf("EP:    F_E=%.1f F_CE=%.2f%%", ep.Energy.KWh(), float64(ep.ConvenienceError))
	t.Logf("IFTTT: F_E=%.1f F_CE=%.2f%%", ifttt.Energy.KWh(), float64(ifttt.ConvenienceError))

	if ifttt.Energy <= ep.Energy {
		t.Errorf("IFTTT energy %v not above EP %v", ifttt.Energy, ep.Energy)
	}
	if ifttt.ConvenienceError <= ep.ConvenienceError {
		t.Errorf("IFTTT error %v not above EP %v", ifttt.ConvenienceError, ep.ConvenienceError)
	}
	if ifttt.ExecutedRuleSlots == 0 {
		t.Error("IFTTT executed nothing")
	}
}

func TestModeIFTTTActuatesAtIFTTTValues(t *testing.T) {
	// 20:00 in a winter evening: Table III's winter rule sets
	// temperature 20, even though the MRT wants 23.
	clock := simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Mode = ModeIFTTT
	})
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) == 0 {
		t.Fatalf("IFTTT executed nothing: %+v", report)
	}
	_, st, _ := c.Registry().Get("proto/z0/hvac")
	on, sp, _, _ := st.Snapshot()
	if !on {
		t.Fatal("father's unit off under IFTTT")
	}
	// Table III winter/cloudy/cold rules set 20, 22 or 24 — never the
	// MRT's 23.
	if sp == 23 {
		t.Errorf("IFTTT actuated at the MRT setpoint %v; should use its own value", sp)
	}
	if sp < 18 || sp > 25 {
		t.Errorf("IFTTT setpoint %v outside Table III's outputs", sp)
	}
}

func TestModeString(t *testing.T) {
	if ModeEP.String() != "EP" || ModeIFTTT.String() != "IFTTT" || ModeManual.String() != "manual" {
		t.Error("mode names wrong")
	}
}
