package controller

import (
	"time"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/rules"
)

// stepRecorder adapts the planner's index-based DecisionRecorder
// callbacks into journal events: problem index i names the i-th planned
// (non-necessity) rule of the current cycle, which bind has stashed
// along with the slot, step ordinal and causal trace. One recorder is
// installed on the planner at construction and re-bound per cycle from
// the planning goroutine — the planner is single-threaded by contract.
type stepRecorder struct {
	j       *journal.Journal
	trace   string
	slot    time.Time
	window  int
	rules   []rules.MetaRule
	planned []int
}

// bind points the recorder at the current cycle's context.
func (sr *stepRecorder) bind(trace string, slot time.Time, window int, active []rules.MetaRule, planned []int) {
	sr.trace, sr.slot, sr.window = trace, slot, window
	sr.rules, sr.planned = active, planned
}

// RecordDecision implements core.DecisionRecorder. The Flip* sentinels
// pass through numerically — core and journal declare identical values
// (pinned by TestFlipSentinelsMatchCore).
func (sr *stepRecorder) RecordDecision(i int, executed bool, flipIter int, rem, energy, fce float64) {
	r := &sr.rules[sr.planned[i]]
	v := journal.VerdictDropped
	if executed {
		v = journal.VerdictExecuted
	}
	sr.j.Append(journal.Event{
		Slot:           sr.slot,
		Window:         sr.window,
		Rule:           r.ID,
		Owner:          r.Owner,
		Verdict:        v,
		Trace:          sr.trace,
		EpRemainingKWh: rem,
		EnergyKWh:      energy,
		FCEDelta:       fce,
		FlipIter:       flipIter,
	})
}
