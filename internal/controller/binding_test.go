package controller

import (
	"errors"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

func TestHTTPBindingDrivesEmulatedDevices(t *testing.T) {
	daikin, err := devicesim.StartDaikin()
	if err != nil {
		t.Fatal(err)
	}
	defer daikin.Close()
	hue, err := devicesim.StartHue()
	if err != nil {
		t.Fatal(err)
	}
	defer hue.Close()

	hvac := device.Descriptor{ID: "d1", Class: device.ClassHVAC, Rating: 600 * units.Watt, Addr: "192.168.0.5"}
	light := device.Descriptor{ID: "l1", Class: device.ClassLight, Rating: 55 * units.Watt, Addr: "192.168.0.6"}
	fw := firewall.New(nil)
	b := &HTTPBinding{
		Endpoints: map[string]string{"d1": daikin.URL(), "l1": hue.URL()},
		Firewall:  fw,
	}

	if err := b.Apply(hvac, 25); err != nil {
		t.Fatal(err)
	}
	if power, mode, temp := daikin.State(); !power || mode != 3 || temp != 25 {
		t.Errorf("daikin state = %v %d %v", power, mode, temp)
	}
	if err := b.Apply(light, 40); err != nil {
		t.Fatal(err)
	}
	if st := hue.State(); !st.On || st.Bri != 40 {
		t.Errorf("hue state = %+v", st)
	}
	if err := b.TurnOff(hvac); err != nil {
		t.Fatal(err)
	}
	if power, _, _ := daikin.State(); power {
		t.Error("daikin still on after TurnOff")
	}
	if err := b.TurnOff(light); err != nil {
		t.Fatal(err)
	}
	if st := hue.State(); st.On {
		t.Error("hue still on after TurnOff")
	}
}

func TestHTTPBindingFirewallBlocksTraffic(t *testing.T) {
	daikin, err := devicesim.StartDaikin()
	if err != nil {
		t.Fatal(err)
	}
	defer daikin.Close()

	hvac := device.Descriptor{ID: "d1", Class: device.ClassHVAC, Rating: 600 * units.Watt, Addr: "192.168.0.5"}
	fw := firewall.New(nil)
	b := &HTTPBinding{Endpoints: map[string]string{"d1": daikin.URL()}, Firewall: fw}

	fw.Block(hvac.Addr, "EP drop")
	if err := b.Apply(hvac, 25); !errors.Is(err, ErrBlocked) {
		t.Fatalf("Apply through blocked firewall = %v", err)
	}
	// Crucially: the device received NO traffic.
	if daikin.Commands() != 0 {
		t.Errorf("blocked device received %d commands", daikin.Commands())
	}
	_, dropped := fw.Counters()
	if dropped != 1 {
		t.Errorf("firewall dropped = %d", dropped)
	}
}

func TestHTTPBindingMissingEndpoint(t *testing.T) {
	b := &HTTPBinding{Endpoints: map[string]string{}}
	dev := device.Descriptor{ID: "ghost", Class: device.ClassHVAC, Addr: "10.0.0.9"}
	if err := b.Apply(dev, 20); err == nil {
		t.Error("missing endpoint accepted")
	}
}

func TestHTTPBindingRejectedCommand(t *testing.T) {
	daikin, err := devicesim.StartDaikin()
	if err != nil {
		t.Fatal(err)
	}
	defer daikin.Close()
	b := &HTTPBinding{Endpoints: map[string]string{"d1": daikin.URL()}}
	dev := device.Descriptor{ID: "d1", Class: device.ClassHVAC, Addr: "10.0.0.1"}
	// Setpoint outside the Daikin's accepted range → HTTP 400 → error.
	if err := b.Apply(dev, 99); err == nil {
		t.Error("out-of-range setpoint accepted")
	}
}

func TestControllerEndToEndOverHTTP(t *testing.T) {
	// Full integration: EP decisions reach emulated devices over real
	// HTTP, and dropped rules produce zero device traffic.
	res, err := home.Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	endpoints := make(map[string]string)
	var daikins []*devicesim.Daikin
	var hues []*devicesim.Hue
	for _, z := range res.Zones {
		d, err := devicesim.StartDaikin()
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daikins = append(daikins, d)
		endpoints[z.HVAC.ID] = d.URL()

		h, err := devicesim.StartHue()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		hues = append(hues, h)
		endpoints[z.Light.ID] = h.URL()
	}

	clock := simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC))
	fw := firewall.New(clock)
	cfg := Config{
		Residence:    res,
		Clock:        clock,
		WeeklyBudget: home.PrototypeWeeklyBudget,
		Firewall:     fw,
		Binding:      &HTTPBinding{Endpoints: endpoints, Firewall: fw},
	}
	cfg.Planner.Seed = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 20:00 in January: father evening heat + lights, mother evening
	// heat, daughter night lights are active.
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) == 0 {
		t.Fatalf("nothing executed at winter evening: %+v", report)
	}
	// Every executed rule's device actually received a command.
	totalCommands := 0
	for _, d := range daikins {
		totalCommands += d.Commands()
	}
	for _, h := range hues {
		totalCommands += h.Commands()
	}
	if totalCommands < len(report.Executed) {
		t.Errorf("%d device commands for %d executed rules", totalCommands, len(report.Executed))
	}
	// Hue in zone 0 should be on at 40 if the father's light rule ran.
	for _, id := range report.Executed {
		if id == "proto/father/evening-lights" {
			if st := hues[0].State(); !st.On || st.Bri != 40 {
				t.Errorf("father's light state = %+v", st)
			}
		}
	}
}
