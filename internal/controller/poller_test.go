package controller

import (
	"testing"
	"time"

	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/trace"
)

// fixedAmbient is an AmbientSource pinned to one reading.
type fixedAmbient struct{ trace.Ambient }

func (f fixedAmbient) AmbientAt(time.Time) trace.Ambient { return f.Ambient }

func TestThresholdsFromIFTTT(t *testing.T) {
	ths := ThresholdsFromIFTTT(rules.FlatIFTTT())
	// Table III has three numeric triggers: >30, <10 (temperature) and
	// >15 (light).
	if len(ths) != 3 {
		t.Fatalf("thresholds = %+v", ths)
	}
	temps, lights := 0, 0
	for _, th := range ths {
		if th.Temp {
			temps++
		} else {
			lights++
		}
	}
	if temps != 2 || lights != 1 {
		t.Errorf("temps=%d lights=%d", temps, lights)
	}
}

func TestPollerValidation(t *testing.T) {
	good := &Poller{
		Source:     fixedAmbient{trace.Ambient{Temperature: 20}},
		Thresholds: []Threshold{{Temp: true, Value: 10}},
		Min:        time.Second,
		Max:        time.Minute,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid poller rejected: %v", err)
	}
	bad := *good
	bad.Source = nil
	if bad.Validate() == nil {
		t.Error("nil source accepted")
	}
	bad = *good
	bad.Min = 0
	if bad.Validate() == nil {
		t.Error("zero min accepted")
	}
	bad = *good
	bad.Max = time.Millisecond
	if bad.Validate() == nil {
		t.Error("max < min accepted")
	}
	bad = *good
	bad.Thresholds = nil
	if bad.Validate() == nil {
		t.Error("no thresholds accepted")
	}
}

func TestNextIntervalAdaptsToThresholdDistance(t *testing.T) {
	mk := func(temp float64) *Poller {
		return &Poller{
			Source:     fixedAmbient{trace.Ambient{Temperature: temp, Light: 50}},
			Thresholds: []Threshold{{Temp: true, Value: 10}},
			Min:        time.Second,
			Max:        time.Minute,
		}
	}
	// On the threshold: fastest polling.
	_, onIt, err := mk(10).NextInterval(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if onIt != time.Second {
		t.Errorf("on-threshold interval = %v, want 1s", onIt)
	}
	// Half a scale (2.5 °C) away: mid interval.
	_, half, err := mk(12.5).NextInterval(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if half <= onIt || half >= time.Minute {
		t.Errorf("half-scale interval = %v, want between 1s and 1m", half)
	}
	// Far away: slowest polling (clamped).
	_, far, err := mk(35).NextInterval(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if far != time.Minute {
		t.Errorf("far interval = %v, want 1m", far)
	}
	// Nearest threshold wins.
	multi := mk(10)
	multi.Thresholds = append(multi.Thresholds, Threshold{Temp: true, Value: 30})
	_, got, err := multi.NextInterval(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if got != time.Second {
		t.Errorf("multi-threshold interval = %v", got)
	}
}

func TestNextIntervalLightThreshold(t *testing.T) {
	p := &Poller{
		Source:     fixedAmbient{trace.Ambient{Temperature: 20, Light: 15}},
		Thresholds: []Threshold{{Temp: false, Value: 15}},
		Min:        time.Second,
		Max:        time.Minute,
	}
	_, it, err := p.NextInterval(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if it != time.Second {
		t.Errorf("light on-threshold interval = %v", it)
	}
}

func TestPollerRunAdaptiveSchedule(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC))
	p := &Poller{
		Source:     fixedAmbient{trace.Ambient{Temperature: 10}}, // on threshold
		Thresholds: []Threshold{{Temp: true, Value: 10}},
		Min:        time.Second,
		Max:        time.Minute,
	}
	stop := make(chan struct{})
	type sample struct{ at time.Time }
	samples := make(chan sample, 16)
	done := make(chan error, 1)
	go func() {
		done <- p.Run(clock, func(at time.Time, _ trace.Ambient) {
			samples <- sample{at}
		}, stop)
	}()

	// First sample is immediate.
	first := <-samples
	// Advance by the on-threshold interval (1 s) and expect another.
	waitForWaiter(t, clock)
	clock.Advance(time.Second)
	second := <-samples
	if got := second.at.Sub(first.at); got != time.Second {
		t.Errorf("inter-sample gap = %v, want 1s", got)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPollerRunInvalid(t *testing.T) {
	p := &Poller{}
	if err := p.Run(simclock.NewSimClock(time.Now()), func(time.Time, trace.Ambient) {}, nil); err == nil {
		t.Error("invalid poller ran")
	}
}
