package controller

import (
	"testing"

	"github.com/imcf/imcf/internal/device"
)

// paperThings and paperItems are the paper's Section II binding-mode
// examples, verbatim.
const paperThings = `daikin:ac_unit:living_room_ac [ host="192.168.0.5" ]`

const paperItems = `
Switch DaikinACUnit_Power channel="daikin:ac_unit:living_room_ac:power"
Number:Temperature DaikinACUnit_SetPoint channel="daikin:ac_unit:living_room_ac:settemp"
`

func TestParseThingsPaperExample(t *testing.T) {
	things, err := ParseThings(paperThings)
	if err != nil {
		t.Fatal(err)
	}
	if len(things) != 1 {
		t.Fatalf("things = %+v", things)
	}
	th := things[0]
	if th.Binding != "daikin" || th.TypeID != "ac_unit" || th.ID != "living_room_ac" {
		t.Errorf("thing = %+v", th)
	}
	if th.Config["host"] != "192.168.0.5" {
		t.Errorf("config = %v", th.Config)
	}
	if th.UID() != "daikin:ac_unit:living_room_ac" {
		t.Errorf("UID = %q", th.UID())
	}
}

func TestParseItemsPaperExample(t *testing.T) {
	items, err := ParseItems(paperItems)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %+v", items)
	}
	if items[0].Type != "Switch" || items[0].Name != "DaikinACUnit_Power" ||
		items[0].Channel != "daikin:ac_unit:living_room_ac:power" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].Type != "Number:Temperature" || items[1].ThingUID() != "daikin:ac_unit:living_room_ac" {
		t.Errorf("item 1 = %+v", items[1])
	}
}

func TestParseThingsErrors(t *testing.T) {
	cases := []string{
		`daikin:ac_unit [ host="x" ]`,    // two segments
		`daikin:ac_unit:x [ host="x"`,    // unterminated bracket
		`daikin:ac_unit:x [ host=x ]`,    // unquoted value
		`daikin:ac_unit:x [ hostvalue ]`, // no '='
		`daikin::x [ host="x" ]`,         // empty segment
	}
	for _, src := range cases {
		if _, err := ParseThings(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Comments and blanks are fine.
	things, err := ParseThings("// just a comment\n\n" + paperThings + " // trailing")
	if err != nil || len(things) != 1 {
		t.Errorf("comment handling: %v %v", things, err)
	}
}

func TestParseItemsErrors(t *testing.T) {
	cases := []string{
		`Switch OnlyTwo`,
		`Switch X somethingelse="y"`,
		`Switch X channel="unterminated`,
		`Switch X channel="too:few:segments"`,
	}
	for _, src := range cases {
		if _, err := ParseItems(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestDevicesFromConfig(t *testing.T) {
	things, err := ParseThings(paperThings + "\n" + `hue:bulb:lounge [ host="192.168.0.6" ]` + "\n" +
		`zwave:sensor:orphan [ host="192.168.0.7" ]`) // no linked item
	if err != nil {
		t.Fatal(err)
	}
	items, err := ParseItems(paperItems + "\n" + `Dimmer LoungeBri channel="hue:bulb:lounge:brightness"`)
	if err != nil {
		t.Fatal(err)
	}
	devs, err := DevicesFromConfig(things, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("devices = %+v", devs)
	}
	byID := map[string]device.Descriptor{}
	for _, d := range devs {
		byID[d.ID] = d
	}
	ac := byID["daikin:ac_unit:living_room_ac"]
	if ac.Class != device.ClassHVAC || ac.Addr != "192.168.0.5" || ac.Rating.Watts() != 600 {
		t.Errorf("ac = %+v", ac)
	}
	bulb := byID["hue:bulb:lounge"]
	if bulb.Class != device.ClassLight || bulb.Addr != "192.168.0.6" {
		t.Errorf("bulb = %+v", bulb)
	}

	// Registry accepts the parsed devices directly.
	reg := device.NewRegistry()
	for _, d := range devs {
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDevicesFromConfigMissingHost(t *testing.T) {
	things, _ := ParseThings(`daikin:ac_unit:x [ ip="192.168.0.5" ]`)
	items, _ := ParseItems(`Switch P channel="daikin:ac_unit:x:power"`)
	if _, err := DevicesFromConfig(things, items, 0); err == nil {
		t.Error("missing host accepted")
	}
}
