package controller

import (
	"context"
	"testing"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/units"
)

// TestFlipSentinelsMatchCore pins the numeric correspondence the
// stepRecorder relies on when passing flip iterations through without
// translation.
func TestFlipSentinelsMatchCore(t *testing.T) {
	if core.FlipNever != journal.FlipNever {
		t.Fatalf("FlipNever mismatch: core %d, journal %d", core.FlipNever, journal.FlipNever)
	}
	if core.FlipRepair != journal.FlipRepair {
		t.Fatalf("FlipRepair mismatch: core %d, journal %d", core.FlipRepair, journal.FlipRepair)
	}
}

// TestStepJournalsEveryVerdict runs one EP cycle and asserts every rule
// in the report has exactly one journal event with matching verdict,
// slot, trace and budget accounting.
func TestStepJournalsEveryVerdict(t *testing.T) {
	j := journal.New(64)
	c := newController(t, func(cfg *Config) {
		cfg.Journal = j
		// A tight budget forces at least one drop at 03:00.
		cfg.WeeklyBudget = 2 * units.KilowattHour
	})

	tc := metrics.NewTrace()
	ctx := metrics.ContextWithTrace(context.Background(), tc)
	report, err := c.StepCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}

	total := len(report.Executed) + len(report.Dropped)
	evs := j.Recent(journal.Filter{})
	if len(evs) != total {
		t.Fatalf("%d journal events for %d verdicts: %+v", len(evs), total, evs)
	}
	for _, id := range report.Dropped {
		match := j.Recent(journal.Filter{Rule: id, Verdict: journal.VerdictDropped})
		if len(match) != 1 {
			t.Fatalf("dropped rule %s has %d journal events", id, len(match))
		}
		ev := match[0]
		if ev.Trace != tc.TraceIDString() {
			t.Errorf("event trace %q, want %q", ev.Trace, tc.TraceIDString())
		}
		if !ev.Slot.Equal(report.Time) {
			t.Errorf("event slot %v, want %v", ev.Slot, report.Time)
		}
		if ev.FCEDelta <= 0 {
			t.Errorf("dropped rule %s has FCEDelta %v", id, ev.FCEDelta)
		}
		if ev.FlipIter < journal.FlipRepair {
			t.Errorf("event flip iter %d below sentinels", ev.FlipIter)
		}
	}
	for _, id := range report.Executed {
		match := j.Recent(journal.Filter{Rule: id, Verdict: journal.VerdictExecuted})
		if len(match) != 1 {
			t.Fatalf("executed rule %s has %d journal events", id, len(match))
		}
	}
}

// TestStepJournalsManualMode pins that non-EP modes journal verdicts
// too (the planner recorder never fires there).
func TestStepJournalsManualMode(t *testing.T) {
	j := journal.New(64)
	c := newController(t, func(cfg *Config) {
		cfg.Journal = j
		cfg.Mode = ModeManual
	})
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Dropped) == 0 {
		t.Fatal("manual mode executed rules")
	}
	evs := j.Recent(journal.Filter{Verdict: journal.VerdictDropped})
	if len(evs) != len(report.Dropped) {
		t.Fatalf("%d events for %d manual drops", len(evs), len(report.Dropped))
	}
	if evs[0].FlipIter != journal.FlipNever {
		t.Errorf("manual-mode event flip iter %d, want FlipNever", evs[0].FlipIter)
	}
}

// TestStepJournalWindowOrdinal pins that consecutive cycles stamp
// increasing window ordinals.
func TestStepJournalWindowOrdinal(t *testing.T) {
	j := journal.New(64)
	c := newController(t, func(cfg *Config) { cfg.Journal = j })
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	evs := j.Recent(journal.Filter{})
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	if first, last := evs[0].Window, evs[len(evs)-1].Window; first != 0 || last != 2 {
		t.Fatalf("window ordinals span %d..%d, want 0..2", first, last)
	}
}

// TestBlockedDeviceCarriesTrace follows a traced cycle into the
// firewall: a dropped rule's device check must audit with the cycle's
// trace ID.
func TestBlockedDeviceCarriesTrace(t *testing.T) {
	j := journal.New(64)
	c := newController(t, func(cfg *Config) {
		cfg.Journal = j
		cfg.WeeklyBudget = 2 * units.KilowattHour
	})
	tc := metrics.NewTrace()
	report, err := c.StepCtx(metrics.ContextWithTrace(context.Background(), tc))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Dropped) == 0 {
		t.Skip("budget did not force a drop at this hour")
	}
	// Find the dropped rule's device and poke it through the firewall.
	var addr string
	for _, d := range c.Registry().List() {
		if c.Firewall().Blocked(d.Addr) {
			addr = d.Addr
			break
		}
	}
	if addr == "" {
		t.Fatal("no blocked device after a drop")
	}
	c.Firewall().Check(addr)
	audit := c.Firewall().Audit()
	last := audit[len(audit)-1]
	if last.Trace != tc.TraceIDString() {
		t.Fatalf("audit trace %q, want %q", last.Trace, tc.TraceIDString())
	}
}
