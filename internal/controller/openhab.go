package controller

import (
	"fmt"
	"strings"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/units"
)

// This file parses the openHAB-style .things and .items configuration
// snippets the paper uses for its default "binding mode" — e.g.
//
//	daikin.things: daikin:ac_unit:living_room_ac [ host="192.168.0.5" ]
//	daikin.items:  Switch DaikinACUnit_Power
//	                 channel="daikin:ac_unit:living_room_ac:power"
//	               Number:Temperature DaikinACUnit_SetPoint
//	                 channel="daikin:ac_unit:living_room_ac:settemp"
//
// so that device inventories can be declared in the same dialect an
// openHAB user already maintains.

// Thing is one parsed .things entry: a bound device instance.
type Thing struct {
	// Binding is the integration name ("daikin", "hue").
	Binding string
	// TypeID is the device type within the binding ("ac_unit").
	TypeID string
	// ID is the user-chosen instance name ("living_room_ac").
	ID string
	// Config holds the bracketed key="value" parameters.
	Config map[string]string
}

// UID returns the thing's full openHAB UID.
func (t Thing) UID() string { return t.Binding + ":" + t.TypeID + ":" + t.ID }

// Item is one parsed .items entry: a typed item linked to a channel.
type Item struct {
	// Type is the item type ("Switch", "Number:Temperature", "Dimmer").
	Type string
	// Name is the item name ("DaikinACUnit_Power").
	Name string
	// Channel is the linked channel UID
	// ("daikin:ac_unit:living_room_ac:power").
	Channel string
}

// ThingUID returns the channel's thing UID (all but the last segment).
func (i Item) ThingUID() string {
	if at := strings.LastIndexByte(i.Channel, ':'); at > 0 {
		return i.Channel[:at]
	}
	return ""
}

// ParseThings parses a .things document: one
// "binding:type:id [ key="v", … ]" entry per line; '//' comments.
func ParseThings(src string) ([]Thing, error) {
	var out []Thing
	for ln, raw := range strings.Split(src, "\n") {
		line := stripLineComment(raw)
		if line == "" {
			continue
		}
		body, cfg, err := splitConfig(line)
		if err != nil {
			return nil, fmt.Errorf("controller: things line %d: %w", ln+1, err)
		}
		parts := strings.Split(strings.TrimSpace(body), ":")
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return nil, fmt.Errorf("controller: things line %d: want binding:type:id, got %q", ln+1, body)
		}
		out = append(out, Thing{Binding: parts[0], TypeID: parts[1], ID: parts[2], Config: cfg})
	}
	return out, nil
}

// ParseItems parses a .items document: one
// `Type Name channel="…"` entry per line; '//' comments.
func ParseItems(src string) ([]Item, error) {
	var out []Item
	for ln, raw := range strings.Split(src, "\n") {
		line := stripLineComment(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("controller: items line %d: want Type Name channel=\"…\"", ln+1)
		}
		it := Item{Type: fields[0], Name: fields[1]}
		rest := strings.Join(fields[2:], " ")
		const key = `channel="`
		at := strings.Index(rest, key)
		if at < 0 {
			return nil, fmt.Errorf("controller: items line %d: missing channel binding", ln+1)
		}
		end := strings.IndexByte(rest[at+len(key):], '"')
		if end < 0 {
			return nil, fmt.Errorf("controller: items line %d: unterminated channel", ln+1)
		}
		it.Channel = rest[at+len(key) : at+len(key)+end]
		if strings.Count(it.Channel, ":") != 3 {
			return nil, fmt.Errorf("controller: items line %d: channel %q is not binding:type:id:channel", ln+1, it.Channel)
		}
		out = append(out, it)
	}
	return out, nil
}

// bindingRatings maps known bindings to default device ratings for the
// energy model; unknown bindings get conservative defaults.
var bindingRatings = map[string]struct {
	class  device.Class
	rating units.Power
}{
	"daikin": {device.ClassHVAC, 600 * units.Watt},
	"hue":    {device.ClassLight, 55 * units.Watt},
}

// DevicesFromConfig joins parsed things and items into device
// descriptors for the registry: each thing with at least one linked
// item becomes a device, addressed by its host config.
func DevicesFromConfig(things []Thing, items []Item, zone int) ([]device.Descriptor, error) {
	linked := make(map[string]bool)
	for _, it := range items {
		linked[it.ThingUID()] = true
	}
	var out []device.Descriptor
	for _, th := range things {
		if !linked[th.UID()] {
			continue
		}
		spec, ok := bindingRatings[th.Binding]
		if !ok {
			spec.class = device.ClassSensor
		}
		host := th.Config["host"]
		if host == "" {
			return nil, fmt.Errorf("controller: thing %s has no host config", th.UID())
		}
		d := device.Descriptor{
			ID:     th.UID(),
			Name:   th.ID,
			Class:  spec.class,
			Zone:   zone,
			Rating: spec.rating,
			Addr:   host,
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// splitConfig separates "body [ k="v", … ]" into body and config map.
func splitConfig(line string) (string, map[string]string, error) {
	open := strings.IndexByte(line, '[')
	if open < 0 {
		return strings.TrimSpace(line), nil, nil
	}
	closeAt := strings.LastIndexByte(line, ']')
	if closeAt < open {
		return "", nil, fmt.Errorf("unterminated config bracket")
	}
	cfg := make(map[string]string)
	for _, kv := range strings.Split(line[open+1:closeAt], ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("bad config entry %q", kv)
		}
		v = strings.TrimSpace(v)
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", nil, fmt.Errorf("config value %q must be quoted", v)
		}
		cfg[strings.TrimSpace(k)] = v[1 : len(v)-1]
	}
	return strings.TrimSpace(line[:open]), cfg, nil
}

// stripLineComment removes '//' comments and surrounding space.
func stripLineComment(line string) string {
	if at := strings.Index(line, "//"); at >= 0 {
		line = line[:at]
	}
	return strings.TrimSpace(line)
}
