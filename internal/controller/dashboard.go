package controller

import "net/http"

// dashboardHTML is the embedded panel UI, standing in for the paper's
// Laravel GUI (Fig. 5): a dashboard of the smart space's current state,
// the Meta-Rule Table with conflicts, the last energy plan, and the
// firewall view — all rendered client-side from the REST API.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>IMCF — IoT Meta-Control Firewall</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  table { border-collapse: collapse; min-width: 40rem; }
  th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }
  th { background: #f2f2f2; }
  .on { color: #0a7c22; font-weight: 600; } .off { color: #999; }
  .blocked { color: #b00020; font-weight: 600; }
  .drop { color: #b00020; } .exec { color: #0a7c22; }
  code { background: #f6f6f6; padding: 0 .3rem; }
  #refresh { margin-left: 1rem; }
  .muted { color: #777; }
</style>
</head>
<body>
<h1>IMCF — IoT Meta-Control Firewall
  <button id="refresh" onclick="refresh()">refresh</button>
  <button onclick="runPlan()">run EP now</button>
</h1>
<p class="muted">Local Controller panel. Data from <code>/rest/*</code>.</p>

<h2>Things</h2>
<table id="items"><thead><tr>
  <th>Item</th><th>Class</th><th>Zone</th><th>Address</th>
  <th>State</th><th>Setpoint</th><th>Commands</th><th>Firewall</th>
</tr></thead><tbody></tbody></table>

<h2>Last energy plan</h2>
<div id="plan" class="muted">no plan has run yet</div>

<h2>Summary</h2>
<div id="summary" class="muted">—</div>

<h2>Meta-Rule conflicts</h2>
<div id="conflicts" class="muted">—</div>

<h2>Firewall</h2>
<div id="firewall" class="muted">—</div>

<script>
async function getJSON(path) {
  const r = await fetch(path);
  if (!r.ok) throw new Error(path + ': ' + r.status);
  return r.json();
}
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));
}
async function refresh() {
  try {
    const items = await getJSON('/rest/items');
    document.querySelector('#items tbody').innerHTML = items.map(i => '<tr>' +
      '<td>' + esc(i.id) + '</td><td>' + esc(i.class) + '</td><td>' + i.zone + '</td>' +
      '<td><code>' + esc(i.addr) + '</code></td>' +
      '<td class="' + (i.on ? 'on">on' : 'off">off') + '</td>' +
      '<td>' + i.setpoint + '</td><td>' + i.commands + '</td>' +
      '<td>' + (i.blocked ? '<span class="blocked">DROP</span>' : 'accept') + '</td></tr>').join('');
  } catch (e) { console.error(e); }
  try {
    const p = await getJSON('/rest/plan');
    document.getElementById('plan').innerHTML =
      esc(p.time) + ' — budget ' + p.budgetKWh.toFixed(3) + ' kWh, spent ' +
      p.energyKWh.toFixed(3) + ' kWh<br>' +
      'executed: <span class="exec">' + (p.executed || []).map(esc).join(', ') + '</span><br>' +
      'dropped: <span class="drop">' + ((p.dropped || []).map(esc).join(', ') || '—') + '</span>';
  } catch (e) { /* no plan yet */ }
  try {
    const s = await getJSON('/rest/summary');
    const owners = Object.entries(s.perOwnerErrorPct || {})
      .map(([o, v]) => esc(o) + ' ' + v.toFixed(2) + '%').join(' · ');
    document.getElementById('summary').textContent =
      s.steps + ' EP cycles — F_E ' + s.energyKWh.toFixed(2) + ' kWh, F_CE ' +
      s.convenienceErrorPct.toFixed(2) + '%' + (owners ? ' (' + owners + ')' : '');
  } catch (e) { console.error(e); }
  try {
    const cs = await getJSON('/rest/mrt/conflicts');
    document.getElementById('conflicts').innerHTML = cs.length === 0
      ? 'none detected'
      : cs.map(c => '<b>' + esc(c.kind) + '</b>: ' + esc(c.detail)).join('<br>');
  } catch (e) { console.error(e); }
  try {
    const f = await getJSON('/rest/firewall');
    document.getElementById('firewall').innerHTML =
      f.allowed + ' flows allowed, ' + f.dropped + ' dropped<br>' +
      ((f.rules || []).map(r => '<code>' + esc(r) + '</code>').join('<br>') || 'no block rules');
  } catch (e) { console.error(e); }
}
async function runPlan() {
  await fetch('/rest/plan/run', {method: 'POST'});
  refresh();
}
refresh();
setInterval(refresh, 5000);
</script>
</body>
</html>
`

// dashboardHandler serves the embedded panel at the root path.
func dashboardHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML)) //nolint:errcheck // static response
	}
}
