package controller

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/simclock"
)

func TestStepRecordsMeasurements(t *testing.T) {
	svc, err := persistence.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clock := simclock.NewSimClock(winterNight)
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Persistence = svc
	})
	for i := 0; i < 24; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}

	items, err := svc.Items()
	if err != nil {
		t.Fatal(err)
	}
	// 3 zones × (temperature + light).
	if len(items) != 6 {
		t.Fatalf("items = %v", items)
	}
	recs, err := svc.Query("zone0/temperature", winterNight.Add(-time.Hour), winterNight.Add(25*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 24 {
		t.Errorf("recorded %d readings, want 24", len(recs))
	}
	for _, r := range recs {
		if r.Value < -10 || r.Value > 45 {
			t.Errorf("implausible temperature %v", r.Value)
		}
	}
}

func TestPersistenceAPI(t *testing.T) {
	svc, err := persistence.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clock := simclock.NewSimClock(winterNight)
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Persistence = svc
	})
	srv := httptest.NewServer(API(c))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}

	var items []string
	if code := getJSON(t, srv.URL+"/rest/persistence/items", &items); code != http.StatusOK {
		t.Fatalf("items = %d", code)
	}
	if len(items) != 6 {
		t.Fatalf("items = %v", items)
	}

	from := winterNight.Add(-time.Hour).Format(time.RFC3339)
	to := winterNight.Add(6 * time.Hour).Format(time.RFC3339)

	var points []struct {
		Time  time.Time `json:"time"`
		Value float64   `json:"value"`
	}
	url := fmt.Sprintf("%s/rest/persistence/data/zone0/temperature?from=%s&to=%s", srv.URL, from, to)
	if code := getJSON(t, url, &points); code != http.StatusOK {
		t.Fatalf("data = %d", code)
	}
	if len(points) != 4 {
		t.Errorf("points = %d, want 4", len(points))
	}

	var buckets []persistence.Bucket
	url = fmt.Sprintf("%s/rest/persistence/data/zone0/temperature?from=%s&to=%s&bucket=2h", srv.URL, from, to)
	if code := getJSON(t, url, &buckets); code != http.StatusOK {
		t.Fatalf("bucket data = %d", code)
	}
	// Readings at 03:00–06:00 truncate into the 02:00, 04:00 and
	// 06:00 two-hour buckets.
	if len(buckets) != 3 {
		t.Errorf("buckets = %+v", buckets)
	}

	// Error paths.
	resp, err := http.Get(srv.URL + "/rest/persistence/data/ghost?from=" + from + "&to=" + to)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost item = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/rest/persistence/data/zone0/temperature?from=yesterday&to=" + to)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from = %d", resp.StatusCode)
	}
}

func TestPersistenceDisabled(t *testing.T) {
	c := newController(t, nil)
	srv := httptest.NewServer(API(c))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/rest/persistence/items")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled persistence = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Error("no error message")
	}
}
