package controller

import (
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

// spreadOf returns the max−min gap of the per-owner errors.
func spreadOf(sum Summary) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ce := range sum.PerOwner {
		v := float64(ce)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}

func runWeek(t *testing.T, fair bool, seed uint64) Summary {
	t.Helper()
	clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
	c := newController(t, func(cfg *Config) {
		cfg.Clock = clock
		cfg.FairPlanning = fair
		cfg.CarryCapHours = 5.5 // the Table IV stress regime, where drops occur
		cfg.Planner.Seed = seed
	})
	for i := 0; i < 7*24; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	return c.Summary()
}

func TestFairPlanningBalancesResidents(t *testing.T) {
	var plainSpread, fairSpread, plainErr, fairErr float64
	const reps = 3
	for seed := uint64(0); seed < reps; seed++ {
		plain := runWeek(t, false, seed)
		fair := runWeek(t, true, seed)
		plainSpread += spreadOf(plain)
		fairSpread += spreadOf(fair)
		plainErr += float64(plain.ConvenienceError)
		fairErr += float64(fair.ConvenienceError)
		if fair.Energy > units.Energy(home.PrototypeWeeklyBudget.KWh()*1.05) {
			t.Errorf("fair week exceeded budget: %v", fair.Energy)
		}
	}
	t.Logf("plain: spread %.3f pp, F_CE %.2f%%; fair: spread %.3f pp, F_CE %.2f%%",
		plainSpread/reps, plainErr/reps, fairSpread/reps, fairErr/reps)
	// Fairness must not widen the per-resident gap, and the total error
	// may only degrade moderately.
	if fairSpread > plainSpread*1.05+0.1 {
		t.Errorf("fair spread %.3f worse than plain %.3f", fairSpread/reps, plainSpread/reps)
	}
	if fairErr > plainErr*1.5+0.5 {
		t.Errorf("fair total error %.2f much worse than plain %.2f", fairErr/reps, plainErr/reps)
	}
}
