// Package core implements the paper's primary contribution: the Energy
// Planner (EP), the AI-inspired search that selects which meta-rules to
// execute in a time slot so that convenience error is minimized subject
// to the amortized energy budget E_p (Algorithm 1 of the paper).
//
// The planner operates on an abstract per-slot Problem — each active
// rule's drop error (the convenience lost when the rule is ignored) and
// execution energy — which the simulation layer derives from traces,
// rules and device ratings. A solution is the paper's binary vector
// s = ⟨s_1 … s_N⟩: s_i = 1 executes meta-rule i, s_i = 0 ignores it.
//
// Besides the paper's k-opt hill climbing, the package provides the NR
// and MR baselines, a simulated-annealing variant (the paper notes "any
// heuristic or meta-heuristic approach can be utilized in the EP
// optimization step"), and an exhaustive optimum for small N used to
// bound the heuristics in tests and ablations.
package core

import (
	"fmt"
	"math/rand/v2"

	"github.com/imcf/imcf/internal/metrics"
)

// RuleCost describes one rule that is active in the current slot.
type RuleCost struct {
	// DropError is the convenience error ce incurred if the rule is
	// ignored this slot (0 when ambient already satisfies the user).
	DropError float64
	// Energy is e_j: the energy consumed if the rule executes (kWh).
	Energy float64
}

// Problem is one slot's planning input.
type Problem struct {
	// Costs lists the active rules.
	Costs []RuleCost
	// Budget is E_p: the slot's energy allowance in kWh.
	Budget float64
}

// Validate reports whether the problem is well-formed.
func (p Problem) Validate() error {
	if p.Budget < 0 {
		return fmt.Errorf("core: negative budget %v", p.Budget)
	}
	for i, c := range p.Costs {
		if c.DropError < 0 || c.Energy < 0 {
			return fmt.Errorf("core: rule %d has negative cost (%+v)", i, c)
		}
	}
	return nil
}

// Solution is the binary activation vector s: Solution[i] reports
// whether rule i executes.
type Solution []bool

// Clone returns a copy of the solution.
func (s Solution) Clone() Solution {
	out := make(Solution, len(s))
	copy(out, s)
	return out
}

// CountOn returns the number of executed rules.
func (s Solution) CountOn() int {
	n := 0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}

// Eval is a solution's objective values: F_E (energy) and F_CE (error),
// both summed over the slot's rules.
type Eval struct {
	Energy float64
	Error  float64
}

// Feasible reports whether the evaluation satisfies F_E ≤ budget.
func (e Eval) Feasible(budget float64) bool { return e.Energy <= budget+1e-12 }

// Evaluate computes a solution's objectives against a problem.
// It panics if the lengths differ, which indicates a programming error.
//
//imcf:noalloc
func Evaluate(p Problem, s Solution) Eval {
	if len(s) != len(p.Costs) {
		//imcf:allow noalloc panic path only; unreachable in a correct program
		panic(fmt.Sprintf("core: solution length %d != problem size %d", len(s), len(p.Costs)))
	}
	var e Eval
	for i, on := range s {
		if on {
			e.Energy += p.Costs[i].Energy
		} else {
			e.Error += p.Costs[i].DropError
		}
	}
	return e
}

// InitStrategy selects the initial solution of the local search
// (Fig. 8's experiment dimensions).
type InitStrategy int

// Initialization strategies.
const (
	// InitAllOn starts from the all-1s vector: every rule executes
	// ("greedily triggered, favoring the convenience error objective").
	InitAllOn InitStrategy = iota + 1
	// InitRandom starts from a uniformly random vector.
	InitRandom
	// InitAllOff starts from the all-0s vector.
	InitAllOff
)

// String returns the strategy name as used in Fig. 8.
func (s InitStrategy) String() string {
	switch s {
	case InitAllOn:
		return "all-1s"
	case InitRandom:
		return "random"
	case InitAllOff:
		return "all-0s"
	default:
		return fmt.Sprintf("InitStrategy(%d)", int(s))
	}
}

// Heuristic selects the optimization engine inside EP.
type Heuristic int

// Available optimization engines.
const (
	// HillClimb is the paper's k-opt hill-climbing local search.
	HillClimb Heuristic = iota + 1
	// Anneal is a simulated-annealing variant with the same k-flip
	// neighbourhood.
	Anneal
	// Exhaustive enumerates all 2^N solutions (N ≤ ExhaustiveMaxN).
	Exhaustive
)

// String returns the heuristic name.
func (h Heuristic) String() string {
	switch h {
	case HillClimb:
		return "hill-climb"
	case Anneal:
		return "anneal"
	case Exhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// ExhaustiveMaxN bounds the exhaustive engine's problem size.
const ExhaustiveMaxN = 24

// Config parameterizes the Energy Planner.
type Config struct {
	// K is the number of components flipped per iteration (k-opt).
	K int
	// MaxIter is τ_max, the iteration budget of the local search.
	MaxIter int
	// Init selects the initial solution.
	Init InitStrategy
	// Heuristic selects the optimization engine. Zero value means
	// HillClimb.
	Heuristic Heuristic
	// Seed seeds the planner's deterministic RNG.
	Seed uint64
	// KeepZeroGain, when false (the default), forces rules whose
	// DropError is zero to stay off: executing them burns budget
	// without improving convenience. This is one of the
	// domain-specific operators the paper's EP exploits. Set true to
	// disable the pruning (used by ablations).
	KeepZeroGain bool
	// DisableRepair skips the final greedy feasibility repair, leaving
	// exactly the paper's Algorithm 1 acceptance loop (used by
	// ablations).
	DisableRepair bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: k = %d must be ≥ 1", c.K)
	}
	if c.MaxIter < 0 {
		return fmt.Errorf("core: max iterations %d negative", c.MaxIter)
	}
	if c.Init < InitAllOn || c.Init > InitAllOff {
		return fmt.Errorf("core: invalid init strategy %d", c.Init)
	}
	h := c.Heuristic
	if h == 0 {
		h = HillClimb
	}
	if h < HillClimb || h > Exhaustive {
		return fmt.Errorf("core: invalid heuristic %d", c.Heuristic)
	}
	return nil
}

// DefaultConfig returns the evaluation defaults: 4-opt hill climbing,
// 100 iterations, all-1s initialization.
func DefaultConfig() Config {
	return Config{K: 4, MaxIter: 100, Init: InitAllOn, Heuristic: HillClimb}
}

// Planner runs the EP search. It is reusable across slots and carries a
// deterministic RNG; it is not safe for concurrent use (create one
// planner per goroutine).
//
// To keep the per-window hot path allocation-free, Plan and PlanFair
// return a Solution backed by planner-owned scratch that is overwritten
// by the next Plan/PlanFair call. Callers that retain a solution across
// calls must Clone it first.
type Planner struct {
	cfg Config
	rng *rand.Rand
	// scratch buffers reused across Plan calls: the incumbent solution
	// (returned to the caller), annealing's second solution, the
	// flippable index set, the per-iteration flip picks, and repair's
	// candidate list.
	sol    Solution
	solB   Solution
	idx    []int
	flips  []int
	repair []repairCand
	// flipIter[i] is the k-opt iteration that last flipped bit i in the
	// current plan, or a Flip* sentinel — provenance for DecisionRecorder.
	flipIter []int
	// rec, when non-nil, receives one callback per rule after each
	// Plan/PlanFair call (see recorder.go).
	rec DecisionRecorder
}

// NewPlanner validates the configuration and returns a planner.
func NewPlanner(cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Heuristic == 0 {
		cfg.Heuristic = HillClimb
	}
	return &Planner{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15)),
	}, nil
}

// Config returns the planner's configuration.
func (pl *Planner) Config() Config { return pl.cfg }

// Plan computes an energy plan for the slot: the activation vector and
// its evaluation. The returned solution satisfies the budget whenever a
// feasible solution exists (all-0s always is, since energy costs are
// non-negative).
//
// The returned Solution aliases planner-owned scratch and is valid only
// until the next Plan/PlanFair call on this planner; Clone it to retain.
func (pl *Planner) Plan(p Problem) (Solution, Eval, error) {
	if err := p.Validate(); err != nil {
		return nil, Eval{}, err
	}
	n := len(p.Costs)
	if n == 0 {
		return Solution{}, Eval{}, nil
	}

	metrics.PlannerPlans.Inc()
	pl.resetFlipIter(n)
	switch pl.cfg.Heuristic {
	case Exhaustive:
		if n > ExhaustiveMaxN {
			return nil, Eval{}, fmt.Errorf("core: exhaustive search limited to N ≤ %d, got %d", ExhaustiveMaxN, n)
		}
		s, e := exhaustive(p, pl.cfg.KeepZeroGain)
		pl.emit(p, s, e)
		return s, e, nil
	case Anneal:
		s, e := pl.anneal(p)
		pl.emit(p, s, e)
		return s, e, nil
	default:
		s, e := pl.hillClimb(p)
		pl.emit(p, s, e)
		return s, e, nil
	}
}

// init builds the initial solution per the configured strategy, with
// zero-gain rules forced off unless KeepZeroGain is set. The result is
// backed by the planner's solution scratch.
//
//imcf:noalloc
func (pl *Planner) initial(p Problem) Solution {
	n := len(p.Costs)
	if cap(pl.sol) < n {
		pl.sol = make(Solution, n)
	}
	s := pl.sol[:n]
	switch pl.cfg.Init {
	case InitAllOn:
		for i := range s {
			s[i] = true
		}
	case InitRandom:
		for i := range s {
			s[i] = pl.rng.Uint64()&1 == 1
		}
	default:
		for i := range s {
			s[i] = false
		}
	}
	if !pl.cfg.KeepZeroGain {
		for i, c := range p.Costs {
			if c.DropError == 0 {
				s[i] = false
			}
		}
	}
	return s
}

// flippable returns the indices the search may flip: all of them, or
// only the useful ones when zero-gain pruning is on. The result is
// backed by the planner's index scratch.
//
//imcf:noalloc
func (pl *Planner) flippable(p Problem) []int {
	if cap(pl.idx) < len(p.Costs) {
		pl.idx = make([]int, 0, len(p.Costs))
	}
	idx := pl.idx[:0]
	for i, c := range p.Costs {
		if pl.cfg.KeepZeroGain || c.DropError > 0 {
			idx = append(idx, i)
		}
	}
	pl.idx = idx
	return idx
}

// hillClimb is Algorithm 1's EP routine: flip k uniformly random
// components of the incumbent s*, accept when the candidate is feasible
// and strictly better. While the incumbent itself is infeasible (e.g.
// from an over-budget all-1s initialization), candidates that reduce
// energy are accepted instead, driving the search into the feasible
// region — Algorithm 1 as printed would otherwise never leave an
// infeasible initial solution, since no candidate can beat its zero
// convenience error.
//
//imcf:noalloc
func (pl *Planner) hillClimb(p Problem) (Solution, Eval) {
	best := pl.initial(p)
	bestEval := Evaluate(p, best)
	idx := pl.flippable(p)

	if len(idx) > 0 {
		k := pl.cfg.K
		if k > len(idx) {
			k = len(idx)
		}
		if cap(pl.flips) < k {
			pl.flips = make([]int, k)
		}

		for iter := 0; iter < pl.cfg.MaxIter; iter++ {
			// Choose up to k distinct components among the flippable
			// ones ("neighborhoods that involve changing up to k
			// components of the solution").
			flips := pl.flips[:1+pl.rng.IntN(k)]
			pl.sampleDistinct(idx, flips)
			// Incrementally evaluate the candidate.
			cand := bestEval
			for _, i := range flips {
				if best[i] {
					cand.Energy -= p.Costs[i].Energy
					cand.Error += p.Costs[i].DropError
				} else {
					cand.Energy += p.Costs[i].Energy
					cand.Error -= p.Costs[i].DropError
				}
			}
			if accept(cand, bestEval, p.Budget) {
				for _, i := range flips {
					best[i] = !best[i]
					pl.flipIter[i] = iter
				}
				bestEval = cand
			}
		}
		// One amortized add per Plan call, not one per iteration: the
		// counter stays off the per-flip path.
		metrics.PlannerIterations.Add(uint64(pl.cfg.MaxIter))
	}

	// Recompute exactly: the incremental updates accumulate float
	// rounding over many iterations.
	bestEval = Evaluate(p, best)
	if !pl.cfg.DisableRepair && !bestEval.Feasible(p.Budget) {
		bestEval = pl.repairFeasible(p, best, bestEval)
	}
	return best, bestEval
}

// accept implements the (repaired) Algorithm 1 acceptance rule:
// feasibility first, then strictly lower convenience error; ties on
// error prefer lower energy so the planner does not waste budget.
//
//imcf:noalloc
func accept(cand, incumbent Eval, budget float64) bool {
	candFeas := cand.Feasible(budget)
	incFeas := incumbent.Feasible(budget)
	switch {
	case candFeas && !incFeas:
		return true
	case !candFeas && incFeas:
		return false
	case candFeas: // both feasible
		if cand.Error != incumbent.Error {
			return cand.Error < incumbent.Error
		}
		return cand.Energy < incumbent.Energy
	default: // both infeasible: descend in energy
		return cand.Energy < incumbent.Energy
	}
}

// repairCand is one executed rule considered by the greedy repair.
type repairCand struct {
	idx   int
	ratio float64
}

// repairFeasible greedily switches off executed rules in increasing
// order of error-per-kWh until the budget holds, guaranteeing a feasible
// result. The candidate list lives in planner scratch.
//
//imcf:noalloc
func (pl *Planner) repairFeasible(p Problem, s Solution, e Eval) Eval {
	if cap(pl.repair) < len(s) {
		pl.repair = make([]repairCand, 0, len(s))
	}
	on := pl.repair[:0]
	for i, b := range s {
		if b {
			c := p.Costs[i]
			r := 0.0
			if c.Energy > 0 {
				r = c.DropError / c.Energy
			}
			on = append(on, repairCand{idx: i, ratio: r})
		}
	}
	// Selection by repeated minimum keeps this dependency-free and the
	// slices are small (N active rules).
	for !e.Feasible(p.Budget) && len(on) > 0 {
		minAt := 0
		for j := 1; j < len(on); j++ {
			if on[j].ratio < on[minAt].ratio {
				minAt = j
			}
		}
		i := on[minAt].idx
		s[i] = false
		if i < len(pl.flipIter) {
			pl.flipIter[i] = FlipRepair
		}
		e.Energy -= p.Costs[i].Energy
		e.Error += p.Costs[i].DropError
		on[minAt] = on[len(on)-1]
		on = on[:len(on)-1]
	}
	return e
}

// sampleDistinct fills out with distinct elements drawn uniformly from
// idx. When len(out) is a large fraction of len(idx) it uses a partial
// Fisher–Yates over a copy; otherwise rejection sampling.
//
//imcf:noalloc
func (pl *Planner) sampleDistinct(idx []int, out []int) {
	k, n := len(out), len(idx)
	if k*3 >= n {
		// Partial Fisher–Yates over the shared slice: swap chosen
		// elements to the front, then swap back to keep idx stable.
		for i := 0; i < k; i++ {
			j := i + pl.rng.IntN(n-i)
			idx[i], idx[j] = idx[j], idx[i]
			out[i] = idx[i]
		}
		return
	}
	for i := 0; i < k; i++ {
	retry:
		c := idx[pl.rng.IntN(n)]
		for j := 0; j < i; j++ {
			if out[j] == c {
				goto retry
			}
		}
		out[i] = c
	}
}

// exhaustive enumerates every activation vector and returns the optimum:
// the feasible solution with minimal error, ties broken by lower energy.
func exhaustive(p Problem, keepZeroGain bool) (Solution, Eval) {
	n := len(p.Costs)
	bestMask := uint32(0)
	best := Eval{Error: totalError(p)} // all-0s is always feasible
	for mask := uint32(1); mask < 1<<n; mask++ {
		var e Eval
		skip := false
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				if !keepZeroGain && p.Costs[i].DropError == 0 {
					skip = true
					break
				}
				e.Energy += p.Costs[i].Energy
			} else {
				e.Error += p.Costs[i].DropError
			}
		}
		if skip || !e.Feasible(p.Budget) {
			continue
		}
		if e.Error < best.Error || (e.Error == best.Error && e.Energy < best.Energy) {
			best, bestMask = e, mask
		}
	}
	s := make(Solution, n)
	for i := 0; i < n; i++ {
		s[i] = bestMask>>i&1 == 1
	}
	return s, best
}

func totalError(p Problem) float64 {
	var sum float64
	for _, c := range p.Costs {
		sum += c.DropError
	}
	return sum
}

// NoRule is the NR baseline: ignore every meta-rule. F_E is zero and
// F_CE is maximal.
func NoRule(p Problem) (Solution, Eval) {
	return NoRuleInto(p, nil)
}

// NoRuleInto is NoRule writing into s, reusing its capacity so per-slot
// replay loops stay allocation-free.
//
//imcf:noalloc
func NoRuleInto(p Problem, s Solution) (Solution, Eval) {
	s = resizeSolution(s, len(p.Costs))
	for i := range s {
		s[i] = false
	}
	return s, Eval{Error: totalError(p)}
}

// MetaRuleAll is the MR baseline: execute every meta-rule greedily,
// ignoring the budget. F_CE is zero and F_E is maximal.
func MetaRuleAll(p Problem) (Solution, Eval) {
	return MetaRuleAllInto(p, nil)
}

// MetaRuleAllInto is MetaRuleAll writing into s, reusing its capacity.
//
//imcf:noalloc
func MetaRuleAllInto(p Problem, s Solution) (Solution, Eval) {
	s = resizeSolution(s, len(p.Costs))
	var e Eval
	for i := range s {
		s[i] = true
		e.Energy += p.Costs[i].Energy
	}
	return s, e
}

// resizeSolution returns s with length n, reallocating only when the
// capacity is insufficient.
//
//imcf:noalloc
func resizeSolution(s Solution, n int) Solution {
	if cap(s) < n {
		return make(Solution, n)
	}
	return s[:n]
}
