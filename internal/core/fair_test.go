package core

import (
	"math"
	"testing"
	"testing/quick"
)

// conflictProblem pits two owners against each other: the budget covers
// two of the four identical rules. A total-error-optimal plan may fund
// one owner fully; the fair plan funds one rule of each.
func conflictProblem() (Problem, []int) {
	p := Problem{
		Costs: []RuleCost{
			{DropError: 0.5, Energy: 1}, // owner A
			{DropError: 0.5, Energy: 1}, // owner A
			{DropError: 0.5, Energy: 1}, // owner B
			{DropError: 0.5, Energy: 1}, // owner B
		},
		Budget: 2,
	}
	return p, []int{0, 0, 1, 1}
}

func TestEvaluateGrouped(t *testing.T) {
	p, group := conflictProblem()
	ge := EvaluateGrouped(p, Solution{true, true, false, false}, group, 2)
	if ge.Energy != 2 || ge.Error != 1 {
		t.Errorf("eval = %+v", ge.Eval)
	}
	if ge.GroupError[0] != 0 || ge.GroupError[1] != 1 {
		t.Errorf("group errors = %v", ge.GroupError)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths should panic")
		}
	}()
	EvaluateGrouped(p, Solution{true}, group, 2)
}

func TestPlanFairBalancesOwners(t *testing.T) {
	p, group := conflictProblem()
	fair := 0
	const reps = 30
	for seed := 0; seed < reps; seed++ {
		cfg := DefaultConfig()
		cfg.MaxIter = 300
		cfg.Seed = uint64(seed)
		pl, err := NewPlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sol, ge, err := pl.PlanFair(p, group, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ge.Feasible(p.Budget) {
			t.Fatalf("seed %d: infeasible %+v", seed, ge.Eval)
		}
		if sol.CountOn() != 2 {
			t.Fatalf("seed %d: executed %d rules, want 2", seed, sol.CountOn())
		}
		if math.Abs(ge.GroupError[0]-ge.GroupError[1]) < 1e-12 {
			fair++
		}
	}
	if fair < reps*9/10 {
		t.Errorf("fair plans in %d/%d runs; minimax acceptance not effective", fair, reps)
	}
}

func TestPlanFairAsymmetricCosts(t *testing.T) {
	// Owner A has one giant-error rule; owner B three small ones. With
	// budget for two rules, minimax must fund A's rule first.
	p := Problem{
		Costs: []RuleCost{
			{DropError: 2.0, Energy: 1}, // A
			{DropError: 0.3, Energy: 1}, // B
			{DropError: 0.3, Energy: 1}, // B
			{DropError: 0.3, Energy: 1}, // B
		},
		Budget: 2,
	}
	group := []int{0, 1, 1, 1}
	cfg := DefaultConfig()
	cfg.MaxIter = 500
	cfg.Seed = 7
	pl, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, ge, err := pl.PlanFair(p, group, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sol[0] {
		t.Errorf("minimax dropped the giant-error rule: %v %+v", sol, ge)
	}
	if ge.GroupError[0] != 0 {
		t.Errorf("owner A error = %v", ge.GroupError[0])
	}
	// One of B's rules funded, two dropped.
	if math.Abs(ge.GroupError[1]-0.6) > 1e-9 {
		t.Errorf("owner B error = %v, want 0.6", ge.GroupError[1])
	}
}

func TestPlanFairOffsetsSteerTowardIndebtedGroup(t *testing.T) {
	// Two identical competing rules, budget for one. Group 0 carries
	// error debt from earlier slots, so the fair plan must fund its
	// rule now.
	p := Problem{
		Costs: []RuleCost{
			{DropError: 0.5, Energy: 1}, // group 0, indebted
			{DropError: 0.5, Energy: 1}, // group 1
		},
		Budget: 1,
	}
	group := []int{0, 1}
	for seed := uint64(0); seed < 20; seed++ {
		cfg := DefaultConfig()
		cfg.MaxIter = 200
		cfg.Seed = seed
		pl, err := NewPlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sol, ge, err := pl.PlanFair(p, group, 2, []float64{3.0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if !sol[0] || sol[1] {
			t.Fatalf("seed %d: solution %v favours the undebted group (%+v)", seed, sol, ge)
		}
		// Returned errors exclude the offsets.
		if ge.GroupError[0] != 0 || ge.GroupError[1] != 0.5 {
			t.Fatalf("seed %d: group errors %v", seed, ge.GroupError)
		}
	}
	// Offset length mismatch is rejected.
	pl := newPlanner(t, nil)
	if _, _, err := pl.PlanFair(p, group, 2, []float64{1}); err == nil {
		t.Error("short offsets accepted")
	}
}

func TestPlanFairValidation(t *testing.T) {
	pl := newPlanner(t, nil)
	p, group := conflictProblem()
	if _, _, err := pl.PlanFair(p, group[:2], 2, nil); err == nil {
		t.Error("short group slice accepted")
	}
	if _, _, err := pl.PlanFair(p, group, 0, nil); err == nil {
		t.Error("zero groups accepted")
	}
	if _, _, err := pl.PlanFair(p, []int{0, 0, 2, 1}, 2, nil); err == nil {
		t.Error("out-of-range group accepted")
	}
	bad := p
	bad.Budget = -1
	if _, _, err := pl.PlanFair(bad, group, 2, nil); err == nil {
		t.Error("invalid problem accepted")
	}
	sol, ge, err := pl.PlanFair(Problem{}, nil, 3, nil)
	if err != nil || len(sol) != 0 || len(ge.GroupError) != 3 {
		t.Errorf("empty problem = %v %+v %v", sol, ge, err)
	}
}

func TestPropertyPlanFairInvariants(t *testing.T) {
	f := func(errs []uint8, energies []uint8, budgetRaw uint16, seed uint16, groupsRaw uint8) bool {
		p := randomProblem(errs, energies, budgetRaw)
		nGroups := 1 + int(groupsRaw%4)
		group := make([]int, len(p.Costs))
		for i := range group {
			group[i] = i % nGroups
		}
		cfg := DefaultConfig()
		cfg.MaxIter = 100
		cfg.Seed = uint64(seed)
		pl, err := NewPlanner(cfg)
		if err != nil {
			return false
		}
		sol, ge, err := pl.PlanFair(p, group, nGroups, nil)
		if err != nil {
			return false
		}
		if !ge.Feasible(p.Budget) {
			return false
		}
		// Group errors must sum to the total error.
		var sum float64
		for _, e := range ge.GroupError {
			sum += e
		}
		if math.Abs(sum-ge.Error) > 1e-9 {
			return false
		}
		// Consistency with the plain evaluation.
		plain := Evaluate(p, sol)
		return math.Abs(plain.Energy-ge.Energy) < 1e-9 && math.Abs(plain.Error-ge.Error) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
