package core

// This file is the planner's decision-provenance hook. The planner
// itself stays ignorant of rule identities, slots and traces — it
// reports verdicts by problem index, and the callers (the live
// controller, the simulator) install a DecisionRecorder adapter that
// enriches the index with context and forwards to internal/journal.
// Keeping the hook index-based keeps core free of journal/time imports
// and keeps the no-recorder cost at a single nil check per Plan call.

// FlipIter sentinels reported through DecisionRecorder. Non-negative
// values are the k-opt iteration that last flipped the rule's bit.
const (
	// FlipNever marks a bit the search never flipped: it kept the value
	// the initialization strategy (or zero-gain pruning) gave it.
	FlipNever = -1
	// FlipRepair marks a bit switched off by the greedy feasibility
	// repair after the search.
	FlipRepair = -2
)

// DecisionRecorder receives one callback per rule after every
// Plan/PlanFair call: the rule's problem index, its verdict, the k-opt
// iteration that last flipped its bit (or a Flip* sentinel), the budget
// remaining after the whole plan (E_p − F_E, negative when repair was
// disabled and the plan is infeasible), the rule's own energy cost, and
// the convenience error the verdict adds to F_CE (zero for executed
// rules). Callbacks run on the planning goroutine and must not retain
// references past the call — the planner's scratch is reused.
type DecisionRecorder interface {
	RecordDecision(i int, executed bool, flipIter int, epRemainingKWh, energyKWh, fceDelta float64)
}

// SetRecorder installs (or, with nil, removes) the planner's decision
// recorder. Recording is read-only with respect to the search: it runs
// after the plan is final and cannot perturb results.
func (pl *Planner) SetRecorder(r DecisionRecorder) { pl.rec = r }

// resetFlipIter sizes the flip-provenance scratch for an n-rule problem
// and marks every bit untouched. Reuses capacity like the other planner
// scratch buffers.
//
//imcf:noalloc
func (pl *Planner) resetFlipIter(n int) {
	if cap(pl.flipIter) < n {
		pl.flipIter = make([]int, n)
	}
	pl.flipIter = pl.flipIter[:n]
	for i := range pl.flipIter {
		pl.flipIter[i] = FlipNever
	}
}

// emit reports the finished plan to the recorder, one callback per
// rule. The exhaustive engine does not track per-bit flips, so its
// rules report FlipNever.
func (pl *Planner) emit(p Problem, s Solution, e Eval) {
	if pl.rec == nil {
		return
	}
	rem := p.Budget - e.Energy
	for i, on := range s {
		fi := FlipNever
		if i < len(pl.flipIter) {
			fi = pl.flipIter[i]
		}
		delta := 0.0
		if !on {
			delta = p.Costs[i].DropError
		}
		pl.rec.RecordDecision(i, on, fi, rem, p.Costs[i].Energy, delta)
	}
}
