package core

import (
	"math"
	"testing"
	"testing/quick"
)

// smallProblem is a hand-checkable 4-rule slot: budget admits two of the
// three energy-hungry rules plus the free one.
func smallProblem() Problem {
	return Problem{
		Costs: []RuleCost{
			{DropError: 0.9, Energy: 0.6},  // expensive, important
			{DropError: 0.5, Energy: 0.6},  // expensive, medium
			{DropError: 0.1, Energy: 0.6},  // expensive, minor
			{DropError: 0.7, Energy: 0.05}, // cheap, important
		},
		Budget: 1.3,
	}
}

func newPlanner(t *testing.T, mut func(*Config)) *Planner {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	if mut != nil {
		mut(&cfg)
	}
	pl, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestEvaluate(t *testing.T) {
	p := smallProblem()
	e := Evaluate(p, Solution{true, false, false, true})
	if math.Abs(e.Energy-0.65) > 1e-12 {
		t.Errorf("Energy = %v, want 0.65", e.Energy)
	}
	if math.Abs(e.Error-0.6) > 1e-12 {
		t.Errorf("Error = %v, want 0.6", e.Error)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Evaluate(p, Solution{true})
}

func TestBaselines(t *testing.T) {
	p := smallProblem()
	s, e := NoRule(p)
	if s.CountOn() != 0 || e.Energy != 0 {
		t.Errorf("NR = %v, %+v", s, e)
	}
	if math.Abs(e.Error-2.2) > 1e-12 {
		t.Errorf("NR error = %v, want 2.2", e.Error)
	}
	s, e = MetaRuleAll(p)
	if s.CountOn() != 4 || e.Error != 0 {
		t.Errorf("MR = %v, %+v", s, e)
	}
	if math.Abs(e.Energy-1.85) > 1e-12 {
		t.Errorf("MR energy = %v, want 1.85", e.Energy)
	}
}

func TestExhaustiveOptimum(t *testing.T) {
	pl := newPlanner(t, func(c *Config) { c.Heuristic = Exhaustive })
	p := smallProblem()
	s, e, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: execute rules 0, 1 (1.2 kWh) and 3 (0.05) = 1.25 ≤ 1.3,
	// dropping only rule 2 for error 0.1.
	want := Solution{true, true, false, true}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("exhaustive solution = %v, want %v", s, want)
		}
	}
	if math.Abs(e.Error-0.1) > 1e-12 || !e.Feasible(p.Budget) {
		t.Errorf("exhaustive eval = %+v", e)
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	pl := newPlanner(t, func(c *Config) { c.Heuristic = Exhaustive })
	p := Problem{Costs: make([]RuleCost, ExhaustiveMaxN+1), Budget: 1}
	if _, _, err := pl.Plan(p); err == nil {
		t.Error("oversized exhaustive problem accepted")
	}
}

func TestHillClimbFindsGoodSolution(t *testing.T) {
	for _, init := range []InitStrategy{InitAllOn, InitRandom, InitAllOff} {
		pl := newPlanner(t, func(c *Config) { c.Init = init; c.MaxIter = 300 })
		p := smallProblem()
		s, e, err := pl.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Feasible(p.Budget) {
			t.Errorf("init %v: infeasible result %+v", init, e)
		}
		if e.Error > 0.5+1e-12 {
			t.Errorf("init %v: error %v far from optimum 0.1", init, e.Error)
		}
		if got := Evaluate(p, s); got != e {
			t.Errorf("init %v: reported eval %+v != recomputed %+v", init, e, got)
		}
	}
}

func TestZeroGainPruning(t *testing.T) {
	p := Problem{
		Costs: []RuleCost{
			{DropError: 0, Energy: 0.6},   // ambient already fine
			{DropError: 0.8, Energy: 0.6}, // needed
		},
		Budget: 10, // plenty
	}
	pl := newPlanner(t, nil)
	s, e, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] {
		t.Error("zero-gain rule executed despite pruning")
	}
	if !s[1] || e.Error != 0 {
		t.Errorf("useful rule dropped: %v %+v", s, e)
	}
	if math.Abs(e.Energy-0.6) > 1e-12 {
		t.Errorf("energy = %v, want 0.6 (no waste)", e.Energy)
	}

	// With KeepZeroGain the greedy all-1s init keeps both on.
	pl = newPlanner(t, func(c *Config) { c.KeepZeroGain = true; c.MaxIter = 0 })
	s, e, err = pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s[0] || !s[1] {
		t.Errorf("KeepZeroGain all-1s init = %v", s)
	}
	if math.Abs(e.Energy-1.2) > 1e-12 {
		t.Errorf("energy = %v, want 1.2", e.Energy)
	}
}

func TestRepairGuaranteesFeasibility(t *testing.T) {
	// Zero iterations: all-1s init is infeasible and only repair fixes it.
	pl := newPlanner(t, func(c *Config) { c.MaxIter = 0 })
	p := smallProblem()
	s, e, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Feasible(p.Budget) {
		t.Fatalf("repair left infeasible eval %+v", e)
	}
	if got := Evaluate(p, s); got != e {
		t.Errorf("eval mismatch: %+v vs %+v", e, got)
	}
	// Repair drops by error-per-kWh: rule 2 (0.1/0.6) goes first.
	if s[2] {
		t.Errorf("repair kept the least valuable rule: %v", s)
	}

	// DisableRepair leaves Algorithm 1's raw outcome.
	pl = newPlanner(t, func(c *Config) { c.MaxIter = 0; c.DisableRepair = true })
	_, e, err = pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Feasible(p.Budget) {
		t.Errorf("with repair disabled and zero iterations, all-1s should stay infeasible: %+v", e)
	}
}

func TestZeroBudget(t *testing.T) {
	// With E_p = 0 the planner must act as NR (paper Lemma 1's worst
	// case).
	p := smallProblem()
	p.Budget = 0
	for _, h := range []Heuristic{HillClimb, Anneal, Exhaustive} {
		pl := newPlanner(t, func(c *Config) { c.Heuristic = h })
		s, e, err := pl.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.CountOn() != 0 || e.Energy != 0 {
			t.Errorf("%v: zero budget executed rules: %v %+v", h, s, e)
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	pl := newPlanner(t, nil)
	s, e, err := pl.Plan(Problem{})
	if err != nil || len(s) != 0 || e != (Eval{}) {
		t.Errorf("empty problem = %v, %+v, %v", s, e, err)
	}
}

func TestProblemValidation(t *testing.T) {
	pl := newPlanner(t, nil)
	if _, _, err := pl.Plan(Problem{Budget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	bad := Problem{Costs: []RuleCost{{DropError: -0.1, Energy: 1}}, Budget: 1}
	if _, _, err := pl.Plan(bad); err == nil {
		t.Error("negative drop error accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, MaxIter: 10, Init: InitAllOn},
		{K: 1, MaxIter: -1, Init: InitAllOn},
		{K: 1, MaxIter: 10, Init: 0},
		{K: 1, MaxIter: 10, Init: InitAllOn, Heuristic: 9},
	}
	for i, c := range bad {
		if _, err := NewPlanner(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := smallProblem()
	run := func() (Solution, Eval) {
		pl := newPlanner(t, func(c *Config) { c.Init = InitRandom; c.Seed = 99 })
		s, e, err := pl.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		return s, e
	}
	s1, e1 := run()
	s2, e2 := run()
	if e1 != e2 {
		t.Errorf("same seed diverged: %+v vs %+v", e1, e2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("same seed produced different solutions")
			break
		}
	}
}

func TestKOptImprovesWithK(t *testing.T) {
	// A 1-flip trap: from all-0s, switching on B or C first (error
	// 0.55) blocks every further single flip — A or the sibling would
	// exceed the budget — while the optimum is A alone (error 0.5).
	// Escaping the trap requires a coordinated 2-flip, so k ≥ 2 must
	// do at least as well as k = 1 on average.
	p := Problem{
		Costs: []RuleCost{
			{DropError: 0.30, Energy: 1.0}, // A: the optimum alone
			{DropError: 0.25, Energy: 0.6}, // B
			{DropError: 0.25, Energy: 0.6}, // C
		},
		Budget: 1.0,
	}
	meanErr := func(k int) float64 {
		var sum float64
		const reps = 60
		for seed := 0; seed < reps; seed++ {
			pl := newPlanner(t, func(c *Config) {
				c.K = k
				c.MaxIter = 80
				c.Seed = uint64(seed)
				c.Init = InitAllOff
			})
			_, e, err := pl.Plan(p)
			if err != nil {
				t.Fatal(err)
			}
			sum += e.Error
		}
		return sum / reps
	}
	e1, e2, e4 := meanErr(1), meanErr(2), meanErr(4)
	if e2 > e1+1e-9 {
		t.Errorf("k=2 mean error %v worse than k=1 %v", e2, e1)
	}
	if e4 > e1+1e-9 {
		t.Errorf("k=4 mean error %v worse than k=1 %v", e4, e1)
	}
	if e1 <= 0.5+1e-9 {
		t.Errorf("k=1 mean error %v escaped the trap; test premise broken", e1)
	}
}

func TestAnnealComparableToHillClimb(t *testing.T) {
	p := smallProblem()
	hc := newPlanner(t, func(c *Config) { c.MaxIter = 200 })
	an := newPlanner(t, func(c *Config) { c.Heuristic = Anneal; c.MaxIter = 200 })
	_, eh, err := hc.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	_, ea, err := an.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ea.Feasible(p.Budget) {
		t.Errorf("anneal infeasible: %+v", ea)
	}
	if ea.Error > eh.Error+0.5 {
		t.Errorf("anneal error %v much worse than hill climb %v", ea.Error, eh.Error)
	}
}

func TestSolutionHelpers(t *testing.T) {
	s := Solution{true, false, true}
	c := s.Clone()
	c[0] = false
	if !s[0] {
		t.Error("Clone aliases the original")
	}
	if s.CountOn() != 2 {
		t.Errorf("CountOn = %d", s.CountOn())
	}
}

func TestStringers(t *testing.T) {
	if InitAllOn.String() != "all-1s" || InitRandom.String() != "random" || InitAllOff.String() != "all-0s" {
		t.Error("init strategy names wrong")
	}
	if HillClimb.String() != "hill-climb" || Anneal.String() != "anneal" || Exhaustive.String() != "exhaustive" {
		t.Error("heuristic names wrong")
	}
}

// randomProblem builds a bounded random problem from quick's raw values.
func randomProblem(errs []uint8, energies []uint8, budgetRaw uint16) Problem {
	n := len(errs)
	if len(energies) < n {
		n = len(energies)
	}
	if n > 12 {
		n = 12
	}
	p := Problem{Budget: float64(budgetRaw%400) / 100}
	for i := 0; i < n; i++ {
		p.Costs = append(p.Costs, RuleCost{
			DropError: float64(errs[i]%100) / 100,
			Energy:    float64(energies[i]%80) / 100,
		})
	}
	return p
}

func TestPropertyPlansAreFeasibleAndConsistent(t *testing.T) {
	f := func(errs []uint8, energies []uint8, budgetRaw uint16, seed uint16) bool {
		p := randomProblem(errs, energies, budgetRaw)
		for _, h := range []Heuristic{HillClimb, Anneal} {
			cfg := DefaultConfig()
			cfg.Heuristic = h
			cfg.MaxIter = 80
			cfg.Seed = uint64(seed)
			pl, err := NewPlanner(cfg)
			if err != nil {
				return false
			}
			s, e, err := pl.Plan(p)
			if err != nil {
				return false
			}
			if len(s) != len(p.Costs) {
				return false
			}
			if !e.Feasible(p.Budget) {
				return false
			}
			if got := Evaluate(p, s); math.Abs(got.Energy-e.Energy) > 1e-9 || math.Abs(got.Error-e.Error) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHillClimbNearExhaustive(t *testing.T) {
	// On small problems, hill climbing with a healthy iteration budget
	// must land within a modest factor of the exhaustive optimum.
	f := func(errs []uint8, energies []uint8, budgetRaw uint16, seed uint16) bool {
		p := randomProblem(errs, energies, budgetRaw)
		if len(p.Costs) == 0 {
			return true
		}
		ex, err := NewPlanner(Config{K: 1, MaxIter: 1, Init: InitAllOn, Heuristic: Exhaustive})
		if err != nil {
			return false
		}
		_, opt, err := ex.Plan(p)
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.MaxIter = 800
		cfg.Seed = uint64(seed)
		hc, err := NewPlanner(cfg)
		if err != nil {
			return false
		}
		_, got, err := hc.Plan(p)
		if err != nil {
			return false
		}
		// Never better than the optimum, and not absurdly worse. The
		// slack is deliberately generous: hill climbing is a heuristic
		// and adversarial random knapsacks can trap it.
		if got.Error < opt.Error-1e-9 {
			return false
		}
		return got.Error <= opt.Error+0.9*(totalError(p)-opt.Error)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyZeroGainNeverExecuted(t *testing.T) {
	f := func(errs []uint8, energies []uint8, budgetRaw uint16, seed uint16) bool {
		p := randomProblem(errs, energies, budgetRaw)
		cfg := DefaultConfig()
		cfg.Seed = uint64(seed)
		cfg.Init = InitRandom
		pl, err := NewPlanner(cfg)
		if err != nil {
			return false
		}
		s, _, err := pl.Plan(p)
		if err != nil {
			return false
		}
		for i, c := range p.Costs {
			if c.DropError == 0 && s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLemma1ZeroBudgetIsNR encodes the paper's Lemma 1 worst case: with
// an energy budget of zero, IMCF acts as the No-Rule baseline — maximal
// convenience error, zero energy.
func TestLemma1ZeroBudgetIsNR(t *testing.T) {
	p := smallProblem()
	p.Budget = 0
	pl := newPlanner(t, nil)
	_, got, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	_, nr := NoRule(p)
	if got != nr {
		t.Errorf("EP at zero budget = %+v, NR = %+v", got, nr)
	}
}

// TestLemma2UnboundedBudgetIsMR encodes Lemma 2's worst case: with no
// effective budget constraint (and zero-gain pruning off, since MR
// executes everything greedily), IMCF acts as the Meta-Rule baseline —
// zero convenience error, maximal energy.
func TestLemma2UnboundedBudgetIsMR(t *testing.T) {
	p := smallProblem()
	_, mr := MetaRuleAll(p)
	p.Budget = mr.Energy // exactly enough for everything
	pl := newPlanner(t, func(c *Config) { c.KeepZeroGain = true; c.MaxIter = 200 })
	_, got, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Error != 0 {
		t.Errorf("EP at unbounded budget has error %v, want 0 (MR)", got.Error)
	}
	if got.Energy > mr.Energy+1e-9 {
		t.Errorf("EP energy %v exceeds MR %v", got.Energy, mr.Energy)
	}
}
