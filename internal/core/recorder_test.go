package core

import "testing"

type capturedDecision struct {
	i         int
	executed  bool
	flipIter  int
	remaining float64
	energy    float64
	fceDelta  float64
}

type captureRecorder struct{ got []capturedDecision }

func (c *captureRecorder) RecordDecision(i int, executed bool, flipIter int, rem, energy, fce float64) {
	c.got = append(c.got, capturedDecision{i, executed, flipIter, rem, energy, fce})
}

func recorderProblem() Problem {
	return Problem{
		Costs: []RuleCost{
			{DropError: 5, Energy: 1},
			{DropError: 4, Energy: 1},
			{DropError: 3, Energy: 1},
			{DropError: 0, Energy: 1}, // zero-gain, pruned off
		},
		Budget: 2,
	}
}

func TestRecorderEmitsOnePerRule(t *testing.T) {
	for _, h := range []Heuristic{HillClimb, Anneal, Exhaustive} {
		cfg := DefaultConfig()
		cfg.Heuristic = h
		pl, err := NewPlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := &captureRecorder{}
		pl.SetRecorder(rec)

		p := recorderProblem()
		sol, eval, err := pl.Plan(p)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if len(rec.got) != len(p.Costs) {
			t.Fatalf("%v: %d callbacks for %d rules", h, len(rec.got), len(p.Costs))
		}
		for i, d := range rec.got {
			if d.i != i {
				t.Fatalf("%v: callback %d reports index %d", h, i, d.i)
			}
			if d.executed != sol[i] {
				t.Fatalf("%v: rule %d verdict mismatch", h, i)
			}
			if d.remaining != p.Budget-eval.Energy {
				t.Fatalf("%v: rule %d remaining %v, want %v", h, i, d.remaining, p.Budget-eval.Energy)
			}
			if d.energy != p.Costs[i].Energy {
				t.Fatalf("%v: rule %d energy %v", h, i, d.energy)
			}
			wantDelta := 0.0
			if !sol[i] {
				wantDelta = p.Costs[i].DropError
			}
			if d.fceDelta != wantDelta {
				t.Fatalf("%v: rule %d fce delta %v, want %v", h, i, d.fceDelta, wantDelta)
			}
			if d.flipIter < FlipRepair {
				t.Fatalf("%v: rule %d flip iter %d below sentinels", h, i, d.flipIter)
			}
			if h == Exhaustive && d.flipIter != FlipNever {
				t.Fatalf("exhaustive: rule %d flip iter %d, want FlipNever", i, d.flipIter)
			}
		}
	}
}

// TestRecorderFlipProvenance pins the per-bit provenance: an all-0s
// start under a generous budget must flip the useful bits on at some
// recorded iteration, while the pruned zero-gain bit reports FlipNever.
func TestRecorderFlipProvenance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Init = InitAllOff
	pl, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	pl.SetRecorder(rec)

	p := recorderProblem()
	p.Budget = 10 // everything useful fits
	sol, _, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range rec.got {
		if sol[i] && d.flipIter < 0 {
			t.Fatalf("rule %d executed from all-0s start but flip iter = %d", i, d.flipIter)
		}
	}
	if last := rec.got[3]; last.executed || last.flipIter != FlipNever {
		t.Fatalf("zero-gain rule: %+v, want dropped with FlipNever", last)
	}
}

// TestRecorderRepairProvenance forces the repair path: all-1s start
// with repair disabled off, tiny budget, zero search iterations — the
// bits the repair switches off must report FlipRepair.
func TestRecorderRepairProvenance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxIter = 0
	pl, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	pl.SetRecorder(rec)

	p := recorderProblem()
	p.Budget = 1 // only one of the three useful rules fits
	sol, eval, err := pl.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !eval.Feasible(p.Budget) {
		t.Fatal("repair left an infeasible plan")
	}
	repaired := 0
	for i, d := range rec.got {
		if !sol[i] && d.flipIter == FlipRepair {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatalf("no rule reports FlipRepair: %+v", rec.got)
	}
}

// TestRecorderDoesNotPerturbSearch pins that recording is read-only:
// the same seed with and without a recorder yields identical plans.
func TestRecorderDoesNotPerturbSearch(t *testing.T) {
	p := recorderProblem()
	plan := func(rec DecisionRecorder) (Solution, Eval) {
		pl, err := NewPlanner(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		pl.SetRecorder(rec)
		s, e, err := pl.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		return s.Clone(), e
	}
	s1, e1 := plan(nil)
	s2, e2 := plan(&captureRecorder{})
	if e1 != e2 {
		t.Fatalf("eval diverged: %+v vs %+v", e1, e2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("solution diverged at %d", i)
		}
	}
}

func TestRecorderPlanFair(t *testing.T) {
	pl, err := NewPlanner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	pl.SetRecorder(rec)

	p := recorderProblem()
	group := []int{0, 0, 1, 1}
	sol, ge, err := pl.PlanFair(p, group, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != len(p.Costs) {
		t.Fatalf("%d callbacks for %d rules", len(rec.got), len(p.Costs))
	}
	for i, d := range rec.got {
		if d.executed != sol[i] {
			t.Fatalf("rule %d verdict mismatch", i)
		}
		if d.remaining != p.Budget-ge.Energy {
			t.Fatalf("rule %d remaining %v", i, d.remaining)
		}
	}
}
