package core

import (
	"fmt"

	"github.com/imcf/imcf/internal/metrics"
)

// This file implements fairness-aware planning, the paper's future-work
// direction of "multiple energy planners with conflicting interests":
// several residents' rules compete for one budget, and a plan that is
// optimal in total convenience may fund one resident entirely at
// another's expense. PlanFair keeps Algorithm 1's search but accepts
// candidates lexicographically by (feasibility, worst per-group error,
// total error), driving toward minimax-fair plans.

// GroupEval extends Eval with per-group error totals.
type GroupEval struct {
	Eval
	// GroupError holds the summed drop error per group.
	GroupError []float64
}

// worst returns the maximum per-group error.
//
//imcf:noalloc
func (g GroupEval) worst() float64 {
	w := 0.0
	for _, e := range g.GroupError {
		if e > w {
			w = e
		}
	}
	return w
}

// EvaluateGrouped computes a solution's objectives with per-group error
// attribution. group[i] assigns rule i to a group in [0, nGroups).
func EvaluateGrouped(p Problem, s Solution, group []int, nGroups int) GroupEval {
	if len(s) != len(p.Costs) || len(group) != len(p.Costs) {
		panic(fmt.Sprintf("core: grouped evaluate length mismatch: %d costs, %d solution, %d groups",
			len(p.Costs), len(s), len(group)))
	}
	ge := GroupEval{GroupError: make([]float64, nGroups)}
	for i, on := range s {
		if on {
			ge.Energy += p.Costs[i].Energy
		} else {
			ge.Error += p.Costs[i].DropError
			ge.GroupError[group[i]] += p.Costs[i].DropError
		}
	}
	return ge
}

// PlanFair minimizes the worst per-group convenience error subject to
// the budget, then total error as a tie-break. group[i] is rule i's
// group index; nGroups bounds the indices. offsets, when non-nil, seeds
// each group's error with debt carried in from earlier slots, so
// long-running callers achieve fairness over time rather than per slot;
// the returned GroupError reports only this plan's errors (offsets
// excluded). Like Plan, the returned Solution aliases planner-owned
// scratch and is valid only until the next Plan/PlanFair call.
func (pl *Planner) PlanFair(p Problem, group []int, nGroups int, offsets []float64) (Solution, GroupEval, error) {
	if err := p.Validate(); err != nil {
		return nil, GroupEval{}, err
	}
	if len(group) != len(p.Costs) {
		return nil, GroupEval{}, fmt.Errorf("core: %d group assignments for %d rules", len(group), len(p.Costs))
	}
	if nGroups < 1 {
		return nil, GroupEval{}, fmt.Errorf("core: nGroups %d must be ≥ 1", nGroups)
	}
	if offsets != nil && len(offsets) != nGroups {
		return nil, GroupEval{}, fmt.Errorf("core: %d offsets for %d groups", len(offsets), nGroups)
	}
	for i, g := range group {
		if g < 0 || g >= nGroups {
			return nil, GroupEval{}, fmt.Errorf("core: rule %d has group %d outside [0,%d)", i, g, nGroups)
		}
	}
	n := len(p.Costs)
	if n == 0 {
		return Solution{}, GroupEval{GroupError: make([]float64, nGroups)}, nil
	}
	metrics.PlannerPlans.Inc()
	pl.resetFlipIter(n)

	best := pl.initial(p)
	bestEval := evaluateWithOffsets(p, best, group, nGroups, offsets)
	idx := pl.flippable(p)

	if len(idx) > 0 {
		k := pl.cfg.K
		if k > len(idx) {
			k = len(idx)
		}
		if cap(pl.flips) < k {
			pl.flips = make([]int, k)
		}
		cand := GroupEval{GroupError: make([]float64, nGroups)}
		for iter := 0; iter < pl.cfg.MaxIter; iter++ {
			flips := pl.flips[:1+pl.rng.IntN(k)]
			pl.sampleDistinct(idx, flips)

			cand.Eval = bestEval.Eval
			copy(cand.GroupError, bestEval.GroupError)
			for _, i := range flips {
				if best[i] {
					cand.Energy -= p.Costs[i].Energy
					cand.Error += p.Costs[i].DropError
					cand.GroupError[group[i]] += p.Costs[i].DropError
				} else {
					cand.Energy += p.Costs[i].Energy
					cand.Error -= p.Costs[i].DropError
					cand.GroupError[group[i]] -= p.Costs[i].DropError
				}
			}
			if acceptFair(cand, bestEval, p.Budget) {
				for _, i := range flips {
					best[i] = !best[i]
					pl.flipIter[i] = iter
				}
				bestEval.Eval = cand.Eval
				copy(bestEval.GroupError, cand.GroupError)
			}
		}
		metrics.PlannerIterations.Add(uint64(pl.cfg.MaxIter))
	}

	// Recompute exactly (offset-free) and repair feasibility if needed.
	bestEval = EvaluateGrouped(p, best, group, nGroups)
	if !pl.cfg.DisableRepair && !bestEval.Feasible(p.Budget) {
		bestEval.Eval = pl.repairFeasible(p, best, bestEval.Eval)
		bestEval = EvaluateGrouped(p, best, group, nGroups)
	}
	pl.emit(p, best, bestEval.Eval)
	return best, bestEval, nil
}

// evaluateWithOffsets is EvaluateGrouped with each group's error seeded
// by its carried-in debt (acceptance-time view only).
func evaluateWithOffsets(p Problem, s Solution, group []int, nGroups int, offsets []float64) GroupEval {
	ge := EvaluateGrouped(p, s, group, nGroups)
	if offsets != nil {
		for g, o := range offsets {
			ge.GroupError[g] += o
		}
	}
	return ge
}

// acceptFair orders candidates by feasibility, then worst group error,
// then total error, then energy.
//
//imcf:noalloc
func acceptFair(cand, incumbent GroupEval, budget float64) bool {
	candFeas := cand.Feasible(budget)
	incFeas := incumbent.Feasible(budget)
	switch {
	case candFeas && !incFeas:
		return true
	case !candFeas && incFeas:
		return false
	case !candFeas: // both infeasible: descend in energy
		return cand.Energy < incumbent.Energy
	}
	cw, iw := cand.worst(), incumbent.worst()
	if cw != iw {
		return cw < iw
	}
	if cand.Error != incumbent.Error {
		return cand.Error < incumbent.Error
	}
	return cand.Energy < incumbent.Energy
}
