package core

import (
	"math"

	"github.com/imcf/imcf/internal/metrics"
)

// anneal is the simulated-annealing engine: the same k-flip
// neighbourhood as hill climbing, but worse candidates are accepted with
// probability exp(−Δ/T) under a geometric cooling schedule. Budget
// violations enter the score as a linear penalty so the walk can cross
// infeasible ridges; the returned solution is repaired to feasibility.
//
// The paper's EP uses hill climbing but notes that "any heuristic or
// meta-heuristic approach can be utilized in the EP optimization step";
// this engine backs that claim and the heuristic ablation bench.
func (pl *Planner) anneal(p Problem) (Solution, Eval) {
	cur := pl.initial(p)
	curEval := Evaluate(p, cur)
	if cap(pl.solB) < len(cur) {
		pl.solB = make(Solution, len(cur))
	}
	best := pl.solB[:len(cur)]
	copy(best, cur)
	bestEval := curEval

	idx := pl.flippable(p)
	if len(idx) == 0 {
		if !bestEval.Feasible(p.Budget) {
			bestEval = pl.repairFeasible(p, best, bestEval)
		}
		return best, bestEval
	}
	k := pl.cfg.K
	if k > len(idx) {
		k = len(idx)
	}
	if cap(pl.flips) < k {
		pl.flips = make([]int, k)
	}

	// Penalty weight: one unit of over-budget energy must dominate the
	// largest single-rule error, otherwise annealing parks on
	// infeasible plateaus.
	penalty := 1.0
	for _, c := range p.Costs {
		if c.Energy > 0 {
			if r := (c.DropError + 1) / c.Energy; r > penalty {
				penalty = r
			}
		}
	}
	score := func(e Eval) float64 {
		over := e.Energy - p.Budget
		if over < 0 {
			over = 0
		}
		return e.Error + penalty*over
	}

	temp := 1.0
	cooling := math.Pow(1e-3, 1/math.Max(1, float64(pl.cfg.MaxIter)))
	for iter := 0; iter < pl.cfg.MaxIter; iter++ {
		flips := pl.flips[:1+pl.rng.IntN(k)]
		pl.sampleDistinct(idx, flips)
		cand := curEval
		for _, i := range flips {
			if cur[i] {
				cand.Energy -= p.Costs[i].Energy
				cand.Error += p.Costs[i].DropError
			} else {
				cand.Energy += p.Costs[i].Energy
				cand.Error -= p.Costs[i].DropError
			}
		}
		delta := score(cand) - score(curEval)
		if delta <= 0 || pl.rng.Float64() < math.Exp(-delta/temp) {
			// Provenance is stamped on the walk's moves; the best-snapshot
			// copy below keeps the stamps of the moves that reached it,
			// which is exact for the bits that differ from the
			// initialization and approximate for bits a later rejected
			// stretch of the walk flipped back and forth.
			for _, i := range flips {
				cur[i] = !cur[i]
				pl.flipIter[i] = iter
			}
			curEval = cand
			if accept(curEval, bestEval, p.Budget) {
				copy(best, cur)
				bestEval = curEval
			}
		}
		temp *= cooling
	}
	metrics.PlannerIterations.Add(uint64(pl.cfg.MaxIter))

	// Recompute exactly to shed incremental float drift.
	bestEval = Evaluate(p, best)
	if !pl.cfg.DisableRepair && !bestEval.Feasible(p.Budget) {
		bestEval = pl.repairFeasible(p, best, bestEval)
	}
	return best, bestEval
}
