package ecp

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/imcf/imcf/internal/units"
)

func TestFlatProfileMatchesTable1(t *testing.T) {
	p := Flat()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Total().KWh(); got != 3666.00 {
		t.Errorf("Total = %v, want 3666.00 (Table I)", got)
	}
	// Spot-check table rows.
	if p.Monthly[0].KWh() != 775.50 {
		t.Errorf("January = %v", p.Monthly[0])
	}
	if p.Monthly[11].KWh() != 423.00 {
		t.Errorf("December = %v", p.Monthly[11])
	}
	// Table I's kWh-per-hour column: January 775.50/744 ≈ 1.04.
	if got := p.Monthly[0].KWh() / HoursPerMonth; math.Abs(got-1.04) > 0.005 {
		t.Errorf("January hourly = %.3f, want ≈1.04", got)
	}
	if got := p.Monthly[3].KWh() / HoursPerMonth; math.Abs(got-0.19) > 0.005 {
		t.Errorf("April hourly = %.3f, want ≈0.19", got)
	}
}

func TestWeights(t *testing.T) {
	p := Flat()
	// Paper: w_1 = 0.211, w_2 = 0.144, w_12 = 0.115.
	cases := []struct {
		m    time.Month
		want float64
	}{
		{time.January, 0.211},
		{time.February, 0.144},
		{time.December, 0.115},
	}
	for _, c := range cases {
		if got := p.Weight(c.m); math.Abs(got-c.want) > 0.001 {
			t.Errorf("Weight(%v) = %.4f, want ≈%.3f", c.m, got, c.want)
		}
	}
	var sum float64
	for m := time.January; m <= time.December; m++ {
		sum += p.Weight(m)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
}

func TestProfileScale(t *testing.T) {
	p := Flat().Scale(4)
	if got := p.Total().KWh(); math.Abs(got-4*3666) > 1e-9 {
		t.Errorf("scaled total = %v", got)
	}
	if got := p.Weight(time.January); math.Abs(got-Flat().Weight(time.January)) > 1e-12 {
		t.Error("scaling changed weights")
	}
}

func TestProfileValidate(t *testing.T) {
	var zero Profile
	if zero.Validate() == nil {
		t.Error("zero profile accepted")
	}
	bad := Flat()
	bad.Monthly[3] = -1
	if bad.Validate() == nil {
		t.Error("negative month accepted")
	}
}

func TestLAFMatchesPaperExample(t *testing.T) {
	// Paper: TE = 3666 kWh yearly, hourly E_h = 3666/8928 = 0.742... ≈ 0.41? No:
	// the paper computes 3666/8928 = 0.742 kWh *per hour* — wait, it
	// states E_h = 0.742 for t = 8928 hours, but 3666/8928 = 0.4106.
	// The printed 0.742 appears to be 3666/4944; we implement Eq. (3)
	// literally: TE/t.
	plan := Plan{Formula: LAF, Profile: Flat(), Years: 1}
	h, err := plan.HourlyBudget(time.June)
	if err != nil {
		t.Fatal(err)
	}
	want := 3666.0 / HoursPerYear
	if math.Abs(h.KWh()-want) > 1e-9 {
		t.Errorf("LAF hourly = %v, want %v", h.KWh(), want)
	}
	// LAF is month-independent.
	h2, _ := plan.HourlyBudget(time.January)
	if h != h2 {
		t.Error("LAF varies by month")
	}
}

func TestBLAFMatchesPaperExample(t *testing.T) {
	// Paper example: π = 30%, λ = 7 months (April–October), TE = 3666.
	// σ = (305.5 × 7) × 0.3 = 641.55 kWh.
	// Save months:  305.5 − 641.55/7 = 213.85 kWh/month.
	// Spend months: 305.5 + 641.55/5 = 433.81 kWh/month (the paper's
	// text assigns 397.15 by dividing by λ rather than λ'; see the
	// doc comment on Plan.HourlyBudget).
	plan := Plan{
		Formula:      BLAF,
		Profile:      Flat(),
		Years:        1,
		SaveFraction: 0.3,
		SaveMonths:   SummerSaveMonths(),
	}
	save, err := plan.MonthlyBudget(time.June)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(save.KWh()-213.85) > 0.01 {
		t.Errorf("save month budget = %v, want 213.85", save.KWh())
	}
	spend, _ := plan.MonthlyBudget(time.December)
	if math.Abs(spend.KWh()-433.81) > 0.01 {
		t.Errorf("spend month budget = %v, want 433.81", spend.KWh())
	}
	// Conservation: the 12 months sum to the yearly budget.
	var total float64
	for m := time.January; m <= time.December; m++ {
		b, err := plan.MonthlyBudget(m)
		if err != nil {
			t.Fatal(err)
		}
		total += b.KWh()
	}
	if math.Abs(total-3666) > 0.01 {
		t.Errorf("BLAF year total = %v, want 3666", total)
	}
	// The paper's Eq. (4) hourly example: save-month hourly budget is
	// 213.85/744 ≈ 0.28 kWh (the paper's 0.28 matches the save branch).
	h, _ := plan.HourlyBudget(time.June)
	if math.Abs(h.KWh()-0.287) > 0.005 {
		t.Errorf("save month hourly = %.4f, want ≈0.287", h.KWh())
	}
}

func TestEAFMatchesPaperExample(t *testing.T) {
	// Paper: yearly budget E = 3500 kWh, hourly budget for month i is
	// w_i × 3500 / (31×24). January: 0.2115 × 3500 / 744 ≈ 0.995.
	plan := Plan{Formula: EAF, Profile: Flat(), Budget: 3500, Years: 1}
	h, err := plan.HourlyBudget(time.January)
	if err != nil {
		t.Fatal(err)
	}
	want := (775.50 / 3666.0) * 3500 / HoursPerMonth
	if math.Abs(h.KWh()-want) > 1e-9 {
		t.Errorf("EAF January hourly = %v, want %v", h.KWh(), want)
	}
	// EAF conserves the yearly budget.
	var total float64
	for m := time.January; m <= time.December; m++ {
		b, _ := plan.MonthlyBudget(m)
		total += b.KWh()
	}
	if math.Abs(total-3500) > 1e-6 {
		t.Errorf("EAF year total = %v, want 3500", total)
	}
}

func TestMultiYearBudget(t *testing.T) {
	// 11000 kWh over 3 years (the flat experiment's budget rule).
	plan := Plan{Formula: EAF, Profile: Flat(), Budget: 11000, Years: 3}
	if got := plan.TotalBudget().KWh(); got != 11000 {
		t.Errorf("TotalBudget = %v", got)
	}
	var yearly float64
	for m := time.January; m <= time.December; m++ {
		b, err := plan.MonthlyBudget(m)
		if err != nil {
			t.Fatal(err)
		}
		yearly += b.KWh()
	}
	if math.Abs(yearly-11000.0/3) > 1e-6 {
		t.Errorf("yearly share = %v, want %v", yearly, 11000.0/3)
	}
}

func TestDefaultBudgetFromProfile(t *testing.T) {
	plan := Plan{Formula: LAF, Profile: Flat(), Years: 2}
	if got := plan.TotalBudget().KWh(); math.Abs(got-2*3666) > 1e-9 {
		t.Errorf("TotalBudget = %v, want 7332", got)
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Formula: EAF, Profile: Flat(), Years: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	cases := []Plan{
		{Formula: 0, Profile: Flat(), Years: 1},
		{Formula: LAF, Profile: Profile{}, Years: 1},
		{Formula: LAF, Profile: Flat(), Years: 0},
		{Formula: LAF, Profile: Flat(), Years: 1, Budget: -1},
		{Formula: BLAF, Profile: Flat(), Years: 1, SaveFraction: 1.0, SaveMonths: SummerSaveMonths()},
		{Formula: BLAF, Profile: Flat(), Years: 1, SaveFraction: 0.3}, // no save months
		{Formula: BLAF, Profile: Flat(), Years: 1, SaveFraction: 0.3, SaveMonths: [12]bool{true, true, true, true, true, true, true, true, true, true, true, true}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should not validate: %+v", i, p)
		}
	}
}

func TestPropertyBLAFConservesBudget(t *testing.T) {
	f := func(fracRaw uint8, mask uint16, budgetRaw uint16) bool {
		frac := float64(fracRaw%90) / 100
		var months [12]bool
		n := 0
		for i := 0; i < 12; i++ {
			if mask>>i&1 == 1 {
				months[i] = true
				n++
			}
		}
		if n == 0 || n == 12 {
			return true
		}
		plan := Plan{
			Formula:      BLAF,
			Profile:      Flat(),
			Budget:       units.Energy(float64(budgetRaw%10000) + 100),
			Years:        1,
			SaveFraction: frac,
			SaveMonths:   months,
		}
		var total float64
		for m := time.January; m <= time.December; m++ {
			b, err := plan.MonthlyBudget(m)
			if err != nil {
				return false
			}
			if b < 0 {
				return false
			}
			total += b.KWh()
		}
		return math.Abs(total-plan.TotalBudget().KWh()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormulaString(t *testing.T) {
	if LAF.String() != "LAF" || BLAF.String() != "BLAF" || EAF.String() != "EAF" {
		t.Error("formula names wrong")
	}
}
