// Package ecp implements the Energy Consumption Profile and the paper's
// Amortization Plan (AP) subroutine: the three formulas — Linear (LAF),
// Balloon Linear (BLAF) and ECP-based (EAF) — that convert a long-term
// energy budget into the per-slot constraint E_p the Energy Planner
// enforces.
//
// Budget arithmetic follows the paper's convention of 31-day months
// (t = 12 × 31 × 24 = 8928 hours per year), so the worked examples in
// Section II-B reproduce exactly.
package ecp

import (
	"errors"
	"fmt"
	"time"

	"github.com/imcf/imcf/internal/units"
)

// HoursPerMonth is the paper's month length for budget amortization.
const HoursPerMonth = 31 * 24

// HoursPerYear is the paper's year length for budget amortization
// (t = 12 × 31 × 24 = 8928).
const HoursPerYear = 12 * HoursPerMonth

// Profile is an Energy Consumption Profile: the historical monthly
// consumption of a residence (the paper's Table I).
type Profile struct {
	// Name labels the profile ("Flat").
	Name string `json:"name"`
	// Monthly holds January..December consumption in kWh.
	Monthly [12]units.Energy `json:"monthly"`
}

// Flat returns the paper's Table I: the ECP of the flat model used in
// the evaluation (total 3666 kWh/year).
func Flat() Profile {
	return Profile{
		Name: "Flat",
		Monthly: [12]units.Energy{
			775.50, // January
			528.75, // February
			246.75, // March
			141.00, // April
			176.25, // May
			211.50, // June
			246.75, // July
			317.25, // August
			211.50, // September
			176.25, // October
			211.50, // November
			423.00, // December
		},
	}
}

// Scale returns a copy of the profile with every month multiplied by f,
// used to derive House and Dorms profiles from the flat one.
func (p Profile) Scale(f float64) Profile {
	out := p
	for i := range out.Monthly {
		out.Monthly[i] = units.Energy(float64(p.Monthly[i]) * f)
	}
	return out
}

// Total returns the yearly total TE of the profile.
func (p Profile) Total() units.Energy {
	var sum units.Energy
	for _, m := range p.Monthly {
		sum += m
	}
	return sum
}

// Weight returns w_i = ECP_i / TE for the month, the EAF weighting
// factor. (The paper's Eq. 5 prints w_i = TE/ECP_i, but its own worked
// example — w_1 = 0.211 for January 775.50 of 3666 — uses ECP_i/TE,
// which is also the only definition for which Σw_i = 1; we follow the
// example.)
func (p Profile) Weight(m time.Month) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	return float64(p.Monthly[m-1]) / float64(total)
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	for i, m := range p.Monthly {
		if m < 0 {
			return fmt.Errorf("ecp: month %d negative consumption %v", i+1, m)
		}
	}
	if p.Total() <= 0 {
		return errors.New("ecp: profile total must be positive")
	}
	return nil
}

// Formula selects the amortization strategy.
type Formula int

// The paper's three amortization formulas.
const (
	// LAF spreads the budget uniformly over the period (Eq. 3).
	LAF Formula = iota + 1
	// BLAF saves a fraction of the budget during designated "save"
	// months and releases the balloon in the remaining months (Eq. 4).
	BLAF
	// EAF shapes the budget by the ECP's monthly weights (Eq. 5).
	EAF
)

// String returns the formula acronym.
func (f Formula) String() string {
	switch f {
	case LAF:
		return "LAF"
	case BLAF:
		return "BLAF"
	case EAF:
		return "EAF"
	default:
		return fmt.Sprintf("Formula(%d)", int(f))
	}
}

// Plan is a configured Amortization Plan: it answers "how much energy may
// be consumed during the slot at time t".
type Plan struct {
	// Formula selects LAF, BLAF or EAF.
	Formula Formula
	// Profile provides TE and the EAF weights.
	Profile Profile
	// Budget is the user's total energy budget E for the whole period.
	// If zero, the profile total (per year, times Years) is used.
	Budget units.Energy
	// Years is the period length; must be ≥ 1.
	Years int
	// SaveFraction is BLAF's π: the fraction of the per-month budget
	// withheld during save months.
	SaveFraction float64
	// SaveMonths marks BLAF's λ months (January = index 0).
	SaveMonths [12]bool
}

// Validate reports whether the plan is usable.
func (p Plan) Validate() error {
	if p.Formula < LAF || p.Formula > EAF {
		return fmt.Errorf("ecp: invalid formula %d", p.Formula)
	}
	if err := p.Profile.Validate(); err != nil {
		return err
	}
	if p.Years < 1 {
		return fmt.Errorf("ecp: years %d must be ≥ 1", p.Years)
	}
	if p.Budget < 0 {
		return fmt.Errorf("ecp: negative budget %v", p.Budget)
	}
	if p.Formula == BLAF {
		if p.SaveFraction < 0 || p.SaveFraction >= 1 {
			return fmt.Errorf("ecp: save fraction %v outside [0,1)", p.SaveFraction)
		}
		nSave := 0
		for _, s := range p.SaveMonths {
			if s {
				nSave++
			}
		}
		if nSave == 0 || nSave == 12 {
			return fmt.Errorf("ecp: BLAF needs between 1 and 11 save months, got %d", nSave)
		}
	}
	return nil
}

// TotalBudget returns the budget E for the whole period.
func (p Plan) TotalBudget() units.Energy {
	if p.Budget > 0 {
		return p.Budget
	}
	return units.Energy(float64(p.Profile.Total()) * float64(p.Years))
}

// yearlyBudget is the per-year share of the total budget.
func (p Plan) yearlyBudget() float64 {
	return float64(p.TotalBudget()) / float64(p.Years)
}

// HourlyBudget returns E_p: the energy available for one hourly slot in
// the given month.
func (p Plan) HourlyBudget(m time.Month) (units.Energy, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	yearly := p.yearlyBudget()
	switch p.Formula {
	case LAF:
		// Eq. (3): uniform over the paper-year of 8928 hours.
		return units.Energy(yearly / HoursPerYear), nil

	case BLAF:
		// Eq. (4). The base monthly allocation is yearly/12; σ is the
		// balloon withheld across the λ save months and released
		// uniformly across the λ' spend months. (The paper's worked
		// example divides the balloon by λ in both branches, which
		// does not conserve energy; we divide by λ' in the spend
		// branch so the year still totals the budget.)
		nSave := 0
		for _, s := range p.SaveMonths {
			if s {
				nSave++
			}
		}
		nSpend := 12 - nSave
		basePerMonth := yearly / 12
		sigma := basePerMonth * float64(nSave) * p.SaveFraction
		var monthly float64
		if p.SaveMonths[m-1] {
			monthly = basePerMonth - sigma/float64(nSave)
		} else {
			monthly = basePerMonth + sigma/float64(nSpend)
		}
		return units.Energy(monthly / HoursPerMonth), nil

	case EAF:
		// Eq. (5): the month's weight times the yearly budget, spread
		// over the paper-month of 744 hours.
		w := p.Profile.Weight(m)
		return units.Energy(w * yearly / HoursPerMonth), nil
	}
	return 0, fmt.Errorf("ecp: unreachable formula %v", p.Formula)
}

// MonthlyBudget returns the month's total allocation (hourly budget times
// the paper-month hours), convenient for reports.
func (p Plan) MonthlyBudget(m time.Month) (units.Energy, error) {
	h, err := p.HourlyBudget(m)
	if err != nil {
		return 0, err
	}
	return units.Energy(float64(h) * HoursPerMonth), nil
}

// SummerSaveMonths returns the April–October save-month mask from the
// paper's BLAF example (λ = 7 months of low consumption).
func SummerSaveMonths() [12]bool {
	var m [12]bool
	for mo := time.April; mo <= time.October; mo++ {
		m[mo-1] = true
	}
	return m
}
