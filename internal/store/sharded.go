package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/metrics"
)

// DefaultShards is the shard count used when ShardedOptions.Shards is
// zero and the directory carries no manifest yet.
const DefaultShards = 8

// shardManifest is the file in the root directory recording the shard
// count; a store must always reopen with the count it was created with,
// or keys would rehash into the wrong shards and silently vanish.
const shardManifest = "SHARDS"

// ShardedOptions configures OpenSharded.
type ShardedOptions struct {
	// Dir is the root directory; each shard lives in Dir/shard-NNN.
	Dir string
	// Shards is the number of shards. Zero means: adopt the directory's
	// manifest, or DefaultShards for a fresh directory. A non-zero
	// value that contradicts an existing manifest is an error.
	Shards int
	// SyncWrites, CompactEvery and NoGroupCommit apply to every shard;
	// see Options.
	SyncWrites    bool
	CompactEvery  int
	NoGroupCommit bool
	// FS overrides the file layer under every shard; nil uses the real
	// filesystem.
	FS faultfs.FS
}

// ShardedDB hashes keys (FNV-1a) across N independent WAL+snapshot
// shards. Each shard is a full DB: its own directory, its own group-
// commit pipeline, its own compaction generation — so compacting one
// shard never stalls appends on its siblings, and the fsync pipelines
// of distinct shards proceed in parallel.
//
// Atomicity is per shard: Apply splits a batch by key hash and commits
// the sub-batches in ascending shard order, each as one CRC-protected
// WAL record. A crash between two shards' commits recovers the union
// of the sub-batches that reached their logs — each shard individually
// consistent, with no torn sub-batch and, under SyncWrites, no
// acknowledged record lost. Callers needing cross-key atomicity must
// keep those keys in a single composite value, as the controller does
// for the Meta-Rule Table.
type ShardedDB struct {
	shards []*DB
	gauges []*metrics.Gauge
}

// OpenSharded opens (or creates) a sharded store rooted at opts.Dir.
func OpenSharded(opts ShardedOptions) (*ShardedDB, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Dir must be set")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("store: invalid shard count %d", opts.Shards)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	n, err := resolveShardCount(fsys, opts.Dir, opts.Shards)
	if err != nil {
		return nil, err
	}

	s := &ShardedDB{
		shards: make([]*DB, n),
		gauges: make([]*metrics.Gauge, n),
	}
	for i := range s.shards {
		db, err := Open(Options{
			Dir:           shardDir(opts.Dir, i),
			SyncWrites:    opts.SyncWrites,
			CompactEvery:  opts.CompactEvery,
			NoGroupCommit: opts.NoGroupCommit,
			FS:            fsys,
		})
		if err != nil {
			for j := 0; j < i; j++ {
				s.shards[j].Close() //nolint:errcheck // already failing
			}
			return nil, fmt.Errorf("store: open shard %d: %w", i, err)
		}
		s.shards[i] = db
		s.gauges[i] = shardRecords.With(strconv.Itoa(i))
		s.gauges[i].Set(float64(db.Len()))
	}
	return s, nil
}

// shardDir names shard i's directory under root.
func shardDir(root string, i int) string {
	return root + string(os.PathSeparator) + fmt.Sprintf("shard-%03d", i)
}

// resolveShardCount reconciles the requested shard count with the
// directory's manifest, writing the manifest (durably) on first open.
func resolveShardCount(fsys faultfs.FS, dir string, want int) (int, error) {
	path := dir + string(os.PathSeparator) + shardManifest
	b, err := fsys.ReadFile(path)
	switch {
	case err == nil:
		have, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil || have <= 0 {
			return 0, fmt.Errorf("store: corrupt shard manifest %q", string(b))
		}
		if want != 0 && want != have {
			return 0, fmt.Errorf("store: shard count mismatch: directory has %d shards, options want %d", have, want)
		}
		return have, nil
	case errors.Is(err, os.ErrNotExist):
		if want == 0 {
			want = DefaultShards
		}
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return 0, fmt.Errorf("store: create shard manifest: %w", err)
		}
		_, werr := f.Write([]byte(strconv.Itoa(want) + "\n"))
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return 0, fmt.Errorf("store: write shard manifest: %w", werr)
		}
		// The manifest entry must be durable before any shard
		// acknowledges a write: losing it would reopen the store with a
		// different count and rehash keys into the wrong shards.
		if err := fsys.SyncDir(dir); err != nil {
			return 0, fmt.Errorf("store: sync dir: %w", err)
		}
		return want, nil
	default:
		return 0, fmt.Errorf("store: read shard manifest: %w", err)
	}
}

// shardIndex is the FNV-1a hash of key modulo n — allocation-free, so
// routing adds nothing to the append path.
func shardIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// shard routes key to its DB.
func (s *ShardedDB) shard(key string) int { return shardIndex(key, len(s.shards)) }

// NumShards returns the shard count.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

// Get returns the value stored at key.
func (s *ShardedDB) Get(key string) ([]byte, bool) {
	return s.shards[s.shard(key)].Get(key)
}

// Put durably stores value at key in its shard.
func (s *ShardedDB) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	i := s.shard(key)
	if err := s.shards[i].Put(key, value); err != nil {
		return err
	}
	s.gauges[i].Set(float64(s.shards[i].Len()))
	return nil
}

// Delete durably removes key from its shard.
func (s *ShardedDB) Delete(key string) error {
	if key == "" {
		return nil
	}
	i := s.shard(key)
	if err := s.shards[i].Delete(key); err != nil {
		return err
	}
	s.gauges[i].Set(float64(s.shards[i].Len()))
	return nil
}

// Keys returns all keys with the given prefix across every shard,
// sorted.
func (s *ShardedDB) Keys(prefix string) []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.Keys(prefix)...)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys across every shard.
func (s *ShardedDB) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// WALRecords reports the total records across every shard's WAL.
func (s *ShardedDB) WALRecords() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.WALRecords()
	}
	return n
}

// Apply runs fn to fill a batch and commits it. The batch is split by
// key hash and committed shard-by-shard in ascending shard order; each
// sub-batch is atomic within its shard. On the first shard error the
// remaining sub-batches are not attempted; already-committed shards
// keep their sub-batches (see the type comment for the crash-ordering
// argument).
func (s *ShardedDB) Apply(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	per := make([][]batchOp, len(s.shards))
	for _, op := range b.ops {
		i := s.shard(op.key)
		per[i] = append(per[i], op)
	}
	for i, ops := range per {
		if len(ops) == 0 {
			continue
		}
		sub := ops
		if err := s.shards[i].Apply(func(sb *Batch) error {
			sb.ops = append(sb.ops, sub...)
			return nil
		}); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
		s.gauges[i].Set(float64(s.shards[i].Len()))
	}
	return nil
}

// PutJSON marshals v and stores it at key.
func (s *ShardedDB) PutJSON(key string, v any) error { return putJSON(s, key, v) }

// GetJSON unmarshals the value at key into v, reporting whether the key
// existed.
func (s *ShardedDB) GetJSON(key string, v any) (bool, error) { return getJSON(s, key, v) }

// Compact compacts every shard concurrently. Shards never share a
// lock, so one shard's snapshot rewrite stalls neither reads nor
// appends on its siblings.
func (s *ShardedDB) Compact() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *DB) {
			defer wg.Done()
			errs[i] = sh.Compact()
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			s.gauges[i].Set(float64(s.shards[i].Len()))
		}
	}
	return errors.Join(errs...)
}

// Probe verifies every shard's write path; the first failure is
// returned so degraded-mode classification sees the worst shard.
func (s *ShardedDB) Probe() error {
	for i, sh := range s.shards {
		if err := sh.Probe(); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard.
func (s *ShardedDB) Close() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Close()
	}
	return errors.Join(errs...)
}
