package store

import (
	"fmt"
	"sort"
	"strings"
	"syscall"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

// The crash-recovery suite: a scripted workload of puts, deletes,
// batches and compactions runs against a faultfs.MemFS; the harness
// enumerates every instrumented file operation the workload performs,
// then re-runs it once per failpoint with a simulated crash there,
// reboots (MemFS.Crash) and reopens. Invariants checked at every
// single failpoint:
//
//   - reopen never fails;
//   - the recovered contents equal the state after some prefix of the
//     workload's mutations (atomicity — no torn batch, no half-applied
//     op, no resurrection of deleted keys out of order);
//   - under SyncWrites, that prefix includes every acknowledged
//     mutation (durability — an acked write is never lost);
//   - the reopened store accepts new writes.

// crashStep is one logical mutation of the scripted workload.
type crashStep struct {
	name  string
	apply func(db *DB) error
	model func(m map[string]string)
}

func put(key, val string) crashStep {
	return crashStep{
		name:  fmt.Sprintf("put %s=%s", key, val),
		apply: func(db *DB) error { return db.Put(key, []byte(val)) },
		model: func(m map[string]string) { m[key] = val },
	}
}

func del(key string) crashStep {
	return crashStep{
		name:  "delete " + key,
		apply: func(db *DB) error { return db.Delete(key) },
		model: func(m map[string]string) { delete(m, key) },
	}
}

func compact() crashStep {
	return crashStep{
		name:  "compact",
		apply: func(db *DB) error { return db.Compact() },
		model: func(m map[string]string) {},
	}
}

func batch(ops func(b *Batch), model func(m map[string]string)) crashStep {
	return crashStep{
		name:  "batch",
		apply: func(db *DB) error { return db.Apply(func(b *Batch) error { ops(b); return nil }) },
		model: model,
	}
}

// crashWorkload mixes every mutation kind with explicit compactions;
// automatic compaction is additionally triggered by CompactEvery in
// the harness options.
func crashWorkload() []crashStep {
	return []crashStep{
		put("mrt/rule1", "hvac<=24"),
		put("mrt/rule2", "light-off"),
		put("profile/week", strings.Repeat("0.42,", 40)),
		del("mrt/rule2"),
		batch(func(b *Batch) {
			b.Put("mrt/rule3", []byte("shift-wash"))
			b.Put("mrt/rule4", []byte("ev-night"))
			b.Delete("mrt/rule1")
		}, func(m map[string]string) {
			m["mrt/rule3"] = "shift-wash"
			m["mrt/rule4"] = "ev-night"
			delete(m, "mrt/rule1")
		}),
		compact(),
		put("mrt/rule1", "hvac<=26"),
		del("profile/week"),
		put("summary/fce", "0.93"),
		batch(func(b *Batch) {
			b.Put("profile/week", []byte("fresh"))
			b.Delete("mrt/rule4")
		}, func(m map[string]string) {
			m["profile/week"] = "fresh"
			delete(m, "mrt/rule4")
		}),
		put("summary/fe", "12.5"),
		del("missing/key"), // acked no-op: no WAL record
		compact(),
		put("post/compact", "tail"),
	}
}

func encodeState(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(m[k])
		sb.WriteByte('|')
	}
	return sb.String()
}

func dumpState(db *DB) string {
	m := make(map[string]string)
	for _, k := range db.Keys("") {
		v, _ := db.Get(k)
		m[k] = string(v)
	}
	return encodeState(m)
}

func cloneState(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// countWorkloadOps runs the workload fault-free and reports how many
// instrumented file operations it performs — the failpoint count.
func countWorkloadOps(t *testing.T, sync bool) int {
	t.Helper()
	faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
	db, err := Open(Options{Dir: "/db", SyncWrites: sync, CompactEvery: 4, FS: faulty})
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	for _, st := range crashWorkload() {
		if err := st.apply(db); err != nil {
			t.Fatalf("fault-free %s: %v", st.name, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("fault-free close: %v", err)
	}
	return faulty.Ops()
}

// runCrashAt replays the workload with a crash at failpoint n and
// checks the recovery invariants.
func runCrashAt(t *testing.T, n int, sync bool, tearSeed uint64) {
	t.Helper()
	mem := faultfs.NewMemFS()
	faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
	opts := Options{Dir: "/db", SyncWrites: sync, CompactEvery: 4, FS: faulty}

	empty := encodeState(nil)
	states := []string{empty}
	model := make(map[string]string)
	acked := 0

	db, err := Open(opts)
	if err == nil {
		for _, st := range crashWorkload() {
			aerr := st.apply(db)
			next := cloneState(model)
			st.model(next)
			model = next
			states = append(states, encodeState(model))
			if aerr == nil {
				acked = len(states) - 1
			}
			if faulty.Dead() {
				break
			}
		}
		db.Close() //nolint:errcheck // the close may be the crash point
	}
	if !faulty.Dead() {
		t.Fatalf("failpoint %d never fired (ops=%d)", n, faulty.Ops())
	}

	// Power loss and reboot.
	if tearSeed == 0 {
		mem.Crash()
	} else {
		mem.CrashTearing(tearSeed)
	}

	db2, err := Open(Options{Dir: "/db", SyncWrites: sync, FS: mem})
	if err != nil {
		t.Fatalf("failpoint %d: reopen failed: %v", n, err)
	}
	defer db2.Close() //nolint:errcheck

	got := dumpState(db2)
	lo := 0
	if sync {
		lo = acked
	}
	found := false
	for i := lo; i < len(states); i++ {
		if got == states[i] {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("failpoint %d (sync=%v tear=%#x): recovered state %q not in valid states[%d:%d] %q",
			n, sync, tearSeed, got, lo, len(states), states[lo:])
	}

	// The recovered store must accept new writes.
	if err := db2.Put("recovery/key", []byte("ok")); err != nil {
		t.Fatalf("failpoint %d: post-recovery put: %v", n, err)
	}
}

// TestCrashRecoveryEveryFailpoint is the tentpole gate: kill at every
// failpoint × SyncWrites on/off × clean vs torn tails.
func TestCrashRecoveryEveryFailpoint(t *testing.T) {
	for _, sync := range []bool{true, false} {
		for _, tear := range []uint64{0, 0xC0FFEE} {
			name := fmt.Sprintf("sync=%v/tear=%#x", sync, tear)
			t.Run(name, func(t *testing.T) {
				total := countWorkloadOps(t, sync)
				if total < 40 {
					t.Fatalf("suspiciously few failpoints: %d", total)
				}
				for n := 0; n < total; n++ {
					runCrashAt(t, n, sync, tear)
				}
			})
		}
	}
}

// TestCompactionRenameDurability is the regression test for the
// torn-compaction window: with SyncWrites on, a crash at any file
// operation inside Compact must never lose the acknowledged puts that
// preceded it. Before the directory-sync fix, the WAL could be reset
// while the snapshot rename was still volatile, forgetting every
// record since the previous snapshot.
func TestCompactionRenameDurability(t *testing.T) {
	const keys = 5
	preOps := func() (int, int) {
		faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
		db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faulty})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		before := faulty.Ops()
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
		return before, faulty.Ops()
	}
	before, after := preOps()

	for n := before; n < after; n++ {
		mem := faultfs.NewMemFS()
		faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
		db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faulty})
		if err != nil {
			t.Fatalf("failpoint %d: open: %v", n, err)
		}
		for i := 0; i < keys; i++ {
			if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Fatalf("failpoint %d: put: %v", n, err)
			}
		}
		db.Compact() //nolint:errcheck // the compaction is the crash point
		mem.Crash()

		db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
		if err != nil {
			t.Fatalf("failpoint %d: reopen: %v", n, err)
		}
		for i := 0; i < keys; i++ {
			if _, ok := db2.Get(fmt.Sprintf("k%d", i)); !ok {
				t.Fatalf("failpoint %d: acknowledged key k%d lost across compaction crash", n, i)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("failpoint %d: close: %v", n, err)
		}
	}
}

// TestFailedCompactionLeavesCleanErrors pins the wal-handle fix: when
// the WAL cannot be reopened after a compaction, later mutations (and
// Probe) must fail with a clear error instead of writing into a dead
// handle, and the error must surface the root cause.
func TestFailedCompactionLeavesCleanErrors(t *testing.T) {
	mem := faultfs.NewMemFS()
	arm := false
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if arm && op.Op == faultfs.OpOpen && strings.HasSuffix(op.Path, walName) {
			return &faultfs.Fault{Err: fmt.Errorf("open %s: %w", op.Path, syscall.ENOSPC)}
		}
		return nil
	})
	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	arm = true
	if err := db.Compact(); err == nil {
		t.Fatal("compaction should fail when the wal cannot be reopened")
	}
	if err := db.Put("b", []byte("2")); err == nil {
		t.Fatal("put after failed compaction should error cleanly")
	} else if !strings.Contains(err.Error(), "wal unavailable") {
		t.Fatalf("unhelpful error after failed compaction: %v", err)
	}
	if err := db.Probe(); err == nil {
		t.Fatal("probe after failed compaction should error")
	}
	// Recovery: the next successful compaction re-establishes the WAL.
	arm = false
	if err := db.Compact(); err != nil {
		t.Fatalf("healing compaction: %v", err)
	}
	if err := db.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after healing compaction: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornAppendRollback pins the tail-rollback fix: a short write
// (ENOSPC mid-record) must not leave torn bytes at the log tail. If it
// did, appends acknowledged after the disk recovered would land beyond
// the garbage, and the next replay — which truncates at the first bad
// record — would silently discard them.
func TestTornAppendRollback(t *testing.T) {
	mem := faultfs.NewMemFS()
	tearNext := false
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if tearNext && op.Op == faultfs.OpWrite && strings.HasSuffix(op.Path, walName) {
			tearNext = false
			return &faultfs.Fault{Err: syscall.ENOSPC, Partial: op.Size / 2}
		}
		return nil
	})
	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	tearNext = true
	if err := db.Put("torn", []byte("lost-to-enospc")); err == nil {
		t.Fatal("put should fail on the injected short write")
	}
	// Disk recovered: this write is acknowledged and must survive.
	if err := db.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after disk recovery: %v", err)
	}
	mem.Crash()

	db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close() //nolint:errcheck
	if _, ok := db2.Get("a"); !ok {
		t.Fatal("pre-tear acknowledged key lost")
	}
	if v, ok := db2.Get("b"); !ok || string(v) != "2" {
		t.Fatal("acknowledged key written after the torn append was lost: the tail was not rolled back")
	}
	if _, ok := db2.Get("torn"); ok {
		t.Fatal("unacknowledged torn write resurrected")
	}
}

// TestTornAppendRollbackTruncateFails covers the double fault: the
// append tears AND the rollback truncate fails. The log must be marked
// unusable (further mutations error cleanly) and then heal through the
// commitWAL/Probe repair path once the disk recovers, with no
// acknowledged write lost.
func TestTornAppendRollbackTruncateFails(t *testing.T) {
	mem := faultfs.NewMemFS()
	diskDead := false
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if !diskDead || !strings.HasSuffix(op.Path, walName) {
			return nil
		}
		switch op.Op {
		case faultfs.OpWrite:
			return &faultfs.Fault{Err: syscall.ENOSPC, Partial: op.Size / 3}
		case faultfs.OpSync, faultfs.OpTruncate, faultfs.OpOpen:
			return &faultfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	diskDead = true
	if err := db.Put("torn", []byte("x")); err == nil {
		t.Fatal("put should fail while the disk is dead")
	}
	if err := db.Probe(); err == nil {
		t.Fatal("probe should fail while the disk is dead: the torn tail cannot be repaired yet")
	}
	diskDead = false
	// The repair path truncates the torn tail before this append is
	// acknowledged.
	if err := db.Probe(); err != nil {
		t.Fatalf("probe after disk recovery: %v", err)
	}
	if err := db.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after disk recovery: %v", err)
	}
	mem.Crash()

	db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close() //nolint:errcheck
	if _, ok := db2.Get("a"); !ok {
		t.Fatal("pre-fault acknowledged key lost")
	}
	if _, ok := db2.Get("b"); !ok {
		t.Fatal("post-repair acknowledged key lost")
	}
	if _, ok := db2.Get("torn"); ok {
		t.Fatal("unacknowledged torn write resurrected")
	}
}

// TestProbeHealsAfterFailedCompaction pins the degraded-mode auto-heal:
// a compaction that fails after installing the snapshot leaves the
// store without a WAL handle, and Probe alone — no compaction, no
// restart — must re-establish it once the disk recovers.
func TestProbeHealsAfterFailedCompaction(t *testing.T) {
	mem := faultfs.NewMemFS()
	arm := false
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if arm && op.Op == faultfs.OpOpen && strings.HasSuffix(op.Path, walName) {
			return &faultfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	arm = true
	if err := db.Compact(); err == nil {
		t.Fatal("compaction should fail when the wal cannot be reopened")
	}
	if err := db.Probe(); err == nil {
		t.Fatal("probe should still fail while the disk is dead")
	}
	arm = false
	if err := db.Probe(); err != nil {
		t.Fatalf("probe should repair the wal once the disk recovers: %v", err)
	}
	if err := db.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after probe-driven repair: %v", err)
	}
	mem.Crash()

	db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close() //nolint:errcheck
	for _, k := range []string{"a", "b"} {
		if _, ok := db2.Get(k); !ok {
			t.Fatalf("acknowledged key %s lost across probe-driven repair", k)
		}
	}
}

// TestProbeRecordsAreInvisible checks that Probe's WAL records replay
// as no-ops and never surface as keys.
func TestProbeRecordsAreInvisible(t *testing.T) {
	mem := faultfs.NewMemFS()
	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Probe(); err != nil {
			t.Fatalf("probe: %v", err)
		}
	}
	if err := db.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Crash without closing: probes and puts replay from the WAL.
	mem.Crash()
	db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close() //nolint:errcheck
	if got := db2.Len(); got != 2 {
		t.Fatalf("probe records leaked into the keyspace: %d keys: %v", got, db2.Keys(""))
	}
}
