package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// opBatch is the WAL op code for an atomic multi-operation record.
const opBatch = 3

// Batch collects Put and Delete operations that commit atomically: a
// crash either persists all of them or none, because the whole batch is
// one CRC-protected WAL record. The controller uses batches to replace
// a Meta-Rule Table and its dependent keys in one durable step.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del   bool
	key   string
	value []byte
}

// Put schedules a write into the batch.
func (b *Batch) Put(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.ops = append(b.ops, batchOp{key: key, value: cp})
}

// Delete schedules a removal into the batch.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, batchOp{del: true, key: key})
}

// Len returns the number of scheduled operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply runs fn to fill a batch and commits it atomically. If fn
// returns an error nothing is written. An empty batch is a no-op.
func (db *DB) Apply(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	req := newReq(opBatch, "", nil, b.ops)
	req.payload = encodeBatch(req.payload[:0], b.ops)
	return db.finish(req)
}

// encodeBatch appends one record payload of the form
//
//	opBatch | count uvarint | ops…
//
// with each sub-op encoded as
//
//	op byte | keyLen uvarint | key | [valLen uvarint | value]
func encodeBatch(dst []byte, ops []batchOp) []byte {
	dst = append(dst, opBatch)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		code := byte(opPut)
		if op.del {
			code = opDelete
		}
		dst = append(dst, code)
		dst = binary.AppendUvarint(dst, uint64(len(op.key)))
		dst = append(dst, op.key...)
		if !op.del {
			dst = binary.AppendUvarint(dst, uint64(len(op.value)))
			dst = append(dst, op.value...)
		}
	}
	return dst
}

// applyBatchPayload replays a batch WAL record during recovery.
func (db *DB) applyBatchPayload(p []byte) error {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return errors.New("store: bad batch count")
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		if len(p) < 2 {
			return errors.New("store: truncated batch op")
		}
		code := p[0]
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)) < uint64(n)+klen {
			return errors.New("store: bad batch key")
		}
		key := string(p[n : n+int(klen)])
		p = p[n+int(klen):]
		switch code {
		case opPut:
			vlen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)) < uint64(n)+vlen {
				return errors.New("store: bad batch value")
			}
			val := make([]byte, vlen)
			copy(val, p[n:n+int(vlen)])
			p = p[n+int(vlen):]
			db.data[key] = val
		case opDelete:
			delete(db.data, key)
		default:
			return fmt.Errorf("store: unknown batch op %d", code)
		}
	}
	if len(p) != 0 {
		return errors.New("store: trailing bytes in batch record")
	}
	return nil
}
