package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// opBatch is the WAL op code for an atomic multi-operation record.
const opBatch = 3

// Batch collects Put and Delete operations that commit atomically: a
// crash either persists all of them or none, because the whole batch is
// one CRC-protected WAL record. The controller uses batches to replace
// a Meta-Rule Table and its dependent keys in one durable step.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del   bool
	key   string
	value []byte
}

// Put schedules a write into the batch.
func (b *Batch) Put(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.ops = append(b.ops, batchOp{key: key, value: cp})
}

// Delete schedules a removal into the batch.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, batchOp{del: true, key: key})
}

// Len returns the number of scheduled operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply runs fn to fill a batch and commits it atomically. If fn
// returns an error nothing is written. An empty batch is a no-op.
func (db *DB) Apply(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	if len(b.ops) == 0 {
		return nil
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.appendBatchWAL(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.del {
			delete(db.data, op.key)
		} else {
			db.data[op.key] = op.value
		}
	}
	return db.maybeCompactLocked()
}

// appendBatchWAL writes one record whose payload is
//
//	opBatch | count uvarint | ops…
//
// with each sub-op encoded as
//
//	op byte | keyLen uvarint | key | [valLen uvarint | value]
func (db *DB) appendBatchWAL(b *Batch) error {
	payload := make([]byte, 0, 16)
	payload = append(payload, opBatch)
	payload = binary.AppendUvarint(payload, uint64(len(b.ops)))
	for _, op := range b.ops {
		code := byte(opPut)
		if op.del {
			code = opDelete
		}
		payload = append(payload, code)
		payload = binary.AppendUvarint(payload, uint64(len(op.key)))
		payload = append(payload, op.key...)
		if !op.del {
			payload = binary.AppendUvarint(payload, uint64(len(op.value)))
			payload = append(payload, op.value...)
		}
	}

	if err := db.commitWAL(payload); err != nil {
		return err
	}
	walBatchOps.Add(uint64(len(b.ops)))
	return nil
}

// applyBatchPayload replays a batch WAL record during recovery.
func (db *DB) applyBatchPayload(p []byte) error {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return errors.New("store: bad batch count")
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		if len(p) < 2 {
			return errors.New("store: truncated batch op")
		}
		code := p[0]
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)) < uint64(n)+klen {
			return errors.New("store: bad batch key")
		}
		key := string(p[n : n+int(klen)])
		p = p[n+int(klen):]
		switch code {
		case opPut:
			vlen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)) < uint64(n)+vlen {
				return errors.New("store: bad batch value")
			}
			val := make([]byte, vlen)
			copy(val, p[n:n+int(vlen)])
			p = p[n+int(vlen):]
			db.data[key] = val
		case opDelete:
			delete(db.data, key)
		default:
			return fmt.Errorf("store: unknown batch op %d", code)
		}
	}
	if len(p) != 0 {
		return errors.New("store: trailing bytes in batch record")
	}
	return nil
}
