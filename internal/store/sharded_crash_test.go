package store

import (
	"fmt"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

// The sharded crash suite extends the kill-at-every-failpoint harness
// to ShardedDB, where the interesting new window is BETWEEN two shards'
// commits: Apply splits a batch by key hash and commits the sub-batches
// shard by shard, so a crash in the middle must recover a consistent
// union — every shard individually at a valid point of its own history,
// with no torn sub-batch and (under SyncWrites) nothing acknowledged
// lost.
//
// Because each shard is an independent log, "a prefix of the workload"
// is a per-shard notion here: the harness models every shard's state
// sequence separately (including the intermediate states a multi-shard
// Apply moves through) and checks each recovered shard against its own
// sequence. A cross-shard check against global prefixes would be wrong
// for the nosync mode — shard A may lose its unsynced tail while shard
// B keeps its own — and too weak for the mid-Apply window.

const crashShards = 4

// shardedCrashStep is one logical mutation plus its per-shard model
// effects: apply drives the store, muts lists (shard, mutation) pairs
// in the exact order the store commits them.
type shardedCrashStep struct {
	name  string
	apply func(s *ShardedDB) error
	muts  []shardMut
}

type shardMut struct {
	shard int
	model func(m map[string]string)
}

func sput(key, val string) shardedCrashStep {
	return shardedCrashStep{
		name:  fmt.Sprintf("put %s=%s", key, val),
		apply: func(s *ShardedDB) error { return s.Put(key, []byte(val)) },
		muts: []shardMut{{
			shard: shardIndex(key, crashShards),
			model: func(m map[string]string) { m[key] = val },
		}},
	}
}

func sdel(key string) shardedCrashStep {
	return shardedCrashStep{
		name:  "delete " + key,
		apply: func(s *ShardedDB) error { return s.Delete(key) },
		muts: []shardMut{{
			shard: shardIndex(key, crashShards),
			model: func(m map[string]string) { delete(m, key) },
		}},
	}
}

// sbatch builds a batch step from put pairs and delete keys, deriving
// the per-shard sub-commits in the same ascending-shard order
// ShardedDB.Apply uses, preserving op order within each shard.
func sbatch(puts map[string]string, dels []string, order []string) shardedCrashStep {
	type op struct {
		key, val string
		del      bool
	}
	perShard := make([][]op, crashShards)
	for _, k := range order {
		if v, ok := puts[k]; ok {
			i := shardIndex(k, crashShards)
			perShard[i] = append(perShard[i], op{key: k, val: v})
		}
	}
	for _, k := range dels {
		i := shardIndex(k, crashShards)
		perShard[i] = append(perShard[i], op{key: k, del: true})
	}
	var muts []shardMut
	for i, ops := range perShard {
		if len(ops) == 0 {
			continue
		}
		sub := ops
		muts = append(muts, shardMut{shard: i, model: func(m map[string]string) {
			for _, o := range sub {
				if o.del {
					delete(m, o.key)
				} else {
					m[o.key] = o.val
				}
			}
		}})
	}
	return shardedCrashStep{
		name: "batch",
		apply: func(s *ShardedDB) error {
			return s.Apply(func(b *Batch) error {
				for _, k := range order {
					if v, ok := puts[k]; ok {
						b.Put(k, []byte(v))
					}
				}
				for _, k := range dels {
					b.Delete(k)
				}
				return nil
			})
		},
		muts: muts,
	}
}

// shardedCrashWorkload mixes single-key ops and multi-shard batches.
// Explicit Compact is deliberately absent: ShardedDB compacts shards
// concurrently, which would make the failpoint numbering
// nondeterministic; auto-compaction (CompactEvery) fires inside the
// serial append path instead and covers the same code.
func shardedCrashWorkload() []shardedCrashStep {
	steps := []shardedCrashStep{
		sput("mrt/rule1", "hvac<=24"),
		sput("mrt/rule2", "light-off"),
		sput("profile/week", "0.42,0.40,0.55"),
		sdel("mrt/rule2"),
		sbatch(
			map[string]string{"mrt/rule3": "shift-wash", "mrt/rule4": "ev-night", "mrt/rule5": "pool-pump"},
			[]string{"mrt/rule1"},
			[]string{"mrt/rule3", "mrt/rule4", "mrt/rule5"},
		),
		sput("mrt/rule1", "hvac<=26"),
		sdel("profile/week"),
		sput("summary/fce", "0.93"),
		sbatch(
			map[string]string{"profile/week": "fresh", "summary/fe": "12.5"},
			[]string{"mrt/rule4"},
			[]string{"profile/week", "summary/fe"},
		),
		sdel("missing/key"), // acked no-op: no WAL record
		sput("post/batch", "tail"),
	}
	return steps
}

// countShardedOps runs the workload fault-free and reports the
// failpoint count.
func countShardedOps(t *testing.T, sync bool) int {
	t.Helper()
	faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
	s, err := OpenSharded(ShardedOptions{
		Dir: "/db", Shards: crashShards, SyncWrites: sync, CompactEvery: 3, FS: faulty,
	})
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	for _, st := range shardedCrashWorkload() {
		if err := st.apply(s); err != nil {
			t.Fatalf("fault-free %s: %v", st.name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("fault-free close: %v", err)
	}
	return faulty.Ops()
}

// runShardedCrashAt replays the workload with a crash at failpoint n
// and checks every shard against its own state sequence.
func runShardedCrashAt(t *testing.T, n int, sync bool, tearSeed uint64) {
	t.Helper()
	mem := faultfs.NewMemFS()
	faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))

	empty := encodeState(nil)
	models := make([]map[string]string, crashShards)
	states := make([][]string, crashShards)
	acked := make([]int, crashShards)
	for i := range models {
		models[i] = make(map[string]string)
		states[i] = []string{empty}
	}

	s, err := OpenSharded(ShardedOptions{
		Dir: "/db", Shards: crashShards, SyncWrites: sync, CompactEvery: 3, FS: faulty,
	})
	if err == nil {
		for _, st := range shardedCrashWorkload() {
			aerr := st.apply(s)
			for _, mut := range st.muts {
				next := cloneState(models[mut.shard])
				mut.model(next)
				models[mut.shard] = next
				states[mut.shard] = append(states[mut.shard], encodeState(next))
			}
			if aerr == nil {
				// A full-step ack promises durability of every shard the
				// step touched, up to its latest state.
				for _, mut := range st.muts {
					acked[mut.shard] = len(states[mut.shard]) - 1
				}
			}
			if faulty.Dead() {
				break
			}
		}
		s.Close() //nolint:errcheck // the close may be the crash point
	}
	if !faulty.Dead() {
		t.Fatalf("failpoint %d never fired (ops=%d)", n, faulty.Ops())
	}

	// Power loss and reboot.
	if tearSeed == 0 {
		mem.Crash()
	} else {
		mem.CrashTearing(tearSeed)
	}

	// Reopen with the explicit count: a crash before the manifest
	// became durable leaves a fresh directory (no shard holds data yet,
	// because the manifest syncs before any shard opens), and adoption
	// would otherwise default to a different count.
	s2, err := OpenSharded(ShardedOptions{Dir: "/db", Shards: crashShards, SyncWrites: sync, FS: mem})
	if err != nil {
		t.Fatalf("failpoint %d: reopen failed: %v", n, err)
	}
	defer s2.Close() //nolint:errcheck

	for i, sh := range s2.shards {
		got := dumpState(sh)
		lo := 0
		if sync {
			lo = acked[i]
		}
		found := false
		for j := lo; j < len(states[i]); j++ {
			if got == states[i][j] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("failpoint %d (sync=%v tear=%#x): shard %d recovered %q not in valid states[%d:%d] %q",
				n, sync, tearSeed, i, got, lo, len(states[i]), states[i][lo:])
		}
	}

	// The recovered store must accept new writes on every shard.
	for i := 0; i < 2*crashShards; i++ {
		if err := s2.Put(fmt.Sprintf("recovery/key%d", i), []byte("ok")); err != nil {
			t.Fatalf("failpoint %d: post-recovery put: %v", n, err)
		}
	}
}

// TestShardedCrashRecoveryEveryFailpoint is the sharded tentpole gate:
// kill at every failpoint × SyncWrites on/off × clean vs torn tails,
// checking per-shard consistency and the cross-shard union invariant.
func TestShardedCrashRecoveryEveryFailpoint(t *testing.T) {
	for _, sync := range []bool{true, false} {
		for _, tear := range []uint64{0, 0xC0FFEE} {
			name := fmt.Sprintf("sync=%v/tear=%#x", sync, tear)
			t.Run(name, func(t *testing.T) {
				total := countShardedOps(t, sync)
				if total < 40 {
					t.Fatalf("suspiciously few failpoints: %d", total)
				}
				for n := 0; n < total; n++ {
					runShardedCrashAt(t, n, sync, tear)
				}
			})
		}
	}
}

// TestShardedCrashBetweenShardCommits pins the headline window
// directly: a two-shard batch with a crash enumerated across every file
// operation of the second sub-commit must leave the first shard's
// sub-batch durable and the second shard either empty or complete —
// never torn.
func TestShardedCrashBetweenShardCommits(t *testing.T) {
	// Find two keys on distinct shards, lowest-index shard first so
	// keyA commits before keyB.
	keyA, keyB := "", ""
	for i := 0; keyA == "" || keyB == ""; i++ {
		k := fmt.Sprintf("probe/key%d", i)
		switch shardIndex(k, crashShards) {
		case 0:
			if keyA == "" {
				keyA = k
			}
		case crashShards - 1:
			if keyB == "" {
				keyB = k
			}
		}
	}

	apply := func(s *ShardedDB) error {
		return s.Apply(func(b *Batch) error {
			b.Put(keyA, []byte("first"))
			b.Put(keyB, []byte("second"))
			return nil
		})
	}

	// Fault-free run to locate the batch's failpoint range.
	faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
	s, err := OpenSharded(ShardedOptions{Dir: "/db", Shards: crashShards, SyncWrites: true, FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	before := faulty.Ops()
	if err := apply(s); err != nil {
		t.Fatal(err)
	}
	after := faulty.Ops()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for n := before; n < after; n++ {
		mem := faultfs.NewMemFS()
		faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
		s, err := OpenSharded(ShardedOptions{Dir: "/db", Shards: crashShards, SyncWrites: true, FS: faulty})
		if err != nil {
			t.Fatalf("failpoint %d: open: %v", n, err)
		}
		acked := apply(s) == nil
		mem.Crash()

		s2, err := OpenSharded(ShardedOptions{Dir: "/db", SyncWrites: true, FS: mem})
		if err != nil {
			t.Fatalf("failpoint %d: reopen: %v", n, err)
		}
		a, aok := s2.Get(keyA)
		b, bok := s2.Get(keyB)
		if acked && (!aok || !bok) {
			t.Fatalf("failpoint %d: acknowledged batch lost (a=%v b=%v)", n, aok, bok)
		}
		if bok && !aok {
			t.Fatalf("failpoint %d: second shard committed before the first: ordering broken", n)
		}
		if aok && string(a) != "first" || bok && string(b) != "second" {
			t.Fatalf("failpoint %d: torn sub-batch: a=%q b=%q", n, a, b)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("failpoint %d: close: %v", n, err)
		}
	}
}
