package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func open(t *testing.T, dir string, opts ...func(*Options)) *DB {
	t.Helper()
	o := Options{Dir: dir}
	for _, f := range opts {
		f(&o)
	}
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open with empty Dir accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()

	if _, ok := db.Get("missing"); ok {
		t.Error("Get on empty store found a key")
	}
	if err := db.Put("mrt/1", []byte("night heat")); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get("mrt/1")
	if !ok || string(v) != "night heat" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if err := db.Put("mrt/1", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get("mrt/1"); string(v) != "updated" {
		t.Errorf("overwrite failed: %q", v)
	}
	if err := db.Delete("mrt/1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("mrt/1"); ok {
		t.Error("key survives delete")
	}
	if err := db.Delete("mrt/1"); err != nil {
		t.Errorf("deleting missing key: %v", err)
	}
	if err := db.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	if err := db.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Get("k")
	v[0] = 'X'
	again, _ := db.Get("k")
	if string(again) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestKeysPrefix(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	for _, k := range []string{"mrt/2", "mrt/1", "ecp/flat", "mrt/3"} {
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Keys("mrt/")
	want := []string{"mrt/1", "mrt/2", "mrt/3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keys(mrt/) = %v, want %v", got, want)
	}
	if n := len(db.Keys("")); n != 4 {
		t.Errorf("Keys(\"\") = %d keys, want 4", n)
	}
	if db.Len() != 4 {
		t.Errorf("Len() = %d", db.Len())
	}
}

func TestRestartRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	for i := 0; i < 50; i++ {
		if err := db.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete("k10"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: do NOT Close (which would compact); just reopen.
	if err := db.wal.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 49 {
		t.Errorf("recovered %d keys, want 49", db2.Len())
	}
	if _, ok := db2.Get("k10"); ok {
		t.Error("deleted key resurrected")
	}
	if v, _ := db2.Get("k42"); !bytes.Equal(v, []byte{42}) {
		t.Errorf("k42 = %v", v)
	}
}

func TestRestartAfterCompact(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	for i := 0; i < 20; i++ {
		if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.WALRecords() != 0 {
		t.Errorf("WALRecords after compact = %d", db.WALRecords())
	}
	if err := db.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 21 {
		t.Errorf("recovered %d keys, want 21", db2.Len())
	}
	if v, _ := db2.Get("post"); string(v) != "compact" {
		t.Errorf("post = %q", v)
	}
}

func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	for i := 0; i < 10; i++ {
		if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db.wal.Close() // crash without compaction

	// Tear the last record in half.
	walPath := filepath.Join(dir, walName)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 9 {
		t.Errorf("recovered %d keys, want 9 (torn record dropped)", db2.Len())
	}
	// The store must accept new writes and survive another restart.
	if err := db2.Put("fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := open(t, dir)
	defer db3.Close()
	if _, ok := db3.Get("fresh"); !ok {
		t.Error("write after torn-tail recovery lost")
	}
}

func TestCorruptWALRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	for i := 0; i < 5; i++ {
		if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db.wal.Close()

	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // corrupt final record's payload
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 4 {
		t.Errorf("recovered %d keys, want 4", db2.Len())
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	if err := db.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestAutoCompact(t *testing.T) {
	db := open(t, t.TempDir(), func(o *Options) { o.CompactEvery = 10 })
	defer db.Close()
	for i := 0; i < 25; i++ {
		if err := db.Put(fmt.Sprintf("k%d", i%3), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if db.WALRecords() >= 10 {
		t.Errorf("WALRecords = %d, auto-compaction did not run", db.WALRecords())
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d, want 3", db.Len())
	}
}

func TestSyncWrites(t *testing.T) {
	db := open(t, t.TempDir(), func(o *Options) { o.SyncWrites = true })
	defer db.Close()
	if err := db.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Get("k"); !ok || string(v) != "v" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestClosedOperations(t *testing.T) {
	db := open(t, t.TempDir())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("k", []byte("v")); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if err := db.Delete("k"); err != ErrClosed {
		t.Errorf("Delete after close = %v, want ErrClosed", err)
	}
	if err := db.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestJSONHelpers(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	type mrt struct {
		Name  string
		Limit float64
	}
	in := mrt{Name: "Energy Flat", Limit: 11000}
	if err := db.PutJSON("mrt/flat", in); err != nil {
		t.Fatal(err)
	}
	var out mrt
	ok, err := db.GetJSON("mrt/flat", &out)
	if err != nil || !ok || out != in {
		t.Errorf("GetJSON = %+v, %v, %v", out, ok, err)
	}
	ok, err = db.GetJSON("mrt/none", &out)
	if err != nil || ok {
		t.Errorf("GetJSON missing = %v, %v", ok, err)
	}
	if err := db.Put("bad", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetJSON("bad", &out); err == nil {
		t.Error("GetJSON on invalid JSON succeeded")
	}
	if err := db.PutJSON("ch", make(chan int)); err == nil {
		t.Error("PutJSON of unmarshalable value succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				if err := db.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := db.Get(key); !ok {
					t.Errorf("lost own write %s", key)
					return
				}
				db.Keys(fmt.Sprintf("g%d/", g))
			}
		}(g)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Errorf("Len = %d, want 800", db.Len())
	}
}

func TestPropertyStateMatchesModel(t *testing.T) {
	// Random op sequences applied to both the DB and a plain map, then a
	// restart — final states must agree.
	f := func(ops []struct {
		Key byte
		Val byte
		Del bool
	}) bool {
		dir, err := os.MkdirTemp("", "storeprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		db, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				if db.Delete(key) != nil {
					return false
				}
				delete(model, key)
			} else {
				if db.Put(key, []byte{op.Val}) != nil {
					return false
				}
				model[key] = []byte{op.Val}
			}
		}
		db.wal.Close() // crash-style restart
		db2, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		defer db2.Close()
		if db2.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := db2.Get(k)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
