package store

import "github.com/imcf/imcf/internal/metrics"

// Canonical metric families of the storage engine. Declared here so the
// metrics-hygiene lint rule can verify every family is observed
// somewhere in the package.
var (
	// walAppends counts records appended to the write-ahead log.
	walAppends = metrics.NewCounter("imcf_store_wal_appends_total",
		"Records appended to the write-ahead log (single ops and batches).")

	// walBatchOps counts individual operations inside atomic batches.
	walBatchOps = metrics.NewCounter("imcf_store_batch_ops_total",
		"Individual operations committed through atomic batches.")

	// walBytes accumulates bytes appended to the log.
	walBytes = metrics.NewFloatCounter("imcf_store_wal_bytes_total",
		"Bytes appended to the write-ahead log.")

	// storeCompactions counts snapshot compactions.
	storeCompactions = metrics.NewCounter("imcf_store_compactions_total",
		"Snapshot compactions performed.")

	// walFsyncs counts WAL fsyncs. With group commit one fsync can ack
	// many writers, so walFsyncs/walAppends is the batching win.
	walFsyncs = metrics.NewCounter("imcf_store_fsyncs_total",
		"WAL fsyncs issued (one per group-commit flush under SyncWrites).")

	// fsyncSeconds is the latency of each WAL fsync.
	fsyncSeconds = metrics.NewHistogram("imcf_store_fsync_seconds",
		"WAL fsync latency in seconds.", nil)

	// groupBatchSize is the number of writers acknowledged per
	// group-commit flush.
	groupBatchSize = metrics.NewHistogram("imcf_store_group_commit_batch_size",
		"Writers acknowledged together per group-commit flush.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})

	// shardRecords tracks live keys per shard of a ShardedDB.
	shardRecords = metrics.NewGaugeVec("imcf_store_shard_records",
		"Live keys per storage shard.", "shard")
)
