package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"sort"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

// Version-1 stores (pre-generation format) have a 16-byte snapshot
// header and a headerless WAL. An upgraded binary must open them —
// applying the WAL on top of the snapshot — and migrate them to the
// current format at the next compaction, not refuse to start.

// v1Snapshot encodes data in the legacy snapshot layout: magic,
// version 1, pad, count, records, CRC tail.
func v1Snapshot(data map[string]string) []byte {
	b := append([]byte{}, snapMagic[:]...)
	b = append(b, snapVersionLegacy, 0, 0, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(data)))
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		b = binary.AppendUvarint(b, uint64(len(data[k])))
		b = append(b, data[k]...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// v1WALRecord frames one legacy WAL record (the record layout is
// unchanged; only the log header is new).
func v1WALRecord(op byte, key, val string) []byte {
	payload := []byte{op}
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = append(payload, val...)
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

func writeMemFile(t *testing.T, fs faultfs.FS, path string, b []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenV1Store(t *testing.T) {
	mem := faultfs.NewMemFS()
	if err := mem.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	writeMemFile(t, mem, "/db/"+snapName, v1Snapshot(map[string]string{
		"mrt/rule1": "old",
		"mrt/rule2": "keep",
	}))
	var wal []byte
	wal = append(wal, v1WALRecord(opPut, "mrt/rule1", "new")...)
	wal = append(wal, v1WALRecord(opPut, "mrt/rule3", "added")...)
	wal = append(wal, v1WALRecord(opDelete, "mrt/rule2", "")...)
	writeMemFile(t, mem, "/db/"+walName, wal)
	if err := mem.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("open v1 store: %v", err)
	}
	want := map[string]string{"mrt/rule1": "new", "mrt/rule3": "added"}
	assertState := func(db *DB, stage string) {
		t.Helper()
		for k, v := range want {
			if got, ok := db.Get(k); !ok || string(got) != v {
				t.Fatalf("%s: %s = %q,%v, want %q", stage, k, got, ok, v)
			}
		}
		if _, ok := db.Get("mrt/rule2"); ok {
			t.Fatalf("%s: v1 wal delete not applied", stage)
		}
	}
	assertState(db, "after open")

	// New writes append to the still-headerless log; a crash before any
	// compaction must replay the mixed old+new records.
	if err := db.Put("mrt/rule4", []byte("fresh")); err != nil {
		t.Fatalf("put on v1 store: %v", err)
	}
	want["mrt/rule4"] = "fresh"
	mem.Crash()

	db2, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen v1 store after crash: %v", err)
	}
	assertState(db2, "after crash reopen")

	// Compaction migrates both files to the current format.
	if err := db2.Compact(); err != nil {
		t.Fatalf("migrating compaction: %v", err)
	}
	snap, err := mem.ReadFile("/db/" + snapName)
	if err != nil {
		t.Fatal(err)
	}
	if snap[4] != snapVersion {
		t.Fatalf("snapshot version after compaction = %d, want %d", snap[4], snapVersion)
	}
	if gen := binary.LittleEndian.Uint64(snap[8:16]); gen == 0 {
		t.Fatal("migrated snapshot has generation 0")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen migrated store: %v", err)
	}
	defer db3.Close() //nolint:errcheck
	assertState(db3, "after migration")
}

// TestOpenV1StoreTornWALTail: a v1 log with a torn tail replays its
// good prefix and truncates the rest, same as the current format.
func TestOpenV1StoreTornWALTail(t *testing.T) {
	mem := faultfs.NewMemFS()
	if err := mem.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	writeMemFile(t, mem, "/db/"+snapName, v1Snapshot(map[string]string{"k": "v"}))
	wal := v1WALRecord(opPut, "k2", "v2")
	torn := v1WALRecord(opPut, "k3", "v3")
	wal = append(wal, torn[:len(torn)-3]...)
	writeMemFile(t, mem, "/db/"+walName, wal)
	if err := mem.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("open v1 store with torn tail: %v", err)
	}
	defer db.Close() //nolint:errcheck
	if got, ok := db.Get("k2"); !ok || string(got) != "v2" {
		t.Fatalf("good prefix record lost: k2 = %q,%v", got, ok)
	}
	if _, ok := db.Get("k3"); ok {
		t.Fatal("torn record applied")
	}
	if err := db.Put("k4", []byte("v4")); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
}
