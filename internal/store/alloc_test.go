package store

import (
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

// putAllocBudget bounds the steady-state heap allocations of one Put on
// the group-commit path: the value copy, the pooled request and its
// recycled payload/batch scratch, and map bookkeeping. The encode
// buffer, the batch framing buffer and the commit request itself are
// pooled, which is what keeps this small; a regression here (a new
// per-append allocation) fails scripts/check.sh.
const putAllocBudget = 6

// TestStorePutAllocs is the allocation gate on the hot append path. It
// overwrites a single warm key so map growth and MemFS file growth are
// out of the picture, then measures a steady-state Put.
func TestStorePutAllocs(t *testing.T) {
	db, err := Open(Options{Dir: "/db", FS: faultfs.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	val := []byte("steady-state-value")
	// Warm up: populate the key, the pools and the WAL file's capacity.
	for i := 0; i < 64; i++ {
		if err := db.Put("hot/key", val); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := db.Put("hot/key", val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > putAllocBudget {
		t.Errorf("Put allocates %.1f times per op, budget %d: a scratch buffer stopped being pooled", allocs, putAllocBudget)
	}
}

// BenchmarkPutAllocs reports the append path's time and allocation
// profile (go test -bench PutAllocs -benchmem ./internal/store).
func BenchmarkPutAllocs(b *testing.B) {
	db, err := Open(Options{Dir: "/db", FS: faultfs.NewMemFS()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close() //nolint:errcheck

	val := []byte("steady-state-value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put("hot/key", val); err != nil {
			b.Fatal(err)
		}
	}
}
