package store

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

func openSharded(t *testing.T, dir string, opts ...func(*ShardedOptions)) *ShardedDB {
	t.Helper()
	o := ShardedOptions{Dir: dir, Shards: 4}
	for _, f := range opts {
		f(&o)
	}
	s, err := OpenSharded(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedOpenValidation(t *testing.T) {
	if _, err := OpenSharded(ShardedOptions{}); err == nil {
		t.Error("OpenSharded with empty Dir accepted")
	}
	if _, err := OpenSharded(ShardedOptions{Dir: t.TempDir(), Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}

func TestShardedSpreadsKeys(t *testing.T) {
	s := openSharded(t, t.TempDir())
	defer s.Close() //nolint:errcheck

	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("key/%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
	populated := 0
	for _, sh := range s.shards {
		if sh.Len() > 0 {
			populated++
		}
	}
	// FNV-1a over 64 distinct keys leaving any of 4 shards empty would
	// mean the routing is broken, not that the hash got unlucky.
	if populated < 2 {
		t.Errorf("64 keys landed in %d of %d shards", populated, len(s.shards))
	}
}

func TestShardedReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir)
	for i := 0; i < 32; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k10"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with Shards: 0 — the manifest supplies the count.
	s2 := openSharded(t, dir, func(o *ShardedOptions) { o.Shards = 0 })
	defer s2.Close() //nolint:errcheck
	if got := s2.NumShards(); got != 4 {
		t.Fatalf("NumShards after manifest reopen = %d, want 4", got)
	}
	if s2.Len() != 31 {
		t.Fatalf("Len after reopen = %d, want 31", s2.Len())
	}
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok := s2.Get(k)
		if i == 10 {
			if ok {
				t.Errorf("deleted key %s resurrected", k)
			}
			continue
		}
		if !ok || v[0] != byte(i) {
			t.Errorf("key %s = %v, %v", k, v, ok)
		}
	}
}

func TestShardedManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(ShardedOptions{Dir: dir, Shards: 8}); err == nil {
		t.Error("shard count mismatch accepted: keys would rehash into the wrong shards")
	}
	// The exact recorded count still opens.
	s2 := openSharded(t, dir)
	defer s2.Close() //nolint:errcheck
}

func TestShardedCorruptManifest(t *testing.T) {
	mem := faultfs.NewMemFS()
	s, err := OpenSharded(ShardedOptions{Dir: "/db", Shards: 2, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := mem.OpenFile("/db/"+shardManifest, os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not-a-number\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(ShardedOptions{Dir: "/db", FS: mem}); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestShardedDefaultShards(t *testing.T) {
	s := openSharded(t, t.TempDir(), func(o *ShardedOptions) { o.Shards = 0 })
	defer s.Close() //nolint:errcheck
	if got := s.NumShards(); got != DefaultShards {
		t.Errorf("NumShards = %d, want %d", got, DefaultShards)
	}
}

func TestShardedCrossShardBatch(t *testing.T) {
	s := openSharded(t, t.TempDir())
	defer s.Close() //nolint:errcheck

	if err := s.Put("stale", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Enough keys that the batch necessarily spans several shards.
	err := s.Apply(func(b *Batch) error {
		for i := 0; i < 16; i++ {
			b.Put(fmt.Sprintf("batch/%02d", i), []byte("v"))
		}
		b.Delete("stale")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 16 {
		t.Errorf("Len = %d, want 16", s.Len())
	}
	if _, ok := s.Get("stale"); ok {
		t.Error("cross-shard batched delete not applied")
	}
}

func TestShardedWALRecords(t *testing.T) {
	s := openSharded(t, t.TempDir())
	defer s.Close() //nolint:errcheck
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.WALRecords(); got != 10 {
		t.Errorf("WALRecords = %d, want 10", got)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.WALRecords(); got != 0 {
		t.Errorf("WALRecords after Compact = %d, want 0", got)
	}
}

// TestShardedConcurrentStress is the race-detector stress gate: eight
// writers hammer mixed Put/Delete/Apply traffic across the shards (each
// writer owns its key range so the expected end state is exact), then
// the machine loses power without a clean Close. Every write was acked
// under SyncWrites, so the reopened store must equal the union of the
// writers' in-memory models exactly.
func TestShardedConcurrentStress(t *testing.T) {
	const writers = 8
	const rounds = 40

	mem := faultfs.NewMemFS()
	s, err := OpenSharded(ShardedOptions{Dir: "/db", Shards: 4, SyncWrites: true, CompactEvery: 64, FS: mem})
	if err != nil {
		t.Fatal(err)
	}

	models := make([]map[string]string, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := make(map[string]string)
			models[w] = model
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("w%d/k%d", w, r%10)
				val := fmt.Sprintf("v%d.%d", w, r)
				switch r % 4 {
				case 0, 1:
					if err := s.Put(key, []byte(val)); err != nil {
						errs <- fmt.Errorf("writer %d put: %w", w, err)
						return
					}
					model[key] = val
				case 2:
					if err := s.Delete(key); err != nil {
						errs <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
					delete(model, key)
				case 3:
					k2 := fmt.Sprintf("w%d/b%d", w, r%7)
					if err := s.Apply(func(b *Batch) error {
						b.Put(key, []byte(val))
						b.Put(k2, []byte(val))
						return nil
					}); err != nil {
						errs <- fmt.Errorf("writer %d apply: %w", w, err)
						return
					}
					model[key] = val
					model[k2] = val
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Power loss without Close: every write above was acked under
	// SyncWrites, so all of them must replay.
	mem.Crash()
	s2, err := OpenSharded(ShardedOptions{Dir: "/db", SyncWrites: true, FS: mem})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close() //nolint:errcheck

	want := make(map[string]string)
	for _, m := range models {
		for k, v := range m {
			want[k] = v
		}
	}
	if s2.Len() != len(want) {
		t.Errorf("recovered %d keys, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s2.Get(k)
		if !ok || string(got) != v {
			t.Errorf("key %s = %q, %v; want %q", k, got, ok, v)
		}
	}
	for _, k := range s2.Keys("") {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected recovered key %s", k)
		}
	}
}
