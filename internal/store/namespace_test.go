package store

import (
	"errors"
	"reflect"
	"testing"
)

// TestNamespaceEmptyPrefixIsParent pins that an empty prefix is the
// identity: no wrapper, no indirection.
func TestNamespaceEmptyPrefixIsParent(t *testing.T) {
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	if got := Namespace(m, ""); got != Adapter(m) {
		t.Fatalf("Namespace(parent, \"\") = %T, want the parent itself", got)
	}
}

func TestNamespaceAccessors(t *testing.T) {
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	n := Namespace(m, "t/a/").(*Namespaced)
	if n.Parent() != Adapter(m) {
		t.Error("Parent() is not the wrapped backend")
	}
	if n.Prefix() != "t/a/" {
		t.Errorf("Prefix() = %q", n.Prefix())
	}
}

// TestNamespaceIsolation runs two tenants over every shared-capable
// backend and checks neither can see or disturb the other's keys —
// including the prefix-of-a-prefix case ("t/a/" vs "t/ab/").
func TestNamespaceIsolation(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			parent := be.open(t)
			defer parent.Close() //nolint:errcheck

			a := Namespace(parent, "t/a/")
			ab := Namespace(parent, "t/ab/")

			if err := a.Put("imcf/mrt", []byte("tenant-a")); err != nil {
				t.Fatal(err)
			}
			if err := ab.Put("imcf/mrt", []byte("tenant-ab")); err != nil {
				t.Fatal(err)
			}

			if v, _ := a.Get("imcf/mrt"); string(v) != "tenant-a" {
				t.Errorf("tenant a sees %q", v)
			}
			if v, _ := ab.Get("imcf/mrt"); string(v) != "tenant-ab" {
				t.Errorf("tenant ab sees %q", v)
			}
			if got := a.Keys(""); !reflect.DeepEqual(got, []string{"imcf/mrt"}) {
				t.Errorf("tenant a Keys = %v", got)
			}
			if a.Len() != 1 || ab.Len() != 1 {
				t.Errorf("Len = %d, %d; want 1, 1", a.Len(), ab.Len())
			}

			// The parent sees both, fully routed.
			if got := parent.Keys("t/"); !reflect.DeepEqual(got, []string{"t/a/imcf/mrt", "t/ab/imcf/mrt"}) {
				t.Errorf("parent Keys = %v", got)
			}

			// Deleting in one namespace leaves the other intact.
			if err := a.Delete("imcf/mrt"); err != nil {
				t.Fatal(err)
			}
			if _, ok := a.Get("imcf/mrt"); ok {
				t.Error("tenant a key survives delete")
			}
			if _, ok := ab.Get("imcf/mrt"); !ok {
				t.Error("tenant ab key lost to tenant a's delete")
			}
		})
	}
}

// TestNamespaceKeysStripPrefix pins that a tenant lists the key names
// it wrote, sorted, never the physical routing prefix.
func TestNamespaceKeysStripPrefix(t *testing.T) {
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	n := Namespace(m, "t/h1/")
	for _, k := range []string{"mrt/2", "mrt/1", "ecp/flat"} {
		if err := n.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := n.Keys("mrt/"), []string{"mrt/1", "mrt/2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys(mrt/) = %v, want %v", got, want)
	}
	if got, want := n.Keys(""), []string{"ecp/flat", "mrt/1", "mrt/2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys(\"\") = %v, want %v", got, want)
	}
}

func TestNamespaceEmptyKeyRejected(t *testing.T) {
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	n := Namespace(m, "t/h1/")
	if err := n.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted: would write the bare prefix")
	}
	if m.Len() != 0 {
		t.Errorf("parent has %d keys after rejected Put", m.Len())
	}
}

// TestNamespaceApply checks batches route through the prefix, stay
// atomic, and reject invalid ops without touching the parent.
func TestNamespaceApply(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			parent := be.open(t)
			defer parent.Close() //nolint:errcheck
			n := Namespace(parent, "t/h1/")

			if err := n.Put("stale", []byte("old")); err != nil {
				t.Fatal(err)
			}
			err := n.Apply(func(b *Batch) error {
				b.Put("fresh/1", []byte("v1"))
				b.Put("fresh/2", []byte("v2"))
				b.Delete("stale")
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := n.Get("stale"); ok {
				t.Error("batched delete not applied")
			}
			for _, k := range []string{"fresh/1", "fresh/2"} {
				if _, ok := n.Get(k); !ok {
					t.Errorf("batched put %s not applied", k)
				}
				if _, ok := parent.Get("t/h1/" + k); !ok {
					t.Errorf("parent missing routed key t/h1/%s", k)
				}
			}

			// fn error: nothing written.
			boom := errors.New("boom")
			err = n.Apply(func(b *Batch) error {
				b.Put("never", []byte("x"))
				return boom
			})
			if !errors.Is(err, boom) {
				t.Errorf("Apply fn error = %v, want boom", err)
			}
			if _, ok := n.Get("never"); ok {
				t.Error("write survived fn error")
			}

			// Empty key in a batch: rejected, nothing written.
			err = n.Apply(func(b *Batch) error {
				b.Put("valid", []byte("x"))
				b.Put("", []byte("y"))
				return nil
			})
			if err == nil {
				t.Error("empty key in batch accepted")
			}
			if _, ok := n.Get("valid"); ok {
				t.Error("sibling of invalid op written")
			}

			// Empty batch: acked no-op.
			if err := n.Apply(func(b *Batch) error { return nil }); err != nil {
				t.Errorf("empty batch: %v", err)
			}
		})
	}
}

func TestNamespaceJSON(t *testing.T) {
	type mrt struct {
		Rules []string `json:"rules"`
	}
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	n := Namespace(m, "t/h1/")

	in := mrt{Rules: []string{"hvac<=24"}}
	if err := n.PutJSON("imcf/mrt", in); err != nil {
		t.Fatal(err)
	}
	var out mrt
	if ok, err := n.GetJSON("imcf/mrt", &out); !ok || err != nil {
		t.Fatalf("GetJSON = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round-trip = %+v, want %+v", out, in)
	}
	if _, ok := m.Get("t/h1/imcf/mrt"); !ok {
		t.Error("JSON value not routed through the prefix")
	}
}

// TestNamespaceCloseIsNoOp pins the ownership contract: closing a view
// must not close the shared parent.
func TestNamespaceCloseIsNoOp(t *testing.T) {
	m := OpenMem()
	defer m.Close() //nolint:errcheck
	n := Namespace(m, "t/h1/")
	if err := n.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// The parent — and other views of it — keep working.
	if err := m.Put("k2", []byte("v")); err != nil {
		t.Errorf("parent closed by view Close: %v", err)
	}
	if err := Namespace(m, "t/h2/").Put("k", []byte("v")); err != nil {
		t.Errorf("sibling view broken by Close: %v", err)
	}
}

// TestNamespaceProbeAndCompact delegate to the shared parent.
func TestNamespaceProbeAndCompact(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	n := Namespace(db, "t/h1/")
	if err := n.Probe(); err != nil {
		t.Errorf("Probe: %v", err)
	}
	if err := n.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := n.Compact(); err != nil {
		t.Errorf("Compact: %v", err)
	}
	if _, ok := n.Get("k"); !ok {
		t.Error("key lost across compaction")
	}
}

// TestNamespaceDurability reopens a WAL backend and checks namespaced
// writes recover under their tenant prefixes.
func TestNamespaceDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []string{"h1", "h2"} {
		if err := Namespace(db, "t/"+tn+"/").Put("imcf/mrt", []byte(tn)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close() //nolint:errcheck
	for _, tn := range []string{"h1", "h2"} {
		if v, ok := Namespace(db2, "t/"+tn+"/").Get("imcf/mrt"); !ok || string(v) != tn {
			t.Errorf("tenant %s recovered %q, %v", tn, v, ok)
		}
	}
}
