package store

import (
	"encoding/json"
	"fmt"
)

// Adapter is the storage seam of the controller and daemon: the
// operations every backend must provide, regardless of how (or
// whether) it persists them. Three implementations ship:
//
//   - DB — the WAL+snapshot store with group-commit fsync batching,
//     the durable default;
//   - ShardedDB — N independent DB shards hashed by key, for write
//     paths that outgrow a single log;
//   - MemDB — pure in-memory, for tests, ephemeral daemons and as the
//     semantic reference the conformance suite measures the durable
//     backends against.
//
// Multi-home tenancy composes on top of this seam rather than inside
// any backend: Namespace(parent, "t/<home>/") wraps an Adapter in a
// Namespaced view that key-prefix-routes one tenant's keys through a
// shared DB or MemDB, while ShardedDB tenants instead get their own
// shard directory (one ShardedDB per home under dir/tenants/<id>).
// The faultfs.FS seam sits underneath the durable implementations, so
// crash-consistency testing composes with any Adapter built on it.
type Adapter interface {
	// Get returns a copy of the value stored at key.
	Get(key string) ([]byte, bool)
	// Put durably stores value at key. The empty key is invalid.
	Put(key string, value []byte) error
	// Delete removes key; deleting a missing key is a no-op.
	Delete(key string) error
	// Keys returns all keys with the given prefix, sorted.
	Keys(prefix string) []string
	// Len returns the number of live keys.
	Len() int
	// Apply runs fn to fill a batch and commits it atomically. (For
	// ShardedDB, atomicity holds per shard; see its documentation.)
	Apply(fn func(*Batch) error) error
	// PutJSON marshals v and stores it at key.
	PutJSON(key string, v any) error
	// GetJSON unmarshals the value at key into v, reporting whether
	// the key existed.
	GetJSON(key string, v any) (bool, error)
	// Compact reclaims space (a no-op for backends without a log).
	Compact() error
	// Probe verifies the write path end to end without touching any
	// key; the daemon's degraded-mode logic is built on it.
	Probe() error
	// Close flushes and closes the backend. Further mutations return
	// ErrClosed.
	Close() error
}

// Compile-time conformance of the shipped backends.
var (
	_ Adapter = (*DB)(nil)
	_ Adapter = (*MemDB)(nil)
	_ Adapter = (*ShardedDB)(nil)
)

// putJSON is the shared PutJSON implementation behind every backend.
func putJSON(a Adapter, key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", key, err)
	}
	return a.Put(key, b)
}

// getJSON is the shared GetJSON implementation behind every backend.
func getJSON(a Adapter, key string, v any) (bool, error) {
	b, ok := a.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(b, v); err != nil {
		return true, fmt.Errorf("store: unmarshal %s: %w", key, err)
	}
	return true, nil
}
