// Package store implements a small embedded key-value store with a
// write-ahead log and snapshot compaction. It substitutes the MariaDB
// persistence layer of the IMCF prototype: meta-rule tables, energy
// profiles and controller configuration are durably stored and survive
// controller restarts, including crashes that tear the log's tail.
//
// On disk a store is a directory with two files:
//
//	store.snap — a point-in-time snapshot of all live keys
//	store.wal  — the write-ahead log of operations since that snapshot
//
// Open loads the snapshot, replays the WAL (stopping at the first torn
// or corrupt record, which is truncated away), and serves reads from an
// in-memory map. Every mutation is appended to the WAL before it is
// applied. Compact rewrites the snapshot and resets the WAL.
package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/obs"
)

const (
	snapName = "store.snap"
	walName  = "store.wal"

	opPut    = 1
	opDelete = 2
	// opProbe (4, see batch.go for 3) is a no-op record appended by
	// Probe to verify the write path; replay ignores it.
	opProbe = 4
)

var (
	snapMagic = [4]byte{'I', 'M', 'S', 'S'}
	walMagic  = [4]byte{'I', 'M', 'W', 'L'}
)

const (
	// snapVersionLegacy is the pre-generation snapshot format: a
	// 16-byte header (magic, version, pad, key count) and no WAL
	// header. Still accepted by Open; the next compaction rewrites
	// both files in the current format.
	snapVersionLegacy = 1
	snapVersion       = 2
	walVersion        = 1
	// walHeaderLen is magic(4) + version(1) + pad(3) + generation(8).
	walHeaderLen = 16
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("store: database is closed")

// Options configures Open.
type Options struct {
	// Dir is the directory holding the store files; it is created if
	// missing.
	Dir string
	// SyncWrites fsyncs the WAL after every mutation. Slower, but a
	// crash loses nothing. Off by default, matching the prototype's
	// MariaDB default durability.
	SyncWrites bool
	// CompactEvery triggers automatic compaction after this many WAL
	// records (0 disables automatic compaction).
	CompactEvery int
	// NoGroupCommit disables the group-commit pipeline: every mutation
	// holds the store lock across its own append and fsync, the
	// pre-batching behaviour. Kept as the measured baseline for
	// imcf-bench -store; production callers should leave it off.
	NoGroupCommit bool
	// FS overrides the file layer (tests inject faultfs fakes to
	// exercise crash recovery); nil uses the real filesystem.
	FS faultfs.FS
}

// DB is an open store. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	opts    Options
	fs      faultfs.FS
	data    map[string][]byte
	wal     faultfs.File
	walErr  error // why wal is nil (failed compaction reset or tail rollback)
	walRecs int
	// walSize is the log length up to the last acknowledged record —
	// the rollback point after a failed append. Truncating back to it
	// keeps torn bytes (a short write under ENOSPC) from sitting in
	// front of later acknowledged records, which replay — stopping at
	// the first bad record — would otherwise silently discard.
	walSize int64
	// gen is the compaction generation. The snapshot and the WAL header
	// both carry it; replay discards a WAL whose generation differs from
	// the snapshot's. This closes the stale-log window: a crash after
	// the new snapshot's rename is durable but before the WAL reset can
	// resurrect pre-compaction records (tearing keeps an arbitrary
	// prefix), and replaying that prefix — e.g. a stale delete of a key
	// the folded-in history later re-created — onto the newer snapshot
	// would fabricate a state that never existed.
	gen    uint64
	closed bool

	// Group-commit pipeline state. Writers encode their record off the
	// store lock, enqueue it under qmu, and the first writer to find no
	// flush in progress becomes the leader: it drains the queue, frames
	// the whole batch into groupBuf, appends and fsyncs it with a
	// single Write+Sync under db.mu, applies the map mutations, and
	// acks every waiter — O(1) fsyncs per batch instead of O(writers).
	qmu      sync.Mutex
	pending  []*commitReq
	spare    []*commitReq // recycled backing array for pending
	flushing bool
	groupBuf []byte        // batch framing scratch, reused across flushes
	oneReq   [1]*commitReq // batch-of-one scratch for the serial path
}

// Open opens (or creates) the store in opts.Dir.
func Open(opts Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Dir must be set")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	db := &DB{opts: opts, fs: fsys, data: make(map[string][]byte)}
	// A temp snapshot left behind by a crash mid-compaction is garbage:
	// the real snapshot is only ever replaced by a completed rename.
	if err := fsys.Remove(db.snapPath() + ".tmp"); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: remove stale temp snapshot: %w", err)
	}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	replayed, err := db.replayWAL()
	if err != nil {
		return nil, err
	}
	wal, err := fsys.OpenFile(db.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	db.wal = wal
	if size, err := fsys.Size(db.walPath()); err != nil {
		return nil, fmt.Errorf("store: stat wal: %w", err)
	} else if size == 0 {
		// Fresh (or reset-after-staleness) log: stamp it with the
		// snapshot's generation before any record lands.
		if err := db.writeWALHeader(); err != nil {
			return nil, err
		}
	} else {
		// Replay already truncated any torn tail, so the current
		// length is the last-good offset.
		db.walSize = size
	}
	// The directory entries (a freshly created WAL, the removed temp
	// snapshot) must be durable before the first append is
	// acknowledged, or a power cut could take the whole log with it.
	if err := fsys.SyncDir(opts.Dir); err != nil {
		return nil, fmt.Errorf("store: sync dir: %w", err)
	}
	db.walRecs = replayed
	return db, nil
}

// writeWALHeader appends the 16-byte log header (magic, version, the
// current compaction generation) to an empty WAL. The caller holds
// db.mu or is still constructing the DB.
func (db *DB) writeWALHeader() error {
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic[:]...)
	hdr = append(hdr, walVersion, 0, 0, 0)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.gen)
	if _, err := db.wal.Write(hdr); err != nil {
		return fmt.Errorf("store: write wal header: %w", err)
	}
	db.walSize = walHeaderLen
	return nil
}

func (db *DB) snapPath() string { return filepath.Join(db.opts.Dir, snapName) }
func (db *DB) walPath() string  { return filepath.Join(db.opts.Dir, walName) }

// Get returns the value stored at key. The returned slice is a copy the
// caller may retain.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put durably stores value at key.
func (db *DB) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	req := newReq(opPut, key, cp, nil)
	req.payload = encodeOp(req.payload[:0], opPut, key, value)
	return db.finish(req)
}

// Delete durably removes key. Deleting a missing key is a no-op (it
// linearizes at the presence check: a Delete racing a concurrent Put of
// the same key may order before it and leave the Put's value in place).
func (db *DB) Delete(key string) error {
	db.mu.RLock()
	_, ok := db.data[key]
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return nil
	}
	req := newReq(opDelete, key, nil, nil)
	req.payload = encodeOp(req.payload[:0], opDelete, key, nil)
	return db.finish(req)
}

// Keys returns all keys with the given prefix, sorted.
func (db *DB) Keys(prefix string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for k := range db.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}

// PutJSON marshals v and stores it at key.
func (db *DB) PutJSON(key string, v any) error { return putJSON(db, key, v) }

// GetJSON unmarshals the value at key into v, reporting whether the key
// existed.
func (db *DB) GetJSON(key string, v any) (bool, error) { return getJSON(db, key, v) }

// Compact rewrites the snapshot with the live data and truncates the WAL.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.compactLocked()
}

// WALRecords reports the number of records in the current WAL, useful
// for tests and operational introspection.
func (db *DB) WALRecords() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walRecs
}

// Probe appends (and, under SyncWrites, fsyncs) a no-op WAL record,
// verifying the append path end to end without touching any key. The
// daemon's degraded-mode logic uses it to classify persistent disk
// faults and to detect when a full or failing disk has recovered.
func (db *DB) Probe() error {
	req := newReq(opProbe, "", nil, nil)
	req.payload = encodeOp(req.payload[:0], opProbe, "", nil)
	return db.finish(req)
}

// Close compacts and closes the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	err := db.compactLocked()
	if db.wal != nil {
		if cerr := db.wal.Close(); err == nil {
			err = cerr
		}
		db.wal = nil
	}
	db.closed = true
	return err
}

func (db *DB) maybeCompactLocked() error {
	if db.opts.CompactEvery > 0 && db.walRecs >= db.opts.CompactEvery {
		return db.compactLocked()
	}
	return nil
}

// commitReq is one mutation queued for a group-commit flush. The
// payload is the encoded WAL record body (op byte | keyLen uvarint |
// key | value, see encodeOp); the op-specific fields carry the map
// mutation the leader applies once the record is durable. Requests and
// their payload scratch are pooled: steady-state Put/Delete/Probe
// allocate only the map value copy.
type commitReq struct {
	op      byte
	key     string
	value   []byte    // opPut: the copy installed into the map
	batch   []batchOp // opBatch: the batch's operations
	payload []byte    // pooled record-encode scratch, reused across ops
	err     error
	done    chan struct{}
}

// reqPool recycles commitReqs with their encode scratch and ack channel.
var reqPool = sync.Pool{New: func() any { return &commitReq{done: make(chan struct{}, 1)} }}

// newReq checks a request out of the pool.
func newReq(op byte, key string, value []byte, batch []batchOp) *commitReq {
	r := reqPool.Get().(*commitReq)
	r.op, r.key, r.value, r.batch, r.err = op, key, value, batch, nil
	return r
}

// releaseReq returns a request to the pool. The map-owned value and the
// batch ops are dropped (never recycled); the payload scratch is kept.
func releaseReq(r *commitReq) {
	r.key, r.value, r.batch, r.err = "", nil, nil, nil
	reqPool.Put(r)
}

// encodeOp appends one record payload: op byte | keyLen uvarint | key |
// value.
func encodeOp(dst []byte, op byte, key string, value []byte) []byte {
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	return dst
}

// finish commits req — through the group-commit queue, or serially
// under NoGroupCommit — and recycles it.
func (db *DB) finish(req *commitReq) error {
	if db.opts.NoGroupCommit {
		db.mu.Lock()
		db.oneReq[0] = req
		db.flushLocked(db.oneReq[:])
		db.oneReq[0] = nil
		db.mu.Unlock()
	} else {
		db.commit(req)
	}
	err := req.err
	releaseReq(req)
	return err
}

// commit runs the group-commit protocol for req. Every writer enqueues
// under qmu; if a flush is already in progress the writer parks on its
// ack channel and the current leader will commit it. Otherwise the
// writer becomes the leader and drains the queue — its own request
// first, then any batches that accumulated while it was flushing — so
// the queue is always emptied and followers never wait on an absent
// leader.
func (db *DB) commit(req *commitReq) {
	db.qmu.Lock()
	db.pending = append(db.pending, req)
	if db.flushing {
		db.qmu.Unlock()
		<-req.done
		return
	}
	db.flushing = true
	// Give writers racing with this one a beat to enqueue before the
	// first swap, so they ride this flush instead of waiting out a
	// whole fsync for the next one.
	db.qmu.Unlock()
	runtime.Gosched()
	db.qmu.Lock()
	for {
		batch := db.pending
		db.pending = db.spare[:0]
		db.qmu.Unlock()

		db.mu.Lock()
		db.flushLocked(batch)
		db.mu.Unlock()
		for _, r := range batch {
			if r != req {
				r.done <- struct{}{}
			}
		}

		db.qmu.Lock()
		db.spare = batch[:0]
		if len(db.pending) == 0 {
			// Linger one scheduling beat before surrendering
			// leadership: the followers just acked are likely already
			// computing their next write, and collecting those into
			// this leader's next flush instead of letting one of them
			// start a batch-of-one roughly doubles the batch size under
			// contention. One yield bounds the added latency to a
			// scheduler pass — noise next to the fsync it saves.
			db.qmu.Unlock()
			runtime.Gosched()
			db.qmu.Lock()
			if len(db.pending) == 0 {
				db.flushing = false
				db.qmu.Unlock()
				return
			}
		}
	}
}

// flushLocked commits one batch: every record framed (length + CRC-32
// header) into the group buffer, one Write, one Sync when SyncWrites is
// set, then the map mutations — so a batch is acknowledged only once
// every record in it is durable, and all waiters share the fsync. The
// caller holds db.mu. If the log has no usable handle — a compaction
// reset or a tail rollback failed earlier — it first retries the
// repair, so the store (and with it the daemon's degraded mode, whose
// Probe lands here) heals without a restart as soon as the disk
// recovers. A failed flush is rolled back to the last acknowledged
// record and every request in the batch reports the error.
func (db *DB) flushLocked(batch []*commitReq) {
	fail := func(err error) {
		for _, r := range batch {
			r.err = err
		}
	}
	if db.closed {
		fail(ErrClosed)
		return
	}
	if db.wal == nil {
		if err := db.repairWALLocked(); err != nil {
			fail(fmt.Errorf("store: wal unavailable: %w", err))
			return
		}
	}
	buf := db.groupBuf[:0]
	for _, r := range batch {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(r.payload))
		buf = append(buf, r.payload...)
	}
	db.groupBuf = buf[:0]

	//imcf:allow lockdiscipline group-commit leader: one Write under db.mu covers the whole batch; that serialization IS the design
	if _, err := db.wal.Write(buf); err != nil {
		db.rollbackWALTailLocked()
		fail(fmt.Errorf("store: wal append: %w", err))
		return
	}
	if db.opts.SyncWrites {
		start := time.Now()
		//imcf:allow lockdiscipline group-commit leader: one Sync amortized across the batch; followers wait on their request channel, not db.mu
		err := db.wal.Sync()
		fsyncSeconds.Observe(time.Since(start).Seconds())
		walFsyncs.Inc()
		if err != nil {
			db.rollbackWALTailLocked()
			fail(fmt.Errorf("store: wal sync: %w", err))
			return
		}
	}
	groupBatchSize.Observe(float64(len(batch)))
	db.walSize += int64(len(buf))
	walBytes.Add(float64(len(buf)))
	for _, r := range batch {
		db.walRecs++
		walAppends.Inc()
		db.applyReqLocked(r)
	}
	if err := db.maybeCompactLocked(); err != nil {
		// Every record is already durable; only the follow-up
		// compaction failed. Surface it to the batch like the serial
		// path surfaced it to its caller.
		fail(err)
	}
}

// applyReqLocked applies one durably committed request to the in-memory
// map. The caller holds db.mu.
func (db *DB) applyReqLocked(r *commitReq) {
	switch r.op {
	case opPut:
		db.data[r.key] = r.value
	case opDelete:
		delete(db.data, r.key)
	case opProbe:
		// Write-path probe: no data effect.
	case opBatch:
		for _, op := range r.batch {
			if op.del {
				delete(db.data, op.key)
			} else {
				db.data[op.key] = op.value
			}
		}
		walBatchOps.Add(uint64(len(r.batch)))
	}
}

// rollbackWALTailLocked discards the bytes of a failed append so the
// log ends at the last acknowledged record. A short write (ENOSPC
// mid-record) leaves torn bytes at the tail; left in place, appends
// after the disk recovered would be acknowledged beyond them, and the
// next replay — which truncates at the first bad record — would
// silently discard those acknowledged writes. If the truncate itself
// fails, the handle is closed and the log marked unusable; flushLocked
// repairs it (retrying the truncate) before accepting any new append.
func (db *DB) rollbackWALTailLocked() {
	if err := db.fs.Truncate(db.walPath(), db.walSize); err != nil {
		db.walErr = err
		if db.wal != nil {
			db.wal.Close() //nolint:errcheck // the append failure is already being returned
			db.wal = nil
		}
	}
}

// repairWALLocked re-establishes a usable append handle after the log
// was marked unusable: it truncates the file back to the last-good
// offset — dropping a torn tail after a failed rollback, or the whole
// folded-in log after a failed compaction reset (walSize 0) — reopens
// it for append, and restamps the header when the log restarts empty.
// Reached from flushLocked, this is how Probe verifies and repairs the
// log tail before reporting the write path healthy again.
func (db *DB) repairWALLocked() error {
	if err := db.fs.Truncate(db.walPath(), db.walSize); err != nil {
		// A missing file is only acceptable when nothing acknowledged
		// lives in the log; OpenFile below recreates it.
		if db.walSize > 0 || !errors.Is(err, os.ErrNotExist) {
			db.walErr = err
			return fmt.Errorf("repair wal tail: %w", err)
		}
	}
	wal, err := db.fs.OpenFile(db.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		db.walErr = err
		return fmt.Errorf("reopen wal: %w", err)
	}
	db.wal = wal
	if db.walSize == 0 {
		if err := db.writeWALHeader(); err != nil {
			db.wal = nil
			db.walErr = err
			wal.Close() //nolint:errcheck // the header-write error is already being returned
			return err
		}
	}
	db.walErr = nil
	return nil
}

// replayWAL applies WAL records on top of the snapshot. A torn or
// corrupt tail ends replay and is truncated from the file so subsequent
// appends extend a clean log.
func (db *DB) replayWAL() (int, error) {
	f, err := db.fs.OpenFile(db.walPath(), os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()

	// The log must carry the snapshot's generation. A mismatch means a
	// crash raced a compaction and resurrected a stale log (its records
	// are already folded into the snapshot — replaying a prefix of them
	// could undo folded-in history); a short or garbled header is a torn
	// reset. Either way every usable record is in the snapshot already,
	// so the log restarts empty at the current generation.
	//
	// Exception: a store written before the header existed (snapshot
	// version 1) has records starting at offset zero. It is recognised
	// by the absence of the magic together with generation 0 — every
	// compacted snapshot carries gen >= 1, so a post-compaction stale
	// log can never be mistaken for it — and replayed headerless; the
	// records are CRC-gated like any others. The next compaction
	// rewrites both files in the current format.
	var whdr [walHeaderLen]byte
	n, err := io.ReadFull(f, whdr[:])
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, fmt.Errorf("store: read wal header: %w", err)
	}
	headerOK := n == walHeaderLen &&
		[4]byte(whdr[:4]) == walMagic &&
		whdr[4] == walVersion &&
		binary.LittleEndian.Uint64(whdr[8:]) == db.gen
	legacy := !headerOK && db.gen == 0 &&
		(n < len(walMagic) || [4]byte(whdr[:4]) != walMagic)
	if !headerOK && !legacy {
		if err := db.fs.Truncate(db.walPath(), 0); err != nil {
			return 0, fmt.Errorf("store: reset stale wal: %w", err)
		}
		return 0, nil
	}

	var (
		hdr    [8]byte
		r      io.Reader = f
		offset           = int64(walHeaderLen)
		count  int
	)
	if legacy {
		// Re-feed the bytes consumed by the header probe.
		r = io.MultiReader(bytes.NewReader(whdr[:n]), f)
		offset = 0
	}
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn header: stop
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if plen == 0 || plen > 1<<30 {
			break // implausible: treat as corruption
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn record
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break // corrupt record
		}
		if err := db.applyPayload(payload); err != nil {
			break
		}
		offset += int64(8 + plen)
		count++
	}
	// Truncate anything after the last good record.
	if size, err := db.fs.Size(db.walPath()); err == nil && size > offset {
		if err := db.fs.Truncate(db.walPath(), offset); err != nil {
			return count, fmt.Errorf("store: truncate torn wal: %w", err)
		}
		obs.L().LogAttrs(context.Background(), slog.LevelWarn, "store truncated torn wal tail",
			slog.String("path", db.walPath()),
			slog.Int64("kept_bytes", offset),
			slog.Int64("dropped_bytes", size-offset))
	}
	return count, nil
}

func (db *DB) applyPayload(p []byte) error {
	if len(p) < 2 {
		return errors.New("store: short wal payload")
	}
	op := p[0]
	if op == opBatch {
		return db.applyBatchPayload(p[1:])
	}
	klen, n := binary.Uvarint(p[1:])
	if n <= 0 || int(klen) > len(p)-1-n {
		return errors.New("store: bad wal key length")
	}
	key := string(p[1+n : 1+n+int(klen)])
	val := p[1+n+int(klen):]
	switch op {
	case opPut:
		cp := make([]byte, len(val))
		copy(cp, val)
		db.data[key] = cp
	case opDelete:
		delete(db.data, key)
	case opProbe:
		// Write-path probe: no data effect.
	default:
		return fmt.Errorf("store: unknown wal op %d", op)
	}
	return nil
}

// compactLocked writes a fresh snapshot atomically (write temp +
// rename + directory sync) and truncates the WAL. The ordering is the
// durability argument: the snapshot content is synced before the
// rename, and the rename is made durable (SyncDir) before a single
// WAL byte is dropped, so at every crash point the directory holds
// either the old snapshot with the full log or the new snapshot with
// a log whose records are already folded into it.
func (db *DB) compactLocked() error {
	storeCompactions.Inc()
	// The new snapshot opens a new generation; the reset WAL is stamped
	// with it, so a crash that resurrects the pre-compaction log leaves
	// a generation mismatch replay can detect.
	db.gen++
	tmp := db.snapPath() + ".tmp"
	f, err := db.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create snapshot: %w", err)
	}
	// Close exactly once, with the error checked on every path: a
	// close failure on the write path can mean lost snapshot bytes.
	werr := db.writeSnapshotLocked(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		// Don't leak the torn temp snapshot; removal is best-effort
		// (the disk may be gone entirely).
		db.fs.Remove(tmp) //nolint:errcheck // cleanup after a failure already being returned
		if werr != nil {
			return werr
		}
		return fmt.Errorf("store: close snapshot: %w", cerr)
	}
	if err := db.fs.Rename(tmp, db.snapPath()); err != nil {
		db.fs.Remove(tmp) //nolint:errcheck // cleanup after a failure already being returned
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	// Make the rename durable before touching the WAL: if the log were
	// reset first and power failed, the directory could hold the old
	// snapshot next to an empty log — every record since the previous
	// snapshot silently gone.
	//imcf:allow lockdiscipline snapshot install must serialize against writers; db.mu held across SyncDir is the crash-safety invariant
	if err := db.fs.SyncDir(db.opts.Dir); err != nil {
		return fmt.Errorf("store: sync dir after snapshot install: %w", err)
	}

	// Reset the WAL. The installed snapshot holds every record, so the
	// log is logically empty from here: the last-good offset drops to
	// zero and repairWALLocked rebuilds the handle (truncate, reopen,
	// restamp the header with the new generation). On failure db.wal
	// stays nil and the next append — including the degraded-mode
	// Probe — retries the repair, so the store heals without a restart
	// once the disk recovers.
	old := db.wal
	db.wal = nil
	db.walSize = 0
	db.walRecs = 0
	if old != nil {
		if err := old.Close(); err != nil {
			db.walErr = err
			return fmt.Errorf("store: close wal: %w", err)
		}
	}
	if err := db.repairWALLocked(); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	return nil
}

// writeSnapshotLocked streams the snapshot body (header, sorted
// records, CRC tail) to f and syncs it. The caller owns closing f.
func (db *DB) writeSnapshotLocked(f faultfs.File) error {
	crc := crc32.NewIEEE()
	w := io.MultiWriter(f, crc)

	hdr := make([]byte, 0, 24)
	hdr = append(hdr, snapMagic[:]...)
	hdr = append(hdr, snapVersion, 0, 0, 0)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.gen)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(db.data)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		v := db.data[k]
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	//imcf:allow lockdiscipline snapshot write runs under db.mu so no record lands between scan and fsync; compaction pauses writers by design
	if _, err := f.Write(tail[:]); err != nil {
		return err
	}
	//imcf:allow lockdiscipline snapshot fsync completes the same writer-paused critical section
	return f.Sync()
}

// loadSnapshot reads the snapshot file if present.
func (db *DB) loadSnapshot() error {
	b, err := db.fs.ReadFile(db.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(b) < 20 {
		return errors.New("store: snapshot too short")
	}
	if [4]byte(b[:4]) != snapMagic {
		return errors.New("store: snapshot bad magic")
	}
	version := b[4]
	if version != snapVersionLegacy && version != snapVersion {
		return fmt.Errorf("store: snapshot unsupported version %d", version)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return errors.New("store: snapshot checksum mismatch")
	}
	// A version-1 header is 16 bytes and carries no generation: the
	// store opens at gen 0, which also tells replayWAL to expect the
	// headerless v1 log. The next compaction rewrites the snapshot in
	// the current format.
	var count uint64
	var p []byte
	if version == snapVersionLegacy {
		count = binary.LittleEndian.Uint64(b[8:16])
		p = body[16:]
	} else {
		if len(b) < 28 {
			return errors.New("store: snapshot too short")
		}
		db.gen = binary.LittleEndian.Uint64(b[8:16])
		count = binary.LittleEndian.Uint64(b[16:24])
		p = body[24:]
	}
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)) < uint64(n)+klen {
			return errors.New("store: snapshot truncated entry key")
		}
		p = p[n:]
		key := string(p[:klen])
		p = p[klen:]
		vlen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)) < uint64(n)+vlen {
			return errors.New("store: snapshot truncated entry value")
		}
		p = p[n:]
		val := make([]byte, vlen)
		copy(val, p[:vlen])
		p = p[vlen:]
		db.data[key] = val
	}
	if len(p) != 0 {
		return errors.New("store: snapshot trailing garbage")
	}
	return nil
}
