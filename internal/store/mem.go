package store

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// MemDB is the pure in-memory Adapter backend: the exact semantics of
// DB — copy-on-read, copy-on-write, atomic batches, ErrClosed after
// Close — with no durability and no file layer underneath. It serves
// ephemeral daemons (imcfd -store-backend mem), tests that want store
// semantics without disk I/O, and the conformance suite's reference
// point.
type MemDB struct {
	mu     sync.RWMutex
	data   map[string][]byte
	closed bool
}

// OpenMem returns an empty in-memory store.
func OpenMem() *MemDB {
	return &MemDB{data: make(map[string][]byte)}
}

// Get returns the value stored at key. The returned slice is a copy the
// caller may retain.
func (m *MemDB) Get(key string) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores value at key.
func (m *MemDB) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	m.data[key] = cp
	return nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (m *MemDB) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.data, key)
	return nil
}

// Keys returns all keys with the given prefix, sorted.
func (m *MemDB) Keys(prefix string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (m *MemDB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// Apply runs fn to fill a batch and commits it atomically under the
// store lock. If fn returns an error nothing is written.
func (m *MemDB) Apply(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, op := range b.ops {
		if op.del {
			delete(m.data, op.key)
		} else {
			m.data[op.key] = op.value
		}
	}
	return nil
}

// PutJSON marshals v and stores it at key.
func (m *MemDB) PutJSON(key string, v any) error { return putJSON(m, key, v) }

// GetJSON unmarshals the value at key into v, reporting whether the key
// existed.
func (m *MemDB) GetJSON(key string, v any) (bool, error) { return getJSON(m, key, v) }

// Compact is a no-op: there is no log to fold in.
func (m *MemDB) Compact() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Probe verifies the (trivial) write path.
func (m *MemDB) Probe() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close marks the store closed; the data is gone with the process. It
// is idempotent.
func (m *MemDB) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
