package store

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// backends enumerates every shipped Adapter implementation for the
// conformance suite. Each test below runs against all of them, pinning
// the shared semantics a caller may rely on regardless of backend.
func backends(t *testing.T) []struct {
	name string
	open func(t *testing.T) Adapter
} {
	return []struct {
		name string
		open func(t *testing.T) Adapter
	}{
		{"wal", func(t *testing.T) Adapter {
			db, err := Open(Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
		{"sharded", func(t *testing.T) Adapter {
			s, err := OpenSharded(ShardedOptions{Dir: t.TempDir(), Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"mem", func(t *testing.T) Adapter {
			return OpenMem()
		}},
	}
}

func TestAdapterPutGetDelete(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			if _, ok := a.Get("missing"); ok {
				t.Error("Get on empty store found a key")
			}
			if err := a.Put("mrt/1", []byte("night heat")); err != nil {
				t.Fatal(err)
			}
			if v, ok := a.Get("mrt/1"); !ok || string(v) != "night heat" {
				t.Errorf("Get = %q, %v", v, ok)
			}
			if err := a.Put("mrt/1", []byte("updated")); err != nil {
				t.Fatal(err)
			}
			if v, _ := a.Get("mrt/1"); string(v) != "updated" {
				t.Errorf("overwrite failed: %q", v)
			}
			if err := a.Delete("mrt/1"); err != nil {
				t.Fatal(err)
			}
			if _, ok := a.Get("mrt/1"); ok {
				t.Error("key survives delete")
			}
			if err := a.Delete("mrt/1"); err != nil {
				t.Errorf("deleting missing key: %v", err)
			}
			if err := a.Put("", []byte("x")); err == nil {
				t.Error("empty key accepted")
			}
		})
	}
}

func TestAdapterValueIsolation(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			in := []byte("abc")
			if err := a.Put("k", in); err != nil {
				t.Fatal(err)
			}
			in[0] = 'Z' // the store must have copied on write
			v, _ := a.Get("k")
			v[0] = 'X' // and must copy on read
			if again, _ := a.Get("k"); string(again) != "abc" {
				t.Errorf("value not isolated: %q", again)
			}
		})
	}
}

func TestAdapterKeysAndLen(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			for _, k := range []string{"mrt/2", "mrt/1", "ecp/flat", "mrt/3"} {
				if err := a.Put(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := a.Keys("mrt/"), []string{"mrt/1", "mrt/2", "mrt/3"}; !reflect.DeepEqual(got, want) {
				t.Errorf("Keys(mrt/) = %v, want %v", got, want)
			}
			if n := len(a.Keys("")); n != 4 {
				t.Errorf("Keys(\"\") = %d keys, want 4", n)
			}
			if a.Len() != 4 {
				t.Errorf("Len() = %d", a.Len())
			}
		})
	}
}

func TestAdapterApply(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			if err := a.Put("stale", []byte("old")); err != nil {
				t.Fatal(err)
			}
			err := a.Apply(func(b *Batch) error {
				b.Put("fresh/1", []byte("v1"))
				b.Put("fresh/2", []byte("v2"))
				b.Delete("stale")
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := a.Get("stale"); ok {
				t.Error("batched delete not applied")
			}
			for _, k := range []string{"fresh/1", "fresh/2"} {
				if _, ok := a.Get(k); !ok {
					t.Errorf("batched put %s not applied", k)
				}
			}

			// fn error: nothing written.
			boom := errors.New("boom")
			err = a.Apply(func(b *Batch) error {
				b.Put("never", []byte("x"))
				return boom
			})
			if !errors.Is(err, boom) {
				t.Errorf("Apply fn error = %v, want boom", err)
			}
			if _, ok := a.Get("never"); ok {
				t.Error("write survived fn error")
			}

			// Empty key in a batch: rejected, nothing written.
			err = a.Apply(func(b *Batch) error {
				b.Put("valid", []byte("x"))
				b.Put("", []byte("y"))
				return nil
			})
			if err == nil {
				t.Error("empty key in batch accepted")
			}
			if _, ok := a.Get("valid"); ok {
				t.Error("sibling of invalid op written")
			}

			// Empty batch: acked no-op.
			if err := a.Apply(func(b *Batch) error { return nil }); err != nil {
				t.Errorf("empty batch: %v", err)
			}
		})
	}
}

func TestAdapterJSON(t *testing.T) {
	type mrt struct {
		Rules []string `json:"rules"`
	}
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			in := mrt{Rules: []string{"hvac<=24", "light-off"}}
			if err := a.PutJSON("imcf/mrt", in); err != nil {
				t.Fatal(err)
			}
			var out mrt
			ok, err := a.GetJSON("imcf/mrt", &out)
			if err != nil || !ok {
				t.Fatalf("GetJSON = %v, %v", ok, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("round-trip = %+v, want %+v", out, in)
			}
			if ok, err := a.GetJSON("missing", &out); ok || err != nil {
				t.Errorf("GetJSON(missing) = %v, %v", ok, err)
			}
			if err := a.PutJSON("bad", func() {}); err == nil {
				t.Error("unmarshalable value accepted")
			}
			if err := a.Put("garbage", []byte("{")); err != nil {
				t.Fatal(err)
			}
			if ok, err := a.GetJSON("garbage", &out); !ok || err == nil {
				t.Errorf("GetJSON(garbage) = %v, %v; want found with error", ok, err)
			}
		})
	}
}

func TestAdapterCompactAndProbe(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck

			for i := 0; i < 20; i++ {
				if err := a.Put(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Probe(); err != nil {
				t.Errorf("Probe: %v", err)
			}
			if err := a.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
			}
			if a.Len() != 20 {
				t.Errorf("Len after compact = %d", a.Len())
			}
		})
	}
}

func TestAdapterClosed(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			if err := a.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
			for name, err := range map[string]error{
				"Put":    a.Put("k", []byte("v")),
				"Delete": a.Delete("k"),
				"Apply":  a.Apply(func(b *Batch) error { b.Put("x", nil); return nil }),
				"Probe":  a.Probe(),
			} {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("%s after Close = %v, want ErrClosed", name, err)
				}
			}
		})
	}
}

// TestAdapterProbeKeyInvisible pins that Probe never surfaces a key on
// any backend (the durable ones write a WAL record, the in-memory one
// writes nothing).
func TestAdapterProbeKeyInvisible(t *testing.T) {
	for _, be := range backends(t) {
		t.Run(be.name, func(t *testing.T) {
			a := be.open(t)
			defer a.Close() //nolint:errcheck
			if err := a.Probe(); err != nil {
				t.Fatal(err)
			}
			if n := a.Len(); n != 0 {
				t.Errorf("Probe leaked %d keys: %v", n, a.Keys(""))
			}
			for _, k := range a.Keys("") {
				if strings.Contains(k, "probe") {
					t.Errorf("probe key visible: %s", k)
				}
			}
		})
	}
}
