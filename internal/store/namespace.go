package store

import (
	"errors"
	"strings"
)

// Namespaced is the tenant seam of the storage layer: an Adapter view
// that routes every key through a fixed prefix, so N tenants can share
// one physical backend (the WAL DB's single group-commit log, or a
// MemDB) while each sees only its own keyspace. The daemon derives the
// prefix from the validated tenant ID ("t/<home>/"); because tenant IDs
// cannot contain '/', two tenants' prefixes can never alias each
// other's keys.
//
// A Namespaced view inherits the parent's durability and atomicity:
// Put/Delete/Apply commit through the parent's log, and a batch stays
// one atomic record. Close is a no-op — the parent is shared, and its
// lifetime belongs to whoever opened it (the daemon closes the physical
// backend once, after every tenant view is done).
type Namespaced struct {
	parent Adapter
	prefix string
}

// Namespace returns a view of parent routing every key through prefix.
// An empty prefix returns parent itself.
func Namespace(parent Adapter, prefix string) Adapter {
	if prefix == "" {
		return parent
	}
	return &Namespaced{parent: parent, prefix: prefix}
}

// Parent exposes the physical backend behind the view.
func (n *Namespaced) Parent() Adapter { return n.parent }

// Prefix exposes the view's key prefix.
func (n *Namespaced) Prefix() string { return n.prefix }

// Get returns a copy of the value stored at key within the namespace.
func (n *Namespaced) Get(key string) ([]byte, bool) {
	return n.parent.Get(n.prefix + key)
}

// Put durably stores value at key within the namespace. The empty key
// is invalid — the bare prefix is not a tenant key.
func (n *Namespaced) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	return n.parent.Put(n.prefix+key, value)
}

// Delete removes key within the namespace.
func (n *Namespaced) Delete(key string) error {
	return n.parent.Delete(n.prefix + key)
}

// Keys returns the namespace's keys with the given prefix, sorted, with
// the namespace prefix stripped — a tenant lists the same key names it
// wrote, never the physical routing prefix.
func (n *Namespaced) Keys(prefix string) []string {
	full := n.parent.Keys(n.prefix + prefix)
	out := make([]string, 0, len(full))
	for _, k := range full {
		out = append(out, strings.TrimPrefix(k, n.prefix))
	}
	return out
}

// Len returns the number of live keys within the namespace.
func (n *Namespaced) Len() int { return len(n.parent.Keys(n.prefix)) }

// Apply runs fn to fill a batch and commits it atomically through the
// parent, with every op's key routed through the namespace prefix.
func (n *Namespaced) Apply(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	return n.parent.Apply(func(pb *Batch) error {
		for _, op := range b.ops {
			if op.del {
				pb.Delete(n.prefix + op.key)
			} else {
				pb.ops = append(pb.ops, batchOp{key: n.prefix + op.key, value: op.value})
			}
		}
		return nil
	})
}

// PutJSON marshals v and stores it at key within the namespace.
func (n *Namespaced) PutJSON(key string, v any) error { return putJSON(n, key, v) }

// GetJSON unmarshals the value at key within the namespace into v,
// reporting whether the key existed.
func (n *Namespaced) GetJSON(key string, v any) (bool, error) { return getJSON(n, key, v) }

// Compact reclaims space in the shared parent (all namespaces benefit).
func (n *Namespaced) Compact() error { return n.parent.Compact() }

// Probe verifies the shared parent's write path end to end — a tenant's
// degraded-mode probe exercises the same log its writes would.
func (n *Namespaced) Probe() error { return n.parent.Probe() }

// Close is a no-op: the parent backend is shared across namespaces and
// closed once by its owner.
func (n *Namespaced) Close() error { return nil }

// Compile-time conformance.
var _ Adapter = (*Namespaced)(nil)
