package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecovery writes arbitrary bytes as a WAL file and opens the
// store: recovery must never panic, and whatever state it recovers must
// accept new writes and survive a clean restart.
func FuzzWALRecovery(f *testing.F) {
	// Seed with a genuine WAL prefix.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	db, err := Open(Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	db.Put("k1", []byte("v1"))                                               //nolint:errcheck
	db.Put("k2", []byte("v2"))                                               //nolint:errcheck
	db.Delete("k1")                                                          //nolint:errcheck
	db.Apply(func(b *Batch) error { b.Put("k3", []byte("v3")); return nil }) //nolint:errcheck
	db.wal.Close()
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		f.Fatal(err)
	}
	os.RemoveAll(dir) //nolint:errcheck
	f.Add(walBytes)
	f.Add(walBytes[:len(walBytes)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir})
		if err != nil {
			// Recovery may reject the file, but must do so cleanly.
			return
		}
		if err := db.Put("fresh", []byte("x")); err != nil {
			t.Fatalf("recovered store rejects writes: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		db2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer db2.Close()
		if _, ok := db2.Get("fresh"); !ok {
			t.Fatal("write after recovery lost")
		}
	})
}
