package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
)

func TestBatchAtomicCommit(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	if err := db.Put("old", []byte("v")); err != nil {
		t.Fatal(err)
	}

	err := db.Apply(func(b *Batch) error {
		b.Put("mrt/1", []byte("night heat"))
		b.Put("mrt/2", []byte("morning lights"))
		b.Delete("old")
		if b.Len() != 3 {
			t.Errorf("Len = %d", b.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("old"); ok {
		t.Error("batched delete not applied")
	}
	if v, _ := db.Get("mrt/1"); string(v) != "night heat" {
		t.Errorf("mrt/1 = %q", v)
	}

	// The whole batch survives a crash-style restart as one unit.
	db.wal.Close()
	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 2 {
		t.Errorf("recovered %d keys, want 2", db2.Len())
	}
	if v, _ := db2.Get("mrt/2"); !bytes.Equal(v, []byte("morning lights")) {
		t.Errorf("mrt/2 = %q", v)
	}
}

func TestBatchFnErrorWritesNothing(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	sentinel := errors.New("nope")
	err := db.Apply(func(b *Batch) error {
		b.Put("k", []byte("v"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := db.Get("k"); ok {
		t.Error("aborted batch wrote data")
	}
	if db.WALRecords() != 0 {
		t.Errorf("aborted batch touched the WAL: %d records", db.WALRecords())
	}
}

func TestBatchValidation(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	if err := db.Apply(func(b *Batch) error {
		b.Put("", []byte("v"))
		return nil
	}); err == nil {
		t.Error("empty key in batch accepted")
	}
	// Empty batch is a no-op.
	if err := db.Apply(func(*Batch) error { return nil }); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if db.WALRecords() != 0 {
		t.Error("empty batch wrote a record")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(func(b *Batch) error { b.Put("k", nil); return nil }); err != ErrClosed {
		t.Errorf("Apply after close = %v", err)
	}
}

func TestBatchTornTailDropsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	db := open(t, dir)
	if err := db.Put("keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(func(b *Batch) error {
		for i := 0; i < 10; i++ {
			b.Put(fmt.Sprintf("batch/%d", i), []byte("v"))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db.wal.Close()

	// Tear the batch record: every sub-op must vanish together.
	walPath := dir + "/" + walName
	raw := readFile(t, walPath)
	writeFile(t, walPath, raw[:len(raw)-4])

	db2 := open(t, dir)
	defer db2.Close()
	if db2.Len() != 1 {
		t.Errorf("recovered %d keys, want only the pre-batch key", db2.Len())
	}
	if _, ok := db2.Get("keep"); !ok {
		t.Error("pre-batch key lost")
	}
	for i := 0; i < 10; i++ {
		if _, ok := db2.Get(fmt.Sprintf("batch/%d", i)); ok {
			t.Fatalf("partial batch visible after torn tail")
		}
	}
}

func TestBatchValueIsolation(t *testing.T) {
	db := open(t, t.TempDir())
	defer db.Close()
	buf := []byte("abc")
	if err := db.Apply(func(b *Batch) error {
		b.Put("k", buf)
		buf[0] = 'X' // caller mutates after scheduling
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get("k"); string(v) != "abc" {
		t.Errorf("batch captured mutated buffer: %q", v)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
