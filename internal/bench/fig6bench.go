package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/sim"
)

// Fig6BenchCell is one (dataset, algorithm) cell of the Fig. 6 perf
// comparison: the sequential-engine baseline ("before") against the
// pipelined parallel suite ("after") at identical seeds.
type Fig6BenchCell struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	Reps      int    `json:"reps"`
	// SeqWallNs is the cell's wall-clock with the fully sequential
	// engine, runs back to back on one goroutine. SeqNsPerOp is the
	// per-run mean.
	SeqWallNs  int64 `json:"seq_wall_ns"`
	SeqNsPerOp int64 `json:"seq_ns_per_op"`
	// ParWallNs is the cell's wall-clock inside the parallel suite run;
	// cells overlap there, so the per-suite totals below are the
	// authoritative speedup measure.
	ParWallNs int64 `json:"par_wall_ns"`
	// AllocsPerOp and BytesPerOp are per sequential run, measured via
	// runtime.MemStats around the cell.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// F_T, F_CE, F_E sanity-check that both engines computed the same
	// experiment (mean over reps; F_T from the sequential pass).
	FTSeconds float64 `json:"ft_seconds"`
	FCE       float64 `json:"fce_percent"`
	FE        float64 `json:"fe_kwh"`
	// Speedup is SeqWallNs / ParWallNs for this cell.
	Speedup float64 `json:"speedup"`
	// PlanLatency is the merged per-invocation planner latency
	// histogram across the sequential reps (one sample per EP window,
	// or per slot for the baselines); the quantiles are
	// Prometheus-style linear interpolations over its buckets, in
	// seconds.
	PlanLatency    metrics.Snapshot `json:"plan_latency"`
	PlanLatencyP50 float64          `json:"plan_latency_p50_s"`
	PlanLatencyP95 float64          `json:"plan_latency_p95_s"`
	PlanLatencyP99 float64          `json:"plan_latency_p99_s"`
}

// Fig6Bench is the machine-readable Fig. 6 performance trajectory
// artifact (BENCH_fig6.json): before/after wall-clock per cell and for
// the whole sweep, so future PRs can track perf across sessions.
type Fig6Bench struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Parallel   int             `json:"parallel"`
	Reps       int             `json:"reps"`
	Seed       uint64          `json:"seed"`
	Datasets   []string        `json:"datasets"`
	SeqWallNs  int64           `json:"seq_wall_ns"`
	ParWallNs  int64           `json:"par_wall_ns"`
	Speedup    float64         `json:"speedup"`
	Cells      []Fig6BenchCell `json:"cells"`
}

// RunFig6Bench measures the Fig. 6 sweep twice: first with the fully
// sequential engine (no prefetch pipeline, no suite pool, one run at a
// time — the pre-parallelization baseline), then through the pipelined
// parallel suite. Identical seeds make the two passes compute identical
// results, so the comparison is pure engine overhead.
func (s *Suite) RunFig6Bench() (*Fig6Bench, error) {
	reps := s.reps()
	out := &Fig6Bench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   s.parallel(),
		Reps:       reps,
		Seed:       s.Seed,
		Datasets:   s.datasets(),
	}

	type cellSpec struct {
		w   *sim.Workload
		ds  string
		alg sim.Algorithm
	}
	var cells []cellSpec
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, alg := range fig6Algorithms {
			cells = append(cells, cellSpec{w: w, ds: ds, alg: alg})
		}
	}
	out.Cells = make([]Fig6BenchCell, len(cells))

	// Before: strictly sequential engine, cells and reps back to back.
	var ms0, ms1 runtime.MemStats
	seqStart := time.Now()
	for i, c := range cells {
		ces := make([]float64, 0, reps)
		es := make([]float64, 0, reps)
		ts := make([]float64, 0, reps)
		var lat metrics.Snapshot
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		cellStart := time.Now()
		for rep := 0; rep < reps; rep++ {
			opts := sim.Options{Workers: 1}
			opts.Planner.Seed = s.Seed*1_000_003 + uint64(rep)
			r, err := sim.Run(c.w, c.alg, opts)
			if err != nil {
				return nil, err
			}
			ces = append(ces, float64(r.ConvenienceError))
			es = append(es, r.Energy.KWh())
			ts = append(ts, r.PlannerTime.Seconds())
			lat.Merge(r.PlanLatency)
		}
		wall := time.Since(cellStart)
		runtime.ReadMemStats(&ms1)
		out.Cells[i] = Fig6BenchCell{
			Dataset:     c.ds,
			Algorithm:   c.alg.String(),
			Reps:        reps,
			SeqWallNs:   wall.Nanoseconds(),
			SeqNsPerOp:  wall.Nanoseconds() / int64(reps),
			AllocsPerOp: (ms1.Mallocs - ms0.Mallocs) / uint64(reps),
			BytesPerOp:  (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(reps),
			FTSeconds:   Aggregate(ts).Mean,
			FCE:         Aggregate(ces).Mean,
			FE:          Aggregate(es).Mean,

			PlanLatency:    lat,
			PlanLatencyP50: lat.Quantile(0.50),
			PlanLatencyP95: lat.Quantile(0.95),
			PlanLatencyP99: lat.Quantile(0.99),
		}
	}
	out.SeqWallNs = time.Since(seqStart).Nanoseconds()

	// After: the pipelined parallel suite — all cells fan out over the
	// shared pool at once, exactly how RunFig6 executes.
	parStart := time.Now()
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		cellStart := time.Now()
		_, _, _, err := s.runRepeated(c.w, c.alg, sim.Options{})
		out.Cells[i].ParWallNs = time.Since(cellStart).Nanoseconds()
		return err
	})
	if err != nil {
		return nil, err
	}
	out.ParWallNs = time.Since(parStart).Nanoseconds()

	if out.ParWallNs > 0 {
		out.Speedup = float64(out.SeqWallNs) / float64(out.ParWallNs)
	}
	for i := range out.Cells {
		if out.Cells[i].ParWallNs > 0 {
			out.Cells[i].Speedup = float64(out.Cells[i].SeqWallNs) / float64(out.Cells[i].ParWallNs)
		}
	}
	return out, nil
}

// WriteFig6Bench runs the Fig. 6 perf comparison and writes the JSON
// artifact.
func (s *Suite) WriteFig6Bench(w io.Writer) error {
	b, err := s.RunFig6Bench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
