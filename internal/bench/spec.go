package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/sim"
)

// Spec is a declarative experiment definition, the JSON counterpart of
// the built-in figures: a dataset, a set of algorithms, and planner and
// budget options. It lets users run custom sweeps without writing Go:
//
//	{
//	  "name": "my-sweep",
//	  "dataset": "Flat",
//	  "algorithms": ["EP", "MR"],
//	  "savings": 0.1,
//	  "planner": {"k": 3, "init": "random"},
//	  "formula": "BLAF", "saveFraction": 0.3
//	}
type Spec struct {
	Name       string   `json:"name"`
	Dataset    string   `json:"dataset"`
	Algorithms []string `json:"algorithms"`
	// Savings scales the budget down (Fig. 9 style).
	Savings float64 `json:"savings,omitempty"`
	// Formula is "LAF", "BLAF" or "EAF" (default EAF).
	Formula      string  `json:"formula,omitempty"`
	SaveFraction float64 `json:"saveFraction,omitempty"`
	// WindowHours is the EP decision window (default 24).
	WindowHours int `json:"windowHours,omitempty"`
	// NoCarryOver disables the net-metering ledger.
	NoCarryOver bool `json:"noCarryOver,omitempty"`
	// Planner overrides the EP search parameters.
	Planner *PlannerSpec `json:"planner,omitempty"`
}

// PlannerSpec is the JSON form of core.Config.
type PlannerSpec struct {
	K            int    `json:"k,omitempty"`
	MaxIter      int    `json:"maxIter,omitempty"`
	Init         string `json:"init,omitempty"`      // all-1s, random, all-0s
	Heuristic    string `json:"heuristic,omitempty"` // hill-climb, anneal
	KeepZeroGain bool   `json:"keepZeroGain,omitempty"`
}

// SpecResult is one (spec, algorithm) outcome.
type SpecResult struct {
	Spec      string `json:"spec"`
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	FCE       Stat   `json:"fce"`
	FE        Stat   `json:"fe"`
	FT        Stat   `json:"ft"`
}

// options converts the spec to simulation options.
func (sp Spec) options() (sim.Options, error) {
	var opts sim.Options
	opts.Savings = sp.Savings
	opts.PlanWindowHours = sp.WindowHours
	opts.NoCarryOver = sp.NoCarryOver
	switch strings.ToUpper(sp.Formula) {
	case "", "EAF":
		opts.Formula = ecp.EAF
	case "LAF":
		opts.Formula = ecp.LAF
	case "BLAF":
		opts.Formula = ecp.BLAF
		opts.SaveFraction = sp.SaveFraction
		opts.SaveMonths = ecp.SummerSaveMonths()
	default:
		return opts, fmt.Errorf("bench: unknown formula %q", sp.Formula)
	}
	if p := sp.Planner; p != nil {
		opts.Planner.K = p.K
		opts.Planner.MaxIter = p.MaxIter
		opts.Planner.KeepZeroGain = p.KeepZeroGain
		switch p.Init {
		case "", "all-1s":
			opts.Planner.Init = core.InitAllOn
		case "random":
			opts.Planner.Init = core.InitRandom
		case "all-0s":
			opts.Planner.Init = core.InitAllOff
		default:
			return opts, fmt.Errorf("bench: unknown init %q", p.Init)
		}
		switch p.Heuristic {
		case "", "hill-climb":
			opts.Planner.Heuristic = core.HillClimb
		case "anneal":
			opts.Planner.Heuristic = core.Anneal
		default:
			return opts, fmt.Errorf("bench: unknown heuristic %q", p.Heuristic)
		}
	}
	return opts, nil
}

// parseAlgorithm maps an algorithm name.
func parseAlgorithm(name string) (sim.Algorithm, error) {
	switch strings.ToUpper(name) {
	case "NR":
		return sim.NR, nil
	case "IFTTT":
		return sim.IFTTT, nil
	case "EP":
		return sim.EP, nil
	case "MR":
		return sim.MR, nil
	default:
		return 0, fmt.Errorf("bench: unknown algorithm %q", name)
	}
}

// RunSpecs executes every spec and returns the flattened results.
func (s *Suite) RunSpecs(specs []Spec) ([]SpecResult, error) {
	var out []SpecResult
	for i, sp := range specs {
		if sp.Dataset == "" {
			return nil, fmt.Errorf("bench: spec %d (%q) has no dataset", i, sp.Name)
		}
		if len(sp.Algorithms) == 0 {
			return nil, fmt.Errorf("bench: spec %d (%q) has no algorithms", i, sp.Name)
		}
		opts, err := sp.options()
		if err != nil {
			return nil, fmt.Errorf("bench: spec %d (%q): %w", i, sp.Name, err)
		}
		w, err := s.workload(sp.Dataset)
		if err != nil {
			return nil, fmt.Errorf("bench: spec %d (%q): %w", i, sp.Name, err)
		}
		for _, name := range sp.Algorithms {
			alg, err := parseAlgorithm(name)
			if err != nil {
				return nil, fmt.Errorf("bench: spec %d (%q): %w", i, sp.Name, err)
			}
			fce, fe, ft, err := s.runRepeated(w, alg, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, SpecResult{
				Spec: sp.Name, Dataset: sp.Dataset, Algorithm: alg.String(),
				FCE: fce, FE: fe, FT: ft,
			})
		}
	}
	return out, nil
}

// LoadSpecs parses a JSON document holding one spec or an array of them.
func LoadSpecs(r io.Reader) ([]Spec, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("bench: read specs: %w", err)
	}
	var many []Spec
	if err := json.Unmarshal(raw, &many); err == nil {
		return many, nil
	}
	var one Spec
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("bench: parse specs: %w", err)
	}
	return []Spec{one}, nil
}

// RunSpecFile loads specs from r, runs them, and writes a text table.
func (s *Suite) RunSpecFile(r io.Reader, w io.Writer) error {
	specs, err := LoadSpecs(r)
	if err != nil {
		return err
	}
	results, err := s.RunSpecs(specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-8s %-6s %18s %24s %18s\n", "Spec", "Dataset", "Alg", "F_CE (%)", "F_E (kWh)", "F_T (s)")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %-8s %-6s %18s %24s %18s\n",
			r.Spec, r.Dataset, r.Algorithm, r.FCE, fmtEnergy(r.FE), fmtSeconds(r.FT))
	}
	return nil
}
