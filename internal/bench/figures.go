package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/sim"
)

// controlStudyIters is the tight search budget (τ_max ≈ 2 rules) used
// by the Fig. 7–8 control studies: the k-opt and initialization effects
// the paper plots are properties of an iteration-limited local search
// and vanish once the search fully converges, so these studies pin
// τ_max low while Fig. 6 and Fig. 9 run the near-convergent default.
func controlStudyIters(rules int) int {
	iter := 2 * rules
	if iter < 12 {
		return 12
	}
	return iter
}

// Fig6Row is one (dataset, algorithm) cell of the performance
// evaluation.
type Fig6Row struct {
	Dataset   string
	Algorithm sim.Algorithm
	FCE       Stat // percent
	FE        Stat // kWh
	FT        Stat // seconds
}

// fig6Algorithms are the compared methods, in the paper's order.
var fig6Algorithms = []sim.Algorithm{sim.NR, sim.IFTTT, sim.EP, sim.MR}

// RunFig6 reproduces Fig. 6: NR, IFTTT, EP and MR over all datasets.
// Every (dataset, algorithm) cell runs concurrently over the suite-wide
// pool; row order stays deterministic because rows are indexed, not
// appended.
func (s *Suite) RunFig6() ([]Fig6Row, error) {
	type cellSpec struct {
		w   *sim.Workload
		ds  string
		alg sim.Algorithm
	}
	var cells []cellSpec
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, alg := range fig6Algorithms {
			cells = append(cells, cellSpec{w: w, ds: ds, alg: alg})
		}
	}
	rows := make([]Fig6Row, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		fce, fe, ft, err := s.runRepeated(c.w, c.alg, sim.Options{})
		rows[i] = Fig6Row{Dataset: c.ds, Algorithm: c.alg, FCE: fce, FE: fe, FT: ft}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6 writes the performance evaluation as a text table.
func (s *Suite) Fig6(w io.Writer) error {
	rows, err := s.RunFig6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6 — Performance Evaluation (F_CE, F_E, F_T; mean ± stdev over", s.reps(), "repetitions)")
	fmt.Fprintf(w, "%-8s %-6s %18s %24s %18s\n", "Dataset", "Alg", "F_CE (%)", "F_E (kWh)", "F_T (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-6s %18s %24s %18s\n",
			r.Dataset, r.Algorithm, r.FCE, fmtEnergy(r.FE), fmtSeconds(r.FT))
	}
	return nil
}

// Fig7Row is one (dataset, k) cell of the k-opt study.
type Fig7Row struct {
	Dataset string
	K       int
	FCE     Stat
	FE      Stat
}

// RunFig7 reproduces Fig. 7: EP with k ∈ {2, 3, 4} rule modifications
// per iteration. Cells run concurrently over the suite pool.
func (s *Suite) RunFig7() ([]Fig7Row, error) {
	type cellSpec struct {
		w  *sim.Workload
		ds string
		k  int
	}
	var cells []cellSpec
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{2, 3, 4} {
			cells = append(cells, cellSpec{w: w, ds: ds, k: k})
		}
	}
	rows := make([]Fig7Row, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		opts := sim.Options{}
		opts.Planner.K = c.k
		opts.Planner.MaxIter = controlStudyIters(c.w.RuleCount())
		fce, fe, _, err := s.runRepeated(c.w, sim.EP, opts)
		rows[i] = Fig7Row{Dataset: c.ds, K: c.k, FCE: fce, FE: fe}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig7 writes the k-opt study as a text table.
func (s *Suite) Fig7(w io.Writer) error {
	rows, err := s.RunFig7()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 7 — k-opt Evaluation (EP with k rule modifications per iteration)")
	fmt.Fprintf(w, "%-8s %-4s %18s %24s\n", "Dataset", "k", "F_CE (%)", "F_E (kWh)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-4d %18s %24s\n", r.Dataset, r.K, r.FCE, fmtEnergy(r.FE))
	}
	return nil
}

// Fig8Row is one (dataset, init strategy) cell of the initialization
// study.
type Fig8Row struct {
	Dataset string
	Init    core.InitStrategy
	FCE     Stat
	FE      Stat
}

// RunFig8 reproduces Fig. 8: EP initialized all-1s, random, all-0s.
// Cells run concurrently over the suite pool.
func (s *Suite) RunFig8() ([]Fig8Row, error) {
	type cellSpec struct {
		w    *sim.Workload
		ds   string
		init core.InitStrategy
	}
	var cells []cellSpec
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, init := range []core.InitStrategy{core.InitAllOn, core.InitRandom, core.InitAllOff} {
			cells = append(cells, cellSpec{w: w, ds: ds, init: init})
		}
	}
	rows := make([]Fig8Row, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		opts := sim.Options{}
		opts.Planner.Init = c.init
		opts.Planner.MaxIter = controlStudyIters(c.w.RuleCount())
		fce, fe, _, err := s.runRepeated(c.w, sim.EP, opts)
		rows[i] = Fig8Row{Dataset: c.ds, Init: c.init, FCE: fce, FE: fe}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig8 writes the initialization study as a text table.
func (s *Suite) Fig8(w io.Writer) error {
	rows, err := s.RunFig8()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8 — Initialization Evaluation (EP with all-1s / random / all-0s)")
	fmt.Fprintf(w, "%-8s %-8s %18s %24s\n", "Dataset", "Init", "F_CE (%)", "F_E (kWh)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-8s %18s %24s\n", r.Dataset, r.Init, r.FCE, fmtEnergy(r.FE))
	}
	return nil
}

// Fig9Row is one (dataset, savings) cell of the conservation study.
type Fig9Row struct {
	Dataset string
	Savings float64 // fraction
	FCE     Stat
	FE      Stat
}

// Fig9Savings are the sweep points of the energy conservation study.
var Fig9Savings = []float64{0.05, 0.10, 0.20, 0.30, 0.40}

// RunFig9 reproduces Fig. 9: EP with the budget reduced by 5–40 %.
// Cells run concurrently over the suite pool.
func (s *Suite) RunFig9() ([]Fig9Row, error) {
	type cellSpec struct {
		w  *sim.Workload
		ds string
		sv float64
	}
	var cells []cellSpec
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, sv := range Fig9Savings {
			cells = append(cells, cellSpec{w: w, ds: ds, sv: sv})
		}
	}
	rows := make([]Fig9Row, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		fce, fe, _, err := s.runRepeated(c.w, sim.EP, sim.Options{Savings: c.sv})
		rows[i] = Fig9Row{Dataset: c.ds, Savings: c.sv, FCE: fce, FE: fe}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig9 writes the conservation study as a text table.
func (s *Suite) Fig9(w io.Writer) error {
	rows, err := s.RunFig9()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9 — Energy Conservation Study (EP under reduced budgets)")
	fmt.Fprintf(w, "%-8s %-9s %18s %24s\n", "Dataset", "Savings", "F_CE (%)", "F_E (kWh)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-9s %18s %24s\n",
			r.Dataset, fmt.Sprintf("%.0f%%", r.Savings*100), r.FCE, fmtEnergy(r.FE))
	}
	return nil
}

func fmtEnergy(s Stat) string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.Stdev)
}

func fmtSeconds(s Stat) string {
	return fmt.Sprintf("%.4f ± %.4f", s.Mean, s.Stdev)
}

// header underlines experiment sections in combined reports.
func header(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
}
