package bench

import "testing"

func TestRunStreamBenchSmoke(t *testing.T) {
	res, err := RunStreamBench(StreamBenchOptions{SteadyTicks: 5, ChangingSteps: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyPoll.Requests != int64(5*3) {
		t.Errorf("steady poll requests = %d, want 15", res.SteadyPoll.Requests)
	}
	if res.SteadyStream.Requests >= res.SteadyPoll.Requests {
		t.Errorf("stream (%d) not cheaper than poll (%d)", res.SteadyStream.Requests, res.SteadyPoll.Requests)
	}
	if res.SteadyRequestRatio < 5 {
		t.Errorf("steady request ratio = %.1f, want >= 5", res.SteadyRequestRatio)
	}
	if res.SteadyETag.BodyBytes >= res.SteadyPoll.BodyBytes {
		t.Errorf("etag bytes (%d) not below poll bytes (%d)", res.SteadyETag.BodyBytes, res.SteadyPoll.BodyBytes)
	}
	if res.ChangingStream.BodyBytes >= res.ChangingPoll.BodyBytes {
		t.Errorf("changing stream bytes (%d) not below poll bytes (%d)", res.ChangingStream.BodyBytes, res.ChangingPoll.BodyBytes)
	}
	t.Logf("steady ratio %.1fx; changing poll %+v stream %+v", res.SteadyRequestRatio, res.ChangingPoll, res.ChangingStream)
}
