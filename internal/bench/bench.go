// Package bench regenerates every table and figure of the IMCF paper's
// evaluation (Section III): the performance comparison of Fig. 6, the
// k-opt study of Fig. 7, the initialization study of Fig. 8, the energy
// conservation study of Fig. 9, the input tables I–III, and the
// prototype evaluation of Tables IV–V — plus the ablations called out in
// DESIGN.md. Each experiment reports mean and standard deviation over
// repeated runs, matching the paper's ten-repetition methodology.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/sim"
)

// Stat is a mean ± standard deviation pair over repetitions.
type Stat struct {
	Mean  float64
	Stdev float64
	N     int
}

// Aggregate computes a Stat from samples.
func Aggregate(xs []float64) Stat {
	s := Stat{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stdev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the stat as "mean ± stdev".
func (s Stat) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Stdev)
}

// Dataset names, matching the paper.
const (
	DatasetFlat  = "Flat"
	DatasetHouse = "House"
	DatasetDorms = "Dorms"
)

// AllDatasets lists the paper's three evaluation datasets in order.
func AllDatasets() []string { return []string{DatasetFlat, DatasetHouse, DatasetDorms} }

// Suite runs experiments with shared, lazily built workloads.
type Suite struct {
	// Reps is the number of repetitions per configuration (the paper
	// uses 10). Zero means 10.
	Reps int
	// Seed derives the dataset seeds and the per-repetition planner
	// seeds.
	Seed uint64
	// Datasets restricts which datasets run; nil means all three.
	Datasets []string
	// Parallel bounds the number of simulation runs in flight across
	// the whole suite: every (dataset × algorithm × repetition) cell of
	// every experiment draws from one shared worker pool, so the tail
	// of a slow cell no longer idles cores. Zero means GOMAXPROCS; 1
	// gives a fully sequential suite.
	Parallel int

	mu        sync.Mutex
	workloads map[string]*sim.Workload

	semOnce sync.Once
	sem     chan struct{}
}

// NewSuite returns a suite with the paper's defaults.
func NewSuite() *Suite {
	return &Suite{Reps: 10, Seed: 42}
}

func (s *Suite) reps() int {
	if s.Reps <= 0 {
		return 10
	}
	return s.Reps
}

func (s *Suite) parallel() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// acquire takes a slot in the suite-wide run pool, lazily sizing the
// pool on first use.
func (s *Suite) acquire() {
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.parallel()) })
	s.sem <- struct{}{}
}

func (s *Suite) release() { <-s.sem }

func (s *Suite) datasets() []string {
	if len(s.Datasets) == 0 {
		return AllDatasets()
	}
	return s.Datasets
}

// buildResidence constructs the named dataset.
func (s *Suite) buildResidence(name string) (*home.Residence, error) {
	switch name {
	case DatasetFlat:
		return home.Flat(s.Seed)
	case DatasetHouse:
		return home.House(s.Seed)
	case DatasetDorms:
		return home.Dorms(s.Seed)
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
}

// workload returns the cached precomputed workload for a dataset,
// building it on first use. Workloads are shared across experiments so
// every algorithm and configuration replays identical traces.
func (s *Suite) workload(name string) (*sim.Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workloads == nil {
		s.workloads = make(map[string]*sim.Workload)
	}
	if w, ok := s.workloads[name]; ok {
		return w, nil
	}
	res, err := s.buildResidence(name)
	if err != nil {
		return nil, err
	}
	w, err := sim.BuildWorkload(res, sim.Options{})
	if err != nil {
		return nil, err
	}
	s.workloads[name] = w
	return w, nil
}

// runRepeated replays a configuration Reps times with distinct planner
// seeds and aggregates F_CE (%), F_E (kWh) and F_T (seconds).
// Repetitions run concurrently — a workload is immutable during Run —
// drawing from the suite-wide pool so cells from different experiments
// interleave instead of each cell fanning out privately. The pool slot
// is acquired before the goroutine spawns, bounding the peak goroutine
// count at the pool size.
func (s *Suite) runRepeated(w *sim.Workload, alg sim.Algorithm, opts sim.Options) (fce, fe, ft Stat, err error) {
	reps := s.reps()
	results := make([]sim.Result, reps)
	errs := make([]error, reps)

	// Each repetition is one planner-seeded Run. When the pool runs
	// several repetitions at once the inner prefetch pipeline is
	// disabled — whole runs already saturate the cores; with a
	// single-slot pool the pipeline is the only parallelism left, so it
	// stays on.
	if s.parallel() > 1 {
		opts.Workers = 1
	}

	var wg sync.WaitGroup
	for rep := 0; rep < reps; rep++ {
		s.acquire()
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			defer s.release()
			o := opts
			o.Planner.Seed = s.Seed*1_000_003 + uint64(rep)
			results[rep], errs[rep] = sim.Run(w, alg, o)
		}(rep)
	}
	wg.Wait()

	ces := make([]float64, 0, reps)
	es := make([]float64, 0, reps)
	ts := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		if errs[rep] != nil {
			return Stat{}, Stat{}, Stat{}, errs[rep]
		}
		ces = append(ces, float64(results[rep].ConvenienceError))
		es = append(es, results[rep].Energy.KWh())
		ts = append(ts, results[rep].PlannerTime.Seconds())
	}
	return Aggregate(ces), Aggregate(es), Aggregate(ts), nil
}

// runCells executes n independent experiment cells concurrently. Cells
// are lightweight coordinators — the heavy lifting inside them flows
// through the suite pool — so they are not themselves pooled. Results
// must land in caller-owned, index-addressed storage so row order stays
// deterministic; the first error wins.
func runCells(n int, cell func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cell(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
