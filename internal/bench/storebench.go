package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/store"
)

// The store bench measures the write path of the storage engines
// head to head: the pre-group-commit baseline (one fsync per Put under
// the store lock), the group-commit DB (concurrent writers share a
// leader's fsync) and the sharded store (group commit × independent
// logs). Writers/sec is the acked-durable-write throughput; fsyncs per
// write is the artifact's proof that batching, not weakened
// durability, bought the speedup.

// StoreBenchOptions configures RunStoreBench. The zero value runs the
// full default matrix in a temp directory.
type StoreBenchOptions struct {
	// Dir is the scratch root; empty uses a fresh os.MkdirTemp that is
	// removed afterwards.
	Dir string
	// Writers lists the concurrency levels; nil means 1, 2, 4, 8, 16.
	Writers []int
	// SyncOps / NoSyncOps are Puts per writer per cell; zero means 300
	// and 2000 respectively (sync cells pay real fsyncs, so fewer ops
	// keep the matrix fast while still amortizing warmup).
	SyncOps   int
	NoSyncOps int
	// ValueBytes sizes each value; zero means 128.
	ValueBytes int
	// Shards is the sharded engine's shard count; zero means 8.
	Shards int
	// Reps re-runs every sync cell this many times and keeps the
	// fastest (fsync latency on shared machines is noisy; best-of is
	// the stable throughput estimate). Zero means 3. Unsynced cells
	// always run once — they are CPU-bound and stable.
	Reps int
}

// StoreBenchCell is one (engine, sync, writers) measurement.
type StoreBenchCell struct {
	Engine  string `json:"engine"` // baseline | group | sharded
	Sync    bool   `json:"sync"`
	Writers int    `json:"writers"`
	Ops     int64  `json:"ops"`
	WallNs  int64  `json:"wall_ns"`
	// AckedPerSec is acknowledged (durable, under Sync) writes per
	// second across all writers.
	AckedPerSec float64 `json:"acked_per_sec"`
	// Fsyncs counts File.Sync calls the engine issued during the
	// measured window; FsyncsPerWrite is Fsyncs/Ops. The baseline pins
	// this at ~1.0 under sync; group commit drives it toward
	// 1/batch-size.
	Fsyncs         int64   `json:"fsyncs"`
	FsyncsPerWrite float64 `json:"fsyncs_per_write"`
}

// StoreBench is the machine-readable BENCH_store.json artifact.
type StoreBench struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	ValueBytes int              `json:"value_bytes"`
	Shards     int              `json:"shards"`
	Cells      []StoreBenchCell `json:"cells"`
	// Speedup8Group and Speedup8Sharded compare acked-writes/sec
	// against the baseline at 8 concurrent writers with SyncWrites on —
	// the acceptance headline. Fsyncs8Group is the group engine's
	// fsyncs/write there.
	Speedup8Group   float64 `json:"speedup_8w_sync_group"`
	Speedup8Sharded float64 `json:"speedup_8w_sync_sharded"`
	Fsyncs8Group    float64 `json:"fsyncs_per_write_8w_sync_group"`
}

// syncCountingFS wraps an FS and counts File.Sync calls, so the bench
// can report fsyncs per acknowledged write without touching the store.
type syncCountingFS struct {
	faultfs.FS
	syncs atomic.Int64
}

type syncCountingFile struct {
	faultfs.File
	fs *syncCountingFS
}

func (f *syncCountingFile) Sync() error {
	f.fs.syncs.Add(1)
	return f.File.Sync()
}

func (c *syncCountingFS) OpenFile(path string, flag int, perm os.FileMode) (faultfs.File, error) {
	f, err := c.FS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &syncCountingFile{File: f, fs: c}, nil
}

// storeEngine abstracts "open a fresh store in dir" per engine row.
type storeEngine struct {
	name string
	open func(dir string, syncWrites bool, fsys faultfs.FS) (store.Adapter, error)
}

func storeEngines(shards int) []storeEngine {
	return []storeEngine{
		{"baseline", func(dir string, sync bool, fsys faultfs.FS) (store.Adapter, error) {
			return store.Open(store.Options{Dir: dir, SyncWrites: sync, NoGroupCommit: true, FS: fsys})
		}},
		{"group", func(dir string, sync bool, fsys faultfs.FS) (store.Adapter, error) {
			return store.Open(store.Options{Dir: dir, SyncWrites: sync, FS: fsys})
		}},
		{"sharded", func(dir string, sync bool, fsys faultfs.FS) (store.Adapter, error) {
			return store.OpenSharded(store.ShardedOptions{Dir: dir, Shards: shards, SyncWrites: sync, FS: fsys})
		}},
	}
}

// RunStoreBench measures the full engine × sync × writers matrix.
func RunStoreBench(opts StoreBenchOptions) (*StoreBench, error) {
	root := opts.Dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "imcf-storebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root) //nolint:errcheck // scratch space
	}
	writers := opts.Writers
	if writers == nil {
		writers = []int{1, 2, 4, 8, 16}
	}
	syncOps, noSyncOps := opts.SyncOps, opts.NoSyncOps
	if syncOps == 0 {
		syncOps = 300
	}
	if noSyncOps == 0 {
		noSyncOps = 2000
	}
	valueBytes := opts.ValueBytes
	if valueBytes == 0 {
		valueBytes = 128
	}
	shards := opts.Shards
	if shards == 0 {
		shards = store.DefaultShards
	}
	reps := opts.Reps
	if reps == 0 {
		reps = 3
	}

	out := &StoreBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ValueBytes: valueBytes,
		Shards:     shards,
	}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	base8 := map[string]float64{} // engine -> acked/sec at 8 writers sync
	cellID := 0
	for _, syncWrites := range []bool{true, false} {
		ops := syncOps
		if !syncWrites {
			ops = noSyncOps
		}
		for _, engine := range storeEngines(shards) {
			for _, w := range writers {
				cellReps := reps
				if !syncWrites {
					cellReps = 1
				}
				var cell StoreBenchCell
				for r := 0; r < cellReps; r++ {
					cellID++
					dir := fmt.Sprintf("%s%ccell-%03d", root, os.PathSeparator, cellID)
					c, err := runStoreCell(engine, dir, syncWrites, w, ops, value)
					if err != nil {
						return nil, fmt.Errorf("storebench %s sync=%v writers=%d: %w", engine.name, syncWrites, w, err)
					}
					if r == 0 || c.AckedPerSec > cell.AckedPerSec {
						cell = c
					}
				}
				out.Cells = append(out.Cells, cell)
				if syncWrites && w == 8 {
					base8[engine.name] = cell.AckedPerSec
					if engine.name == "group" {
						out.Fsyncs8Group = cell.FsyncsPerWrite
					}
				}
			}
		}
	}
	if b := base8["baseline"]; b > 0 {
		out.Speedup8Group = base8["group"] / b
		out.Speedup8Sharded = base8["sharded"] / b
	}
	return out, nil
}

// runStoreCell opens a fresh store and hammers it with w concurrent
// writers doing ops Puts each, all on distinct keys.
func runStoreCell(engine storeEngine, dir string, syncWrites bool, w, ops int, value []byte) (StoreBenchCell, error) {
	fsys := &syncCountingFS{FS: faultfs.OS{}}
	db, err := engine.open(dir, syncWrites, fsys)
	if err != nil {
		return StoreBenchCell{}, err
	}

	// Warm up pools, the WAL handle and the key space outside the
	// measured window.
	for i := 0; i < 16; i++ {
		if err := db.Put(fmt.Sprintf("warm/%02d", i), value); err != nil {
			return StoreBenchCell{}, err
		}
	}
	startSyncs := fsys.syncs.Load()

	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	start := time.Now()
	for wr := 0; wr < w; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if err := db.Put(fmt.Sprintf("bench/w%02d/k%06d", wr, i), value); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(wr)
	}
	wg.Wait()
	wall := time.Since(start)
	fsyncs := fsys.syncs.Load() - startSyncs

	if err := db.Close(); err != nil {
		return StoreBenchCell{}, err
	}
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return StoreBenchCell{}, err
	}

	total := int64(w) * int64(ops)
	cell := StoreBenchCell{
		Engine:  engine.name,
		Sync:    syncWrites,
		Writers: w,
		Ops:     total,
		WallNs:  wall.Nanoseconds(),
		Fsyncs:  fsyncs,
	}
	if wall > 0 {
		cell.AckedPerSec = float64(total) / wall.Seconds()
	}
	if total > 0 {
		cell.FsyncsPerWrite = float64(fsyncs) / float64(total)
	}
	return cell, nil
}

// WriteJSON writes the BENCH_store.json artifact.
func (res *StoreBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteTable renders a human-readable summary of the matrix.
func (res *StoreBench) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "store write throughput (GOMAXPROCS=%d, value=%dB, shards=%d)\n",
		res.GOMAXPROCS, res.ValueBytes, res.Shards); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %-5s %7s %12s %14s %10s\n",
		"engine", "sync", "writers", "acked/sec", "fsyncs/write", "ops")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-9s %-5v %7d %12.0f %14.3f %10d\n",
			c.Engine, c.Sync, c.Writers, c.AckedPerSec, c.FsyncsPerWrite, c.Ops)
	}
	_, err := fmt.Fprintf(w, "\nsync @ 8 writers: group %.2fx baseline (%.3f fsyncs/write), sharded %.2fx\n",
		res.Speedup8Group, res.Fsyncs8Group, res.Speedup8Sharded)
	return err
}
