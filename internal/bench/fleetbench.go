package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/fleet"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
)

// The fleet bench measures the sharded fleet scheduler at scale: N
// simulated homes (each a full Local Controller planning against its
// own seeded residence) stepped by the bounded worker pool, reporting
// per-tenant plan latency percentiles and whole-fleet cycle
// throughput. It answers the multi-home sizing question directly —
// "what does one daemon hosting 1k or 10k homes cost per planning
// cycle, and how does the worker count move the tail?"

// fleetBenchEpoch anchors the simulated clock; a fixed instant keeps
// runs comparable across machines and dates.
var fleetBenchEpoch = time.Date(2021, time.January, 4, 0, 0, 0, 0, time.UTC)

// FleetBenchOptions configures RunFleetBench. The zero value runs the
// acceptance matrix: 1k and 10k homes at 1 and 8 workers.
type FleetBenchOptions struct {
	// Homes lists the fleet sizes; nil means 1000 and 10000.
	Homes []int
	// Workers lists the pool sizes; nil means 1 and 8.
	Workers []int
	// Cycles is how many full-fleet planning cycles each cell runs
	// (every cycle contributes one latency sample per home); zero
	// means 2.
	Cycles int
	// Seed derives each home's residence and planner seeds.
	Seed uint64
}

// FleetBenchCell is one (homes, workers) measurement.
type FleetBenchCell struct {
	Homes   int `json:"homes"`
	Workers int `json:"workers"`
	Cycles  int `json:"cycles"`
	// Samples is the number of per-tenant plan latencies aggregated
	// (Homes × Cycles).
	Samples int `json:"samples"`
	// P50Ns/P95Ns/P99Ns are per-tenant plan latency percentiles.
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	// WallNs is the whole matrix cell's measured wall time;
	// HomesPerSec is planned homes per second across it.
	WallNs      int64   `json:"wall_ns"`
	HomesPerSec float64 `json:"homes_per_sec"`
}

// FleetBench is the machine-readable BENCH_fleet.json artifact.
type FleetBench struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cycles     int              `json:"cycles"`
	Cells      []FleetBenchCell `json:"cells"`
}

// RunFleetBench measures the homes × workers matrix.
func RunFleetBench(opts FleetBenchOptions) (*FleetBench, error) {
	homes := opts.Homes
	if homes == nil {
		homes = []int{1000, 10000}
	}
	workers := opts.Workers
	if workers == nil {
		workers = []int{1, 8}
	}
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 2
	}
	out := &FleetBench{GOMAXPROCS: runtime.GOMAXPROCS(0), Cycles: cycles}
	for _, h := range homes {
		if h <= 0 {
			return nil, fmt.Errorf("fleetbench: invalid fleet size %d", h)
		}
		for _, w := range workers {
			// A fresh fleet per cell pins every home to the same
			// simulated hours, so worker counts compare like for like;
			// construction happens outside the measured window.
			members, err := buildFleetMembers(h, opts.Seed)
			if err != nil {
				return nil, err
			}
			cell, err := runFleetCell(members, h, w, cycles)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// benchHome is one simulated home: a controller on its own clock so
// cells can advance time independently.
type benchHome struct {
	ctrl *controller.Controller
	clk  *simclock.SimClock
}

// buildFleetMembers constructs n homes, each a full controller over a
// prototype residence with home-derived seeds.
func buildFleetMembers(n int, seed uint64) ([]fleet.Member, error) {
	members := make([]fleet.Member, n)
	for i := 0; i < n; i++ {
		res, err := home.Prototype(seed + uint64(i))
		if err != nil {
			return nil, err
		}
		clk := simclock.NewSimClock(fleetBenchEpoch)
		cfg := controller.Config{
			Residence:    res,
			WeeklyBudget: home.PrototypeWeeklyBudget,
			Clock:        clk,
		}
		cfg.Planner.Seed = seed + uint64(i)
		ctrl, err := controller.New(cfg)
		if err != nil {
			return nil, err
		}
		h := &benchHome{ctrl: ctrl, clk: clk}
		members[i] = fleet.Member{
			ID: fmt.Sprintf("home-%06d", i),
			Step: func(ctx context.Context) error {
				_, err := h.ctrl.StepCtx(ctx)
				h.clk.Advance(time.Hour)
				return err
			},
		}
	}
	return members, nil
}

// runFleetCell steps the whole fleet for the configured cycles at one
// worker count, aggregating per-tenant latency samples.
func runFleetCell(members []fleet.Member, h, w, cycles int) (FleetBenchCell, error) {
	var (
		mu      sync.Mutex
		samples []int64
	)
	sched, err := fleet.New(members, fleet.Options{
		Workers:   w,
		NoMetrics: true, // 10k homes would mint 10k gauge children
		Observe: func(_ string, seconds float64) {
			ns := int64(seconds * 1e9)
			mu.Lock()
			samples = append(samples, ns)
			mu.Unlock()
		},
	})
	if err != nil {
		return FleetBenchCell{}, err
	}

	ctx := context.Background()
	start := time.Now()
	for c := 0; c < cycles; c++ {
		if err := sched.Cycle(ctx); err != nil {
			return FleetBenchCell{}, fmt.Errorf("fleetbench homes=%d workers=%d: %w", h, w, err)
		}
	}
	wall := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	cell := FleetBenchCell{
		Homes:   h,
		Workers: w,
		Cycles:  cycles,
		Samples: len(samples),
		P50Ns:   percentileNs(samples, 0.50),
		P95Ns:   percentileNs(samples, 0.95),
		P99Ns:   percentileNs(samples, 0.99),
		WallNs:  wall.Nanoseconds(),
	}
	if wall > 0 {
		cell.HomesPerSec = float64(h*cycles) / wall.Seconds()
	}
	return cell, nil
}

// percentileNs is the nearest-rank percentile of a sorted sample set.
func percentileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteJSON writes the BENCH_fleet.json artifact.
func (res *FleetBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteTable renders a human-readable summary of the matrix.
func (res *FleetBench) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "fleet scheduler plan latency (GOMAXPROCS=%d, %d cycles per cell)\n",
		res.GOMAXPROCS, res.Cycles); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %8s %10s %12s %12s %12s %12s\n",
		"homes", "workers", "samples", "p50", "p95", "p99", "homes/sec")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%8d %8d %10d %12v %12v %12v %12.0f\n",
			c.Homes, c.Workers, c.Samples,
			time.Duration(c.P50Ns).Round(time.Microsecond),
			time.Duration(c.P95Ns).Round(time.Microsecond),
			time.Duration(c.P99Ns).Round(time.Microsecond),
			c.HomesPerSec)
	}
	return nil
}
