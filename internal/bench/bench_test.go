package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/sim"
)

// fastSuite is a cheap suite for unit tests: flat only, 2 repetitions.
func fastSuite() *Suite {
	return &Suite{Reps: 2, Seed: 42, Datasets: []string{DatasetFlat}}
}

func TestAggregate(t *testing.T) {
	s := Aggregate(nil)
	if s.N != 0 || s.Mean != 0 || s.Stdev != 0 {
		t.Errorf("empty Aggregate = %+v", s)
	}
	s = Aggregate([]float64{5})
	if s.Mean != 5 || s.Stdev != 0 || s.N != 1 {
		t.Errorf("single Aggregate = %+v", s)
	}
	s = Aggregate([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Stdev-2.138) > 0.001 { // sample stdev
		t.Errorf("stdev = %v", s.Stdev)
	}
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("String() = %q", got)
	}
}

func TestUnknownDataset(t *testing.T) {
	s := &Suite{Reps: 1, Datasets: []string{"Mansion"}}
	if _, err := s.RunFig6(); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFig6FlatShape(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := fastSuite()
	rows, err := s.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 algorithms", len(rows))
	}
	byAlg := map[sim.Algorithm]Fig6Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	if byAlg[sim.NR].FE.Mean != 0 || byAlg[sim.MR].FCE.Mean != 0 {
		t.Error("baseline degeneracies violated")
	}
	if !(byAlg[sim.EP].FCE.Mean < byAlg[sim.IFTTT].FCE.Mean &&
		byAlg[sim.IFTTT].FCE.Mean < byAlg[sim.NR].FCE.Mean) {
		t.Error("F_CE ordering violated")
	}
	if !(byAlg[sim.EP].FE.Mean < byAlg[sim.MR].FE.Mean) {
		t.Error("F_E ordering violated")
	}
	// EP is the slow one: hill climbing beats baselines on quality but
	// costs the most planner time.
	if byAlg[sim.EP].FT.Mean <= byAlg[sim.NR].FT.Mean {
		t.Error("EP not slower than NR")
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := fastSuite()
	rows7, err := s.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) != 3 {
		t.Fatalf("fig7 rows = %d", len(rows7))
	}
	for _, r := range rows7 {
		if r.FCE.Mean <= 0 || r.FE.Mean <= 0 {
			t.Errorf("degenerate fig7 row %+v", r)
		}
	}

	rows8, err := s.RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 3 {
		t.Fatalf("fig8 rows = %d", len(rows8))
	}
	// all-0s initialization must not consume more than all-1s (the
	// paper observes lower F_E / higher F_CE for all-0s).
	if rows8[2].FE.Mean > rows8[0].FE.Mean*1.02 {
		t.Errorf("all-0s F_E %v above all-1s %v", rows8[2].FE.Mean, rows8[0].FE.Mean)
	}
	if rows8[2].FCE.Mean < rows8[0].FCE.Mean*0.98 {
		t.Errorf("all-0s F_CE %v below all-1s %v", rows8[2].FCE.Mean, rows8[0].FCE.Mean)
	}
}

func TestFig9MonotoneTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := fastSuite()
	rows, err := s.RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig9Savings) {
		t.Fatalf("fig9 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FE.Mean > rows[i-1].FE.Mean*1.01 {
			t.Errorf("F_E not decreasing with savings: %v after %v", rows[i].FE.Mean, rows[i-1].FE.Mean)
		}
		if rows[i].FCE.Mean < rows[i-1].FCE.Mean*0.95 {
			t.Errorf("F_CE decreasing with savings: %v after %v", rows[i].FCE.Mean, rows[i-1].FCE.Mean)
		}
	}
}

func TestInputTables(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"775.50", "423.00", "3666.00", "January", "December"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}

	buf.Reset()
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"Night Heat", "01:00 - 07:00", "Set Temperature", "Energy Dorms", "480000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}

	buf.Reset()
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "IF Door Open THEN Set Light 0") {
		t.Errorf("Table3 missing door rule:\n%s", out)
	}
	if got := strings.Count(out, "IF "); got != 10 {
		t.Errorf("Table3 has %d rules, want 10", got)
	}
}

func TestPrototypeTables(t *testing.T) {
	s := &Suite{Reps: 2, Seed: 42}
	r, err := s.RunPrototype()
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy.Mean <= 0 || r.Energy.Mean > 165*1.05 {
		t.Errorf("weekly energy = %v, want within the 165 kWh budget", r.Energy.Mean)
	}
	if len(r.PerOwner) != 3 {
		t.Errorf("PerOwner = %v", r.PerOwner)
	}

	var buf bytes.Buffer
	if err := s.Table4(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Week") {
		t.Errorf("Table4 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := s.Table5(&buf); err != nil {
		t.Fatal(err)
	}
	for _, owner := range []string{"Father", "Mother", "Daughter"} {
		if !strings.Contains(buf.String(), owner) {
			t.Errorf("Table5 missing %s:\n%s", owner, buf.String())
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := &Suite{Reps: 1, Seed: 42, Datasets: []string{DatasetFlat}}
	var buf bytes.Buffer
	if err := s.Ablations(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hill-climb", "anneal", "no-ledger", "keep-zero-gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestFigureWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := &Suite{Reps: 1, Seed: 42, Datasets: []string{DatasetFlat}}
	for name, fn := range map[string]func(*Suite, *bytes.Buffer) error{
		"fig6": func(s *Suite, b *bytes.Buffer) error { return s.Fig6(b) },
		"fig7": func(s *Suite, b *bytes.Buffer) error { return s.Fig7(b) },
		"fig8": func(s *Suite, b *bytes.Buffer) error { return s.Fig8(b) },
		"fig9": func(s *Suite, b *bytes.Buffer) error { return s.Fig9(b) },
	} {
		var buf bytes.Buffer
		if err := fn(s, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "Flat") {
			t.Errorf("%s output missing dataset:\n%s", name, buf.String())
		}
	}
}
