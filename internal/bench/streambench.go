package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"github.com/imcf/imcf/internal/client"
	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/stream"
)

// The stream bench prices the cloud↔edge synchronization protocols
// (DESIGN.md §16) in the regime the paper's APP actually lives in:
// a remote client keeping a local replica of a Local Controller's
// decision state (MRT, last plan, firewall block set) current.
//
// Three cells, identical replica semantics:
//
//   - poll:   rebuild by polling the plain REST read surfaces — three
//     full-body GETs per tick, the pre-stream protocol.
//   - etag:   the same three GETs per tick but conditional
//     (If-None-Match); unchanged state answers 304 with no body.
//   - stream: the delta-sync protocol — one snapshot at connect, then
//     long-poll delta batches; unchanged state costs one *held* poll
//     per wait window rather than any per-tick request.
//
// The steady phase (no state changes) is where the protocols diverge:
// the poller burns 3 requests every tick forever, the streamer parks
// one long poll. The changing phase (a planning cycle per tick) prices
// incremental catch-up: full rebuilds versus coalesced deltas. The
// bench also asserts the replicas stay canonically identical cell to
// cell — a fast protocol that drifts is not an optimization.

// StreamBenchOptions configures RunStreamBench. The zero value runs
// the default matrix.
type StreamBenchOptions struct {
	// SteadyTicks is how many poll ticks the steady phase runs; zero
	// means 20.
	SteadyTicks int
	// ChangingSteps is how many planning cycles the changing phase
	// runs; zero means 10.
	ChangingSteps int
	// Seed seeds the residence and planner.
	Seed uint64
}

// StreamCell is one protocol's cost over one phase.
type StreamCell struct {
	Requests  int64 `json:"requests"`
	BodyBytes int64 `json:"body_bytes"`
}

// StreamBench is the machine-readable BENCH_stream.json artifact.
type StreamBench struct {
	SteadyTicks   int `json:"steady_ticks"`
	ChangingSteps int `json:"changing_steps"`

	// Steady phase: unchanged state, SteadyTicks poll ticks.
	SteadyPoll   StreamCell `json:"steady_poll"`
	SteadyETag   StreamCell `json:"steady_etag"`
	SteadyStream StreamCell `json:"steady_stream"`
	// SteadyRequestRatio is poll requests over stream requests — the
	// headline ≥5x the delta-sync protocol exists for.
	SteadyRequestRatio float64 `json:"steady_request_ratio"`

	// Changing phase: one planning cycle per step, replica caught up
	// after every step.
	ChangingPoll   StreamCell `json:"changing_poll"`
	ChangingStream StreamCell `json:"changing_stream"`
}

// countingTransport counts requests and response-body bytes crossing
// one client's transport.
type countingTransport struct {
	base     http.RoundTripper
	requests atomic.Int64
	bytes    atomic.Int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	resp, err := t.base.RoundTrip(req)
	if resp != nil && resp.Body != nil {
		resp.Body = &countingBody{inner: resp.Body, n: &t.bytes}
	}
	return resp, err
}

func (t *countingTransport) cell() StreamCell {
	return StreamCell{Requests: t.requests.Load(), BodyBytes: t.bytes.Load()}
}

func (t *countingTransport) reset() {
	t.requests.Store(0)
	t.bytes.Store(0)
}

type countingBody struct {
	inner io.ReadCloser
	n     *atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.inner.Close() }

// newCountedClient builds an SDK client whose transport is counted.
func newCountedClient(base string) (*client.Client, *countingTransport, error) {
	ct := &countingTransport{base: http.DefaultTransport}
	c, err := client.New(base, &http.Client{Transport: ct})
	return c, ct, err
}

// RunStreamBench measures the three synchronization protocols.
func RunStreamBench(opts StreamBenchOptions) (*StreamBench, error) {
	steady := opts.SteadyTicks
	if steady == 0 {
		steady = 20
	}
	steps := opts.ChangingSteps
	if steps == 0 {
		steps = 10
	}

	res, err := home.Prototype(opts.Seed)
	if err != nil {
		return nil, err
	}
	clk := simclock.NewSimClock(fleetBenchEpoch)
	cfg := controller.Config{
		Residence:    res,
		Clock:        clk,
		WeeklyBudget: home.PrototypeWeeklyBudget,
		Stream:       stream.NewHub("bench-boot", stream.DefaultRingCap),
	}
	cfg.Planner.Seed = opts.Seed
	ctrl, err := controller.New(cfg)
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(controller.API(ctrl))
	defer srv.Close()

	// One planning cycle up front so every component exists.
	if _, err := ctrl.Step(); err != nil {
		return nil, err
	}
	clk.Advance(time.Hour)

	ctx := context.Background()
	out := &StreamBench{SteadyTicks: steady, ChangingSteps: steps}

	pollClient, pollCT, err := newCountedClient(srv.URL)
	if err != nil {
		return nil, err
	}
	etagClient, etagCT, err := newCountedClient(srv.URL)
	if err != nil {
		return nil, err
	}
	streamClient, streamCT, err := newCountedClient(srv.URL)
	if err != nil {
		return nil, err
	}

	// --- Steady phase: nothing changes for `steady` ticks. ---

	pollMirror := stream.NewMirror()
	for tick := 0; tick < steady; tick++ {
		if err := pollClient.PollInto(ctx, pollMirror); err != nil {
			return nil, err
		}
	}
	out.SteadyPoll = pollCT.cell()

	// The conditional poller revalidates instead of re-downloading:
	// same request cadence, 304-sized bodies.
	etags := map[string]string{"/rest/mrt": "", "/rest/plan": "", "/rest/firewall?rules=only": ""}
	for tick := 0; tick < steady; tick++ {
		for _, path := range []string{"/rest/mrt", "/rest/plan", "/rest/firewall?rules=only"} {
			_, tag, _, err := etagClient.GetConditional(ctx, path, etags[path])
			if err != nil {
				return nil, err
			}
			etags[path] = tag
		}
	}
	out.SteadyETag = etagCT.cell()

	// The streamer snapshots once, then parks a long poll; the steady
	// window elapses while the poll is held. The window is sized by the
	// poller's cadence (100ms/tick, the SDK's natural refresh rate).
	watchCtx, cancelWatch := context.WithCancel(ctx)
	updates := make(chan struct{}, 1)
	w := streamClient.Watch(watchCtx, client.WatchOptions{OnUpdate: func() {
		select {
		case updates <- struct{}{}:
		default:
		}
	}})
	select {
	case <-updates: // the snapshot landed; the long poll is parking
	case <-time.After(10 * time.Second):
		cancelWatch()
		return nil, fmt.Errorf("streambench: watcher never applied its snapshot")
	}
	time.Sleep(time.Duration(steady) * 100 * time.Millisecond)
	out.SteadyStream = streamCT.cell()
	if out.SteadyStream.Requests > 0 {
		out.SteadyRequestRatio = float64(out.SteadyPoll.Requests) / float64(out.SteadyStream.Requests)
	}

	// Replica-equivalence sanity before moving on.
	if !bytes.Equal(pollMirror.Canonical(), w.Mirror().Canonical()) {
		cancelWatch()
		return nil, fmt.Errorf("streambench: steady-phase replicas diverged")
	}

	// --- Changing phase: one planning cycle per step. ---

	pollCT.reset()
	streamCT.reset()
	syncMirror := w.Mirror()
	cancelWatch()
	<-w.Done()

	for step := 0; step < steps; step++ {
		if _, err := ctrl.Step(); err != nil {
			return nil, err
		}
		clk.Advance(time.Hour)
		if err := pollClient.PollInto(ctx, pollMirror); err != nil {
			return nil, err
		}
		if err := streamClient.Sync(ctx, syncMirror); err != nil {
			return nil, err
		}
		if !bytes.Equal(pollMirror.Canonical(), syncMirror.Canonical()) {
			return nil, fmt.Errorf("streambench: replicas diverged at step %d", step)
		}
	}
	out.ChangingPoll = pollCT.cell()
	out.ChangingStream = streamCT.cell()
	return out, nil
}

// WriteJSON writes the BENCH_stream.json artifact.
func (res *StreamBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteTable renders a human-readable summary.
func (res *StreamBench) WriteTable(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"cloud↔edge sync protocols, steady phase (%d ticks, unchanged state)\n"+
			"  poll    %5d requests  %8d body bytes\n"+
			"  etag    %5d requests  %8d body bytes\n"+
			"  stream  %5d requests  %8d body bytes\n"+
			"  poll/stream request ratio: %.1fx\n"+
			"changing phase (%d planning cycles, replica caught up per cycle)\n"+
			"  poll    %5d requests  %8d body bytes\n"+
			"  stream  %5d requests  %8d body bytes\n",
		res.SteadyTicks,
		res.SteadyPoll.Requests, res.SteadyPoll.BodyBytes,
		res.SteadyETag.Requests, res.SteadyETag.BodyBytes,
		res.SteadyStream.Requests, res.SteadyStream.BodyBytes,
		res.SteadyRequestRatio,
		res.ChangingSteps,
		res.ChangingPoll.Requests, res.ChangingPoll.BodyBytes,
		res.ChangingStream.Requests, res.ChangingStream.BodyBytes)
	return err
}
