package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunFleetBenchSmoke runs a miniature matrix and checks the
// invariants the artifact's consumers rely on: one sample per home per
// cycle, ordered percentiles, and positive throughput.
func TestRunFleetBenchSmoke(t *testing.T) {
	res, err := RunFleetBench(FleetBenchOptions{
		Homes:   []int{6},
		Workers: []int{1, 3},
		Cycles:  2,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Samples != c.Homes*c.Cycles {
			t.Errorf("workers=%d: samples = %d, want homes×cycles = %d", c.Workers, c.Samples, c.Homes*c.Cycles)
		}
		if c.P50Ns <= 0 || c.P50Ns > c.P95Ns || c.P95Ns > c.P99Ns {
			t.Errorf("workers=%d: percentiles not ordered: p50=%d p95=%d p99=%d",
				c.Workers, c.P50Ns, c.P95Ns, c.P99Ns)
		}
		if c.HomesPerSec <= 0 {
			t.Errorf("workers=%d: homes/sec = %f", c.Workers, c.HomesPerSec)
		}
	}

	var jsonOut bytes.Buffer
	if err := res.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	var decoded FleetBench
	if err := json.Unmarshal(jsonOut.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(decoded.Cells) != len(res.Cells) {
		t.Errorf("artifact round-trip lost cells: %d != %d", len(decoded.Cells), len(res.Cells))
	}

	var table bytes.Buffer
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "homes") || !strings.Contains(table.String(), "p99") {
		t.Errorf("table missing headers:\n%s", table.String())
	}
}

// TestRunFleetBenchRejectsBadSizes covers the guard rails.
func TestRunFleetBenchRejectsBadSizes(t *testing.T) {
	if _, err := RunFleetBench(FleetBenchOptions{Homes: []int{0}}); err == nil {
		t.Error("zero-home fleet accepted")
	}
	if _, err := RunFleetBench(FleetBenchOptions{Homes: []int{-3}}); err == nil {
		t.Error("negative fleet accepted")
	}
}

// TestPercentileNs pins the nearest-rank convention.
func TestPercentileNs(t *testing.T) {
	if got := percentileNs(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}} {
		if got := percentileNs(s, tc.q); got != tc.want {
			t.Errorf("p%.0f = %d, want %d", tc.q*100, got, tc.want)
		}
	}
}
