package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"github.com/imcf/imcf/internal/daemon"
	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/obs"
)

// The obs bench prices the observability layer where it matters: on
// the serving path, a REST read through the tenant's full middleware
// chain (access log, degrade gate, trace correlation, controller API)
// with the obs layer at its production default — enabled at Info
// level — versus globally disabled. The acceptance bar is <2% with
// logging enabled (BENCH_obs.json, `make obs-bench`).
//
// The two cells differ by sub-microsecond amounts, far below this
// machine's second-to-second drift, so they are measured interleaved:
// each round times one enabled batch and one disabled batch
// back-to-back, and each cell keeps its fastest batch across all
// rounds. Minimum-of-interleaved-rounds cancels frequency scaling and
// noisy neighbors that sequential cell runs would charge to whichever
// cell ran second.
//
// The artifact also records the flight-recorder substrate's other
// standing cost — the per-plan SLO window feed (Observe into three
// rolling windows plus the amortized per-cycle burn-rate Evaluate) —
// measured directly in a tight loop rather than by differencing, since
// a direct measurement of a small cost is stable where subtraction of
// two noisy ones is not.

// ObsBenchOptions configures RunObsBench. The zero value runs the
// default cell.
type ObsBenchOptions struct {
	// Requests is the serving-path batch size; zero means 2000.
	Requests int
	// Rounds is how many interleaved enabled/disabled rounds run;
	// zero means 25.
	Rounds int
	// Homes is the simulated fleet size for the SLO-feed measurement;
	// zero means 200.
	Homes int
	// Seed seeds the daemon's residence and planner.
	Seed uint64
}

// ObsBench is the machine-readable BENCH_obs.json artifact.
type ObsBench struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Requests   int `json:"requests"`
	Rounds     int `json:"rounds"`
	// DisabledNsPerReq and EnabledNsPerReq are the serving-path cost
	// per request with the obs layer globally disabled versus at its
	// production default (enabled, Info level).
	DisabledNsPerReq int64 `json:"disabled_ns_per_req"`
	EnabledNsPerReq  int64 `json:"enabled_ns_per_req"`
	// OverheadPct is the enabled-over-disabled delta in percent — the
	// number the <2% acceptance bar reads.
	OverheadPct float64 `json:"overhead_pct"`
	// SLOHomes and SLOFeedNsPerPlan price the fleet-side SLO feed: the
	// per-plan cost of Observe plus the amortized per-cycle Evaluate
	// at SLOHomes tenants, measured directly.
	SLOHomes         int   `json:"slo_homes"`
	SLOFeedNsPerPlan int64 `json:"slo_feed_ns_per_plan"`
}

// sinkWriter is a reusable ResponseWriter that discards bodies: the
// measured loop must not allocate a recorder per request.
type sinkWriter struct {
	h    http.Header
	code int
}

func (w *sinkWriter) Header() http.Header { return w.h }

func (w *sinkWriter) Write(p []byte) (int, error) { return len(p), nil }

func (w *sinkWriter) WriteHeader(code int) { w.code = code }

func (w *sinkWriter) reset() {
	w.code = 0
	for k := range w.h {
		delete(w.h, k)
	}
}

// RunObsBench measures the obs layer's serving-path overhead and the
// SLO feed's per-plan cost.
func RunObsBench(opts ObsBenchOptions) (*ObsBench, error) {
	requests := opts.Requests
	if requests == 0 {
		requests = 2000
	}
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 25
	}
	homes := opts.Homes
	if homes == 0 {
		homes = 200
	}

	d, err := daemon.New(daemon.Options{
		Addr:            "127.0.0.1:0",
		Residence:       "prototype",
		Seed:            opts.Seed,
		Mode:            "EP",
		WeeklyBudgetKWh: 165,
		StoreDir:        "/bench/store",
		FS:              faultfs.NewMemFS(),
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer d.Close() //nolint:errcheck // bench cleanup

	handler := d.Tenant(daemon.DefaultTenantID).Handler()
	req := httptest.NewRequest("GET", "/rest/summary", nil)
	sink := &sinkWriter{h: make(http.Header)}

	batch := func(enabled bool) (int64, error) {
		obs.SetEnabled(enabled)
		defer obs.SetEnabled(true)
		start := time.Now()
		for i := 0; i < requests; i++ {
			sink.reset()
			handler.ServeHTTP(sink, req)
			if sink.code != http.StatusOK {
				return 0, fmt.Errorf("obsbench: GET /rest/summary = %d (enabled=%v)", sink.code, enabled)
			}
		}
		return time.Since(start).Nanoseconds() / int64(requests), nil
	}

	// Warm both cells, then interleave the measured rounds.
	for _, on := range []bool{true, false} {
		if _, err := batch(on); err != nil {
			return nil, err
		}
	}
	runtime.GC()
	var bestOn, bestOff int64
	for r := 0; r < rounds; r++ {
		on, err := batch(true)
		if err != nil {
			return nil, err
		}
		off, err := batch(false)
		if err != nil {
			return nil, err
		}
		if bestOn == 0 || on < bestOn {
			bestOn = on
		}
		if bestOff == 0 || off < bestOff {
			bestOff = off
		}
	}

	out := &ObsBench{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Requests:         requests,
		Rounds:           rounds,
		DisabledNsPerReq: bestOff,
		EnabledNsPerReq:  bestOn,
		SLOHomes:         homes,
	}
	if bestOff > 0 {
		out.OverheadPct = 100 * float64(bestOn-bestOff) / float64(bestOff)
	}
	out.SLOFeedNsPerPlan = sloFeedNsPerPlan(homes)
	return out, nil
}

// sloFeedNsPerPlan measures the per-plan cost of the SLO engine as the
// daemon wires it — one Observe per tenant plan, one Evaluate per
// fleet cycle — amortized per plan, at fleet cardinality.
func sloFeedNsPerPlan(homes int) int64 {
	s := obs.NewSLO(obs.Config{NoMetrics: true})
	ids := make([]string, homes)
	for i := range ids {
		ids[i] = fmt.Sprintf("home-%06d", i)
	}
	now := fleetBenchEpoch
	cycle := func() {
		for _, id := range ids {
			s.Observe(id, now, 0.0001, false)
		}
		s.Evaluate(now)
		now = now.Add(time.Hour)
	}
	cycle() // registration and window allocation happen at boot, not steady state
	const cycles = 50
	start := time.Now()
	for c := 0; c < cycles; c++ {
		cycle()
	}
	return time.Since(start).Nanoseconds() / int64(cycles*homes)
}

// WriteJSON writes the BENCH_obs.json artifact.
func (res *ObsBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteTable renders a human-readable summary.
func (res *ObsBench) WriteTable(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"obs serving-path overhead (GOMAXPROCS=%d, %d requests/batch, best of %d interleaved rounds)\n"+
			"  logging disabled %10v/req\n  logging enabled  %10v/req\n  overhead         %+.2f%%\n"+
			"slo feed (%d tenants): %v/plan\n",
		res.GOMAXPROCS, res.Requests, res.Rounds,
		time.Duration(res.DisabledNsPerReq), time.Duration(res.EnabledNsPerReq),
		res.OverheadPct,
		res.SLOHomes, time.Duration(res.SLOFeedNsPerPlan))
	return err
}
