package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
)

// Table1 regenerates the paper's Table I — the flat's Energy Consumption
// Profile — along with the per-hour column and the derived EAF budgets,
// verifying the amortization pipeline end to end.
func Table1(w io.Writer) error {
	p := ecp.Flat()
	plan := ecp.Plan{Formula: ecp.EAF, Profile: p, Budget: 3500, Years: 1}
	fmt.Fprintln(w, "Table I — Energy Consumption Profile (ECP) of flat model")
	fmt.Fprintf(w, "%-10s %14s %14s %10s %22s\n", "Month", "kWh/month", "kWh/hour", "EAF w_i", "EAF E_h (E=3500)")
	for m := time.January; m <= time.December; m++ {
		hb, err := plan.HourlyBudget(m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %10.3f %22.3f\n",
			m, p.Monthly[m-1].KWh(), p.Monthly[m-1].KWh()/ecp.HoursPerMonth,
			p.Weight(m), hb.KWh())
	}
	fmt.Fprintf(w, "%-10s %14.2f\n", "Total", p.Total().KWh())
	return nil
}

// Table2 regenerates the paper's Table II — the flat Meta-Rule Table.
func Table2(w io.Writer) error {
	mrt := rules.FlatMRT()
	if err := mrt.Validate(); err != nil {
		return err
	}
	fmt.Fprintln(w, "Table II — Meta-Rule Table (MRT) for flat experiments")
	fmt.Fprintf(w, "%-18s %-17s %-16s %8s\n", "Description", "Time/Duration", "Action", "Value")
	for _, r := range mrt.Rules {
		window := r.Window.String()
		if r.IsBudget() {
			window = "for three years"
		}
		fmt.Fprintf(w, "%-18s %-17s %-16s %8g\n", r.Name, window, r.Action, r.Value)
	}
	return nil
}

// Table3 regenerates the paper's Table III — the IFTTT configurations.
func Table3(w io.Writer) error {
	fmt.Fprintln(w, "Table III — IFTTT configurations for flat experiment")
	for _, r := range rules.FlatIFTTT() {
		if err := r.Validate(); err != nil {
			return err
		}
		fmt.Fprintln(w, r)
	}
	return nil
}

// PrototypeResult carries the week-long prototype deployment metrics
// behind Tables IV and V.
type PrototypeResult struct {
	Energy           Stat // kWh over the week
	ConvenienceError Stat // percent
	PerOwner         map[string]Stat
	PlannerSeconds   Stat
}

// RunPrototype reproduces the Section III-F deployment: a three-person
// family controller running hourly EP cycles for one winter week under a
// 165 kWh weekly budget, repeated with different planner seeds. Unlike
// the Fig. 6–9 experiments this exercises the full controller stack
// (bindings, firewall, cron-equivalent stepping).
func (s *Suite) RunPrototype() (PrototypeResult, error) {
	var energies, errors, times []float64
	ownerSamples := map[string][]float64{}
	start := time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC)
	for rep := 0; rep < s.reps(); rep++ {
		res, err := home.Prototype(s.Seed)
		if err != nil {
			return PrototypeResult{}, err
		}
		clock := simclock.NewSimClock(start)
		cfg := controller.Config{
			Residence:    res,
			Clock:        clock,
			WeeklyBudget: home.PrototypeWeeklyBudget,
			// A short rollover: daytime surplus partially covers
			// the 18:00–23:00 peak, but concentrated evening demand
			// still forces a few drops — the Table IV trade-off.
			CarryCapHours: 5.5,
		}
		cfg.Planner.Seed = s.Seed*7_919 + uint64(rep)
		c, err := controller.New(cfg)
		if err != nil {
			return PrototypeResult{}, err
		}
		runStart := time.Now()
		for i := 0; i < 7*24; i++ {
			if _, err := c.Step(); err != nil {
				return PrototypeResult{}, err
			}
			clock.Advance(time.Hour)
		}
		times = append(times, time.Since(runStart).Seconds())
		sum := c.Summary()
		energies = append(energies, sum.Energy.KWh())
		errors = append(errors, float64(sum.ConvenienceError))
		for owner, ce := range sum.PerOwner {
			ownerSamples[owner] = append(ownerSamples[owner], float64(ce))
		}
	}
	out := PrototypeResult{
		Energy:           Aggregate(energies),
		ConvenienceError: Aggregate(errors),
		PerOwner:         make(map[string]Stat, len(ownerSamples)),
		PlannerSeconds:   Aggregate(times),
	}
	for owner, xs := range ownerSamples {
		out.PerOwner[owner] = Aggregate(xs)
	}
	return out, nil
}

// Table4 writes the prototype deployment's weekly F_E and F_CE.
func (s *Suite) Table4(w io.Writer) error {
	r, err := s.RunPrototype()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table IV — Prototype evaluation (one week, 165 kWh weekly budget)")
	fmt.Fprintf(w, "%-14s %-26s %-22s\n", "Time Duration", "Energy Consumption (F_E)", "Convenience Error (F_CE)")
	fmt.Fprintf(w, "%-14s %-26s %-22s\n", "Week",
		fmt.Sprintf("%.2f ± %.2f kWh", r.Energy.Mean, r.Energy.Stdev),
		fmt.Sprintf("%.2f ± %.2f %%", r.ConvenienceError.Mean, r.ConvenienceError.Stdev))
	fmt.Fprintf(w, "(week of EP cycles computed in %.2fs on average)\n", r.PlannerSeconds.Mean)
	return nil
}

// Table5 writes the per-resident convenience errors.
func (s *Suite) Table5(w io.Writer) error {
	r, err := s.RunPrototype()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table V — Individual resident convenience error (F_CE)")
	fmt.Fprintf(w, "%-10s %-22s\n", "Users", "Convenience Error (F_CE)")
	owners := make([]string, 0, len(r.PerOwner))
	for o := range r.PerOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		st := r.PerOwner[o]
		fmt.Fprintf(w, "%-10s %-22s\n", o, fmt.Sprintf("%.4f ± %.4f %%", st.Mean, st.Stdev))
	}
	return nil
}
