package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
)

func TestLoadSpecsSingleAndArray(t *testing.T) {
	one := `{"name":"x","dataset":"Flat","algorithms":["EP"]}`
	specs, err := LoadSpecs(strings.NewReader(one))
	if err != nil || len(specs) != 1 || specs[0].Name != "x" {
		t.Fatalf("single = %+v, %v", specs, err)
	}
	many := `[{"name":"a","dataset":"Flat","algorithms":["EP"]},
	          {"name":"b","dataset":"House","algorithms":["MR"]}]`
	specs, err = LoadSpecs(strings.NewReader(many))
	if err != nil || len(specs) != 2 || specs[1].Dataset != "House" {
		t.Fatalf("array = %+v, %v", specs, err)
	}
	if _, err := LoadSpecs(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestSpecOptionsMapping(t *testing.T) {
	sp := Spec{
		Name: "full", Dataset: "Flat", Algorithms: []string{"EP"},
		Savings: 0.2, Formula: "BLAF", SaveFraction: 0.3,
		WindowHours: 6, NoCarryOver: true,
		Planner: &PlannerSpec{K: 3, MaxIter: 50, Init: "random", Heuristic: "anneal", KeepZeroGain: true},
	}
	opts, err := sp.options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Formula != ecp.BLAF || opts.SaveFraction != 0.3 || opts.Savings != 0.2 ||
		opts.PlanWindowHours != 6 || !opts.NoCarryOver {
		t.Errorf("options = %+v", opts)
	}
	if opts.Planner.K != 3 || opts.Planner.MaxIter != 50 ||
		opts.Planner.Init != core.InitRandom || opts.Planner.Heuristic != core.Anneal ||
		!opts.Planner.KeepZeroGain {
		t.Errorf("planner = %+v", opts.Planner)
	}

	for _, bad := range []Spec{
		{Formula: "XAF"},
		{Planner: &PlannerSpec{Init: "sideways"}},
		{Planner: &PlannerSpec{Heuristic: "quantum"}},
	} {
		if _, err := bad.options(); err == nil {
			t.Errorf("bad spec accepted: %+v", bad)
		}
	}
}

func TestRunSpecsValidation(t *testing.T) {
	s := fastSuite()
	if _, err := s.RunSpecs([]Spec{{Name: "x", Algorithms: []string{"EP"}}}); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := s.RunSpecs([]Spec{{Name: "x", Dataset: "Flat"}}); err == nil {
		t.Error("missing algorithms accepted")
	}
	if _, err := s.RunSpecs([]Spec{{Name: "x", Dataset: "Flat", Algorithms: []string{"ZZ"}}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.RunSpecs([]Spec{{Name: "x", Dataset: "Mars", Algorithms: []string{"EP"}}}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunSpecFileEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replays skipped in -short mode")
	}
	s := fastSuite()
	in := strings.NewReader(`[
	  {"name":"baseline","dataset":"Flat","algorithms":["NR","EP"]},
	  {"name":"saver","dataset":"Flat","algorithms":["EP"],"savings":0.3}
	]`)
	var buf bytes.Buffer
	if err := s.RunSpecFile(in, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"baseline", "saver", "NR", "EP"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The saver spec must report lower energy than the baseline EP.
	results, err := s.RunSpecs([]Spec{
		{Name: "base", Dataset: "Flat", Algorithms: []string{"EP"}},
		{Name: "save", Dataset: "Flat", Algorithms: []string{"EP"}, Savings: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].FE.Mean >= results[0].FE.Mean {
		t.Errorf("savings spec energy %v not below baseline %v", results[1].FE.Mean, results[0].FE.Mean)
	}
}
