package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/sim"
	"github.com/imcf/imcf/internal/simclock"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Dataset string
	Config  string
	FCE     Stat
	FE      Stat
	FT      Stat
}

// RunHeuristicAblation compares the EP optimization engines — the
// paper's hill climbing against simulated annealing — backing the
// paper's claim that "any heuristic or meta-heuristic approach can be
// utilized in the EP optimization step".
func (s *Suite) RunHeuristicAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, h := range []core.Heuristic{core.HillClimb, core.Anneal} {
			opts := sim.Options{}
			opts.Planner.Heuristic = h
			fce, fe, ft, err := s.runRepeated(w, sim.EP, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Dataset: ds, Config: h.String(), FCE: fce, FE: fe, FT: ft})
		}
	}
	return rows, nil
}

// RunLedgerAblation compares the default bounded net-metering ledger
// against no ledger at all and against a near-unbounded one, at
// per-slot planning granularity where the rollover policy decides
// whether a split-unit hour is affordable at all.
func (s *Suite) RunLedgerAblation() ([]AblationRow, error) {
	configs := []struct {
		name string
		mut  func(*sim.Options)
	}{
		{"no-ledger", func(o *sim.Options) { o.NoCarryOver = true; o.PlanWindowHours = 1 }},
		{"ledger-72h", func(o *sim.Options) { o.PlanWindowHours = 1 }},
		{"ledger-1y", func(o *sim.Options) { o.CarryCapHours = 24 * 365; o.PlanWindowHours = 1 }},
	}
	var rows []AblationRow
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, c := range configs {
			opts := sim.Options{}
			c.mut(&opts)
			fce, fe, ft, err := s.runRepeated(w, sim.EP, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Dataset: ds, Config: c.name, FCE: fce, FE: fe, FT: ft})
		}
	}
	return rows, nil
}

// RunZeroGainAblation toggles the zero-gain pruning operator: without
// it, the greedy all-1s initialization keeps executing rules whose
// ambient conditions already satisfy the user, wasting budget.
func (s *Suite) RunZeroGainAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, keep := range []bool{false, true} {
			opts := sim.Options{}
			opts.Planner.KeepZeroGain = keep
			name := "prune-zero-gain"
			if keep {
				name = "keep-zero-gain"
			}
			fce, fe, ft, err := s.runRepeated(w, sim.EP, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Dataset: ds, Config: name, FCE: fce, FE: fe, FT: ft})
		}
	}
	return rows, nil
}

// RunWindowAblation compares EP decision granularities: the default
// daily window (one bit per rule per day, the paper's solution-vector
// semantics) against per-slot decisions.
func (s *Suite) RunWindowAblation() ([]AblationRow, error) {
	configs := []struct {
		name  string
		hours int
	}{
		{"window-1h", 1},
		{"window-6h", 6},
		{"window-24h", 24},
	}
	var rows []AblationRow
	for _, ds := range s.datasets() {
		w, err := s.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, c := range configs {
			opts := sim.Options{PlanWindowHours: c.hours}
			fce, fe, ft, err := s.runRepeated(w, sim.EP, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Dataset: ds, Config: c.name, FCE: fce, FE: fe, FT: ft})
		}
	}
	return rows, nil
}

// FairnessRow is one configuration of the fairness ablation.
type FairnessRow struct {
	Config string
	FCE    Stat // total convenience error (%)
	Spread Stat // max−min per-resident error (pp)
	FE     Stat // kWh
}

// RunFairnessAblation reruns the prototype week with and without
// minimax-fair planning, reporting the per-resident error spread —
// the "multiple energy planners with conflicting interests" extension.
func (s *Suite) RunFairnessAblation() ([]FairnessRow, error) {
	var rows []FairnessRow
	for _, fair := range []bool{false, true} {
		var fces, spreads, fes []float64
		for rep := 0; rep < s.reps(); rep++ {
			res, err := home.Prototype(s.Seed)
			if err != nil {
				return nil, err
			}
			clock := simclock.NewSimClock(time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC))
			cfg := controller.Config{
				Residence:     res,
				Clock:         clock,
				WeeklyBudget:  home.PrototypeWeeklyBudget,
				CarryCapHours: 5.5,
				FairPlanning:  fair,
			}
			cfg.Planner.Seed = s.Seed*104_729 + uint64(rep)
			c, err := controller.New(cfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < 7*24; i++ {
				if _, err := c.Step(); err != nil {
					return nil, err
				}
				clock.Advance(time.Hour)
			}
			sum := c.Summary()
			fces = append(fces, float64(sum.ConvenienceError))
			fes = append(fes, sum.Energy.KWh())
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, ce := range sum.PerOwner {
				lo = math.Min(lo, float64(ce))
				hi = math.Max(hi, float64(ce))
			}
			spreads = append(spreads, hi-lo)
		}
		name := "total-optimal"
		if fair {
			name = "minimax-fair"
		}
		rows = append(rows, FairnessRow{
			Config: name,
			FCE:    Aggregate(fces),
			Spread: Aggregate(spreads),
			FE:     Aggregate(fes),
		})
	}
	return rows, nil
}

// Ablations writes all ablation studies as text tables.
func (s *Suite) Ablations(w io.Writer) error {
	sections := []struct {
		title string
		run   func() ([]AblationRow, error)
	}{
		{"Ablation A — EP optimization engine (hill climbing vs simulated annealing)", s.RunHeuristicAblation},
		{"Ablation B — net-metering ledger policy (per-slot granularity)", s.RunLedgerAblation},
		{"Ablation C — zero-gain rule pruning", s.RunZeroGainAblation},
		{"Ablation D — EP decision window granularity", s.RunWindowAblation},
	}
	for _, sec := range sections {
		rows, err := sec.run()
		if err != nil {
			return err
		}
		header(w, sec.title)
		fmt.Fprintf(w, "%-8s %-18s %18s %24s %18s\n", "Dataset", "Config", "F_CE (%)", "F_E (kWh)", "F_T (s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s %-18s %18s %24s %18s\n",
				r.Dataset, r.Config, r.FCE, fmtEnergy(r.FE), fmtSeconds(r.FT))
		}
	}

	fairRows, err := s.RunFairnessAblation()
	if err != nil {
		return err
	}
	header(w, "Ablation E — minimax-fair planning (prototype week)")
	fmt.Fprintf(w, "%-14s %18s %22s %24s\n", "Config", "F_CE (%)", "owner spread (pp)", "F_E (kWh)")
	for _, r := range fairRows {
		fmt.Fprintf(w, "%-14s %18s %22s %24s\n", r.Config, r.FCE, r.Spread, fmtEnergy(r.FE))
	}
	return nil
}
