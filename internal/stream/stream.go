// Package stream is the versioned decision stream behind the
// cloud↔edge delta-sync protocol (DESIGN.md §16): a Hub holds the
// latest value of each state component (the Meta-Rule Table, the last
// planner verdict, the firewall block set), stamps every change with a
// monotonic sequence number, and buffers a bounded ring of deltas so a
// subscriber can resume from its last seen sequence number instead of
// re-downloading the world. A Mirror is the subscriber half: it applies
// snapshots and deltas and can render its state canonically, which is
// how the equivalence harness proves a sync-maintained mirror is
// bit-identical to a poll-built one.
//
// Protocol shape (served over HTTP by the handlers in http.go; the
// core types are transport-agnostic):
//
//   - On connect a subscriber fetches Snapshot(): every component's
//     current value plus the hub's instance token and sequence number.
//   - It then long-polls Since(instance, seq): a batch of coalesced
//     deltas in (seq, Seq()], or ok=false when the hub cannot resume
//     that position (unknown instance — the producer restarted — or a
//     gap older than the ring), in which case the subscriber refetches
//     the snapshot.
//   - Wait blocks until the sequence number advances past a position,
//     the context ends, or the hub closes — the server half of a long
//     poll. It takes no timeout of its own: deadlines are the caller's
//     context, so the core never reads a clock (the HTTP handlers arm
//     context timeouts for long-poll holds, never wall-clock reads).
//
// Coalescing rule: a delta batch carries at most one event per
// component — the newest — but is stamped with the hub's sequence
// number at batch time (Batch.Through). Because every event carries the
// component's full value (state replacement, not edits), skipping
// superseded events cannot change the state a mirror converges to, and
// resuming from Through is seamless.
package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Kind names a state component carried by the stream.
type Kind string

// Component kinds published by a Local Controller.
const (
	// KindMRT is the active Meta-Rule Table (rules.MRT).
	KindMRT Kind = "mrt"
	// KindPlan is the most recent planner verdict (controller.StepReport).
	KindPlan Kind = "plan"
	// KindFirewall is the firewall's block set, the sorted iptables-style
	// rule strings ([]string).
	KindFirewall Kind = "firewall"
)

// Event is one delta: the full new value of one component. A nil Data
// is a tombstone — the component was removed (a site unregistering from
// the relay, for example).
type Event struct {
	Seq  uint64          `json:"seq"`
	Kind Kind            `json:"kind"`
	Site string          `json:"site,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Key is the component identity an event addresses: the kind alone at
// the edge, "site/kind" behind the relay's fan-in.
func (e Event) Key() string { return componentKey(e.Site, e.Kind) }

func componentKey(site string, kind Kind) string {
	if site == "" {
		return string(kind)
	}
	return site + "/" + string(kind)
}

// splitKey undoes componentKey.
func splitKey(key string) (site string, kind Kind) {
	if i := lastSlash(key); i >= 0 {
		return key[:i], Kind(key[i+1:])
	}
	return "", Kind(key)
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// Snapshot is the full state at one sequence number.
type Snapshot struct {
	// Instance identifies one hub lifetime. A subscriber holding deltas
	// from another instance must resynchronize: sequence numbers are not
	// comparable across restarts.
	Instance string                     `json:"instance"`
	Seq      uint64                     `json:"seq"`
	State    map[string]json.RawMessage `json:"state"`
}

// Batch is a resumed subscriber's delta delivery: every component that
// changed in (Since, Through], newest value only, in ascending sequence
// order.
type Batch struct {
	Instance string  `json:"instance"`
	Through  uint64  `json:"through"`
	Events   []Event `json:"events"`
}

// DefaultRingCap bounds the delta ring when NewHub is given a
// non-positive capacity: enough for a day of hourly plan+firewall
// deltas with room for MRT churn.
const DefaultRingCap = 256

// Hub is the producer side of the stream. It is safe for concurrent
// use. The zero value is not usable; construct with NewHub.
type Hub struct {
	mu       sync.Mutex
	instance string
	seq      uint64
	state    map[string]json.RawMessage
	compSeq  map[string]uint64 // last sequence that touched each component
	ring     []Event           // circular, oldest at start
	start    int
	count    int
	notify   chan struct{} // closed on every publish, then replaced
	closed   bool
}

// NewHub returns a hub. instance tokens one producer lifetime (restarts
// must mint a new one); ringCap bounds the delta ring (<= 0 means
// DefaultRingCap).
func NewHub(instance string, ringCap int) *Hub {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Hub{
		instance: instance,
		state:    make(map[string]json.RawMessage),
		compSeq:  make(map[string]uint64),
		ring:     make([]Event, 0, ringCap),
		notify:   make(chan struct{}),
	}
}

// Instance returns the hub's lifetime token.
func (h *Hub) Instance() string { return h.instance }

// Publish installs data as the new value of (site, kind), stamps it
// with the next sequence number and wakes waiters. The data is
// compacted so published bytes are canonical regardless of the
// producer's encoder. Invalid JSON is rejected.
func (h *Hub) Publish(site string, kind Kind, data []byte) (uint64, error) {
	compact, err := compactJSON(data)
	if err != nil {
		return 0, fmt.Errorf("stream: publish %s: %w", componentKey(site, kind), err)
	}
	return h.install(Event{Kind: kind, Site: site, Data: compact}), nil
}

// compactJSON validates and canonicalizes an encoded value: whatever
// encoder produced it, the stored bytes are whitespace-free, so
// snapshot-built, delta-built and poll-built mirrors compare equal.
func compactJSON(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Remove publishes a tombstone deleting (site, kind) from the state. A
// missing component is a no-op and consumes no sequence number.
func (h *Hub) Remove(site string, kind Kind) {
	key := componentKey(site, kind)
	h.mu.Lock()
	if _, ok := h.state[key]; !ok {
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	h.install(Event{Kind: kind, Site: site})
}

// RemoveSite tombstones every component of one site — the relay's
// unregister path.
func (h *Hub) RemoveSite(site string) {
	h.mu.Lock()
	var kinds []Kind
	for key := range h.state {
		if s, k := splitKey(key); s == site {
			kinds = append(kinds, k)
		}
	}
	h.mu.Unlock()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		h.Remove(site, k)
	}
}

// install appends the event under the next sequence number.
func (h *Hub) install(ev Event) uint64 {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	key := ev.Key()
	if ev.Data == nil {
		delete(h.state, key)
	} else {
		h.state[key] = ev.Data
	}
	h.compSeq[key] = ev.Seq
	if h.count < cap(h.ring) {
		h.ring = append(h.ring, ev)
		h.count++
	} else {
		h.ring[h.start] = ev
		h.start = (h.start + 1) % cap(h.ring)
	}
	ch := h.notify
	h.notify = make(chan struct{})
	h.mu.Unlock()
	close(ch)
	return ev.Seq
}

// Seq returns the sequence number of the newest published event.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// ComponentSeq returns the sequence number of the last change to
// (site, kind) — the version the read surfaces expose as an ETag. Zero
// means the component has never been published.
func (h *Hub) ComponentSeq(site string, kind Kind) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.compSeq[componentKey(site, kind)]
}

// Snapshot returns the full current state.
func (h *Hub) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Instance: h.instance, Seq: h.seq, State: make(map[string]json.RawMessage, len(h.state))}
	for k, v := range h.state {
		s.State[k] = v
	}
	return s
}

// Since returns the coalesced deltas after seq. ok is false when the
// hub cannot resume that position: the instance token differs (producer
// restarted), seq runs ahead of the hub, or the ring has already
// dropped events the subscriber would need — all cases where only a
// fresh snapshot re-synchronizes. A resumable position with nothing new
// returns an empty batch.
func (h *Hub) Since(instance string, seq uint64) (Batch, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if instance != h.instance || seq > h.seq {
		return Batch{}, false
	}
	b := Batch{Instance: h.instance, Through: h.seq}
	if seq == h.seq {
		return b, true
	}
	oldest := h.seq - uint64(h.count) + 1
	if h.count == 0 || seq < oldest-1 {
		return Batch{}, false // the gap predates the ring
	}
	// Collect the suffix newer than seq, keeping only each component's
	// newest event (the coalescing rule: values are full replacements).
	latest := make(map[string]Event)
	for i := 0; i < h.count; i++ {
		ev := h.ring[(h.start+i)%cap(h.ring)]
		if ev.Seq > seq {
			latest[ev.Key()] = ev
		}
	}
	for _, ev := range latest {
		b.Events = append(b.Events, ev)
	}
	sort.Slice(b.Events, func(i, j int) bool { return b.Events[i].Seq < b.Events[j].Seq })
	return b, true
}

// Wait blocks until the hub's sequence number exceeds seq, the context
// ends, or the hub closes. It reports whether new events are available.
// The long-poll deadline is the caller's context — this package never
// arms a timer of its own.
func (h *Hub) Wait(ctx context.Context, seq uint64) bool {
	for {
		h.mu.Lock()
		if h.seq > seq {
			h.mu.Unlock()
			return true
		}
		if h.closed {
			h.mu.Unlock()
			return false
		}
		ch := h.notify
		h.mu.Unlock()
		select {
		case <-ch:
			// re-check: the publish may predate our registration
		case <-ctx.Done():
			return false
		}
	}
}

// Close wakes every waiter and makes future Waits return immediately.
// Publishing to a closed hub is still allowed (shutdown is a transport
// concern; producers may flush final state).
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ch := h.notify
	h.notify = make(chan struct{})
	h.mu.Unlock()
	close(ch)
}
