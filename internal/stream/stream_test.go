package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustPublish(t *testing.T, h *Hub, site string, kind Kind, v any) uint64 {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := h.Publish(site, kind, data)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestPublishSnapshotRoundTrip(t *testing.T) {
	h := NewHub("boot-1", 8)
	if h.Instance() != "boot-1" {
		t.Fatalf("instance = %q", h.Instance())
	}
	if got := h.Seq(); got != 0 {
		t.Fatalf("fresh hub seq = %d", got)
	}
	s1 := mustPublish(t, h, "", KindMRT, map[string]int{"rules": 3})
	s2 := mustPublish(t, h, "", KindFirewall, []string{"-A OUTPUT -s 10.0.0.9 -j DROP"})
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d", s1, s2)
	}
	snap := h.Snapshot()
	if snap.Instance != "boot-1" || snap.Seq != 2 || len(snap.State) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if string(snap.State["mrt"]) != `{"rules":3}` {
		t.Fatalf("mrt component = %s", snap.State["mrt"])
	}
	if h.ComponentSeq("", KindMRT) != 1 || h.ComponentSeq("", KindFirewall) != 2 {
		t.Fatalf("component seqs = %d, %d", h.ComponentSeq("", KindMRT), h.ComponentSeq("", KindFirewall))
	}
	if h.ComponentSeq("", KindPlan) != 0 {
		t.Fatal("unpublished component has a version")
	}
}

func TestPublishRejectsInvalidJSON(t *testing.T) {
	h := NewHub("i", 4)
	if _, err := h.Publish("", KindMRT, []byte("{nope")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if h.Seq() != 0 {
		t.Fatal("failed publish consumed a sequence number")
	}
}

func TestPublishCanonicalizesWhitespace(t *testing.T) {
	h := NewHub("i", 4)
	if _, err := h.Publish("", KindPlan, []byte("{\n  \"a\": 1\n}\n")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Snapshot().State["plan"], ""; string(got) != `{"a":1}` {
		t.Fatalf("stored = %q", got)
	}
}

func TestSinceResumesAndCoalesces(t *testing.T) {
	h := NewHub("i", 16)
	mustPublish(t, h, "", KindMRT, 1)
	mustPublish(t, h, "", KindPlan, 10)
	mustPublish(t, h, "", KindPlan, 11)
	mustPublish(t, h, "", KindPlan, 12)
	mustPublish(t, h, "", KindFirewall, []string{"x"})

	b, ok := h.Since("i", 1)
	if !ok {
		t.Fatal("resume from 1 refused")
	}
	if b.Through != 5 {
		t.Fatalf("through = %d", b.Through)
	}
	// Three plan events coalesce into one (the newest), plus firewall.
	if len(b.Events) != 2 {
		t.Fatalf("events = %+v", b.Events)
	}
	if b.Events[0].Kind != KindPlan || string(b.Events[0].Data) != "12" || b.Events[0].Seq != 4 {
		t.Fatalf("coalesced plan = %+v", b.Events[0])
	}
	if b.Events[1].Kind != KindFirewall {
		t.Fatalf("events = %+v", b.Events)
	}

	// Resuming from the batch's Through yields an empty batch.
	b2, ok := h.Since("i", b.Through)
	if !ok || len(b2.Events) != 0 || b2.Through != 5 {
		t.Fatalf("steady resume = %+v, %v", b2, ok)
	}
}

func TestSinceRefusesUnresumablePositions(t *testing.T) {
	h := NewHub("boot-2", 4)
	for i := 0; i < 10; i++ {
		mustPublish(t, h, "", KindPlan, i)
	}
	// Wrong instance: a producer restart.
	if _, ok := h.Since("boot-1", 9); ok {
		t.Fatal("cross-instance resume accepted")
	}
	// Ahead of the hub.
	if _, ok := h.Since("boot-2", 11); ok {
		t.Fatal("future position accepted")
	}
	// Older than the ring (cap 4, seq 10: ring holds 7..10; 5 is gone).
	if _, ok := h.Since("boot-2", 5); ok {
		t.Fatal("pre-ring gap accepted")
	}
	// The oldest complete position still resumes.
	if b, ok := h.Since("boot-2", 6); !ok || len(b.Events) != 1 || string(b.Events[0].Data) != "9" {
		t.Fatalf("ring-edge resume = %+v, %v", b, ok)
	}
}

func TestRemoveAndRemoveSite(t *testing.T) {
	h := NewHub("i", 16)
	mustPublish(t, h, "alpha", KindMRT, 1)
	mustPublish(t, h, "alpha", KindPlan, 2)
	mustPublish(t, h, "beta", KindMRT, 3)

	h.Remove("beta", KindPlan) // absent: no-op
	if h.Seq() != 3 {
		t.Fatalf("no-op remove consumed seq: %d", h.Seq())
	}
	h.RemoveSite("alpha")
	snap := h.Snapshot()
	if len(snap.State) != 1 {
		t.Fatalf("state after site removal = %v", snap.State)
	}
	if _, ok := snap.State["beta/mrt"]; !ok {
		t.Fatal("beta lost by alpha's removal")
	}
	// Tombstones travel as deltas too.
	b, ok := h.Since("i", 3)
	if !ok || len(b.Events) != 2 {
		t.Fatalf("tombstone batch = %+v, %v", b, ok)
	}
	for _, ev := range b.Events {
		if ev.Data != nil || ev.Site != "alpha" {
			t.Fatalf("tombstone = %+v", ev)
		}
	}
}

func TestWaitWakesOnPublish(t *testing.T) {
	h := NewHub("i", 4)
	mustPublish(t, h, "", KindMRT, 1)

	// Already-available events return immediately.
	if !h.Wait(context.Background(), 0) {
		t.Fatal("Wait(0) with seq=1 returned false")
	}

	done := make(chan bool, 1)
	go func() { done <- h.Wait(context.Background(), 1) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	mustPublish(t, h, "", KindPlan, 2)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("woken waiter reported no events")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publish did not wake the waiter")
	}
}

func TestWaitHonorsContextAndClose(t *testing.T) {
	h := NewHub("i", 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- h.Wait(ctx, 0) }()
	cancel()
	if ok := <-done; ok {
		t.Fatal("cancelled Wait reported events")
	}

	go func() { done <- h.Wait(context.Background(), 0) }()
	time.Sleep(10 * time.Millisecond)
	h.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed-hub Wait reported events")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the waiter")
	}
	// Close is idempotent; Wait after Close returns immediately.
	h.Close()
	if h.Wait(context.Background(), 99) {
		t.Fatal("Wait after Close reported events")
	}
}

func TestConcurrentPublishersAndWaiters(t *testing.T) {
	h := NewHub("i", DefaultRingCap)
	const n = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var seen uint64
			for seen < n {
				if !h.Wait(context.Background(), seen) {
					return
				}
				b, ok := h.Since("i", seen)
				if !ok {
					// fell behind the ring — resync from the snapshot
					seen = h.Snapshot().Seq
					continue
				}
				seen = b.Through
			}
		}()
	}
	for i := 0; i < n; i++ {
		mustPublish(t, h, "", KindPlan, i)
	}
	wg.Wait()
	if h.Seq() != n {
		t.Fatalf("seq = %d", h.Seq())
	}
}

func TestMirrorSnapshotDeltaConvergence(t *testing.T) {
	h := NewHub("i", 32)
	mustPublish(t, h, "", KindMRT, map[string]any{"rules": []int{1, 2}})
	mustPublish(t, h, "", KindFirewall, []string{"a"})

	// Mirror A: snapshot at seq 2, then deltas.
	a := NewMirror()
	a.ApplySnapshot(h.Snapshot())

	mustPublish(t, h, "", KindPlan, map[string]float64{"energy": 1.5})
	mustPublish(t, h, "", KindFirewall, []string{"a", "b"})

	inst, seq := a.Position()
	b, ok := h.Since(inst, seq)
	if !ok {
		t.Fatal("resume refused")
	}
	if err := a.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}

	// Mirror B: one snapshot at the end.
	bm := NewMirror()
	bm.ApplySnapshot(h.Snapshot())

	if !bytes.Equal(a.Canonical(), bm.Canonical()) {
		t.Fatalf("delta-built %s != snapshot-built %s", a.Canonical(), bm.Canonical())
	}
	if a.Seq() != bm.Seq() || a.Seq() != 4 {
		t.Fatalf("seqs = %d, %d", a.Seq(), bm.Seq())
	}
}

func TestMirrorRejectsCrossInstanceBatch(t *testing.T) {
	m := NewMirror()
	m.ApplySnapshot(Snapshot{Instance: "x", Seq: 3, State: map[string]json.RawMessage{}})
	if err := m.ApplyBatch(Batch{Instance: "y", Through: 9}); err == nil {
		t.Fatal("cross-instance batch accepted")
	}
	if m.Seq() != 3 {
		t.Fatalf("rejected batch moved seq to %d", m.Seq())
	}
}

func TestMirrorSkipsReplayedEvents(t *testing.T) {
	m := NewMirror()
	m.ApplySnapshot(Snapshot{Instance: "i", Seq: 2, State: map[string]json.RawMessage{
		"plan": json.RawMessage(`1`),
	}})
	err := m.ApplyBatch(Batch{Instance: "i", Through: 4, Events: []Event{
		{Seq: 2, Kind: KindPlan, Data: json.RawMessage(`0`)}, // replay: skipped
		{Seq: 3, Kind: KindPlan, Data: json.RawMessage(`7`)}, // applied
		{Seq: 4, Kind: KindMRT, Data: nil},                   // tombstone of an absent key
	}})
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := m.Get("", KindPlan)
	if !ok || string(raw) != "7" {
		t.Fatalf("plan = %s, %v", raw, ok)
	}
	if m.Seq() != 4 {
		t.Fatalf("seq = %d", m.Seq())
	}
}

func TestMirrorDecodeGetKeys(t *testing.T) {
	m := NewMirror()
	if err := m.Set("", KindFirewall, []byte(`[ "r1", "r2" ]`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("site", KindMRT, []byte(`{"rules":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("", KindPlan, []byte(`{broken`)); err == nil {
		t.Fatal("invalid JSON accepted by Set")
	}
	var rulesList []string
	ok, err := m.Decode("", KindFirewall, &rulesList)
	if !ok || err != nil || len(rulesList) != 2 {
		t.Fatalf("decode = %v, %v, %v", ok, err, rulesList)
	}
	if ok, _ := m.Decode("", KindPlan, &rulesList); ok {
		t.Fatal("absent component decoded")
	}
	if _, ok := m.Get("", KindPlan); ok {
		t.Fatal("absent component present")
	}
	want := []string{"firewall", "site/mrt"}
	got := m.Keys()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("keys = %v", got)
	}
	// Set(nil) removes.
	if err := m.Set("site", KindMRT, nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Keys()) != 1 {
		t.Fatalf("keys after removal = %v", m.Keys())
	}
	// Canonical state ignores how values were written: Set compacted the
	// spaced firewall list.
	if want := `{"firewall":["r1","r2"]}`; string(m.Canonical()) != want {
		t.Fatalf("canonical = %s", m.Canonical())
	}
}

func TestEventKeyAndSplit(t *testing.T) {
	cases := []struct {
		site string
		kind Kind
		key  string
	}{
		{"", KindMRT, "mrt"},
		{"dorm-a", KindPlan, "dorm-a/plan"},
	}
	for _, tc := range cases {
		ev := Event{Site: tc.site, Kind: tc.kind}
		if ev.Key() != tc.key {
			t.Errorf("key(%q,%q) = %q", tc.site, tc.kind, ev.Key())
		}
		site, kind := splitKey(tc.key)
		if site != tc.site || kind != tc.kind {
			t.Errorf("split(%q) = %q, %q", tc.key, site, kind)
		}
	}
}

func TestRingOverflowForcesSnapshot(t *testing.T) {
	// A mirror that sleeps through more deltas than the ring holds must
	// detect the gap, resync from a snapshot, and still converge.
	h := NewHub("i", 4)
	m := NewMirror()
	m.ApplySnapshot(h.Snapshot())
	for i := 0; i < 20; i++ {
		mustPublish(t, h, "", KindPlan, i)
		mustPublish(t, h, "", KindFirewall, []string{fmt.Sprint(i)})
	}
	inst, seq := m.Position()
	if _, ok := h.Since(inst, seq); ok {
		t.Fatal("gap resume accepted")
	}
	m.ApplySnapshot(h.Snapshot())
	ref := NewMirror()
	ref.ApplySnapshot(h.Snapshot())
	if !bytes.Equal(m.Canonical(), ref.Canonical()) {
		t.Fatal("post-resync state diverged")
	}
}

func TestDefaultRingCap(t *testing.T) {
	h := NewHub("i", 0)
	if got := cap(h.ring); got != DefaultRingCap {
		t.Fatalf("default ring cap = %d", got)
	}
}
