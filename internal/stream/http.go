package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/imcf/imcf/internal/metrics"
)

// Decision-stream request counters, by transport, shared by every hub
// server (controller edge and relay fan-out alike).
var (
	streamRequestsVec = metrics.NewCounterVec("imcf_stream_requests_total",
		"Decision-stream requests served, by kind.", "kind")
	streamSnapshots = streamRequestsVec.With("snapshot")
	streamPolls     = streamRequestsVec.With("poll")
	streamSSEConns  = streamRequestsVec.With("sse")
	streamResyncs   = streamRequestsVec.With("resync")
	// StreamNotModified counts ETag revalidations answered 304 by the
	// stream-versioned read surfaces.
	StreamNotModified = streamRequestsVec.With("not_modified")
)

// Long-poll bounds for the delta endpoint: how long an idle poll is
// held open before answering with an empty batch. Clients choose
// anything up to the cap with ?wait=<seconds>; ?wait=0 returns
// immediately.
const (
	DefaultWait = 25 * time.Second
	MaxWait     = 55 * time.Second
)

// SnapshotHandler serves the hub's full state plus resume coordinates.
func (h *Hub) SnapshotHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		streamSnapshots.Inc()
		writeStreamJSON(w, http.StatusOK, h.Snapshot())
	}
}

// DeltaHandler serves the delta feed. Plain requests long-poll: the
// response is one coalesced batch, held back up to ?wait= seconds when
// nothing is newer than the resume position (Last-Event-Seq or
// Last-Event-ID header, or ?seq=; instance from Stream-Instance or
// ?instance=). With Accept: text/event-stream the connection stays
// open and batches flow as SSE "batch" events whose id: line carries
// the sequence number to resume from. Either way an unresumable
// position answers 409 and the subscriber refetches the snapshot.
func (h *Hub) DeltaHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		instance, seq, err := resumePosition(r, h)
		if err != nil {
			writeStreamJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if _, ok := h.Since(instance, seq); !ok {
			writeResync(w)
			return
		}
		if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
			h.serveSSE(w, r, instance, seq)
			return
		}
		wait, err := parseWait(r)
		if err != nil {
			writeStreamJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		streamPolls.Inc()
		if wait > 0 && h.Seq() == seq {
			ctx, cancel := context.WithTimeout(r.Context(), wait)
			h.Wait(ctx, seq)
			cancel()
		}
		b, ok := h.Since(instance, seq)
		if !ok {
			// The ring lapped us while we waited; only a snapshot helps.
			writeResync(w)
			return
		}
		w.Header().Set("Last-Event-Seq", strconv.FormatUint(b.Through, 10))
		w.Header().Set("Stream-Instance", b.Instance)
		writeStreamJSON(w, http.StatusOK, b)
	}
}

// resumePosition extracts a subscriber's resume coordinates. Absent
// coordinates default to the hub's current position — "only what
// happens from now on", the natural start for a curl follow.
func resumePosition(r *http.Request, h *Hub) (instance string, seq uint64, err error) {
	instance = r.URL.Query().Get("instance")
	if instance == "" {
		instance = r.Header.Get("Stream-Instance")
	}
	if instance == "" {
		instance = h.Instance()
	}
	raw := r.Header.Get("Last-Event-Seq")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		raw = r.URL.Query().Get("seq")
	}
	if raw == "" {
		return instance, h.Seq(), nil
	}
	seq, err = strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad resume position %q: %w", raw, err)
	}
	return instance, seq, nil
}

// parseWait parses ?wait=<seconds>, bounded by MaxWait.
func parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return DefaultWait, nil
	}
	secs, err := strconv.ParseFloat(raw, 64)
	if err != nil || secs < 0 {
		return 0, fmt.Errorf("bad wait %q", raw)
	}
	return min(time.Duration(secs*float64(time.Second)), MaxWait), nil
}

// writeResync tells a subscriber its position is no longer resumable
// (producer restart or a gap older than the delta ring): 409 with the
// cue to start over from a snapshot.
func writeResync(w http.ResponseWriter) {
	streamResyncs.Inc()
	writeStreamJSON(w, http.StatusConflict, map[string]string{
		"error":  "position not resumable; fetch a fresh snapshot",
		"resync": "snapshot",
	})
}

// serveSSE follows the stream over one held-open connection until the
// client hangs up or the hub closes. A mid-stream gap (the ring lapped
// a slow client) emits a terminal "resync" event instead of silently
// skipping state.
func (h *Hub) serveSSE(w http.ResponseWriter, r *http.Request, instance string, seq uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeStreamJSON(w, http.StatusNotImplemented, map[string]string{"error": "response writer cannot stream"})
		return
	}
	streamSSEConns.Inc()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Stream-Instance", h.Instance())
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		b, ok := h.Since(instance, seq)
		if !ok {
			fmt.Fprint(w, "event: resync\ndata: {}\n\n") //nolint:errcheck // terminal event; client reconnects either way
			fl.Flush()
			streamResyncs.Inc()
			return
		}
		if b.Through > seq {
			data, err := json.Marshal(b)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: batch\ndata: %s\n\n", b.Through, data) //nolint:errcheck // flush surfaces a dead client via ctx
			fl.Flush()
			seq = b.Through
		}
		if !h.Wait(r.Context(), seq) {
			return
		}
	}
}

func writeStreamJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}
