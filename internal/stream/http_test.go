package stream

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newServedHub(t *testing.T) (*Hub, *httptest.Server) {
	t.Helper()
	h := NewHub("boot-http", 32)
	t.Cleanup(h.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /rest/stream/snapshot", h.SnapshotHandler())
	mux.HandleFunc("GET /rest/stream", h.DeltaHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return h, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestSnapshotHandler(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`{"rules":[]}`))
	var snap Snapshot
	if code := getJSON(t, srv.URL+"/rest/stream/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	if snap.Instance != "boot-http" || snap.Seq != 1 {
		t.Errorf("snapshot coordinates = %q/%d", snap.Instance, snap.Seq)
	}
	if string(snap.State["mrt"]) != `{"rules":[]}` {
		t.Errorf("snapshot state = %s", snap.State["mrt"])
	}
}

func TestDeltaHandlerImmediatePoll(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	mustPublish(t, h, "", KindPlan, json.RawMessage(`2`))

	// Resume from 1: one delta, headers carry the new position.
	resp, err := http.Get(srv.URL + "/rest/stream?instance=boot-http&seq=1&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Last-Event-Seq"); got != "2" {
		t.Errorf("Last-Event-Seq = %q", got)
	}
	if got := resp.Header.Get("Stream-Instance"); got != "boot-http" {
		t.Errorf("Stream-Instance = %q", got)
	}
	var b Batch
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != KindPlan {
		t.Errorf("batch = %+v", b)
	}
}

func TestDeltaHandlerHeaderResume(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	mustPublish(t, h, "", KindMRT, json.RawMessage(`2`))

	// Resume coordinates via headers (Last-Event-ID is the SSE
	// convention; Stream-Instance names the producer lifetime).
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/rest/stream?wait=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Stream-Instance", "boot-http")
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b Batch
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || string(b.Events[0].Data) != "2" {
		t.Errorf("header-resumed batch = %+v", b)
	}
}

func TestDeltaHandlerDefaultsToCurrentPosition(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	// No coordinates at all: "from now on" — an empty batch at the
	// hub's position.
	var b Batch
	if code := getJSON(t, srv.URL+"/rest/stream?wait=0", &b); code != http.StatusOK {
		t.Fatalf("bare poll = %d", code)
	}
	if b.Through != 1 || len(b.Events) != 0 {
		t.Errorf("bare poll batch = %+v", b)
	}
}

func TestDeltaHandlerLongPollWakes(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))

	done := make(chan Batch, 1)
	go func() {
		var b Batch
		getJSON(t, srv.URL+"/rest/stream?instance=boot-http&seq=1&wait=30", &b)
		done <- b
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	mustPublish(t, h, "", KindPlan, json.RawMessage(`2`))
	select {
	case b := <-done:
		if len(b.Events) != 1 || b.Events[0].Kind != KindPlan {
			t.Errorf("woken batch = %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on publish")
	}
}

func TestDeltaHandlerBadRequests(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	for _, q := range []string{"seq=banana", "seq=1&wait=banana", "seq=1&wait=-3"} {
		if code := getJSON(t, srv.URL+"/rest/stream?instance=boot-http&"+q, nil); code != http.StatusBadRequest {
			t.Errorf("?%s = %d, want 400", q, code)
		}
	}
}

func TestDeltaHandlerResync(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	resp, err := http.Get(srv.URL + "/rest/stream?instance=other-boot&seq=1&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign instance = %d, want 409", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["resync"] != "snapshot" {
		t.Errorf("resync cue missing: %v", body)
	}
}

func TestParseWaitClampsToMax(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/rest/stream?wait=9999", nil)
	d, err := parseWait(r)
	if err != nil || d != MaxWait {
		t.Errorf("wait=9999 → (%v, %v), want (%v, nil)", d, err, MaxWait)
	}
	r = httptest.NewRequest(http.MethodGet, "/rest/stream", nil)
	if d, err := parseWait(r); err != nil || d != DefaultWait {
		t.Errorf("absent wait → (%v, %v), want (%v, nil)", d, err, DefaultWait)
	}
}

func TestSSEBatchAndLiveFollow(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/rest/stream?instance=boot-http&seq=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	lines := make(chan string, 32)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	expectSSEBatch(t, lines, 1) // the backlog batch

	mustPublish(t, h, "", KindPlan, json.RawMessage(`2`))
	expectSSEBatch(t, lines, 2) // the live delta, flushed mid-connection
}

// expectSSEBatch reads lines until a batch event with the wanted id.
func expectSSEBatch(t *testing.T, lines <-chan string, id int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	sawID := false
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("SSE stream closed early")
			}
			if line == "id: "+itoa(id) {
				sawID = true
			}
			if line == "event: batch" && sawID {
				return
			}
		case <-deadline:
			t.Fatalf("no SSE batch with id %d", id)
		}
	}
}

func itoa(n int) string {
	b, err := json.Marshal(n)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func TestSSETerminalResyncOnGap(t *testing.T) {
	h, srv := newServedHub(t)
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))

	// Connect resumable, then make the position unresumable while the
	// stream idles by overflowing the ring (32 + the original event).
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/rest/stream?instance=boot-http&seq=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// One slow reader vs. a fast producer: eventually Since fails and
	// the server emits the terminal resync event. Alternate sites so the
	// ring holds distinct components and batches stay small relative to
	// the churn.
	go func() {
		for i := 0; i < 400; i++ {
			mustPublish(t, h, "s"+itoa(i%40), KindMRT, `{}`)
		}
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("SSE stream closed without a resync event")
			}
			if line == "event: resync" {
				return
			}
		case <-deadline:
			t.Skip("producer never outran this reader; gap path covered by unit Since tests")
		}
	}
}

// noFlushWriter hides the ResponseRecorder's Flusher so the SSE
// handler's capability check fails.
type noFlushWriter struct{ http.ResponseWriter }

func TestSSERequiresFlusher(t *testing.T) {
	h := NewHub("boot", 4)
	defer h.Close()
	mustPublish(t, h, "", KindMRT, json.RawMessage(`1`))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/rest/stream?instance=boot&seq=1", nil)
	req.Header.Set("Accept", "text/event-stream")
	h.DeltaHandler()(noFlushWriter{rec}, req)
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("SSE without a Flusher = %d, want 501", rec.Code)
	}
}
