package stream

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Mirror is the subscriber side of the stream: a local replica of the
// hub's component state, advanced by snapshots and delta batches. It is
// safe for concurrent use — a watcher goroutine applies updates while
// readers query.
type Mirror struct {
	mu       sync.RWMutex
	instance string
	seq      uint64
	state    map[string]json.RawMessage
}

// NewMirror returns an empty mirror (instance "", seq 0 — a position no
// hub will resume, so the first sync always starts from a snapshot).
func NewMirror() *Mirror {
	return &Mirror{state: make(map[string]json.RawMessage)}
}

// Position returns the mirror's resume coordinates.
func (m *Mirror) Position() (instance string, seq uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.instance, m.seq
}

// Seq returns the sequence number of the last applied change.
func (m *Mirror) Seq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.seq
}

// ApplySnapshot replaces the mirror's state wholesale.
func (m *Mirror) ApplySnapshot(s Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.instance = s.Instance
	m.seq = s.Seq
	m.state = make(map[string]json.RawMessage, len(s.State))
	for k, v := range s.State {
		cp := make(json.RawMessage, len(v))
		copy(cp, v)
		m.state[k] = cp
	}
}

// ApplyBatch applies a delta batch. The batch must continue the
// mirror's current instance (enforced, not assumed): a cross-instance
// batch is rejected so a watcher bug cannot silently interleave two
// producer lifetimes. Events at or below the mirror's sequence number
// are skipped — replays are harmless.
func (m *Mirror) ApplyBatch(b Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.Instance != m.instance {
		return fmt.Errorf("stream: batch instance %q does not continue mirror instance %q", b.Instance, m.instance)
	}
	for _, ev := range b.Events {
		if ev.Seq <= m.seq {
			continue
		}
		key := ev.Key()
		if ev.Data == nil {
			delete(m.state, key)
		} else {
			m.state[key] = append(json.RawMessage(nil), ev.Data...)
		}
		m.seq = ev.Seq
	}
	if b.Through > m.seq {
		m.seq = b.Through
	}
	return nil
}

// Get returns the raw value of (site, kind), or ok=false when absent.
func (m *Mirror) Get(site string, kind Kind) (json.RawMessage, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.state[componentKey(site, kind)]
	if !ok {
		return nil, false
	}
	return append(json.RawMessage(nil), v...), true
}

// Decode unmarshals the value of (site, kind) into out; ok reports
// whether the component exists.
func (m *Mirror) Decode(site string, kind Kind, out any) (bool, error) {
	raw, ok := m.Get(site, kind)
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(raw, out)
}

// Keys returns the component keys present, sorted.
func (m *Mirror) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.state))
	for k := range m.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Canonical renders the mirror's state as canonical JSON — components
// keyed and sorted, values exactly as published. Two mirrors holding
// the same state render byte-identically regardless of how they got
// there (snapshot, deltas, or a poll-built reconstruction), which is
// the equivalence harness's comparison key. The sequence position is
// deliberately excluded: a poll-built mirror has no sequence numbers,
// and equivalence is about state, not transport history.
func (m *Mirror) Canonical() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out, err := json.Marshal(m.state)
	if err != nil {
		// Values are validated RawMessage produced by json.Compact;
		// marshaling a map of them cannot fail.
		panic("stream: canonical marshal: " + err.Error())
	}
	return out
}

// Set installs a component value directly — the poll-built
// construction path (fallback mode and the equivalence harness). The
// value is compacted to the same canonical bytes Publish would store.
func (m *Mirror) Set(site string, kind Kind, data []byte) error {
	var compact []byte
	if data != nil {
		var err error
		if compact, err = compactJSON(data); err != nil {
			return fmt.Errorf("stream: set %s: %w", componentKey(site, kind), err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := componentKey(site, kind)
	if compact == nil {
		delete(m.state, key)
		return nil
	}
	m.state[key] = compact
	return nil
}
