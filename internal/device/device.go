// Package device models the IoT "Things" the IMCF controller actuates:
// split-unit air conditioners (Daikin-style), dimmable lights (Hue-style)
// and passive sensors, together with the per-device energy model the
// Energy Planner's F_E metric is built on.
//
// Following the paper's cost model, executing a meta-rule's action on a
// device consumes that device's rated energy for the slot (E = e_j if the
// output O_i^j is executed, 0 otherwise); a dropped rule consumes nothing.
package device

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/units"
)

// Class is the device category a meta-rule action targets.
type Class int

// Device classes.
const (
	ClassHVAC Class = iota + 1
	ClassLight
	ClassSensor
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassHVAC:
		return "hvac"
	case ClassLight:
		return "light"
	case ClassSensor:
		return "sensor"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Valid reports whether c is a known class.
func (c Class) Valid() bool { return c >= ClassHVAC && c <= ClassSensor }

// Descriptor identifies one device and its energy characteristics. It is
// immutable; the mutable runtime state lives in State.
type Descriptor struct {
	// ID is unique within a residence, e.g. "flat/z0/hvac".
	ID string
	// Name is the human label, e.g. "Living Room A/C".
	Name string
	// Class determines which meta-rule actions can target the device.
	Class Class
	// Zone is the index of the zone (room) the device serves.
	Zone int
	// Rating is the electrical draw while executing a rule. The
	// paper's e_j is Rating integrated over the slot duration.
	Rating units.Power
	// Addr is the device's address on the smart-space network, used by
	// the controller bindings and the firewall (e.g. "192.168.0.5").
	Addr string
}

// Validate reports whether the descriptor is well-formed.
func (d Descriptor) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("device: descriptor missing ID (%+v)", d)
	}
	if !d.Class.Valid() {
		return fmt.Errorf("device %s: invalid class %d", d.ID, d.Class)
	}
	if d.Rating < 0 {
		return fmt.Errorf("device %s: negative rating %v", d.ID, d.Rating)
	}
	if d.Zone < 0 {
		return fmt.Errorf("device %s: negative zone %d", d.ID, d.Zone)
	}
	return nil
}

// EnergyPerSlot returns e_j for one slot of the given duration: the
// energy the device consumes when a meta-rule's action is executed on it
// for the slot.
func (d Descriptor) EnergyPerSlot(slot time.Duration) units.Energy {
	return d.Rating.Over(slot)
}

// State is a device's mutable runtime state as tracked by the local
// controller. It is safe for concurrent use.
type State struct {
	mu          sync.Mutex
	on          bool
	setpoint    float64
	lastCommand time.Time
	commands    int
}

// Apply records an actuation command: power the device and set its
// output value (temperature setpoint or dimmer level).
func (s *State) Apply(value float64, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.on = true
	s.setpoint = value
	s.lastCommand = at
	s.commands++
}

// TurnOff powers the device down.
func (s *State) TurnOff(at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.on = false
	s.lastCommand = at
	s.commands++
}

// Snapshot returns the current state.
func (s *State) Snapshot() (on bool, setpoint float64, lastCommand time.Time, commands int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on, s.setpoint, s.lastCommand, s.commands
}

// Registry is a lookup table of devices by ID, the controller's view of
// the smart space ("Things" in openHAB terms).
type Registry struct {
	mu      sync.RWMutex
	devices map[string]Descriptor
	states  map[string]*State
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		devices: make(map[string]Descriptor),
		states:  make(map[string]*State),
	}
}

// Add registers a device. Re-adding an existing ID is an error.
func (r *Registry) Add(d Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.devices[d.ID]; exists {
		return fmt.Errorf("device: duplicate ID %q", d.ID)
	}
	r.devices[d.ID] = d
	r.states[d.ID] = &State{}
	return nil
}

// Get returns the descriptor and state of a device.
func (r *Registry) Get(id string) (Descriptor, *State, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.devices[id]
	if !ok {
		return Descriptor{}, nil, false
	}
	return d, r.states[id], true
}

// List returns all descriptors, sorted by ID so callers iterate
// deterministically regardless of registration order.
func (r *Registry) List() []Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Descriptor, 0, len(r.devices))
	for _, d := range r.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByZoneClass returns the devices in the given zone with the given
// class, sorted by ID.
func (r *Registry) ByZoneClass(zone int, class Class) []Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Descriptor
	for _, d := range r.devices {
		if d.Zone == zone && d.Class == class {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.devices)
}
