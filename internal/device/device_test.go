package device

import (
	"sync"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/units"
)

func validDesc(id string) Descriptor {
	return Descriptor{
		ID:     id,
		Name:   "Living Room A/C",
		Class:  ClassHVAC,
		Zone:   0,
		Rating: 600 * units.Watt,
		Addr:   "192.168.0.5",
	}
}

func TestDescriptorValidate(t *testing.T) {
	if err := validDesc("d1").Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	bad := validDesc("")
	if err := bad.Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	bad = validDesc("d1")
	bad.Class = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid class accepted")
	}
	bad = validDesc("d1")
	bad.Rating = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rating accepted")
	}
	bad = validDesc("d1")
	bad.Zone = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative zone accepted")
	}
}

func TestEnergyPerSlot(t *testing.T) {
	d := validDesc("d1") // 600 W
	if got := d.EnergyPerSlot(time.Hour); got.KWh() != 0.6 {
		t.Errorf("600W over 1h = %v, want 0.6 kWh", got)
	}
	if got := d.EnergyPerSlot(30 * time.Minute); got.KWh() != 0.3 {
		t.Errorf("600W over 30m = %v, want 0.3 kWh", got)
	}
}

func TestStateLifecycle(t *testing.T) {
	var s State
	on, _, _, n := s.Snapshot()
	if on || n != 0 {
		t.Errorf("zero state = on:%v commands:%d", on, n)
	}
	at := time.Date(2020, 1, 1, 10, 0, 0, 0, time.UTC)
	s.Apply(25, at)
	on, sp, last, n := s.Snapshot()
	if !on || sp != 25 || !last.Equal(at) || n != 1 {
		t.Errorf("after Apply: on:%v sp:%v last:%v n:%d", on, sp, last, n)
	}
	s.TurnOff(at.Add(time.Hour))
	on, _, _, n = s.Snapshot()
	if on || n != 2 {
		t.Errorf("after TurnOff: on:%v n:%d", on, n)
	}
}

func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(validDesc("d1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(validDesc("d1")); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Add(Descriptor{}); err == nil {
		t.Error("invalid descriptor accepted")
	}
	d, st, ok := r.Get("d1")
	if !ok || d.ID != "d1" || st == nil {
		t.Errorf("Get(d1) = %+v, %v, %v", d, st, ok)
	}
	if _, _, ok := r.Get("nope"); ok {
		t.Error("Get of missing device succeeded")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegistryByZoneClass(t *testing.T) {
	r := NewRegistry()
	hvac0 := validDesc("z0/hvac")
	light0 := validDesc("z0/light")
	light0.Class = ClassLight
	hvac1 := validDesc("z1/hvac")
	hvac1.Zone = 1
	for _, d := range []Descriptor{hvac0, light0, hvac1} {
		if err := r.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	got := r.ByZoneClass(0, ClassHVAC)
	if len(got) != 1 || got[0].ID != "z0/hvac" {
		t.Errorf("ByZoneClass(0, hvac) = %v", got)
	}
	if len(r.ByZoneClass(1, ClassLight)) != 0 {
		t.Error("found nonexistent zone-1 light")
	}
	if len(r.List()) != 3 {
		t.Errorf("List() returned %d devices", len(r.List()))
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(validDesc("d1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, st, ok := r.Get("d1")
				if !ok {
					t.Error("device vanished")
					return
				}
				st.Apply(float64(j), time.Now())
				st.Snapshot()
				r.List()
			}
		}()
	}
	wg.Wait()
}

func TestClassString(t *testing.T) {
	if ClassHVAC.String() != "hvac" || ClassLight.String() != "light" || ClassSensor.String() != "sensor" {
		t.Error("class names wrong")
	}
	if Class(9).Valid() {
		t.Error("Class(9) reported valid")
	}
}
