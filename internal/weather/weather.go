// Package weather provides a deterministic synthetic weather service.
//
// It substitutes both the open-weather API the IMCF prototype queries and
// the outdoor climate that drives the CASAS residential traces used in the
// paper's evaluation. Observations are a pure function of (seed, time):
// the same service always reports the same weather for the same instant,
// which keeps trace generation and experiments repeatable.
//
// The model is a layered signal: a seasonal sinusoid, a diurnal sinusoid,
// a multi-day weather-front component, and bounded high-frequency noise,
// plus a persistent sunny/cloudy regime drawn per day. The default
// climate is calibrated to the Pullman, WA area where the CASAS testbed
// apartment is located (cold winters, warm dry summers).
package weather

import (
	"fmt"
	"math"
	"time"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

// Condition is the sky condition reported by the service. The paper's
// IFTTT configurations (Table III) only distinguish Sunny and Cloudy.
type Condition int

// Sky conditions.
const (
	Sunny Condition = iota
	Cloudy
)

// String returns the condition name.
func (c Condition) String() string {
	switch c {
	case Sunny:
		return "Sunny"
	case Cloudy:
		return "Cloudy"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// ParseCondition parses a condition name as used in IFTTT rule tables.
func ParseCondition(s string) (Condition, error) {
	switch s {
	case "Sunny", "sunny":
		return Sunny, nil
	case "Cloudy", "cloudy":
		return Cloudy, nil
	default:
		return 0, fmt.Errorf("weather: unknown condition %q", s)
	}
}

// Observation is the weather at one instant.
type Observation struct {
	Time        time.Time
	Temperature units.Temperature // outdoor air temperature
	Condition   Condition
	// Daylight is the outdoor natural-light intensity on the 0–100
	// scale used by the light sensors (0 at night, ~100 clear midday).
	Daylight units.LightLevel
	Season   simclock.Season
}

// Climate parameterizes the synthetic weather model.
type Climate struct {
	// MeanAnnual is the annual mean outdoor temperature.
	MeanAnnual units.Temperature
	// SeasonalAmplitude is the half-swing of the yearly sinusoid: the
	// warmest day's mean is MeanAnnual+SeasonalAmplitude.
	SeasonalAmplitude float64
	// DiurnalAmplitude is the half-swing of the day/night sinusoid.
	DiurnalAmplitude float64
	// FrontAmplitude bounds the multi-day weather-front deviation.
	FrontAmplitude float64
	// NoiseAmplitude bounds the per-hour high-frequency noise.
	NoiseAmplitude float64
	// CloudyFraction is the long-run fraction of cloudy days (0–1).
	CloudyFraction float64
	// PeakDayOfYear is the day of year with the warmest mean (≈200 for
	// mid-July in the northern hemisphere).
	PeakDayOfYear int
}

// Pullman approximates Pullman, WA (the CASAS testbed's location):
// January mean around 0 °C, July mean around 21 °C.
func Pullman() Climate {
	return Climate{
		MeanAnnual:        10.5,
		SeasonalAmplitude: 10.5,
		DiurnalAmplitude:  5.5,
		FrontAmplitude:    3.5,
		NoiseAmplitude:    0.8,
		CloudyFraction:    0.45,
		PeakDayOfYear:     200,
	}
}

// Nicosia approximates Nicosia, Cyprus: January mean around 10 °C, July
// mean around 29 °C. It is the evaluation default because the paper's
// flat ECP (Table I) is Mediterranean — peak consumption in January
// (heating) with a secondary peak in August (cooling) — matching the
// authors' University of Cyprus deployment.
func Nicosia() Climate {
	return Climate{
		MeanAnnual:        19.5,
		SeasonalAmplitude: 9.5,
		DiurnalAmplitude:  5.5,
		FrontAmplitude:    2.5,
		NoiseAmplitude:    0.8,
		CloudyFraction:    0.30,
		PeakDayOfYear:     205,
	}
}

// Validate reports whether the climate's parameters are usable.
func (c Climate) Validate() error {
	if c.SeasonalAmplitude < 0 || c.DiurnalAmplitude < 0 || c.FrontAmplitude < 0 || c.NoiseAmplitude < 0 {
		return fmt.Errorf("weather: negative amplitude in climate %+v", c)
	}
	if c.CloudyFraction < 0 || c.CloudyFraction > 1 {
		return fmt.Errorf("weather: cloudy fraction %v outside [0,1]", c.CloudyFraction)
	}
	if c.PeakDayOfYear < 1 || c.PeakDayOfYear > 366 {
		return fmt.Errorf("weather: peak day of year %d outside [1,366]", c.PeakDayOfYear)
	}
	return nil
}

// Service produces deterministic weather observations.
type Service struct {
	seed    uint64
	climate Climate
}

// New returns a weather service for the given seed and climate.
func New(seed uint64, climate Climate) (*Service, error) {
	if err := climate.Validate(); err != nil {
		return nil, err
	}
	return &Service{seed: seed, climate: climate}, nil
}

// MustNew is New for known-good climates; it panics on error.
func MustNew(seed uint64, climate Climate) *Service {
	s, err := New(seed, climate)
	if err != nil {
		panic(err)
	}
	return s
}

// At returns the weather observation for instant t.
func (s *Service) At(t time.Time) Observation {
	u := t.UTC()
	dayKey := uint64(u.Year())*1000 + uint64(u.YearDay())
	cond := Sunny
	if unitFloat(mix(s.seed, dayKey, 0x5EED)) < s.climate.CloudyFraction {
		cond = Cloudy
	}
	return Observation{
		Time:        t,
		Temperature: s.temperatureAt(u, cond, dayKey),
		Condition:   cond,
		Daylight:    s.daylightAt(u, cond),
		Season:      simclock.SeasonOf(u),
	}
}

func (s *Service) temperatureAt(u time.Time, cond Condition, dayKey uint64) units.Temperature {
	c := s.climate
	yearFrac := float64(u.YearDay()-c.PeakDayOfYear) / 365.25
	seasonal := c.SeasonalAmplitude * math.Cos(2*math.Pi*yearFrac)

	// Diurnal swing peaks mid-afternoon (15:00) and bottoms out
	// pre-dawn. Cloud cover damps the swing.
	hourFrac := (float64(u.Hour()) + float64(u.Minute())/60 - 15) / 24
	diurnal := c.DiurnalAmplitude * math.Cos(2*math.Pi*hourFrac)
	if cond == Cloudy {
		diurnal *= 0.6
	}

	// Weather fronts: a slow random walk realized as the blend of two
	// per-period offsets so consecutive days move smoothly.
	const frontPeriodDays = 4
	day := u.Year()*366 + u.YearDay()
	p0 := day / frontPeriodDays
	blend := float64(day%frontPeriodDays)/frontPeriodDays +
		float64(u.Hour())/(24*frontPeriodDays)
	f0 := (unitFloat(mix(s.seed, uint64(p0), 0xF407))*2 - 1) * c.FrontAmplitude
	f1 := (unitFloat(mix(s.seed, uint64(p0+1), 0xF407))*2 - 1) * c.FrontAmplitude
	front := f0*(1-blend) + f1*blend

	noise := (unitFloat(mix(s.seed, dayKey*24+uint64(u.Hour()), 0x0153))*2 - 1) * c.NoiseAmplitude

	return units.Temperature(float64(c.MeanAnnual) + seasonal + diurnal + front + noise)
}

func (s *Service) daylightAt(u time.Time, cond Condition) units.LightLevel {
	// Approximate day length: 12 h ± 3.2 h with the seasons.
	yearFrac := float64(u.YearDay()-172) / 365.25 // solstice ≈ day 172
	halfDay := 6 + 1.6*math.Cos(2*math.Pi*yearFrac)
	hour := float64(u.Hour()) + float64(u.Minute())/60
	elev := math.Cos((hour - 12.5) / halfDay * (math.Pi / 2))
	if math.Abs(hour-12.5) >= halfDay || elev <= 0 {
		return 0
	}
	peak := 100.0
	if cond == Cloudy {
		peak = 45
	}
	return units.LightLevel(peak * elev).Clamp()
}

// mix is a splitmix64-style hash combining the seed with two words; it is
// the deterministic randomness source for the whole weather model.
func mix(seed, a, b uint64) uint64 {
	x := seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
