package weather

import (
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/simclock"
)

func svc(t *testing.T) *Service {
	t.Helper()
	s, err := New(42, Pullman())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeterminism(t *testing.T) {
	s1 := svc(t)
	s2 := svc(t)
	at := time.Date(2014, time.July, 4, 15, 0, 0, 0, time.UTC)
	o1, o2 := s1.At(at), s2.At(at)
	if o1 != o2 {
		t.Errorf("same seed produced different observations: %+v vs %+v", o1, o2)
	}
	other, _ := New(43, Pullman())
	diff := false
	for d := 0; d < 30; d++ {
		at := time.Date(2014, time.July, 1+d, 15, 0, 0, 0, time.UTC)
		if s1.At(at) != other.At(at) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds never diverged over 30 days")
	}
}

func TestSeasonalShape(t *testing.T) {
	s := svc(t)
	meanAt := func(m time.Month) float64 {
		var sum float64
		var n int
		for d := 1; d <= 28; d++ {
			for h := 0; h < 24; h++ {
				sum += s.At(time.Date(2015, m, d, h, 0, 0, 0, time.UTC)).Temperature.Celsius()
				n++
			}
		}
		return sum / float64(n)
	}
	jan, jul := meanAt(time.January), meanAt(time.July)
	if jan > 4 {
		t.Errorf("January mean %.1f°C too warm for Pullman climate", jan)
	}
	if jul < 17 || jul > 25 {
		t.Errorf("July mean %.1f°C outside expected [17,25]", jul)
	}
	if jul-jan < 12 {
		t.Errorf("seasonal swing %.1f°C too small", jul-jan)
	}
}

func TestDiurnalShape(t *testing.T) {
	s := svc(t)
	// Afternoon should on average be warmer than pre-dawn.
	var afternoon, predawn float64
	for d := 1; d <= 28; d++ {
		afternoon += s.At(time.Date(2015, time.May, d, 15, 0, 0, 0, time.UTC)).Temperature.Celsius()
		predawn += s.At(time.Date(2015, time.May, d, 4, 0, 0, 0, time.UTC)).Temperature.Celsius()
	}
	if afternoon <= predawn {
		t.Errorf("afternoon mean %.1f not warmer than pre-dawn %.1f", afternoon/28, predawn/28)
	}
}

func TestDaylight(t *testing.T) {
	s := svc(t)
	night := s.At(time.Date(2015, time.June, 10, 1, 0, 0, 0, time.UTC))
	if night.Daylight != 0 {
		t.Errorf("daylight at 01:00 = %v, want 0", night.Daylight)
	}
	noon := s.At(time.Date(2015, time.June, 10, 12, 30, 0, 0, time.UTC))
	if noon.Daylight < 40 {
		t.Errorf("daylight at summer noon = %v, want bright", noon.Daylight)
	}
	if noon.Daylight > 100 {
		t.Errorf("daylight %v exceeds scale", noon.Daylight)
	}
	// Winter days are shorter: 17:00 in December should be dark, but
	// bright in June.
	dec := s.At(time.Date(2015, time.December, 10, 17, 0, 0, 0, time.UTC))
	jun := s.At(time.Date(2015, time.June, 10, 17, 0, 0, 0, time.UTC))
	if dec.Daylight >= jun.Daylight {
		t.Errorf("December 17:00 daylight %v not darker than June %v", dec.Daylight, jun.Daylight)
	}
}

func TestCloudyFraction(t *testing.T) {
	s := svc(t)
	cloudy := 0
	const days = 365 * 3
	for d := 0; d < days; d++ {
		at := time.Date(2013, time.October, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, d)
		if s.At(at).Condition == Cloudy {
			cloudy++
		}
	}
	frac := float64(cloudy) / days
	if math.Abs(frac-Pullman().CloudyFraction) > 0.06 {
		t.Errorf("cloudy fraction %.3f, want ≈%.2f", frac, Pullman().CloudyFraction)
	}
}

func TestConditionStableWithinDay(t *testing.T) {
	s := svc(t)
	day := time.Date(2014, time.March, 3, 0, 0, 0, 0, time.UTC)
	first := s.At(day).Condition
	for h := 1; h < 24; h++ {
		if got := s.At(day.Add(time.Duration(h) * time.Hour)).Condition; got != first {
			t.Fatalf("condition changed within day at hour %d: %v -> %v", h, first, got)
		}
	}
}

func TestCloudyDampsDaylight(t *testing.T) {
	s := svc(t)
	// Find a sunny day and a cloudy day; compare noon daylight.
	var sunny, cloudy *Observation
	for d := 0; d < 60 && (sunny == nil || cloudy == nil); d++ {
		at := time.Date(2014, time.June, 1, 12, 30, 0, 0, time.UTC).AddDate(0, 0, d%30)
		o := s.At(at)
		switch o.Condition {
		case Sunny:
			sunny = &o
		case Cloudy:
			cloudy = &o
		}
	}
	if sunny == nil || cloudy == nil {
		t.Skip("did not find both conditions in June window")
	}
	if cloudy.Daylight >= sunny.Daylight {
		t.Errorf("cloudy noon %v not darker than sunny noon %v", cloudy.Daylight, sunny.Daylight)
	}
}

func TestSeasonField(t *testing.T) {
	s := svc(t)
	o := s.At(time.Date(2015, time.January, 15, 12, 0, 0, 0, time.UTC))
	if o.Season != simclock.Winter {
		t.Errorf("January season = %v", o.Season)
	}
}

func TestParseCondition(t *testing.T) {
	for _, c := range []Condition{Sunny, Cloudy} {
		got, err := ParseCondition(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCondition(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCondition("hail"); err == nil {
		t.Error("ParseCondition(hail) should fail")
	}
}

func TestClimateValidate(t *testing.T) {
	bad := Pullman()
	bad.CloudyFraction = 1.5
	if _, err := New(1, bad); err == nil {
		t.Error("invalid cloudy fraction accepted")
	}
	bad = Pullman()
	bad.SeasonalAmplitude = -1
	if _, err := New(1, bad); err == nil {
		t.Error("negative amplitude accepted")
	}
	bad = Pullman()
	bad.PeakDayOfYear = 0
	if _, err := New(1, bad); err == nil {
		t.Error("invalid peak day accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad climate should panic")
		}
	}()
	bad := Pullman()
	bad.CloudyFraction = -1
	MustNew(1, bad)
}

func TestTemperatureBounded(t *testing.T) {
	s := svc(t)
	c := Pullman()
	lo := float64(c.MeanAnnual) - c.SeasonalAmplitude - c.DiurnalAmplitude - c.FrontAmplitude - c.NoiseAmplitude - 0.01
	hi := float64(c.MeanAnnual) + c.SeasonalAmplitude + c.DiurnalAmplitude + c.FrontAmplitude + c.NoiseAmplitude + 0.01
	for d := 0; d < 400; d++ {
		for h := 0; h < 24; h += 3 {
			at := time.Date(2013, time.October, 1, h, 0, 0, 0, time.UTC).AddDate(0, 0, d)
			temp := s.At(at).Temperature.Celsius()
			if temp < lo || temp > hi {
				t.Fatalf("temperature %.2f at %v outside [%.2f, %.2f]", temp, at, lo, hi)
			}
		}
	}
}

func TestNicosiaClimate(t *testing.T) {
	s, err := New(42, Nicosia())
	if err != nil {
		t.Fatal(err)
	}
	meanAt := func(m time.Month) float64 {
		var sum float64
		n := 0
		for d := 1; d <= 28; d++ {
			for h := 0; h < 24; h += 2 {
				sum += s.At(time.Date(2015, m, d, h, 0, 0, 0, time.UTC)).Temperature.Celsius()
				n++
			}
		}
		return sum / float64(n)
	}
	jan, jul, aug := meanAt(time.January), meanAt(time.July), meanAt(time.August)
	if jan < 6 || jan > 14 {
		t.Errorf("Nicosia January mean %.1f°C outside [6,14]", jan)
	}
	if jul < 25 || jul > 33 {
		t.Errorf("Nicosia July mean %.1f°C outside [25,33]", jul)
	}
	// The warm peak sits in high summer (matching Table I's August
	// cooling bump).
	if aug < jan {
		t.Errorf("August %.1f colder than January %.1f", aug, jan)
	}
}
