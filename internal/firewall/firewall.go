// Package firewall implements the "firewall" half of the IoT
// Meta-Control Firewall: a per-device flow table that blocks outgoing
// controller→device traffic for meta-rules the Energy Planner dropped,
// mirroring the prototype's use of iptables
// ("iptables -A OUTPUT -s 192.168.0.5 -j DROP") to cut TCP flows to
// designated Things on the local network.
//
// Every decision is auditable: the firewall records allowed and dropped
// flow checks with timestamps, so the bench and examples can demonstrate
// that dropped rules produce no device traffic.
package firewall

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/simclock"
)

// Flow-check counters, resolved to their label children once so Check
// pays a single atomic increment per flow.
var (
	checksVec = metrics.NewCounterVec("imcf_firewall_checks_total",
		"Flow checks evaluated by the firewall, by verdict.", "decision")
	checksAllowed = checksVec.With("ACCEPT")
	checksDropped = checksVec.With("DROP")
)

// Decision is the outcome of a flow check.
type Decision int

// Flow decisions.
const (
	Allow Decision = iota
	Drop
)

// String returns the iptables-style verdict name.
func (d Decision) String() string {
	if d == Drop {
		return "DROP"
	}
	return "ACCEPT"
}

// AuditEntry records one flow check.
type AuditEntry struct {
	Time     time.Time
	Addr     string
	Decision Decision
	// Reason is the meta-rule or operator action behind a block, empty
	// for allowed flows.
	Reason string
	// Trace is the causal trace ID of the planning cycle that installed
	// the block rule this check hit, empty for allowed flows and for
	// untraced blocks — the firewall's end of end-to-end tracing.
	Trace string
}

// blockEntry is one installed block rule.
type blockEntry struct {
	reason string
	trace  string
}

// Firewall is a thread-safe flow table. The zero value is not usable;
// construct with New.
type Firewall struct {
	mu      sync.Mutex
	clock   simclock.Clock
	blocked map[string]blockEntry
	audit   []AuditEntry
	// counters
	allowed int64
	dropped int64
	// auditLimit bounds the in-memory audit log.
	auditLimit int
}

// New returns an empty firewall using the given clock for audit
// timestamps (nil means the system clock).
func New(clock simclock.Clock) *Firewall {
	if clock == nil {
		clock = simclock.RealClock{}
	}
	return &Firewall{
		clock:      clock,
		blocked:    make(map[string]blockEntry),
		auditLimit: 4096,
	}
}

// Block drops all future flows to addr, recording why.
func (f *Firewall) Block(addr, reason string) {
	f.BlockTraced(addr, reason, "")
}

// BlockTraced is Block tagged with the causal trace ID of the planning
// cycle that decided the block; subsequent dropped checks of addr carry
// the trace in their audit entries.
func (f *Firewall) BlockTraced(addr, reason, trace string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[addr] = blockEntry{reason: reason, trace: trace}
}

// Unblock re-allows flows to addr. Unblocking an unblocked address is a
// no-op.
func (f *Firewall) Unblock(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, addr)
}

// BlockRule is one entry of a batched block application.
type BlockRule struct {
	Addr   string
	Reason string
	Trace  string
}

// ApplyBatch applies a planning cycle's firewall programming in one
// shot: every addr in unblock is re-allowed, then every rule in block
// is installed, under a single lock acquisition — the coalesced
// replacement for one Block/Unblock call (and one lock round-trip) per
// meta-rule. When the same address appears in both lists the block
// wins: the caller is replacing the address's verdict for this cycle,
// and the block set is the cycle's final word.
func (f *Firewall) ApplyBatch(unblock []string, block []BlockRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range unblock {
		delete(f.blocked, a)
	}
	for _, r := range block {
		f.blocked[r.Addr] = blockEntry{reason: r.Reason, trace: r.Trace}
	}
}

// Blocked reports whether addr is currently blocked.
func (f *Firewall) Blocked(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.blocked[addr]
	return ok
}

// Check evaluates a flow to addr, records it in the audit log and
// returns the decision. Bindings call this before any device I/O.
func (f *Firewall) Check(addr string) Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	entry, isBlocked := f.blocked[addr]
	d := Allow
	if isBlocked {
		d = Drop
		f.dropped++
		checksDropped.Inc()
	} else {
		f.allowed++
		checksAllowed.Inc()
	}
	f.audit = append(f.audit, AuditEntry{
		Time:     f.clock.Now(),
		Addr:     addr,
		Decision: d,
		Reason:   entry.reason,
		Trace:    entry.trace,
	})
	if len(f.audit) > f.auditLimit {
		// Keep the most recent half; copy so the old backing array is
		// released.
		keep := f.audit[len(f.audit)-f.auditLimit/2:]
		f.audit = append(make([]AuditEntry, 0, f.auditLimit), keep...)
	}
	return d
}

// Audit returns a copy of the audit log, oldest first.
func (f *Firewall) Audit() []AuditEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]AuditEntry, len(f.audit))
	copy(out, f.audit)
	return out
}

// Counters returns the number of allowed and dropped flow checks.
func (f *Firewall) Counters() (allowed, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.allowed, f.dropped
}

// Rules renders the active block rules in iptables syntax, sorted by
// address — exactly what the prototype would install on the controller.
func (f *Firewall) Rules() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	addrs := make([]string, 0, len(f.blocked))
	for a := range f.blocked {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = fmt.Sprintf("-A OUTPUT -s %s -j DROP", a)
	}
	return out
}

// Reset clears all block rules and the audit log.
func (f *Firewall) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked = make(map[string]blockEntry)
	f.audit = nil
	f.allowed, f.dropped = 0, 0
}
