package firewall

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/simclock"
)

func TestBlockUnblock(t *testing.T) {
	f := New(nil)
	addr := "192.168.0.5"
	if f.Blocked(addr) {
		t.Error("fresh firewall blocks")
	}
	if d := f.Check(addr); d != Allow {
		t.Errorf("Check = %v, want ACCEPT", d)
	}
	f.Block(addr, "rule flat/night-heat dropped")
	if !f.Blocked(addr) {
		t.Error("Block had no effect")
	}
	if d := f.Check(addr); d != Drop {
		t.Errorf("Check = %v, want DROP", d)
	}
	f.Unblock(addr)
	if d := f.Check(addr); d != Allow {
		t.Errorf("after Unblock Check = %v", d)
	}
	f.Unblock(addr) // no-op
}

func TestAuditLog(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC))
	f := New(clock)
	f.Block("10.0.0.1", "EP drop")
	f.Check("10.0.0.1")
	clock.Advance(time.Hour)
	f.Check("10.0.0.2")

	audit := f.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit has %d entries", len(audit))
	}
	if audit[0].Decision != Drop || audit[0].Reason != "EP drop" {
		t.Errorf("entry 0 = %+v", audit[0])
	}
	if audit[1].Decision != Allow || audit[1].Reason != "" {
		t.Errorf("entry 1 = %+v", audit[1])
	}
	if !audit[1].Time.Equal(audit[0].Time.Add(time.Hour)) {
		t.Errorf("timestamps: %v then %v", audit[0].Time, audit[1].Time)
	}
	allowed, dropped := f.Counters()
	if allowed != 1 || dropped != 1 {
		t.Errorf("counters = %d, %d", allowed, dropped)
	}
}

func TestAuditBounded(t *testing.T) {
	f := New(nil)
	for i := 0; i < 10000; i++ {
		f.Check("10.0.0.1")
	}
	if n := len(f.Audit()); n > 4096 {
		t.Errorf("audit grew to %d entries", n)
	}
	allowed, _ := f.Counters()
	if allowed != 10000 {
		t.Errorf("counters lost track: %d", allowed)
	}
}

func TestRulesIptablesSyntax(t *testing.T) {
	f := New(nil)
	f.Block("192.168.0.9", "x")
	f.Block("192.168.0.5", "y")
	rules := f.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	if rules[0] != "-A OUTPUT -s 192.168.0.5 -j DROP" {
		t.Errorf("rule 0 = %q", rules[0])
	}
	if !strings.Contains(rules[1], "192.168.0.9") {
		t.Errorf("rule 1 = %q", rules[1])
	}
}

func TestReset(t *testing.T) {
	f := New(nil)
	f.Block("a", "r")
	f.Check("a")
	f.Reset()
	if f.Blocked("a") || len(f.Audit()) != 0 {
		t.Error("Reset incomplete")
	}
	allowed, dropped := f.Counters()
	if allowed != 0 || dropped != 0 {
		t.Error("counters not reset")
	}
}

func TestConcurrentChecks(t *testing.T) {
	f := New(nil)
	f.Block("blocked", "r")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				f.Check("blocked")
				f.Check("open")
				if i == 0 && j%100 == 0 {
					f.Block("other", "x")
					f.Unblock("other")
				}
			}
		}(i)
	}
	wg.Wait()
	allowed, dropped := f.Counters()
	if allowed != 4000 || dropped != 4000 {
		t.Errorf("counters = %d allowed, %d dropped; want 4000 each", allowed, dropped)
	}
}

func TestDecisionString(t *testing.T) {
	if Allow.String() != "ACCEPT" || Drop.String() != "DROP" {
		t.Error("decision names wrong")
	}
}
