package simclock

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2013, time.October, 1, 0, 0, 0, 0, time.UTC)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(epoch, 0, 10); err == nil {
		t.Error("NewGrid with zero step should fail")
	}
	if _, err := NewGrid(epoch, time.Hour, 0); err == nil {
		t.Error("NewGrid with zero slots should fail")
	}
	if _, err := NewGrid(epoch, -time.Hour, 10); err == nil {
		t.Error("NewGrid with negative step should fail")
	}
}

func TestGridOver(t *testing.T) {
	end := epoch.Add(36*time.Hour + 30*time.Minute)
	g, err := GridOver(epoch, end, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 36 {
		t.Errorf("Len() = %d, want 36 (partial slot dropped)", g.Len())
	}
	if _, err := GridOver(epoch, epoch, time.Hour); err == nil {
		t.Error("GridOver with empty interval should fail")
	}
	if _, err := GridOver(epoch, epoch.Add(time.Minute), time.Hour); err == nil {
		t.Error("GridOver shorter than one step should fail")
	}
}

func TestGridSlots(t *testing.T) {
	g, err := NewGrid(epoch, time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	s0 := g.Slot(0)
	if !s0.Start.Equal(epoch) || s0.Index != 0 {
		t.Errorf("Slot(0) = %+v", s0)
	}
	s47 := g.Slot(47)
	if !s47.End().Equal(g.End()) {
		t.Errorf("last slot end %v != grid end %v", s47.End(), g.End())
	}
	if s47.HourOfDay() != 23 {
		t.Errorf("Slot(47).HourOfDay() = %d, want 23", s47.HourOfDay())
	}
	defer func() {
		if recover() == nil {
			t.Error("Slot(48) should panic")
		}
	}()
	g.Slot(48)
}

func TestSlotAt(t *testing.T) {
	g, _ := NewGrid(epoch, time.Hour, 24)
	s, ok := g.SlotAt(epoch.Add(90 * time.Minute))
	if !ok || s.Index != 1 {
		t.Errorf("SlotAt(+90m) = %v, %v; want index 1", s, ok)
	}
	if _, ok := g.SlotAt(epoch.Add(-time.Second)); ok {
		t.Error("SlotAt before grid should report false")
	}
	if _, ok := g.SlotAt(g.End()); ok {
		t.Error("SlotAt at exclusive end should report false")
	}
}

func TestGridEach(t *testing.T) {
	g, _ := NewGrid(epoch, time.Hour, 5)
	var n int
	if err := g.Each(func(Slot) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("Each visited %d slots, want 5", n)
	}
	sentinel := errors.New("stop")
	n = 0
	err := g.Each(func(Slot) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Errorf("Each early stop: err=%v n=%d", err, n)
	}
}

func TestSeasonOf(t *testing.T) {
	cases := []struct {
		m    time.Month
		want Season
	}{
		{time.January, Winter}, {time.February, Winter}, {time.December, Winter},
		{time.March, Spring}, {time.May, Spring},
		{time.June, Summer}, {time.August, Summer},
		{time.September, Autumn}, {time.November, Autumn},
	}
	for _, c := range cases {
		d := time.Date(2014, c.m, 15, 12, 0, 0, 0, time.UTC)
		if got := SeasonOf(d); got != c.want {
			t.Errorf("SeasonOf(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestParseSeason(t *testing.T) {
	for _, s := range []Season{Winter, Spring, Summer, Autumn} {
		got, err := ParseSeason(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeason(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParseSeason("fall"); err != nil || got != Autumn {
		t.Errorf("ParseSeason(fall) = %v, %v", got, err)
	}
	if _, err := ParseSeason("monsoon"); err == nil {
		t.Error("ParseSeason(monsoon) should fail")
	}
}

func TestTimeWindowContains(t *testing.T) {
	w := TimeWindow{StartHour: 1, EndHour: 7} // paper's "Night Heat"
	for h := 0; h < 24; h++ {
		want := h >= 1 && h < 7
		if got := w.Contains(h); got != want {
			t.Errorf("window %v Contains(%d) = %v, want %v", w, h, got, want)
		}
	}
	eod := TimeWindow{StartHour: 17, EndHour: 24} // "Afternoon Preheat"
	if !eod.Contains(23) || eod.Contains(0) || !eod.Contains(17) {
		t.Errorf("end-of-day window misbehaves: %v", eod)
	}
	wrap := TimeWindow{StartHour: 22, EndHour: 6}
	if !wrap.Contains(23) || !wrap.Contains(2) || wrap.Contains(12) {
		t.Errorf("wrapping window misbehaves: %v", wrap)
	}
}

func TestTimeWindowHours(t *testing.T) {
	cases := []struct {
		w    TimeWindow
		want int
	}{
		{TimeWindow{1, 7}, 6},
		{TimeWindow{17, 24}, 7},
		{TimeWindow{22, 6}, 8},
		{TimeWindow{0, 24}, 24},
	}
	for _, c := range cases {
		if got := c.w.Hours(); got != c.want {
			t.Errorf("%v.Hours() = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestTimeWindowValidate(t *testing.T) {
	valid := []TimeWindow{{0, 24}, {1, 7}, {22, 6}, {23, 24}}
	for _, w := range valid {
		if err := w.Validate(); err != nil {
			t.Errorf("%v should validate: %v", w, err)
		}
	}
	invalid := []TimeWindow{{-1, 7}, {24, 5}, {3, 0}, {5, 25}, {6, 6}}
	for _, w := range invalid {
		if err := w.Validate(); err == nil {
			t.Errorf("%v should not validate", w)
		}
	}
}

func TestPropertyWindowHoursMatchesContains(t *testing.T) {
	// Hours() must equal the count of hours h for which Contains(h).
	f := func(start, end uint8) bool {
		w := TimeWindow{StartHour: int(start % 24), EndHour: 1 + int(end%24)}
		if w.Validate() != nil {
			return true
		}
		n := 0
		for h := 0; h < 24; h++ {
			if w.Contains(h) {
				n++
			}
		}
		return n == w.Hours()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySlotsContiguous(t *testing.T) {
	f := func(nRaw uint8, stepMin uint8) bool {
		n := 1 + int(nRaw%100)
		step := time.Duration(1+stepMin%120) * time.Minute
		g, err := NewGrid(epoch, step, n)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if !g.Slot(i).Start.Equal(g.Slot(i - 1).End()) {
				return false
			}
		}
		return g.Slot(n - 1).End().Equal(g.End())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
