package simclock

import (
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	var c Clock = RealClock{}
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Errorf("RealClock.Now() = %v outside [%v, %v]", now, before, after)
	}
}

func TestSimClockAdvanceFiresWaiters(t *testing.T) {
	c := NewSimClock(epoch)
	ch1 := c.After(time.Hour)
	ch2 := c.After(3 * time.Hour)
	if c.PendingWaiters() != 2 {
		t.Fatalf("PendingWaiters = %d, want 2", c.PendingWaiters())
	}

	c.Advance(time.Hour)
	select {
	case got := <-ch1:
		if !got.Equal(epoch.Add(time.Hour)) {
			t.Errorf("ch1 fired at %v", got)
		}
	default:
		t.Fatal("ch1 should have fired after 1h advance")
	}
	select {
	case <-ch2:
		t.Fatal("ch2 fired too early")
	default:
	}

	c.Advance(2 * time.Hour)
	select {
	case <-ch2:
	default:
		t.Fatal("ch2 should have fired after 3h total")
	}
	if c.PendingWaiters() != 0 {
		t.Errorf("PendingWaiters = %d, want 0", c.PendingWaiters())
	}
}

func TestSimClockAfterNonPositive(t *testing.T) {
	c := NewSimClock(epoch)
	ch := c.After(0)
	select {
	case got := <-ch:
		if !got.Equal(epoch) {
			t.Errorf("immediate fire at %v, want %v", got, epoch)
		}
	default:
		t.Fatal("After(0) should fire immediately")
	}
}

func TestSimClockNowAdvances(t *testing.T) {
	c := NewSimClock(epoch)
	c.Advance(90 * time.Minute)
	if got := c.Now(); !got.Equal(epoch.Add(90 * time.Minute)) {
		t.Errorf("Now() = %v", got)
	}
}
