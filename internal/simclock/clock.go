package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for components that schedule work (the controller's
// cron scheduler, lease expiry in the store). Production code uses
// RealClock; tests and simulations use SimClock and drive it explicitly.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that receives the then-current time once
	// at least d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// RealClock is a Clock backed by the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SimClock is a manually advanced Clock. The zero value is not usable;
// construct with NewSimClock.
type SimClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewSimClock returns a simulated clock frozen at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. The returned channel fires when Advance moves
// the clock past the deadline.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, waiter{at: deadline, ch: ch})
	return ch
}

// Advance moves the simulated clock forward by d, firing any waiters whose
// deadlines are reached, in deadline order.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []waiter
	remaining := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// PendingWaiters returns the number of unfired After channels, which is
// useful for test assertions.
func (c *SimClock) PendingWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
