// Package simclock provides the simulation time base for IMCF: a fixed
// grid of equally-sized time slots over an evaluation period, season and
// time-window helpers used by meta-rules, and a Clock abstraction that
// lets the controller's cron scheduler run against either wall-clock or
// simulated time.
//
// The paper evaluates EP on an hourly granularity over three-year trace
// periods; Grid generalizes that to any step size.
package simclock

import (
	"errors"
	"fmt"
	"time"
)

// Slot is one cell of a simulation grid: a half-open time interval
// [Start, Start+Duration).
type Slot struct {
	Index    int
	Start    time.Time
	Duration time.Duration
}

// End returns the exclusive end instant of the slot.
func (s Slot) End() time.Time { return s.Start.Add(s.Duration) }

// HourOfDay returns the local hour (0–23) at the start of the slot.
func (s Slot) HourOfDay() int { return s.Start.Hour() }

// Month returns the calendar month at the start of the slot.
func (s Slot) Month() time.Month { return s.Start.Month() }

// Season returns the meteorological season at the start of the slot.
func (s Slot) Season() Season { return SeasonOf(s.Start) }

// DayOfYear returns the ordinal day within the year (1-based).
func (s Slot) DayOfYear() int { return s.Start.YearDay() }

// String formats the slot for logs and error messages.
func (s Slot) String() string {
	return fmt.Sprintf("slot %d [%s, +%s)", s.Index, s.Start.Format(time.RFC3339), s.Duration)
}

// Grid is an immutable sequence of contiguous slots.
type Grid struct {
	start time.Time
	step  time.Duration
	n     int
}

// NewGrid constructs a grid of n slots of the given step starting at start.
func NewGrid(start time.Time, step time.Duration, n int) (*Grid, error) {
	if step <= 0 {
		return nil, errors.New("simclock: step must be positive")
	}
	if n <= 0 {
		return nil, errors.New("simclock: slot count must be positive")
	}
	return &Grid{start: start, step: step, n: n}, nil
}

// GridOver constructs a grid of step-sized slots covering [start, end).
// A partial trailing interval shorter than step is dropped.
func GridOver(start, end time.Time, step time.Duration) (*Grid, error) {
	if !end.After(start) {
		return nil, errors.New("simclock: end must be after start")
	}
	n := int(end.Sub(start) / step)
	if n == 0 {
		return nil, fmt.Errorf("simclock: interval %s shorter than step %s", end.Sub(start), step)
	}
	return NewGrid(start, step, n)
}

// Len returns the number of slots in the grid.
func (g *Grid) Len() int { return g.n }

// Step returns the slot duration.
func (g *Grid) Step() time.Duration { return g.step }

// Start returns the start instant of the first slot.
func (g *Grid) Start() time.Time { return g.start }

// End returns the exclusive end instant of the last slot.
func (g *Grid) End() time.Time { return g.start.Add(time.Duration(g.n) * g.step) }

// Slot returns the i-th slot. It panics if i is out of range, matching
// the behaviour of slice indexing.
func (g *Grid) Slot(i int) Slot {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("simclock: slot index %d out of range [0,%d)", i, g.n))
	}
	return Slot{Index: i, Start: g.start.Add(time.Duration(i) * g.step), Duration: g.step}
}

// SlotAt returns the slot containing instant t and true, or a zero Slot
// and false when t falls outside the grid.
func (g *Grid) SlotAt(t time.Time) (Slot, bool) {
	if t.Before(g.start) || !t.Before(g.End()) {
		return Slot{}, false
	}
	i := int(t.Sub(g.start) / g.step)
	return g.Slot(i), true
}

// Each calls fn for every slot in order. It stops early and returns the
// first error fn reports.
func (g *Grid) Each(fn func(Slot) error) error {
	for i := 0; i < g.n; i++ {
		if err := fn(g.Slot(i)); err != nil {
			return err
		}
	}
	return nil
}

// Season is a meteorological season, used by IFTTT-style trigger rules
// ("IF Season Summer THEN Set Temperature 25").
type Season int

// The four seasons, northern-hemisphere meteorological convention.
const (
	Winter Season = iota
	Spring
	Summer
	Autumn
)

// String returns the season name.
func (s Season) String() string {
	switch s {
	case Winter:
		return "Winter"
	case Spring:
		return "Spring"
	case Summer:
		return "Summer"
	case Autumn:
		return "Autumn"
	default:
		return fmt.Sprintf("Season(%d)", int(s))
	}
}

// ParseSeason parses a season name as used in IFTTT configurations.
func ParseSeason(s string) (Season, error) {
	switch s {
	case "Winter", "winter":
		return Winter, nil
	case "Spring", "spring":
		return Spring, nil
	case "Summer", "summer":
		return Summer, nil
	case "Autumn", "autumn", "Fall", "fall":
		return Autumn, nil
	default:
		return 0, fmt.Errorf("simclock: unknown season %q", s)
	}
}

// SeasonOf returns the meteorological season of instant t:
// Dec–Feb winter, Mar–May spring, Jun–Aug summer, Sep–Nov autumn.
func SeasonOf(t time.Time) Season {
	switch t.Month() {
	case time.December, time.January, time.February:
		return Winter
	case time.March, time.April, time.May:
		return Spring
	case time.June, time.July, time.August:
		return Summer
	default:
		return Autumn
	}
}

// TimeWindow is a daily recurring window [StartHour, EndHour) in whole
// hours, as used by the paper's Meta-Rule Table (e.g. "01:00 - 07:00").
// EndHour 24 means end-of-day. Windows that wrap midnight
// (StartHour > EndHour) are supported.
type TimeWindow struct {
	StartHour int
	EndHour   int
}

// Validate checks that the window's bounds are within a day.
func (w TimeWindow) Validate() error {
	if w.StartHour < 0 || w.StartHour > 23 {
		return fmt.Errorf("simclock: start hour %d out of range [0,23]", w.StartHour)
	}
	if w.EndHour < 1 || w.EndHour > 24 {
		return fmt.Errorf("simclock: end hour %d out of range [1,24]", w.EndHour)
	}
	if w.StartHour == w.EndHour {
		return fmt.Errorf("simclock: empty window %s", w)
	}
	return nil
}

// Contains reports whether the given hour of day (0–23) falls inside the
// window.
func (w TimeWindow) Contains(hour int) bool {
	if w.StartHour < w.EndHour { // normal window, possibly ending at 24
		return hour >= w.StartHour && hour < w.EndHour
	}
	// Wrapping window, e.g. 22:00 - 06:00.
	return hour >= w.StartHour || hour < w.EndHour
}

// Hours returns the number of whole hours the window spans per day.
func (w TimeWindow) Hours() int {
	if w.StartHour < w.EndHour {
		return w.EndHour - w.StartHour
	}
	return 24 - w.StartHour + w.EndHour
}

// String formats the window as in the paper's Table II.
func (w TimeWindow) String() string {
	return fmt.Sprintf("%02d:00 - %02d:00", w.StartHour, w.EndHour)
}
