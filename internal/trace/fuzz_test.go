package trace

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeBlock asserts the block decoder never panics or over-reads
// on arbitrary bytes: it either errors or returns records consistent
// with its own re-encoding.
func FuzzDecodeBlock(f *testing.F) {
	recs := mkRecs(64, 29*time.Second, func(i int) float64 { return 20 + float64(i%5) })
	good, err := EncodeBlock(KindTemperature, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("IMTB"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	corrupted := append([]byte(nil), good...)
	corrupted[blockHeaderSize+2] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time.Before(recs[i-1].Time) {
				t.Fatal("decoded records out of order")
			}
		}
	})
}

// FuzzReaderStream feeds arbitrary bytes to the trace file reader.
func FuzzReaderStream(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindLight, 16)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.Append(Record{Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IMTF\x01\x02\x00\x00garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Reading must terminate (EOF or error), never hang or panic.
		_, _ = r.ReadAll()
	})
}
