package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// File format: a fixed file header followed by a sequence of blocks.
//
//	magic   [4]byte "IMTF"
//	version uint8   (1)
//	kind    uint8
//	_       [2]byte reserved
//	blocks  ...
//
// Blocks are self-describing (see gorilla.go), so the file needs no
// footer index: a range scan reads each block header and skips the
// payload of blocks that cannot overlap the requested interval.

var fileMagic = [4]byte{'I', 'M', 'T', 'F'}

const (
	fileVersion    = 1
	fileHeaderSize = 8

	// DefaultBlockSize is the number of records buffered into one
	// compressed block. At the CASAS reading cadence (~30 s) one block
	// covers roughly two days.
	DefaultBlockSize = 4096
)

// Writer appends records to a trace file, flushing a compressed block
// every BlockSize records. Records must be appended in non-decreasing
// time order.
type Writer struct {
	w         *bufio.Writer
	closer    io.Closer
	kind      Kind
	pending   []Record
	blockSize int
	lastUnix  int64
	count     int64
	headerOK  bool
}

// NewWriter creates a trace writer on w. If w is also an io.Closer,
// Close will close it.
func NewWriter(w io.Writer, kind Kind, blockSize int) (*Writer, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("trace: invalid kind %v", kind)
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	tw := &Writer{
		w:         bufio.NewWriterSize(w, 1<<16),
		kind:      kind,
		pending:   make([]Record, 0, blockSize),
		blockSize: blockSize,
		lastUnix:  -1 << 62,
	}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	return tw, nil
}

// CreateFile creates (truncating) a trace file at path.
func CreateFile(path string, kind Kind, blockSize int) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	w, err := NewWriter(f, kind, blockSize)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	if w.headerOK {
		return nil
	}
	hdr := make([]byte, 0, fileHeaderSize)
	hdr = append(hdr, fileMagic[:]...)
	hdr = append(hdr, fileVersion, byte(w.kind), 0, 0)
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	w.headerOK = true
	return nil
}

// Append buffers one record.
func (w *Writer) Append(r Record) error {
	ts := r.Time.Unix()
	if ts < w.lastUnix {
		return fmt.Errorf("trace: record at %v out of order (last %v)", r.Time, time.Unix(w.lastUnix, 0).UTC())
	}
	w.lastUnix = ts
	w.pending = append(w.pending, r)
	w.count++
	if len(w.pending) >= w.blockSize {
		return w.Flush()
	}
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int64 { return w.count }

// Flush encodes and writes any buffered records as a block.
func (w *Writer) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if len(w.pending) == 0 {
		return w.w.Flush()
	}
	block, err := EncodeBlock(w.kind, w.pending)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(block); err != nil {
		return err
	}
	w.pending = w.pending[:0]
	return w.w.Flush()
}

// Close flushes buffered records and closes the underlying writer if it
// is closable.
func (w *Writer) Close() error {
	err := w.Flush()
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Reader iterates the records of a trace file, optionally restricted to
// a time range.
type Reader struct {
	r       *bufio.Reader
	closer  io.Closer
	kind    Kind
	from    time.Time
	to      time.Time
	ranged  bool
	block   []Record
	blockAt int
	scratch []byte
}

// NewReader opens a trace stream for sequential reading.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != fileMagic {
		return nil, errors.New("trace: not a trace file (bad magic)")
	}
	if hdr[4] != fileVersion {
		return nil, fmt.Errorf("trace: unsupported file version %d", hdr[4])
	}
	kind := Kind(hdr[5])
	if !kind.Valid() {
		return nil, fmt.Errorf("trace: invalid kind %d in header", hdr[5])
	}
	tr := &Reader{r: br, kind: kind}
	if c, ok := r.(io.Closer); ok {
		tr.closer = c
	}
	return tr, nil
}

// OpenFile opens a trace file for reading.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Kind returns the modality recorded in the file header.
func (r *Reader) Kind() Kind { return r.kind }

// Restrict limits subsequent Next calls to records in [from, to). It
// must be called before the first Next.
func (r *Reader) Restrict(from, to time.Time) {
	r.from, r.to, r.ranged = from, to, true
}

// Next returns the next record, or io.EOF when the stream (or the
// restricted range) is exhausted.
func (r *Reader) Next() (Record, error) {
	for {
		if r.blockAt < len(r.block) {
			rec := r.block[r.blockAt]
			r.blockAt++
			if r.ranged {
				if rec.Time.Before(r.from) {
					continue
				}
				if !rec.Time.Before(r.to) {
					return Record{}, io.EOF
				}
			}
			return rec, nil
		}
		if err := r.nextBlock(); err != nil {
			return Record{}, err
		}
	}
}

// nextBlock loads the next relevant block into r.block.
func (r *Reader) nextBlock() error {
	for {
		hdrBytes := make([]byte, blockHeaderSize)
		if _, err := io.ReadFull(r.r, hdrBytes); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("%w: truncated block header", ErrCorruptBlock)
			}
			return err
		}
		hdr, err := parseBlockHeader(hdrBytes)
		if err != nil {
			return err
		}
		body := hdr.PayloadLen + 4
		if r.ranged && (hdr.Last.Before(r.from) || !hdr.First.Before(r.to)) {
			// The block cannot overlap the range: skip its body.
			if _, err := r.r.Discard(body); err != nil {
				return fmt.Errorf("%w: skipping block: %v", ErrCorruptBlock, err)
			}
			// Blocks are time-ordered, so once past the range we are done.
			if !hdr.First.Before(r.to) {
				return io.EOF
			}
			continue
		}
		if cap(r.scratch) < blockHeaderSize+body {
			r.scratch = make([]byte, blockHeaderSize+body)
		}
		buf := r.scratch[:blockHeaderSize+body]
		copy(buf, hdrBytes)
		if _, err := io.ReadFull(r.r, buf[blockHeaderSize:]); err != nil {
			return fmt.Errorf("%w: truncated block body", ErrCorruptBlock)
		}
		recs, _, err := DecodeBlock(buf)
		if err != nil {
			return err
		}
		r.block, r.blockAt = recs, 0
		return nil
	}
}

// Close closes the underlying reader if it is closable.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// ReadAll drains the reader and returns every remaining record.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// HourlyMeans aggregates records into per-hour means keyed by the hour's
// start time (UTC, truncated). It is the bridge from raw stored traces to
// the simulator's hourly ambient series.
func HourlyMeans(recs []Record) map[time.Time]float64 {
	sums := make(map[time.Time]float64)
	counts := make(map[time.Time]int)
	for _, r := range recs {
		h := r.Time.UTC().Truncate(time.Hour)
		sums[h] += r.Value
		counts[h]++
	}
	out := make(map[time.Time]float64, len(sums))
	for h, s := range sums {
		out[h] = s / float64(counts[h])
	}
	return out
}

// SortRecords orders records by time (stable), a convenience for callers
// assembling blocks from unordered sources ("mixing up the readings", as
// the paper's House dataset construction does).
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
}
