package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/weather"
)

func gen(t *testing.T, zoneSeed uint64) *Generator {
	t.Helper()
	wx := weather.MustNew(42, weather.Pullman())
	g, err := NewGenerator(wx, DefaultZone(zoneSeed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	wx := weather.MustNew(1, weather.Pullman())
	if _, err := NewGenerator(nil, DefaultZone(0)); err == nil {
		t.Error("nil weather accepted")
	}
	bad := DefaultZone(0)
	bad.TempCoupling = 2
	if _, err := NewGenerator(wx, bad); err == nil {
		t.Error("coupling > 1 accepted")
	}
	bad = DefaultZone(0)
	bad.LightNoise = -1
	if _, err := NewGenerator(wx, bad); err == nil {
		t.Error("negative noise accepted")
	}
	bad = DefaultZone(0)
	bad.ThermalLagHours = 100
	if _, err := NewGenerator(wx, bad); err == nil {
		t.Error("excessive lag accepted")
	}
}

func TestIndoorSeasonality(t *testing.T) {
	g := gen(t, 7)
	meanMonth := func(m time.Month) float64 {
		var sum float64
		n := 0
		for d := 1; d <= 28; d++ {
			for h := 0; h < 24; h += 2 {
				sum += g.TemperatureAt(time.Date(2015, m, d, h, 0, 0, 0, time.UTC))
				n++
			}
		}
		return sum / float64(n)
	}
	jan, jul := meanMonth(time.January), meanMonth(time.July)
	if jan > 10 {
		t.Errorf("January indoor mean %.1f°C too warm for unconditioned zone", jan)
	}
	if jul < 18 || jul > 30 {
		t.Errorf("July indoor mean %.1f°C outside [18,30]", jul)
	}
}

func TestIndoorLight(t *testing.T) {
	g := gen(t, 7)
	night := g.LightAt(time.Date(2015, time.June, 10, 1, 0, 0, 0, time.UTC))
	if night > 5 {
		t.Errorf("night indoor light %.1f, want near 0", night)
	}
	noon := g.LightAt(time.Date(2015, time.June, 10, 12, 30, 0, 0, time.UTC))
	if noon < 20 {
		t.Errorf("summer noon indoor light %.1f, want bright", noon)
	}
	for h := 0; h < 24; h++ {
		v := g.LightAt(time.Date(2015, time.March, 10, h, 0, 0, 0, time.UTC))
		if v < 0 || v > 100 {
			t.Fatalf("light %.1f at hour %d out of range", v, h)
		}
	}
}

func TestZonesDecorrelated(t *testing.T) {
	g1, g2 := gen(t, 1), gen(t, 2)
	at := time.Date(2014, time.May, 5, 9, 0, 0, 0, time.UTC)
	if g1.TemperatureAt(at) == g2.TemperatureAt(at) {
		t.Error("different zone seeds produced identical temperature (noise not applied)")
	}
	// But both track the same weather: long-run means agree closely.
	var s1, s2 float64
	for d := 0; d < 60; d++ {
		tt := at.AddDate(0, 0, d)
		s1 += g1.TemperatureAt(tt)
		s2 += g2.TemperatureAt(tt)
	}
	if math.Abs(s1-s2)/60 > 0.5 {
		t.Errorf("zone means diverge: %.2f vs %.2f", s1/60, s2/60)
	}
}

func TestReadingsCadence(t *testing.T) {
	g := gen(t, 3)
	from := time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)
	to := from.Add(24 * time.Hour)
	var recs []Record
	err := g.Readings(KindTemperature, from, to, 29*time.Second, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~2979 readings/day at 29 s cadence; allow 15 % slack for jitter.
	want := int(24 * time.Hour / (29 * time.Second))
	if len(recs) < want*85/100 || len(recs) > want*115/100 {
		t.Errorf("got %d readings, want ≈%d", len(recs), want)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatalf("readings out of order at %d", i)
		}
	}
}

func TestReadingsValidation(t *testing.T) {
	g := gen(t, 3)
	from := time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)
	if err := g.Readings(Kind(0), from, from.Add(time.Hour), time.Second, func(Record) error { return nil }); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := g.Readings(KindLight, from, from.Add(time.Hour), 0, func(Record) error { return nil }); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestDoorReadings(t *testing.T) {
	g := gen(t, 3)
	from := time.Date(2014, time.June, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 7)
	var recs []Record
	if err := g.Readings(KindDoor, from, to, time.Minute, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) < 14 { // at least 2 open events/day
		t.Errorf("only %d door events over a week", len(recs))
	}
	for i, r := range recs {
		if r.Value != 0 && r.Value != 1 {
			t.Fatalf("door value %v not binary", r.Value)
		}
		if i > 0 && r.Time.Before(recs[i-1].Time) {
			t.Fatalf("door events out of order at %d", i)
		}
	}
}

func TestStoredAggregationMatchesModel(t *testing.T) {
	// Generate a stored trace, aggregate it hourly, and check the means
	// track the direct model closely: the store→replay path and the
	// direct synthetic path must be interchangeable.
	g := gen(t, 9)
	from := time.Date(2015, time.April, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 3)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindTemperature, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Readings(KindTemperature, from, to, 30*time.Second, w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	means := HourlyMeans(all)

	src := &StoredAmbient{Temps: means, Fallback: g}
	var worst float64
	for h := from; h.Before(to); h = h.Add(time.Hour) {
		stored := src.AmbientAt(h).Temperature
		direct := g.AmbientAt(h).Temperature
		if d := math.Abs(stored - direct); d > worst {
			worst = d
		}
	}
	if worst > 1.5 {
		t.Errorf("stored-vs-direct hourly ambient diverges by %.2f°C", worst)
	}
}

func TestStoredAmbientFallback(t *testing.T) {
	g := gen(t, 9)
	at := time.Date(2015, time.April, 1, 12, 0, 0, 0, time.UTC)
	src := &StoredAmbient{
		Temps:    map[time.Time]float64{at: 99},
		Fallback: g,
	}
	a := src.AmbientAt(at)
	if a.Temperature != 99 {
		t.Errorf("stored temp not used: %v", a.Temperature)
	}
	if a.Light != g.AmbientAt(at).Light {
		t.Errorf("light fallback not used: %v", a.Light)
	}
	miss := src.AmbientAt(at.Add(time.Hour))
	want := g.AmbientAt(at.Add(time.Hour))
	if miss != want {
		t.Errorf("full fallback mismatch: %v vs %v", miss, want)
	}
}
