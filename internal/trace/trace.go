// Package trace implements the sensor-trace substrate of the IMCF
// reproduction: the record model, a compressed on-disk block format in
// the spirit of Facebook's Gorilla TSDB (delta-of-delta timestamps,
// XOR-compressed values), a file store with time-range scans, and a
// deterministic generator that synthesizes CASAS-like residential
// temperature/light/door readings from the weather model.
//
// The IMCF paper replays 5.67 M real readings (1.09 GB) collected by the
// CASAS smart-home testbed through its simulator. Those traces are not
// redistributable, so this package generates statistically similar ones:
// second-scale reading cadence, seasonal/diurnal structure, and
// per-building envelope behaviour, all as a pure function of a seed.
package trace

import (
	"fmt"
	"time"
)

// Kind identifies the sensor modality of a record. The CASAS datasets
// used in the paper contain temperature, light and door/window readings.
type Kind uint8

// Sensor modalities.
const (
	KindTemperature Kind = iota + 1
	KindLight
	KindDoor
)

// String returns the modality name.
func (k Kind) String() string {
	switch k {
	case KindTemperature:
		return "temperature"
	case KindLight:
		return "light"
	case KindDoor:
		return "door"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a known modality.
func (k Kind) Valid() bool { return k >= KindTemperature && k <= KindDoor }

// Record is a single sensor reading. Time is stored with second
// resolution (the CASAS readings are second-stamped).
type Record struct {
	Time  time.Time
	Value float64
}

// Ambient is the environmental state of one zone during one time slot
// when no meta-rule actuates any device: what the room would be like on
// its own. The Energy Planner's convenience error compares desired rule
// outputs against these values.
type Ambient struct {
	Temperature float64 // °C
	Light       float64 // 0–100
}

// AmbientSource yields per-slot ambient conditions for a zone. It is the
// narrow interface through which the simulator consumes traces, whether
// they come from the synthetic generator directly or from aggregating a
// stored trace file.
type AmbientSource interface {
	// AmbientAt returns the ambient conditions over the hour starting
	// at t.
	AmbientAt(t time.Time) Ambient
}
