package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTrace(t *testing.T, recs []Record, blockSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindTemperature, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterReaderRoundTrip(t *testing.T) {
	recs := mkRecs(10000, 29*time.Second, func(i int) float64 {
		return 18 + 4*math.Sin(float64(i)/200)
	})
	data := writeTrace(t, recs, 512) // multiple blocks
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindTemperature {
		t.Errorf("Kind() = %v", r.Kind())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Value != recs[i].Value || got[i].Time.Unix() != recs[i].Time.Unix() {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], recs[i])
		}
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindLight, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Time: t0.Add(time.Hour), Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Time: t0, Value: 2}); err == nil {
		t.Error("out-of-order append accepted")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindLight, 8)
	for i := 0; i < 20; i++ {
		if err := w.Append(Record{Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 20 {
		t.Errorf("Count() = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTraceFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindDoor, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty trace = %v, want EOF", err)
	}
}

func TestRangeRestriction(t *testing.T) {
	recs := mkRecs(24*60, time.Minute, func(i int) float64 { return float64(i) }) // one day
	data := writeTrace(t, recs, 60)                                               // one block per hour

	from := t0.Add(5 * time.Hour)
	to := t0.Add(7 * time.Hour)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.Restrict(from, to)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 120 {
		t.Fatalf("range read %d records, want 120", len(got))
	}
	for _, rec := range got {
		if rec.Time.Before(from) || !rec.Time.Before(to) {
			t.Fatalf("record %v outside [%v, %v)", rec.Time, from, to)
		}
	}
}

func TestRangeOutsideTrace(t *testing.T) {
	recs := mkRecs(100, time.Minute, func(i int) float64 { return float64(i) })
	data := writeTrace(t, recs, 32)
	r, _ := NewReader(bytes.NewReader(data))
	r.Restrict(t0.AddDate(1, 0, 0), t0.AddDate(2, 0, 0))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d records from out-of-range query", len(got))
	}
}

func TestReaderBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("bogus!!!"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("IM"))); err == nil {
		t.Error("short header accepted")
	}
	data := writeTrace(t, mkRecs(5, time.Second, func(i int) float64 { return 1 }), 0)
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReaderCorruptBlock(t *testing.T) {
	data := writeTrace(t, mkRecs(100, time.Second, func(i int) float64 { return float64(i) }), 50)
	bad := append([]byte(nil), data...)
	bad[fileHeaderSize+blockHeaderSize+3] ^= 0xFF // flip payload byte in first block
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("ReadAll on corrupt trace = %v, want ErrCorruptBlock", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flat.temperature.imt")
	w, err := CreateFile(path, KindTemperature, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecs(1000, 31*time.Second, func(i int) float64 { return 20 + float64(i%7) })
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= int64(16*len(recs)) {
		t.Errorf("file size %d not smaller than raw %d", info.Size(), 16*len(recs))
	}

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d, want %d", len(got), len(recs))
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.imt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestHourlyMeans(t *testing.T) {
	recs := []Record{
		{Time: t0.Add(10 * time.Minute), Value: 10},
		{Time: t0.Add(20 * time.Minute), Value: 20},
		{Time: t0.Add(70 * time.Minute), Value: 5},
	}
	means := HourlyMeans(recs)
	if got := means[t0]; got != 15 {
		t.Errorf("hour 0 mean = %v, want 15", got)
	}
	if got := means[t0.Add(time.Hour)]; got != 5 {
		t.Errorf("hour 1 mean = %v, want 5", got)
	}
	if len(means) != 2 {
		t.Errorf("got %d hours, want 2", len(means))
	}
}

func TestSortRecords(t *testing.T) {
	recs := []Record{
		{Time: t0.Add(2 * time.Hour), Value: 2},
		{Time: t0, Value: 0},
		{Time: t0.Add(time.Hour), Value: 1},
	}
	SortRecords(recs)
	for i := range recs {
		if recs[i].Value != float64(i) {
			t.Fatalf("records not sorted: %v", recs)
		}
	}
}
