package trace

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2013, time.October, 1, 0, 0, 0, 0, time.UTC)

func mkRecs(n int, step time.Duration, f func(i int) float64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Time: t0.Add(time.Duration(i) * step), Value: f(i)}
	}
	return recs
}

func TestBlockRoundTripRegular(t *testing.T) {
	recs := mkRecs(1000, 30*time.Second, func(i int) float64 {
		return 20 + 5*math.Sin(float64(i)/50)
	})
	block, err := EncodeBlock(KindTemperature, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(block) {
		t.Errorf("consumed %d bytes, block is %d", n, len(block))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) || got[i].Value != recs[i].Value {
			t.Fatalf("record %d: got %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestBlockCompression(t *testing.T) {
	// Regular cadence + smooth values should compress far below the raw
	// 16 bytes/record.
	recs := mkRecs(4096, 30*time.Second, func(i int) float64 {
		return math.Round((15+3*math.Sin(float64(i)/100))*10) / 10
	})
	block, err := EncodeBlock(KindTemperature, recs)
	if err != nil {
		t.Fatal(err)
	}
	raw := 16 * len(recs)
	if len(block)*3 > raw {
		t.Errorf("block %d bytes for %d raw: compression ratio below 3x", len(block), raw)
	}
}

func TestBlockSingleRecord(t *testing.T) {
	recs := []Record{{Time: t0, Value: 21.5}}
	block, err := EncodeBlock(KindLight, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeBlock(block)
	if err != nil || len(got) != 1 || got[0].Value != 21.5 {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

func TestBlockIrregularTimestamps(t *testing.T) {
	recs := []Record{
		{Time: t0, Value: 1},
		{Time: t0.Add(1 * time.Second), Value: 1},
		{Time: t0.Add(1 * time.Second), Value: 2},            // duplicate second
		{Time: t0.Add(4000 * time.Second), Value: -3.5},      // big jump
		{Time: t0.Add(4001 * time.Second), Value: 1e300},     // extreme value
		{Time: t0.Add(90000 * time.Second), Value: -1e-300},  // day jump
		{Time: t0.Add(90030 * time.Second), Value: 0},        // zero
		{Time: t0.Add(90060 * time.Second), Value: math.Pi},  //
		{Time: t0.Add(90061 * time.Second), Value: math.Pi},  // repeat value
		{Time: t0.Add(90062 * time.Second), Value: -math.Pi}, // sign flip
	}
	block, err := EncodeBlock(KindTemperature, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i].Time.Unix() != recs[i].Time.Unix() || got[i].Value != recs[i].Value {
			t.Fatalf("record %d: got %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestEncodeBlockValidation(t *testing.T) {
	if _, err := EncodeBlock(KindTemperature, nil); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := EncodeBlock(Kind(99), mkRecs(1, time.Second, func(int) float64 { return 0 })); err == nil {
		t.Error("invalid kind accepted")
	}
	bad := []Record{{Time: t0, Value: math.NaN()}}
	if _, err := EncodeBlock(KindTemperature, bad); err == nil {
		t.Error("NaN value accepted")
	}
	ooo := []Record{{Time: t0.Add(time.Hour), Value: 1}, {Time: t0, Value: 2}}
	if _, err := EncodeBlock(KindTemperature, ooo); err == nil {
		t.Error("out-of-order records accepted")
	}
}

func TestDecodeBlockCorruption(t *testing.T) {
	recs := mkRecs(100, 30*time.Second, func(i int) float64 { return float64(i) })
	block, err := EncodeBlock(KindTemperature, recs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), block...)
		b[0] ^= 0xFF
		if _, _, err := DecodeBlock(b); !errors.Is(err, ErrCorruptBlock) {
			t.Errorf("err = %v, want ErrCorruptBlock", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		b := append([]byte(nil), block...)
		b[blockHeaderSize+10] ^= 0x10
		if _, _, err := DecodeBlock(b); !errors.Is(err, ErrCorruptBlock) {
			t.Errorf("err = %v, want checksum failure", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := DecodeBlock(block[:len(block)-5]); !errors.Is(err, ErrCorruptBlock) {
			t.Errorf("err = %v, want ErrCorruptBlock", err)
		}
	})
	t.Run("short header", func(t *testing.T) {
		if _, _, err := DecodeBlock(block[:10]); !errors.Is(err, ErrCorruptBlock) {
			t.Errorf("err = %v, want ErrCorruptBlock", err)
		}
	})
}

func TestPropertyBlockRoundTrip(t *testing.T) {
	f := func(deltas []uint16, raw []float64) bool {
		n := len(deltas)
		if len(raw) < n {
			n = len(raw)
		}
		if n == 0 {
			return true
		}
		recs := make([]Record, n)
		ts := t0
		for i := 0; i < n; i++ {
			ts = ts.Add(time.Duration(deltas[i]) * time.Second)
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			recs[i] = Record{Time: ts, Value: v}
		}
		block, err := EncodeBlock(KindLight, recs)
		if err != nil {
			return false
		}
		got, consumed, err := DecodeBlock(block)
		if err != nil || consumed != len(block) || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i].Time.Unix() != recs[i].Time.Unix() || got[i].Value != recs[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
