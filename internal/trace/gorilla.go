package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"time"
)

// Block format (all multi-byte integers little-endian):
//
//	magic   [4]byte "IMTB"
//	version uint8   (1)
//	kind    uint8
//	count   uint32
//	first   int64   unix seconds of the first record
//	last    int64   unix seconds of the last record (enables block skipping)
//	plen    uint32  payload length in bytes
//	payload []byte  Gorilla-compressed records
//	crc     uint32  CRC-32 (IEEE) of the payload
//
// Payload: the first record stores its value as raw 64 float bits; its
// timestamp is the header's first field. Each subsequent record stores a
// delta-of-delta timestamp (Gorilla variable-length scheme) followed by an
// XOR-compressed value.

var blockMagic = [4]byte{'I', 'M', 'T', 'B'}

const blockVersion = 1

// blockHeaderSize is the fixed-size prefix before the payload.
const blockHeaderSize = 4 + 1 + 1 + 4 + 8 + 8 + 4

// ErrCorruptBlock is returned when a block fails structural or checksum
// validation.
var ErrCorruptBlock = errors.New("trace: corrupt block")

// MaxBlockPayload bounds a block's compressed payload. Writers flush at
// DefaultBlockSize records (~64 KB compressed), so this is generous
// headroom while keeping readers safe from adversarial headers.
const MaxBlockPayload = 1 << 26

// EncodeBlock compresses records into a self-contained block. Records
// must be non-empty and sorted by non-decreasing time; values must be
// finite. Timestamps are truncated to seconds.
func EncodeBlock(kind Kind, recs []Record) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("trace: invalid kind %v", kind)
	}
	if len(recs) == 0 {
		return nil, errors.New("trace: cannot encode empty block")
	}
	for i, r := range recs {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
			return nil, fmt.Errorf("trace: record %d has non-finite value", i)
		}
		if i > 0 && recs[i].Time.Unix() < recs[i-1].Time.Unix() {
			return nil, fmt.Errorf("trace: records out of order at %d", i)
		}
	}

	w := NewBitWriter(len(recs)) // rough capacity hint
	first := recs[0].Time.Unix()
	prevTS := first
	prevDelta := int64(0)
	prevBits := math.Float64bits(recs[0].Value)
	w.WriteBits(prevBits, 64)
	prevLeading, prevTrailing := uint(65), uint(0) // 65 marks "no window yet"

	for _, r := range recs[1:] {
		ts := r.Time.Unix()
		delta := ts - prevTS
		dod := delta - prevDelta
		writeDoD(w, dod)
		prevTS, prevDelta = ts, delta

		cur := math.Float64bits(r.Value)
		xor := cur ^ prevBits
		if xor == 0 {
			w.WriteBit(false)
		} else {
			w.WriteBit(true)
			leading := uint(bits.LeadingZeros64(xor))
			if leading > 31 {
				leading = 31
			}
			trailing := uint(bits.TrailingZeros64(xor))
			if prevLeading <= 64 && leading >= prevLeading && trailing >= prevTrailing {
				// Fits the previous meaningful-bit window.
				w.WriteBit(false)
				w.WriteBits(xor>>prevTrailing, 64-prevLeading-prevTrailing)
			} else {
				w.WriteBit(true)
				sig := 64 - leading - trailing
				w.WriteBits(uint64(leading), 5)
				w.WriteBits(uint64(sig), 7) // 1–64 fits in 7 bits
				w.WriteBits(xor>>trailing, sig)
				prevLeading, prevTrailing = leading, trailing
			}
		}
		prevBits = cur
	}

	payload := w.Bytes()
	out := make([]byte, 0, blockHeaderSize+len(payload)+4)
	out = append(out, blockMagic[:]...)
	out = append(out, blockVersion, byte(kind))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(recs)))
	out = binary.LittleEndian.AppendUint64(out, uint64(first))
	out = binary.LittleEndian.AppendUint64(out, uint64(recs[len(recs)-1].Time.Unix()))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out, nil
}

// writeDoD encodes a delta-of-delta with Gorilla's prefix scheme.
func writeDoD(w *BitWriter, dod int64) {
	switch {
	case dod == 0:
		w.WriteBit(false)
	case dod >= -63 && dod <= 64:
		w.WriteBits(0b10, 2)
		w.WriteBits(zigzag(dod), 7+1)
	case dod >= -255 && dod <= 256:
		w.WriteBits(0b110, 3)
		w.WriteBits(zigzag(dod), 9+1)
	case dod >= -2047 && dod <= 2048:
		w.WriteBits(0b1110, 4)
		w.WriteBits(zigzag(dod), 12+1)
	default:
		w.WriteBits(0b1111, 4)
		w.WriteBits(zigzag(dod), 64)
	}
}

// readDoD decodes one delta-of-delta.
func readDoD(r *BitReader) (int64, error) {
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if !b {
		return 0, nil
	}
	var width uint
	for _, w := range []uint{8, 10, 13} {
		b, err = r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !b {
			width = w
			break
		}
	}
	if width == 0 {
		width = 64
	}
	u, err := r.ReadBits(width)
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// BlockHeader summarizes a block without decoding its payload, enabling
// time-range skipping.
type BlockHeader struct {
	Kind        Kind
	Count       int
	First, Last time.Time
	PayloadLen  int
}

// parseBlockHeader validates the fixed prefix of a block.
func parseBlockHeader(b []byte) (BlockHeader, error) {
	if len(b) < blockHeaderSize {
		return BlockHeader{}, ErrCorruptBlock
	}
	if [4]byte(b[:4]) != blockMagic {
		return BlockHeader{}, fmt.Errorf("%w: bad magic", ErrCorruptBlock)
	}
	if b[4] != blockVersion {
		return BlockHeader{}, fmt.Errorf("%w: unsupported version %d", ErrCorruptBlock, b[4])
	}
	kind := Kind(b[5])
	if !kind.Valid() {
		return BlockHeader{}, fmt.Errorf("%w: invalid kind %d", ErrCorruptBlock, b[5])
	}
	count := binary.LittleEndian.Uint32(b[6:])
	if count == 0 {
		return BlockHeader{}, fmt.Errorf("%w: zero record count", ErrCorruptBlock)
	}
	first := int64(binary.LittleEndian.Uint64(b[10:]))
	last := int64(binary.LittleEndian.Uint64(b[18:]))
	if last < first {
		return BlockHeader{}, fmt.Errorf("%w: last < first", ErrCorruptBlock)
	}
	plen := binary.LittleEndian.Uint32(b[26:])
	if plen > MaxBlockPayload {
		return BlockHeader{}, fmt.Errorf("%w: payload %d exceeds limit", ErrCorruptBlock, plen)
	}
	return BlockHeader{
		Kind:       kind,
		Count:      int(count),
		First:      time.Unix(first, 0).UTC(),
		Last:       time.Unix(last, 0).UTC(),
		PayloadLen: int(plen),
	}, nil
}

// DecodeBlock decompresses a block produced by EncodeBlock and returns
// its records along with the total encoded size consumed from b.
func DecodeBlock(b []byte) ([]Record, int, error) {
	hdr, err := parseBlockHeader(b)
	if err != nil {
		return nil, 0, err
	}
	total := blockHeaderSize + hdr.PayloadLen + 4
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrCorruptBlock)
	}
	payload := b[blockHeaderSize : blockHeaderSize+hdr.PayloadLen]
	wantCRC := binary.LittleEndian.Uint32(b[blockHeaderSize+hdr.PayloadLen:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptBlock)
	}
	// Every record after the first costs at least two payload bits (one
	// delta-of-delta bit, one xor bit), so a count the payload cannot
	// justify is corruption — and must be rejected before allocation.
	if hdr.Count > 1 && hdr.Count-1 > hdr.PayloadLen*4 {
		return nil, 0, fmt.Errorf("%w: record count %d exceeds payload capacity", ErrCorruptBlock, hdr.Count)
	}

	r := NewBitReader(payload)
	recs := make([]Record, 0, hdr.Count)
	firstBits, err := r.ReadBits(64)
	if err != nil {
		return nil, 0, err
	}
	ts := hdr.First.Unix()
	recs = append(recs, Record{Time: time.Unix(ts, 0).UTC(), Value: math.Float64frombits(firstBits)})

	prevBits := firstBits
	prevDelta := int64(0)
	prevLeading, prevTrailing := uint(0), uint(0)
	for i := 1; i < hdr.Count; i++ {
		dod, err := readDoD(r)
		if err != nil {
			return nil, 0, err
		}
		prevDelta += dod
		ts += prevDelta

		nonzero, err := r.ReadBit()
		if err != nil {
			return nil, 0, err
		}
		cur := prevBits
		if nonzero {
			newWindow, err := r.ReadBit()
			if err != nil {
				return nil, 0, err
			}
			if newWindow {
				lead, err := r.ReadBits(5)
				if err != nil {
					return nil, 0, err
				}
				sig, err := r.ReadBits(7)
				if err != nil {
					return nil, 0, err
				}
				if sig == 0 || lead+sig > 64 {
					return nil, 0, fmt.Errorf("%w: invalid xor window", ErrCorruptBlock)
				}
				prevLeading = uint(lead)
				prevTrailing = 64 - uint(lead) - uint(sig)
			}
			width := 64 - prevLeading - prevTrailing
			xorBits, err := r.ReadBits(width)
			if err != nil {
				return nil, 0, err
			}
			cur = prevBits ^ (xorBits << prevTrailing)
		}
		prevBits = cur
		recs = append(recs, Record{Time: time.Unix(ts, 0).UTC(), Value: math.Float64frombits(cur)})
	}
	return recs, total, nil
}
