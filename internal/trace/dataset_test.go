package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/weather"
)

func genDataset(t *testing.T, zones int, days int) (string, Manifest) {
	t.Helper()
	dir := t.TempDir()
	wx := weather.MustNew(42, weather.Nicosia())
	spec := DatasetSpec{
		Name: "test",
		Seed: 42,
		From: time.Date(2015, time.April, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2015, time.April, 1+days, 0, 0, 0, 0, time.UTC),
		// Coarse cadence keeps the test fast.
		TempInterval:  5 * time.Minute,
		LightInterval: 5 * time.Minute,
	}
	for z := 0; z < zones; z++ {
		spec.Zones = append(spec.Zones, DefaultZone(uint64(z)))
	}
	m, err := GenerateDataset(dir, wx, spec)
	if err != nil {
		t.Fatal(err)
	}
	return dir, m
}

func TestGenerateAndOpenDataset(t *testing.T) {
	dir, m := genDataset(t, 2, 3)
	if m.Zones != 2 || m.Records == 0 {
		t.Fatalf("manifest = %+v", m)
	}
	// ~3 days × 288 readings/day × 2 kinds × 2 zones.
	want := int64(3 * 288 * 2 * 2)
	if m.Records < want*8/10 || m.Records > want*12/10 {
		t.Errorf("records = %d, want ≈%d", m.Records, want)
	}

	d, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Manifest().Name != "test" {
		t.Errorf("manifest = %+v", d.Manifest())
	}
	size, err := d.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size > m.Records*16 {
		t.Errorf("size = %d for %d records (no compression?)", size, m.Records)
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	wx := weather.MustNew(1, weather.Nicosia())
	from := time.Now()
	if _, err := GenerateDataset(t.TempDir(), nil, DatasetSpec{Zones: []ZoneModel{DefaultZone(0)}, From: from, To: from.Add(time.Hour)}); err == nil {
		t.Error("nil weather accepted")
	}
	if _, err := GenerateDataset(t.TempDir(), wx, DatasetSpec{From: from, To: from.Add(time.Hour)}); err == nil {
		t.Error("zero zones accepted")
	}
	if _, err := GenerateDataset(t.TempDir(), wx, DatasetSpec{Zones: []ZoneModel{DefaultZone(0)}, From: from, To: from}); err == nil {
		t.Error("empty period accepted")
	}
}

func TestOpenDatasetErrors(t *testing.T) {
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}
	dir, _ := genDataset(t, 1, 1)
	// Corrupt manifest.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	// Valid manifest, missing trace file.
	dir2, _ := genDataset(t, 1, 1)
	if err := os.Remove(datasetFile(dir2, 0, KindLight)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir2); err == nil {
		t.Error("missing zone file accepted")
	}
}

func TestDatasetAmbientMatchesGenerator(t *testing.T) {
	// The replay-from-disk path must track the direct synthetic model:
	// this is the store→simulator loop the paper's methodology rests on.
	dir, m := genDataset(t, 1, 3)
	d, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	wx := weather.MustNew(42, weather.Nicosia())
	gen, err := NewGenerator(wx, DefaultZone(0))
	if err != nil {
		t.Fatal(err)
	}
	src, err := d.Ambient(0, gen)
	if err != nil {
		t.Fatal(err)
	}
	var worstT, worstL float64
	for h := m.From; h.Before(m.To); h = h.Add(time.Hour) {
		stored := src.AmbientAt(h)
		direct := gen.AmbientAt(h)
		worstT = math.Max(worstT, math.Abs(stored.Temperature-direct.Temperature))
		worstL = math.Max(worstL, math.Abs(stored.Light-direct.Light))
	}
	if worstT > 1.5 {
		t.Errorf("stored temperature diverges by %.2f°C", worstT)
	}
	if worstL > 12 {
		t.Errorf("stored light diverges by %.1f", worstL)
	}

	if _, err := d.Ambient(5, nil); err == nil {
		t.Error("out-of-range zone accepted")
	}
}
