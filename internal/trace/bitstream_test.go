package trace

import (
	"testing"
	"testing/quick"
)

func TestBitWriterSingleBits(t *testing.T) {
	w := NewBitWriter(4)
	for _, b := range []bool{true, false, true, true, false, false, true, false, true} {
		w.WriteBit(b)
	}
	got := w.Bytes()
	want := []byte{0b10110010, 0b10000000}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Bytes() = %08b, want %08b", got, want)
	}
	if w.Len() != 9 {
		t.Errorf("Len() = %d, want 9", w.Len())
	}
}

func TestBitRoundTrip(t *testing.T) {
	w := NewBitWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0, 7)
	w.WriteBits(1, 1)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)

	r := NewBitReader(w.Bytes())
	if v, err := r.ReadBits(3); err != nil || v != 0b101 {
		t.Errorf("ReadBits(3) = %v, %v", v, err)
	}
	if v, err := r.ReadBits(32); err != nil || v != 0xDEADBEEF {
		t.Errorf("ReadBits(32) = %x, %v", v, err)
	}
	if v, err := r.ReadBits(7); err != nil || v != 0 {
		t.Errorf("ReadBits(7) = %v, %v", v, err)
	}
	if v, err := r.ReadBits(1); err != nil || v != 1 {
		t.Errorf("ReadBits(1) = %v, %v", v, err)
	}
	if v, err := r.ReadBits(64); err != nil || v != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("ReadBits(64) = %x, %v", v, err)
	}
}

func TestBitReaderTruncation(t *testing.T) {
	r := NewBitReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Errorf("ReadBit past end = %v, want ErrShortStream", err)
	}
	if _, err := r.ReadBits(4); err != ErrShortStream {
		t.Errorf("ReadBits past end = %v, want ErrShortStream", err)
	}
}

func TestPropertyBitsRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		if len(vals) > len(widths) {
			vals = vals[:len(widths)]
		} else {
			widths = widths[:len(vals)]
		}
		w := NewBitWriter(64)
		want := make([]uint64, len(vals))
		ns := make([]uint, len(vals))
		for i, v := range vals {
			n := uint(widths[i]%64) + 1
			ns[i] = n
			if n < 64 {
				v &= (1 << n) - 1
			}
			want[i] = v
			w.WriteBits(v, n)
		}
		r := NewBitReader(w.Bytes())
		for i := range want {
			got, err := r.ReadBits(ns[i])
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigzag(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -63, 64, 2048, -2047, 1 << 40, -(1 << 40)}
	for _, v := range cases {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes must get small codes.
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(0) != 0 {
		t.Errorf("zigzag mapping unexpected: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}

func TestPropertyZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
