package trace

import (
	"errors"
	"fmt"
	"time"

	"github.com/imcf/imcf/internal/weather"
)

// ZoneModel describes how one zone (a room served by one split unit and
// one light fixture) converts outdoor weather into indoor ambient
// conditions when nothing is actuated: the building-envelope model behind
// the synthetic CASAS traces.
type ZoneModel struct {
	// TempOffset is the indoor warmth gained passively (solar gain,
	// appliances, neighbours) in °C.
	TempOffset float64
	// TempCoupling is the fraction of the outdoor temperature swing
	// transmitted indoors (0 = perfectly insulated, 1 = outdoors).
	TempCoupling float64
	// ThermalLagHours smooths outdoor temperature over this many hours
	// to model thermal mass.
	ThermalLagHours int
	// LightTransmission is the fraction of outdoor daylight reaching
	// the indoor light sensor.
	LightTransmission float64
	// TempNoise and LightNoise bound the deterministic sensor noise.
	TempNoise  float64
	LightNoise float64
	// Seed decorrelates zones that share a weather service.
	Seed uint64
}

// DefaultZone returns the flat-calibrated zone model used throughout the
// evaluation, decorrelated by seed.
func DefaultZone(seed uint64) ZoneModel {
	return ZoneModel{
		TempOffset:        5.0,
		TempCoupling:      0.9,
		ThermalLagHours:   6,
		LightTransmission: 0.65,
		TempNoise:         0.3,
		LightNoise:        2.0,
		Seed:              seed,
	}
}

// Validate reports whether the zone model is usable.
func (z ZoneModel) Validate() error {
	if z.TempCoupling < 0 || z.TempCoupling > 1 {
		return fmt.Errorf("trace: temp coupling %v outside [0,1]", z.TempCoupling)
	}
	if z.LightTransmission < 0 || z.LightTransmission > 1 {
		return fmt.Errorf("trace: light transmission %v outside [0,1]", z.LightTransmission)
	}
	if z.ThermalLagHours < 0 || z.ThermalLagHours > 48 {
		return fmt.Errorf("trace: thermal lag %d outside [0,48]", z.ThermalLagHours)
	}
	if z.TempNoise < 0 || z.LightNoise < 0 {
		return errors.New("trace: negative noise amplitude")
	}
	return nil
}

// Generator synthesizes sensor readings and hourly ambient conditions
// for one zone. It is deterministic: identical (weather seed, zone)
// pairs produce identical traces.
type Generator struct {
	wx   *weather.Service
	zone ZoneModel
}

// NewGenerator returns a generator for the zone driven by wx.
func NewGenerator(wx *weather.Service, zone ZoneModel) (*Generator, error) {
	if wx == nil {
		return nil, errors.New("trace: nil weather service")
	}
	if err := zone.Validate(); err != nil {
		return nil, err
	}
	return &Generator{wx: wx, zone: zone}, nil
}

// TemperatureAt returns the unconditioned indoor temperature at t.
func (g *Generator) TemperatureAt(t time.Time) float64 {
	z := g.zone
	// Thermal mass: average outdoor temperature over the lag window.
	samples := z.ThermalLagHours + 1
	var sum float64
	for i := 0; i < samples; i++ {
		sum += g.wx.At(t.Add(-time.Duration(i) * time.Hour)).Temperature.Celsius()
	}
	smoothed := sum / float64(samples)
	noise := (hashUnit(z.Seed, uint64(t.Unix())/300, 0x7E37)*2 - 1) * z.TempNoise
	return z.TempOffset + z.TempCoupling*smoothed + noise
}

// LightAt returns the unlit indoor light level at t on the 0–100 scale.
func (g *Generator) LightAt(t time.Time) float64 {
	z := g.zone
	day := g.wx.At(t).Daylight.Level()
	noise := (hashUnit(z.Seed, uint64(t.Unix())/300, 0x119A)*2 - 1) * z.LightNoise
	v := z.LightTransmission*day + noise
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// AmbientAt implements AmbientSource: the mean ambient conditions over
// the hour starting at t, approximated by the mid-hour model value.
func (g *Generator) AmbientAt(t time.Time) Ambient {
	mid := t.Add(30 * time.Minute)
	return Ambient{
		Temperature: g.TemperatureAt(mid),
		Light:       g.LightAt(mid),
	}
}

// Readings streams synthetic sensor readings of the given kind over
// [from, to) at a jittered cadence averaging meanInterval, calling emit
// for each. Door readings are binary open(1)/closed(0) transitions.
func (g *Generator) Readings(kind Kind, from, to time.Time, meanInterval time.Duration, emit func(Record) error) error {
	if !kind.Valid() {
		return fmt.Errorf("trace: invalid kind %v", kind)
	}
	if meanInterval <= 0 {
		return errors.New("trace: mean interval must be positive")
	}
	if kind == KindDoor {
		return g.doorReadings(from, to, emit)
	}
	t := from
	for i := uint64(0); t.Before(to); i++ {
		var v float64
		switch kind {
		case KindTemperature:
			v = g.TemperatureAt(t)
		case KindLight:
			v = g.LightAt(t)
		}
		if err := emit(Record{Time: t, Value: v}); err != nil {
			return err
		}
		// Jitter the cadence by ±30 % deterministically.
		jitter := 0.7 + 0.6*hashUnit(g.zone.Seed, i, uint64(kind))
		t = t.Add(time.Duration(float64(meanInterval) * jitter))
	}
	return nil
}

// doorReadings emits a plausible daily pattern of door open/close event
// pairs: a few openings during waking hours, each with a short dwell.
func (g *Generator) doorReadings(from, to time.Time, emit func(Record) error) error {
	day := from.UTC().Truncate(24 * time.Hour)
	var last []Record
	for day.Before(to) {
		dayKey := uint64(day.Unix() / 86400)
		openings := 2 + int(hashUnit(g.zone.Seed, dayKey, 0xD008)*5) // 2–6 per day
		var events []Record
		for i := 0; i < openings; i++ {
			hf := 7 + 15*hashUnit(g.zone.Seed, dayKey*8+uint64(i), 0xD009) // 07:00–22:00
			open := day.Add(time.Duration(hf * float64(time.Hour)))
			dwell := time.Duration(20+hashUnit(g.zone.Seed, dayKey*8+uint64(i), 0xD00A)*600) * time.Second
			events = append(events, Record{Time: open, Value: 1}, Record{Time: open.Add(dwell), Value: 0})
		}
		SortRecords(events)
		for _, e := range events {
			if e.Time.Before(from) || !e.Time.Before(to) {
				continue
			}
			// Guard against dwell overlap producing out-of-order output.
			if n := len(last); n > 0 && e.Time.Before(last[n-1].Time) {
				continue
			}
			last = append(last[:0], e)
			if err := emit(e); err != nil {
				return err
			}
		}
		day = day.Add(24 * time.Hour)
	}
	return nil
}

// hashUnit maps (seed, a, b) deterministically to [0, 1).
func hashUnit(seed, a, b uint64) float64 {
	x := seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// StoredAmbient adapts hourly means aggregated from stored trace files
// into an AmbientSource, closing the loop store → replay exactly as the
// paper feeds recorded CASAS data into its simulator. Hours missing from
// either series fall back to the provided generator model.
type StoredAmbient struct {
	Temps    map[time.Time]float64
	Lights   map[time.Time]float64
	Fallback AmbientSource
}

// AmbientAt implements AmbientSource.
func (s *StoredAmbient) AmbientAt(t time.Time) Ambient {
	h := t.UTC().Truncate(time.Hour)
	var a Ambient
	var haveT, haveL bool
	if v, ok := s.Temps[h]; ok {
		a.Temperature, haveT = v, true
	}
	if v, ok := s.Lights[h]; ok {
		a.Light, haveL = v, true
	}
	if (!haveT || !haveL) && s.Fallback != nil {
		fb := s.Fallback.AmbientAt(t)
		if !haveT {
			a.Temperature = fb.Temperature
		}
		if !haveL {
			a.Light = fb.Light
		}
	}
	return a
}
