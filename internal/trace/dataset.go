package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/imcf/imcf/internal/weather"
)

// This file implements on-disk datasets: a directory holding one trace
// file per (zone, kind) plus a manifest, mirroring how the paper stores
// its CASAS-derived Flat/House/Dorms datasets (1.09–20 GB of readings)
// and replays them through the simulator. GenerateDataset synthesizes
// and writes the files; OpenDataset replays them as AmbientSources.

// manifestName is the dataset descriptor file.
const manifestName = "dataset.json"

// Manifest describes a dataset directory.
type Manifest struct {
	Name    string    `json:"name"`
	Seed    uint64    `json:"seed"`
	Zones   int       `json:"zones"`
	From    time.Time `json:"from"`
	To      time.Time `json:"to"`
	Records int64     `json:"records"`
	// Intervals are the mean reading cadences used at generation.
	TempInterval  time.Duration `json:"tempIntervalNs"`
	LightInterval time.Duration `json:"lightIntervalNs"`
}

// DatasetSpec configures GenerateDataset.
type DatasetSpec struct {
	Name  string
	Seed  uint64
	Zones []ZoneModel
	From  time.Time
	To    time.Time
	// TempInterval and LightInterval are mean reading cadences; zero
	// means the CASAS-like defaults (29 s temperature, 48 s light).
	TempInterval  time.Duration
	LightInterval time.Duration
}

// GenerateDataset synthesizes a dataset into dir (created if missing):
// per zone one temperature and one light trace, plus the manifest.
func GenerateDataset(dir string, wx *weather.Service, spec DatasetSpec) (Manifest, error) {
	var m Manifest
	if wx == nil {
		return m, errors.New("trace: nil weather service")
	}
	if len(spec.Zones) == 0 {
		return m, errors.New("trace: dataset needs at least one zone")
	}
	if !spec.To.After(spec.From) {
		return m, fmt.Errorf("trace: dataset period [%v, %v) empty", spec.From, spec.To)
	}
	if spec.TempInterval <= 0 {
		spec.TempInterval = 29 * time.Second
	}
	if spec.LightInterval <= 0 {
		spec.LightInterval = 48 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return m, fmt.Errorf("trace: create dataset dir: %w", err)
	}

	m = Manifest{
		Name: spec.Name, Seed: spec.Seed, Zones: len(spec.Zones),
		From: spec.From.UTC(), To: spec.To.UTC(),
		TempInterval: spec.TempInterval, LightInterval: spec.LightInterval,
	}
	for z, zone := range spec.Zones {
		gen, err := NewGenerator(wx, zone)
		if err != nil {
			return m, err
		}
		for _, part := range []struct {
			kind     Kind
			interval time.Duration
		}{
			{KindTemperature, spec.TempInterval},
			{KindLight, spec.LightInterval},
		} {
			w, err := CreateFile(datasetFile(dir, z, part.kind), part.kind, 0)
			if err != nil {
				return m, err
			}
			if err := gen.Readings(part.kind, m.From, m.To, part.interval, w.Append); err != nil {
				w.Close() //nolint:errcheck
				return m, err
			}
			if err := w.Close(); err != nil {
				return m, err
			}
			m.Records += w.Count()
		}
	}

	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return m, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		return m, fmt.Errorf("trace: write manifest: %w", err)
	}
	return m, nil
}

// Dataset replays a generated dataset directory.
type Dataset struct {
	dir      string
	manifest Manifest
}

// OpenDataset opens a dataset directory and validates its manifest and
// files.
func OpenDataset(dir string) (*Dataset, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("trace: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("trace: parse manifest: %w", err)
	}
	if m.Zones < 1 {
		return nil, errors.New("trace: manifest has no zones")
	}
	for z := 0; z < m.Zones; z++ {
		for _, kind := range []Kind{KindTemperature, KindLight} {
			if _, err := os.Stat(datasetFile(dir, z, kind)); err != nil {
				return nil, fmt.Errorf("trace: dataset missing %s for zone %d: %w", kind, z, err)
			}
		}
	}
	return &Dataset{dir: dir, manifest: m}, nil
}

// Manifest returns the dataset descriptor.
func (d *Dataset) Manifest() Manifest { return d.manifest }

// Ambient loads one zone's hourly ambient series from the stored traces.
// The returned source covers the dataset period; hours without readings
// fall back to the optional fallback source.
func (d *Dataset) Ambient(zone int, fallback AmbientSource) (AmbientSource, error) {
	if zone < 0 || zone >= d.manifest.Zones {
		return nil, fmt.Errorf("trace: zone %d outside [0,%d)", zone, d.manifest.Zones)
	}
	temps, err := d.hourly(zone, KindTemperature)
	if err != nil {
		return nil, err
	}
	lights, err := d.hourly(zone, KindLight)
	if err != nil {
		return nil, err
	}
	return &StoredAmbient{Temps: temps, Lights: lights, Fallback: fallback}, nil
}

func (d *Dataset) hourly(zone int, kind Kind) (map[time.Time]float64, error) {
	r, err := OpenFile(datasetFile(d.dir, zone, kind))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	recs, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return HourlyMeans(recs), nil
}

// Size returns the dataset's total on-disk bytes.
func (d *Dataset) Size() (int64, error) {
	var total int64
	for z := 0; z < d.manifest.Zones; z++ {
		for _, kind := range []Kind{KindTemperature, KindLight} {
			info, err := os.Stat(datasetFile(d.dir, z, kind))
			if err != nil {
				return 0, err
			}
			total += info.Size()
		}
	}
	return total, nil
}

func datasetFile(dir string, zone int, kind Kind) string {
	return filepath.Join(dir, fmt.Sprintf("zone%03d.%s.imt", zone, kind))
}
