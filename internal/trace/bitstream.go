package trace

import "errors"

// ErrShortStream is returned when a BitReader runs out of input
// mid-value, which indicates a truncated or corrupt block payload.
var ErrShortStream = errors.New("trace: bit stream truncated")

// BitWriter packs bits most-significant-first into an in-memory buffer.
// It is the encoding primitive for the Gorilla-style block codec.
type BitWriter struct {
	buf   []byte
	cur   byte
	nbits uint // bits used in cur, 0–7
}

// NewBitWriter returns an empty BitWriter with capacity hint n bytes.
func NewBitWriter(n int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(bit bool) {
	if bit {
		w.cur |= 1 << (7 - w.nbits)
	}
	w.nbits++
	if w.nbits == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbits = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// Bytes returns the packed stream, padding the final partial byte with
// zero bits. The writer remains usable; subsequent writes continue from
// the unpadded position.
func (w *BitWriter) Bytes() []byte {
	if w.nbits == 0 {
		out := make([]byte, len(w.buf))
		copy(out, w.buf)
		return out
	}
	out := make([]byte, len(w.buf)+1)
	copy(out, w.buf)
	out[len(w.buf)] = w.cur
	return out
}

// Len returns the current stream length in bits.
func (w *BitWriter) Len() int { return len(w.buf)*8 + int(w.nbits) }

// BitReader reads bits most-significant-first from a byte slice.
type BitReader struct {
	buf   []byte
	pos   int  // byte position
	nbits uint // bits consumed from buf[pos], 0–7
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// ReadBit reads one bit.
func (r *BitReader) ReadBit() (bool, error) {
	if r.pos >= len(r.buf) {
		return false, ErrShortStream
	}
	bit := r.buf[r.pos]>>(7-r.nbits)&1 == 1
	r.nbits++
	if r.nbits == 8 {
		r.pos++
		r.nbits = 0
	}
	return bit, nil
}

// ReadBits reads n bits (n ≤ 64) into the low bits of the result.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if bit {
			v |= 1
		}
	}
	return v, nil
}

// zigzag encodes a signed delta so small magnitudes get small codes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
