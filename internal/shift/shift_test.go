package shift

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

func window(s, e int) simclock.TimeWindow { return simclock.TimeWindow{StartHour: s, EndHour: e} }

func washer() Load {
	return Load{ID: "wash", Name: "Washing Machine", Power: 2000 * units.Watt, Hours: 2,
		Window: window(8, 22), Contiguous: true}
}

func ev() Load {
	return Load{ID: "ev", Name: "EV Charger", Power: 3000 * units.Watt, Hours: 4,
		Window: window(20, 8), Contiguous: false}
}

func TestLoadValidate(t *testing.T) {
	if err := washer().Validate(); err != nil {
		t.Errorf("valid load rejected: %v", err)
	}
	bad := washer()
	bad.ID = ""
	if bad.Validate() == nil {
		t.Error("missing ID accepted")
	}
	bad = washer()
	bad.Power = 0
	if bad.Validate() == nil {
		t.Error("zero power accepted")
	}
	bad = washer()
	bad.Hours = 0
	if bad.Validate() == nil {
		t.Error("zero hours accepted")
	}
	bad = washer()
	bad.Hours = 15 // window 8-22 is 14 hours
	if bad.Validate() == nil {
		t.Error("oversized load accepted")
	}
	bad = washer()
	bad.Window = simclock.TimeWindow{StartHour: 5, EndHour: 5}
	if bad.Validate() == nil {
		t.Error("empty window accepted")
	}
}

func TestScheduleContiguousPicksCheapestRun(t *testing.T) {
	// Plenty of headroom only at 13:00–15:00.
	var h Headroom
	h[13], h[14] = 2.5, 2.5
	a, err := Schedule([]Load{washer()}, h)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Placements[0]
	if len(p.Hours) != 2 || p.Hours[0] != 13 || p.Hours[1] != 14 {
		t.Errorf("hours = %v, want [13 14]", p.Hours)
	}
	if p.Overdraw != 0 || a.Overdraw != 0 {
		t.Errorf("overdraw = %v", p.Overdraw)
	}
	if math.Abs(a.Energy.KWh()-4) > 1e-12 {
		t.Errorf("energy = %v, want 4 kWh", a.Energy)
	}
}

func TestScheduleContiguousStaysContiguous(t *testing.T) {
	// Headroom scattered at 8 and 21: a contiguous 2h run cannot use
	// both; it must pick some adjacent pair and overdraw.
	var h Headroom
	h[8], h[21] = 2, 2
	a, err := Schedule([]Load{washer()}, h)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Placements[0]
	if p.Hours[1] != p.Hours[0]+1 {
		t.Errorf("run not contiguous: %v", p.Hours)
	}
	if p.Overdraw.KWh() != 2 { // one hour covered, one hour fully overdrawn
		t.Errorf("overdraw = %v, want 2 kWh", p.Overdraw)
	}
}

func TestScheduleScatteredPicksBestHours(t *testing.T) {
	// EV window wraps 20:00–08:00; best headroom at 2,3,4,5.
	var h Headroom
	for _, hr := range []int{2, 3, 4, 5} {
		h[hr] = 3
	}
	h[21] = 1 // some, but less
	a, err := Schedule([]Load{ev()}, h)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Placements[0]
	want := []int{2, 3, 4, 5}
	for i := range want {
		if p.Hours[i] != want[i] {
			t.Fatalf("hours = %v, want %v", p.Hours, want)
		}
	}
	if p.Overdraw != 0 {
		t.Errorf("overdraw = %v", p.Overdraw)
	}
}

func TestScheduleRespectsWindow(t *testing.T) {
	// Headroom outside the admissible window must not attract the load.
	var h Headroom
	h[2], h[3] = 10, 10 // outside washer window 8–22
	a, err := Schedule([]Load{washer()}, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, hr := range a.Placements[0].Hours {
		if !washer().Window.Contains(hr) {
			t.Errorf("scheduled outside window: %v", a.Placements[0].Hours)
		}
	}
}

func TestScheduleSequentialConsumption(t *testing.T) {
	// Two scattered loads compete: the second must see the first's
	// consumption.
	l1 := ev()
	l2 := ev()
	l2.ID = "ev2"
	var h Headroom
	for _, hr := range []int{0, 1, 2, 3} {
		h[hr] = 3 // exactly covers one EV
	}
	a, err := Schedule([]Load{l1, l2}, h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Placements[0].Overdraw != 0 {
		t.Errorf("first load overdrew: %v", a.Placements[0].Overdraw)
	}
	if a.Placements[1].Overdraw.KWh() != 12 {
		t.Errorf("second load overdraw = %v, want 12 kWh", a.Placements[1].Overdraw)
	}
	if a.Overdraw.KWh() != 12 {
		t.Errorf("total overdraw = %v", a.Overdraw)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule([]Load{{ID: "x"}}, Headroom{}); err == nil {
		t.Error("invalid load accepted")
	}
	l := washer()
	if _, err := Schedule([]Load{l, l}, Headroom{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestNegativeHeadroomTreatedAsZero(t *testing.T) {
	var h Headroom
	for i := range h {
		h[i] = -5
	}
	a, err := Schedule([]Load{washer()}, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Overdraw.KWh()-4) > 1e-12 {
		t.Errorf("overdraw = %v, want full 4 kWh", a.Overdraw)
	}
}

func TestPropertyScheduleInvariants(t *testing.T) {
	f := func(raw [24]uint8, hoursRaw, startRaw, lenRaw uint8, contiguous bool) bool {
		var h Headroom
		for i := range h {
			h[i] = float64(raw[i]) / 50
		}
		win := simclock.TimeWindow{
			StartHour: int(startRaw % 24),
			EndHour:   1 + int(lenRaw%24),
		}
		if win.Validate() != nil {
			return true
		}
		l := Load{
			ID:         "l",
			Power:      units.Power(500 + 100*int(hoursRaw%10)),
			Hours:      1 + int(hoursRaw)%win.Hours(),
			Window:     win,
			Contiguous: contiguous,
		}
		if l.Validate() != nil {
			return true
		}
		a, err := Schedule([]Load{l}, h)
		if err != nil {
			return false
		}
		p := a.Placements[0]
		if len(p.Hours) != l.Hours {
			return false
		}
		seen := map[int]bool{}
		for _, hr := range p.Hours {
			if hr < 0 || hr > 23 || seen[hr] || !win.Contains(hr) {
				return false
			}
			seen[hr] = true
		}
		// Energy is exact; overdraw never exceeds energy.
		if math.Abs(a.Energy.KWh()-l.energyPerHour()*float64(l.Hours)) > 1e-9 {
			return false
		}
		return a.Overdraw >= 0 && a.Overdraw <= a.Energy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
