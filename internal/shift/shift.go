// Package shift implements deferrable-workload scheduling, the paper's
// future-work direction of identifying "power workloads of power-hungry
// devices (e.g., white devices, electric vehicles, heating)" and
// rescheduling them "in an environmental friendly manner".
//
// A Load is an appliance run that must happen some time today — a
// washing-machine cycle, an EV charge — but is indifferent to exactly
// when. The Scheduler packs loads into the hours where the energy plan
// has the most headroom (budget the Energy Planner's convenience rules
// did not claim), minimizing the energy drawn above the plan.
package shift

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

// Load is one deferrable appliance run.
type Load struct {
	// ID is unique within a scheduling request.
	ID string
	// Name is the human label ("Washing Machine").
	Name string
	// Power is the draw while running.
	Power units.Power
	// Hours is how many one-hour slots the run needs.
	Hours int
	// Window is the daily admissible window (e.g. 08:00–22:00 for a
	// noisy appliance).
	Window simclock.TimeWindow
	// Contiguous requires the run to occupy consecutive hours (a wash
	// cycle); otherwise hours may scatter (EV charging).
	Contiguous bool
}

// Validate reports whether the load is schedulable at all.
func (l Load) Validate() error {
	if l.ID == "" {
		return errors.New("shift: load missing ID")
	}
	if l.Power <= 0 {
		return fmt.Errorf("shift: load %s: power %v must be positive", l.ID, l.Power)
	}
	if l.Hours < 1 {
		return fmt.Errorf("shift: load %s: needs at least one hour", l.ID)
	}
	if err := l.Window.Validate(); err != nil {
		return fmt.Errorf("shift: load %s: %w", l.ID, err)
	}
	if l.Hours > l.Window.Hours() {
		return fmt.Errorf("shift: load %s: %d hours do not fit the %d-hour window", l.ID, l.Hours, l.Window.Hours())
	}
	return nil
}

// energyPerHour is the load's hourly consumption in kWh.
func (l Load) energyPerHour() float64 {
	return l.Power.Watts() / 1000
}

// Headroom is the spare energy per hour of day: the slot budget minus
// what the energy plan already committed. Negative entries are treated
// as zero.
type Headroom [24]float64

// Placement is one load's scheduled hours.
type Placement struct {
	Load  Load
	Hours []int // hours of day, sorted
	// Overdraw is the energy this load consumes above the headroom
	// that was left when it was placed.
	Overdraw units.Energy
}

// Assignment is a full day's deferrable schedule.
type Assignment struct {
	Placements []Placement
	// Energy is the total deferred-load consumption.
	Energy units.Energy
	// Overdraw is the total energy above headroom; zero means the
	// whole schedule fits inside the plan's spare budget.
	Overdraw units.Energy
}

// Schedule packs loads into the headroom greedily, in the order given
// (callers order by priority). Each load takes the admissible placement
// with minimal overdraw — ties broken by the earliest hour — and
// consumes the headroom it used.
func Schedule(loads []Load, headroom Headroom) (Assignment, error) {
	seen := make(map[string]bool, len(loads))
	for _, l := range loads {
		if err := l.Validate(); err != nil {
			return Assignment{}, err
		}
		if seen[l.ID] {
			return Assignment{}, fmt.Errorf("shift: duplicate load ID %q", l.ID)
		}
		seen[l.ID] = true
	}

	remaining := headroom
	for h := range remaining {
		if remaining[h] < 0 {
			remaining[h] = 0
		}
	}

	var out Assignment
	for _, l := range loads {
		var hours []int
		if l.Contiguous {
			hours = bestContiguous(l, remaining)
		} else {
			hours = bestScattered(l, remaining)
		}
		p := Placement{Load: l, Hours: hours}
		need := l.energyPerHour()
		for _, h := range hours {
			used := math.Min(need, remaining[h])
			p.Overdraw += units.Energy(need - used)
			remaining[h] -= used
		}
		out.Placements = append(out.Placements, p)
		out.Energy += units.Energy(need * float64(l.Hours))
		out.Overdraw += p.Overdraw
	}
	return out, nil
}

// admissibleHours lists the hours of day inside the load's window, in
// chronological order starting at the window's start (so wrapping
// windows enumerate evening-before-morning).
func admissibleHours(w simclock.TimeWindow) []int {
	out := make([]int, 0, w.Hours())
	for i := 0; i < w.Hours(); i++ {
		out = append(out, (w.StartHour+i)%24)
	}
	return out
}

// bestContiguous finds the start offset whose run has minimal overdraw.
func bestContiguous(l Load, remaining Headroom) []int {
	adm := admissibleHours(l.Window)
	need := l.energyPerHour()
	bestAt := 0
	bestCost := math.Inf(1)
	for at := 0; at+l.Hours <= len(adm); at++ {
		cost := 0.0
		for i := 0; i < l.Hours; i++ {
			cost += math.Max(0, need-remaining[adm[at+i]])
		}
		if cost < bestCost-1e-12 {
			bestCost, bestAt = cost, at
		}
	}
	hours := make([]int, l.Hours)
	copy(hours, adm[bestAt:bestAt+l.Hours])
	sort.Ints(hours)
	return hours
}

// bestScattered picks the admissible hours with the most headroom.
func bestScattered(l Load, remaining Headroom) []int {
	adm := admissibleHours(l.Window)
	// Sort candidate hours by descending headroom, then by window
	// order for determinism.
	order := make([]int, len(adm))
	copy(order, adm)
	pos := make(map[int]int, len(adm))
	for i, h := range adm {
		pos[h] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if remaining[order[i]] != remaining[order[j]] {
			return remaining[order[i]] > remaining[order[j]]
		}
		return pos[order[i]] < pos[order[j]]
	})
	hours := make([]int, l.Hours)
	copy(hours, order[:l.Hours])
	sort.Ints(hours)
	return hours
}
