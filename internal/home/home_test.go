package home

import (
	"testing"
	"time"

	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
)

func TestFlat(t *testing.T) {
	r, err := Flat(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Zones) != 1 {
		t.Fatalf("flat has %d zones", len(r.Zones))
	}
	if got := len(r.MRT.Convenience()); got != 6 {
		t.Errorf("flat has %d convenience rules, want 6", got)
	}
	if r.Budget.KWh() != 11000 {
		t.Errorf("flat budget = %v", r.Budget)
	}
	if len(r.IFTTT) != 10 {
		t.Errorf("flat has %d IFTTT rules", len(r.IFTTT))
	}
	if r.Profile.Total().KWh() != 3666 {
		t.Errorf("flat profile total = %v", r.Profile.Total())
	}
	if got := len(r.Devices()); got != 2 {
		t.Errorf("flat has %d devices", got)
	}
}

func TestHouse(t *testing.T) {
	r, err := House(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Zones) != 4 {
		t.Fatalf("house has %d zones", len(r.Zones))
	}
	if got := len(r.MRT.Convenience()); got != 24 {
		t.Errorf("house has %d convenience rules, want 24", got)
	}
	if r.Budget.KWh() != 25500 {
		t.Errorf("house budget = %v", r.Budget)
	}
	// The house profile scales with the budget so EAF weights shape the
	// larger allowance.
	wantTotal := 3666 * 25500 / 11000.0
	if got := r.Profile.Total().KWh(); got < wantTotal-1 || got > wantTotal+1 {
		t.Errorf("house profile total = %v, want ≈%v", got, wantTotal)
	}
	owners := map[string]int{}
	for _, rule := range r.MRT.Convenience() {
		owners[rule.Owner]++
	}
	if len(owners) != 4 {
		t.Errorf("house rules span %d owners, want 4", len(owners))
	}
}

func TestDorms(t *testing.T) {
	r, err := Dorms(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Zones) != 100 {
		t.Fatalf("dorms has %d zones", len(r.Zones))
	}
	if got := len(r.MRT.Convenience()); got != 600 {
		t.Errorf("dorms has %d convenience rules, want 600", got)
	}
	if r.Budget.KWh() != 480000 {
		t.Errorf("dorms budget = %v", r.Budget)
	}
	if got := len(r.Devices()); got != 200 {
		t.Errorf("dorms has %d devices", got)
	}
}

func TestVariedRulesDeterministicAndVaried(t *testing.T) {
	a, err := Dorms(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dorms(7)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.MRT.Convenience(), b.MRT.Convenience()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed produced different rule %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// Across zones the rules must actually vary.
	varied := false
	base := rules.FlatMRT().Convenience()
	for i, r := range ra {
		t2 := base[i%6]
		if r.Window != t2.Window || r.Value != t2.Value {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("dorm rules identical to flat table; no variation applied")
	}
	// All varied rules must still validate (covered by Dorms' Validate,
	// but assert explicitly for clarity).
	for _, r := range ra {
		if err := r.Validate(); err != nil {
			t.Errorf("varied rule invalid: %v", err)
		}
	}
}

func TestRuleDevice(t *testing.T) {
	r, err := House(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range r.MRT.Convenience() {
		d, err := r.RuleDevice(rule)
		if err != nil {
			t.Fatalf("RuleDevice(%s): %v", rule.ID, err)
		}
		if d.Zone != rule.Zone {
			t.Errorf("rule %s in zone %d resolved device in zone %d", rule.ID, rule.Zone, d.Zone)
		}
		class, _ := rule.Action.DeviceClass()
		if d.Class != class {
			t.Errorf("rule %s resolved class %v, want %v", rule.ID, d.Class, class)
		}
	}
	budget := rules.MetaRule{ID: "b", Action: rules.ActionSetKWhLimit, Value: 10}
	if _, err := r.RuleDevice(budget); err == nil {
		t.Error("RuleDevice of budget rule succeeded")
	}
}

func TestAmbientPlausibility(t *testing.T) {
	r, err := Flat(42)
	if err != nil {
		t.Fatal(err)
	}
	amb := r.Zones[0].Ambient
	jan := amb.AmbientAt(time.Date(2015, time.January, 15, 3, 0, 0, 0, time.UTC))
	jul := amb.AmbientAt(time.Date(2015, time.July, 15, 14, 0, 0, 0, time.UTC))
	if jan.Temperature > 15 {
		t.Errorf("January night ambient %.1f°C too warm", jan.Temperature)
	}
	if jul.Temperature < 24 {
		t.Errorf("July afternoon ambient %.1f°C too cool", jul.Temperature)
	}
	if jan.Light > 5 {
		t.Errorf("night ambient light %.1f", jan.Light)
	}
}

func TestShiftWindow(t *testing.T) {
	cases := []struct {
		in    simclock.TimeWindow
		shift int
		want  simclock.TimeWindow
	}{
		{simclock.TimeWindow{StartHour: 1, EndHour: 7}, 1, simclock.TimeWindow{StartHour: 2, EndHour: 8}},
		{simclock.TimeWindow{StartHour: 1, EndHour: 7}, -1, simclock.TimeWindow{StartHour: 0, EndHour: 6}},
		{simclock.TimeWindow{StartHour: 17, EndHour: 24}, 1, simclock.TimeWindow{StartHour: 18, EndHour: 24}},
		{simclock.TimeWindow{StartHour: 23, EndHour: 5}, 1, simclock.TimeWindow{StartHour: 0, EndHour: 6}},
	}
	for _, c := range cases {
		if got := shiftWindow(c.in, c.shift); got != c.want {
			t.Errorf("shiftWindow(%v, %d) = %v, want %v", c.in, c.shift, got, c.want)
		}
	}
	// Every shift of every valid base window must stay valid.
	for start := 0; start < 24; start++ {
		for end := start + 1; end <= 24; end++ {
			w := simclock.TimeWindow{StartHour: start, EndHour: end}
			for _, s := range []int{-1, 0, 1} {
				if got := shiftWindow(w, s); got.Validate() != nil {
					t.Fatalf("shiftWindow(%v, %d) = %v invalid", w, s, got)
				}
			}
		}
	}
}

func TestResidenceValidateCatchesBadZoneRef(t *testing.T) {
	r, err := Flat(1)
	if err != nil {
		t.Fatal(err)
	}
	r.MRT.Rules[0].Zone = 99
	if err := r.Validate(); err == nil {
		t.Error("rule referencing missing zone accepted")
	}
}

func TestPrototypeResidence(t *testing.T) {
	r, err := Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Zones) != 3 {
		t.Fatalf("prototype has %d zones", len(r.Zones))
	}
	conv := r.MRT.Convenience()
	if len(conv) != 9 {
		t.Errorf("prototype has %d convenience rules, want 9 (3 per resident)", len(conv))
	}
	owners := map[string]int{}
	for _, rule := range conv {
		owners[rule.Owner]++
	}
	for _, owner := range []string{"Father", "Mother", "Daughter"} {
		if owners[owner] != 3 {
			t.Errorf("owner %s has %d rules, want 3", owner, owners[owner])
		}
	}
	limit, ok := r.MRT.BudgetLimit("Energy Week")
	if !ok || limit != PrototypeWeeklyBudget {
		t.Errorf("weekly budget = %v, %v", limit, ok)
	}
	// The three evening-heat rules share window and value so the
	// planner's drops rotate fairly.
	var evenings []rules.MetaRule
	for _, rule := range conv {
		if rule.Name == "Evening Heat" {
			evenings = append(evenings, rule)
		}
	}
	if len(evenings) != 3 {
		t.Fatalf("evening rules = %d", len(evenings))
	}
	for _, e := range evenings[1:] {
		if e.Window != evenings[0].Window || e.Value != evenings[0].Value {
			t.Errorf("evening rules asymmetric: %+v vs %+v", e, evenings[0])
		}
	}
}

func TestResidenceValidateErrorPaths(t *testing.T) {
	r, err := Flat(1)
	if err != nil {
		t.Fatal(err)
	}
	r.Budget = 0
	if r.Validate() == nil {
		t.Error("zero budget accepted")
	}

	r, _ = Flat(1)
	r.Years = 0
	if r.Validate() == nil {
		t.Error("zero years accepted")
	}

	r, _ = Flat(1)
	r.Zones = nil
	if r.Validate() == nil {
		t.Error("zoneless residence accepted")
	}

	r, _ = Flat(1)
	r.Zones[0].Ambient = nil
	if r.Validate() == nil {
		t.Error("nil ambient accepted")
	}
}

func TestDifferentSeedsDifferentTraces(t *testing.T) {
	a, err := Flat(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Flat(2)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2015, time.March, 10, 14, 0, 0, 0, time.UTC)
	if a.Zones[0].Ambient.AmbientAt(at) == b.Zones[0].Ambient.AmbientAt(at) {
		t.Error("different seeds produced identical ambient")
	}
}
