// Package home assembles the three evaluation residences of the IMCF
// paper — the Flat, the House and the campus Dorms — from the lower
// substrates: zones with ambient trace generators, device inventories
// with calibrated energy ratings, Meta-Rule Tables, IFTTT configurations
// and ECP-derived budgets.
//
// The paper builds its House dataset by "replicating, mixing up the
// readings and multiplying the real dataset by a factor of four", and
// its Dorms dataset synthetically as 50 two-room apartments with
// "uniformly random variations of the same [meta-rule] table"; the
// builders here do the same with deterministic seeds.
package home

import (
	"fmt"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/units"
	"github.com/imcf/imcf/internal/weather"
)

// Zone is one room: its ambient trace source and its actuated devices.
type Zone struct {
	ID      int
	Name    string
	Ambient trace.AmbientSource
	HVAC    device.Descriptor
	Light   device.Descriptor
}

// Residence is a fully assembled evaluation dataset: the smart space, its
// rules, and its energy planning inputs.
type Residence struct {
	// Name is "Flat", "House" or "Dorms".
	Name string
	// Zones are the rooms, indexed by MetaRule.Zone.
	Zones []Zone
	// MRT is the Meta-Rule Table (convenience rules reference zones).
	MRT rules.MRT
	// IFTTT is the trigger-action baseline configuration.
	IFTTT []rules.IFTTTRule
	// Budget is the total energy budget for the evaluation period
	// (three years in the paper's experiments).
	Budget units.Energy
	// Years is the evaluation period length.
	Years int
	// Profile is the residence's Energy Consumption Profile.
	Profile ecp.Profile
	// Weather is the shared outdoor weather service.
	Weather *weather.Service
}

// Validate checks cross-references between rules, zones and devices.
func (r *Residence) Validate() error {
	if len(r.Zones) == 0 {
		return fmt.Errorf("home: residence %s has no zones", r.Name)
	}
	if err := r.MRT.Validate(); err != nil {
		return err
	}
	for _, rule := range r.MRT.Convenience() {
		if rule.Zone >= len(r.Zones) {
			return fmt.Errorf("home: rule %s references zone %d of %d", rule.ID, rule.Zone, len(r.Zones))
		}
	}
	for i, z := range r.Zones {
		if z.Ambient == nil {
			return fmt.Errorf("home: zone %d has no ambient source", i)
		}
		if err := z.HVAC.Validate(); err != nil {
			return err
		}
		if err := z.Light.Validate(); err != nil {
			return err
		}
	}
	if r.Budget <= 0 {
		return fmt.Errorf("home: non-positive budget %v", r.Budget)
	}
	if r.Years < 1 {
		return fmt.Errorf("home: years %d", r.Years)
	}
	return nil
}

// Devices returns all device descriptors of the residence.
func (r *Residence) Devices() []device.Descriptor {
	out := make([]device.Descriptor, 0, 2*len(r.Zones))
	for _, z := range r.Zones {
		out = append(out, z.HVAC, z.Light)
	}
	return out
}

// RuleDevice resolves the device a convenience meta-rule actuates.
func (r *Residence) RuleDevice(rule rules.MetaRule) (device.Descriptor, error) {
	class, ok := rule.Action.DeviceClass()
	if !ok {
		return device.Descriptor{}, fmt.Errorf("home: rule %s has no device class", rule.ID)
	}
	if rule.Zone >= len(r.Zones) {
		return device.Descriptor{}, fmt.Errorf("home: rule %s references missing zone %d", rule.ID, rule.Zone)
	}
	z := r.Zones[rule.Zone]
	switch class {
	case device.ClassHVAC:
		return z.HVAC, nil
	case device.ClassLight:
		return z.Light, nil
	}
	return device.Descriptor{}, fmt.Errorf("home: rule %s targets unhandled class %v", rule.ID, class)
}

// Calibrated device ratings. With the paper's constant-per-device energy
// model (E = e_j when a rule's output executes) these reproduce the
// Fig. 6 Meta-Rule energy levels: flat ≈ 14.9 MWh/3y, house ≈ 32.7,
// dorms ≈ 569.
const (
	flatHVACRating  = 600 * units.Watt
	flatLightRating = 55 * units.Watt

	houseHVACRating  = 330 * units.Watt
	houseLightRating = 30 * units.Watt

	dormHVACRating  = 230 * units.Watt
	dormLightRating = 20 * units.Watt
)

// evaluationZone is the envelope model calibrated against the Nicosia
// climate so that the flat's ECP (Table I) and the paper's NR/EP error
// levels reproduce.
func evaluationZone(seed uint64) trace.ZoneModel {
	z := trace.DefaultZone(seed)
	z.TempOffset = 2.5
	z.TempCoupling = 0.85
	return z
}

// Flat builds the single-zone flat residence (50 m², one split unit):
// the paper's Table II rules against an 11,000 kWh three-year budget.
func Flat(seed uint64) (*Residence, error) {
	wx, err := weather.New(seed, weather.Nicosia())
	if err != nil {
		return nil, err
	}
	gen, err := trace.NewGenerator(wx, evaluationZone(seed))
	if err != nil {
		return nil, err
	}
	mrt := rules.FlatMRT()
	budget, _ := mrt.BudgetLimit("Energy Flat")
	res := &Residence{
		Name: "Flat",
		Zones: []Zone{{
			ID:      0,
			Name:    "Main",
			Ambient: gen,
			HVAC: device.Descriptor{
				ID: "flat/z0/hvac", Name: "Split Unit", Class: device.ClassHVAC,
				Zone: 0, Rating: flatHVACRating, Addr: "192.168.0.5",
			},
			Light: device.Descriptor{
				ID: "flat/z0/light", Name: "Main Light", Class: device.ClassLight,
				Zone: 0, Rating: flatLightRating, Addr: "192.168.0.6",
			},
		}},
		MRT:     mrt,
		IFTTT:   rules.FlatIFTTT(),
		Budget:  budget,
		Years:   3,
		Profile: ecp.Flat(),
		Weather: wx,
	}
	return res, res.Validate()
}

// House builds the four-zone residential house (200 m², four split
// units, four residents) with a 25,500 kWh three-year budget. Each zone
// replicates the flat rule set with mild per-zone variation and its own
// decorrelated trace ("replicating, mixing up the readings").
func House(seed uint64) (*Residence, error) {
	wx, err := weather.New(seed, weather.Nicosia())
	if err != nil {
		return nil, err
	}
	const nZones = 4
	owners := [nZones]string{"Father", "Mother", "Son", "Daughter"}
	res := &Residence{
		Name:    "House",
		IFTTT:   rules.FlatIFTTT(),
		Years:   3,
		Weather: wx,
	}
	budget, _ := rules.FlatMRT().BudgetLimit("Energy House")
	res.Budget = budget
	res.Profile = ecp.Flat().Scale(budget.KWh() / 11000)
	res.Profile.Name = "House"
	for z := 0; z < nZones; z++ {
		gen, err := trace.NewGenerator(wx, evaluationZone(seed+uint64(z)*7919))
		if err != nil {
			return nil, err
		}
		res.Zones = append(res.Zones, Zone{
			ID:      z,
			Name:    fmt.Sprintf("Room %d", z+1),
			Ambient: gen,
			HVAC: device.Descriptor{
				ID: fmt.Sprintf("house/z%d/hvac", z), Name: fmt.Sprintf("Split Unit %d", z+1),
				Class: device.ClassHVAC, Zone: z, Rating: houseHVACRating,
				Addr: fmt.Sprintf("192.168.1.%d", 10+z),
			},
			Light: device.Descriptor{
				ID: fmt.Sprintf("house/z%d/light", z), Name: fmt.Sprintf("Room Light %d", z+1),
				Class: device.ClassLight, Zone: z, Rating: houseLightRating,
				Addr: fmt.Sprintf("192.168.1.%d", 50+z),
			},
		})
		res.MRT.Rules = append(res.MRT.Rules, variedRules("house", z, owners[z], seed)...)
	}
	return res, res.Validate()
}

// Dorms builds the 50-apartment campus dataset (100 rooms of 10 m², two
// split units per apartment) with a 480,000 kWh three-year budget.
func Dorms(seed uint64) (*Residence, error) {
	wx, err := weather.New(seed, weather.Nicosia())
	if err != nil {
		return nil, err
	}
	const nZones = 100 // 50 apartments × 2 rooms
	res := &Residence{
		Name:    "Dorms",
		IFTTT:   rules.FlatIFTTT(),
		Years:   3,
		Weather: wx,
	}
	budget, _ := rules.FlatMRT().BudgetLimit("Energy Dorms")
	res.Budget = budget
	res.Profile = ecp.Flat().Scale(budget.KWh() / 11000)
	res.Profile.Name = "Dorms"
	for z := 0; z < nZones; z++ {
		gen, err := trace.NewGenerator(wx, evaluationZone(seed+uint64(z)*104729))
		if err != nil {
			return nil, err
		}
		apt, room := z/2+1, z%2+1
		res.Zones = append(res.Zones, Zone{
			ID:      z,
			Name:    fmt.Sprintf("Apt %d Room %d", apt, room),
			Ambient: gen,
			HVAC: device.Descriptor{
				ID: fmt.Sprintf("dorms/z%d/hvac", z), Name: fmt.Sprintf("Apt %d Unit %d", apt, room),
				Class: device.ClassHVAC, Zone: z, Rating: dormHVACRating,
				Addr: fmt.Sprintf("10.20.%d.%d", apt, room),
			},
			Light: device.Descriptor{
				ID: fmt.Sprintf("dorms/z%d/light", z), Name: fmt.Sprintf("Apt %d Light %d", apt, room),
				Class: device.ClassLight, Zone: z, Rating: dormLightRating,
				Addr: fmt.Sprintf("10.20.%d.%d", apt, 100+room),
			},
		})
		owner := fmt.Sprintf("Student %d", z+1)
		res.MRT.Rules = append(res.MRT.Rules, variedRules("dorms", z, owner, seed)...)
	}
	return res, res.Validate()
}

// variedRules returns the flat convenience rules re-targeted to a zone
// with deterministic uniform variations: window edges shifted by up to
// ±1 hour and desired values nudged, the paper's "uniformly random
// variations of the same table".
func variedRules(prefix string, zone int, owner string, seed uint64) []rules.MetaRule {
	base := rules.FlatMRT().Convenience()
	out := make([]rules.MetaRule, 0, len(base))
	for i, r := range base {
		h := varyHash(seed, uint64(zone)*16+uint64(i))
		r.ID = fmt.Sprintf("%s/z%d/%s", prefix, zone, r.ID[len("flat/"):])
		r.Zone = zone
		r.Owner = owner

		shift := int(h%3) - 1 // -1, 0, +1 hours
		r.Window = shiftWindow(r.Window, shift)

		switch r.Action {
		case rules.ActionSetTemperature:
			r.Value += float64(h>>2%3) - 1 // ±1 °C
		case rules.ActionSetLight:
			r.Value += 5 * (float64(h >> 4 % 3)) // 0, +5, +10
			if r.Value > 100 {
				r.Value = 100
			}
		}
		out = append(out, r)
	}
	return out
}

// shiftWindow moves a window by whole hours, keeping it valid.
func shiftWindow(w simclock.TimeWindow, hours int) simclock.TimeWindow {
	shift := func(h int) int { return ((h+hours)%24 + 24) % 24 }
	start := shift(w.StartHour)
	end := w.EndHour
	if end != 24 { // keep end-of-day windows anchored at midnight
		end = shift(w.EndHour)
		if end == 0 {
			end = 24
		}
	}
	out := simclock.TimeWindow{StartHour: start, EndHour: end}
	if out.Validate() != nil {
		return w // degenerate shift: keep the original
	}
	return out
}

// varyHash is the deterministic variation source.
func varyHash(seed, x uint64) uint64 {
	v := seed ^ (x * 0x9E3779B97F4A7C15)
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return v
}
