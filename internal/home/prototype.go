package home

import (
	"fmt"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/units"
	"github.com/imcf/imcf/internal/weather"
)

// PrototypeWeeklyBudget is the weekly energy limit one resident
// configured in the paper's prototype deployment (Table IV): 165 kWh.
const PrototypeWeeklyBudget = 165 * units.KilowattHour

// Prototype builds the three-person family deployment of the paper's
// prototype evaluation (Section III-F): each resident configures
// approximately three meta-rules for their own room, and the household
// shares a 165 kWh weekly budget.
func Prototype(seed uint64) (*Residence, error) {
	wx, err := weather.New(seed, weather.Nicosia())
	if err != nil {
		return nil, err
	}
	const nZones = 3
	names := [nZones]string{"Father", "Mother", "Daughter"}
	res := &Residence{
		Name:    "Prototype",
		IFTTT:   rules.FlatIFTTT(),
		Years:   3, // the residence outlives any one evaluation window
		Budget:  units.Energy(PrototypeWeeklyBudget.KWh() * 52 * 3),
		Profile: ecp.Flat().Scale(PrototypeWeeklyBudget.KWh() * 52 / 3666),
		Weather: wx,
	}
	res.Profile.Name = "Prototype"
	for z := 0; z < nZones; z++ {
		gen, err := trace.NewGenerator(wx, evaluationZone(seed+uint64(z)*6151))
		if err != nil {
			return nil, err
		}
		res.Zones = append(res.Zones, Zone{
			ID:      z,
			Name:    names[z] + "'s Room",
			Ambient: gen,
			HVAC: device.Descriptor{
				ID: fmt.Sprintf("proto/z%d/hvac", z), Name: names[z] + " Split Unit",
				Class: device.ClassHVAC, Zone: z, Rating: 700 * units.Watt,
				Addr: fmt.Sprintf("192.168.2.%d", 10+z),
			},
			Light: device.Descriptor{
				ID: fmt.Sprintf("proto/z%d/light", z), Name: names[z] + " Light",
				Class: device.ClassLight, Zone: z, Rating: 45 * units.Watt,
				Addr: fmt.Sprintf("192.168.2.%d", 50+z),
			},
		})
	}
	window := func(s, e int) simclock.TimeWindow { return simclock.TimeWindow{StartHour: s, EndHour: e} }
	// Each resident has one uncontested personal rule, one light rule,
	// and an evening-heat rule that competes with the other residents
	// for the shared budget during the 18:00–23:00 peak. The evening
	// rules are symmetric (same setpoint, same window, same unit
	// rating) so the planner's drops rotate fairly among residents.
	res.MRT = rules.MRT{Rules: []rules.MetaRule{
		// Father.
		{ID: "proto/father/night-heat", Name: "Night Heat", Window: window(1, 5), Action: rules.ActionSetTemperature, Value: 23, Zone: 0, Owner: "Father", Priority: 1},
		{ID: "proto/father/evening-heat", Name: "Evening Heat", Window: window(18, 23), Action: rules.ActionSetTemperature, Value: 23, Zone: 0, Owner: "Father", Priority: 2},
		{ID: "proto/father/evening-lights", Name: "Evening Lights", Window: window(18, 23), Action: rules.ActionSetLight, Value: 40, Zone: 0, Owner: "Father", Priority: 3},
		// Mother.
		{ID: "proto/mother/morning-heat", Name: "Morning Heat", Window: window(6, 8), Action: rules.ActionSetTemperature, Value: 22, Zone: 1, Owner: "Mother", Priority: 4},
		{ID: "proto/mother/evening-heat", Name: "Evening Heat", Window: window(18, 23), Action: rules.ActionSetTemperature, Value: 23, Zone: 1, Owner: "Mother", Priority: 5},
		{ID: "proto/mother/morning-lights", Name: "Morning Lights", Window: window(6, 9), Action: rules.ActionSetLight, Value: 35, Zone: 1, Owner: "Mother", Priority: 6},
		// Daughter.
		{ID: "proto/daughter/day-heat", Name: "Study Heat", Window: window(9, 13), Action: rules.ActionSetTemperature, Value: 22, Zone: 2, Owner: "Daughter", Priority: 7},
		{ID: "proto/daughter/evening-heat", Name: "Evening Heat", Window: window(18, 23), Action: rules.ActionSetTemperature, Value: 23, Zone: 2, Owner: "Daughter", Priority: 8},
		{ID: "proto/daughter/night-lights", Name: "Night Lights", Window: window(19, 24), Action: rules.ActionSetLight, Value: 35, Zone: 2, Owner: "Daughter", Priority: 9},
		// The shared budget meta-rule.
		{ID: "proto/budget", Name: "Energy Week", Action: rules.ActionSetKWhLimit, Value: PrototypeWeeklyBudget.KWh(), Priority: 10},
	}}
	return res, res.Validate()
}
