package rules

import (
	"fmt"
	"sort"

	"github.com/imcf/imcf/internal/simclock"
)

// This file implements Meta-Rule Table conflict analysis. The paper's
// introduction motivates IMCF with exactly these deficiencies: "rules
// competing or throwing a clash with each other, rules becoming
// infeasible to be satisfied and/or rules that their behavior depends on
// the output of other rules", citing firewall rule-inference work.
// AnalyzeConflicts surfaces them before the planner ever runs.

// ConflictKind classifies a detected problem.
type ConflictKind int

// Conflict kinds.
const (
	// ConflictClash: two rules drive the same zone's device class to
	// different values during overlapping hours — the controller would
	// thrash between setpoints.
	ConflictClash ConflictKind = iota + 1
	// ConflictShadow: two rules agree on the value over overlapping
	// hours — one is redundant for those hours.
	ConflictShadow
	// ConflictBudgetInfeasible: the necessity rules alone exceed an
	// energy budget meta-rule, so the budget can never be met.
	ConflictBudgetInfeasible
	// ConflictNoBudget: the table has convenience rules but no budget
	// meta-rule — nothing bounds consumption, MR behaviour results.
	ConflictNoBudget
)

// String returns the kind name.
func (k ConflictKind) String() string {
	switch k {
	case ConflictClash:
		return "clash"
	case ConflictShadow:
		return "shadow"
	case ConflictBudgetInfeasible:
		return "budget-infeasible"
	case ConflictNoBudget:
		return "no-budget"
	default:
		return fmt.Sprintf("ConflictKind(%d)", int(k))
	}
}

// Conflict is one detected problem.
type Conflict struct {
	Kind ConflictKind `json:"kind"`
	// RuleIDs names the rules involved (one or two).
	RuleIDs []string `json:"ruleIds"`
	// Hours lists the overlapping hours of day for clash/shadow kinds.
	Hours []int `json:"hours,omitempty"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

// EnergyRater reports a rule's energy need per active hour in kWh; the
// caller supplies it because device ratings live outside this package.
// Return 0 for rules whose device is unknown.
type EnergyRater func(MetaRule) float64

// AnalyzeConflicts inspects a validated MRT and reports every detected
// conflict, deterministically ordered. rater may be nil, which skips the
// budget-feasibility analysis.
func AnalyzeConflicts(t MRT, rater EnergyRater) ([]Conflict, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var out []Conflict
	conv := t.Convenience()

	// Pairwise clash/shadow detection per (zone, device class).
	for i := 0; i < len(conv); i++ {
		for j := i + 1; j < len(conv); j++ {
			a, b := conv[i], conv[j]
			if a.Zone != b.Zone || a.Action != b.Action {
				continue
			}
			overlap := overlapHours(a.Window, b.Window)
			if len(overlap) == 0 {
				continue
			}
			kind := ConflictShadow
			detail := fmt.Sprintf("%q and %q both set %v %g in zone %d during %d overlapping hour(s)",
				a.Name, b.Name, a.Action, a.Value, a.Zone, len(overlap))
			if a.Value != b.Value {
				kind = ConflictClash
				detail = fmt.Sprintf("%q sets %v %g but %q sets %g in zone %d during %d overlapping hour(s)",
					a.Name, a.Action, a.Value, b.Name, b.Value, a.Zone, len(overlap))
			}
			out = append(out, Conflict{
				Kind:    kind,
				RuleIDs: []string{a.ID, b.ID},
				Hours:   overlap,
				Detail:  detail,
			})
		}
	}

	// Budget analyses.
	var budgets []MetaRule
	for _, r := range t.Rules {
		if r.IsBudget() {
			budgets = append(budgets, r)
		}
	}
	if len(budgets) == 0 && len(conv) > 0 {
		out = append(out, Conflict{
			Kind:   ConflictNoBudget,
			Detail: "the table has convenience rules but no kWh-limit meta-rule; consumption is unbounded",
		})
	}
	if rater != nil && len(budgets) > 0 {
		// Daily energy the necessity rules demand unconditionally.
		var necessityDaily float64
		var necessityIDs []string
		for _, r := range conv {
			if !r.Necessity {
				continue
			}
			necessityDaily += rater(r) * float64(r.Window.Hours())
			necessityIDs = append(necessityIDs, r.ID)
		}
		if necessityDaily > 0 {
			for _, b := range budgets {
				// Budget meta-rules in this codebase are period
				// totals; compare per-day assuming the paper's
				// three-year horizon when the value is large, else a
				// weekly horizon (the prototype's convention).
				days := 3.0 * 372
				if b.Value <= 1000 {
					days = 7
				}
				if necessityDaily*days > b.Value {
					out = append(out, Conflict{
						Kind:    ConflictBudgetInfeasible,
						RuleIDs: append(append([]string{}, necessityIDs...), b.ID),
						Detail: fmt.Sprintf("necessity rules demand ≈%.0f kWh over %q's horizon, exceeding its %g kWh limit",
							necessityDaily*days, b.Name, b.Value),
					})
				}
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return fmt.Sprint(out[i].RuleIDs) < fmt.Sprint(out[j].RuleIDs)
	})
	return out, nil
}

// overlapHours returns the hours of day two windows share, sorted.
func overlapHours(a, b simclock.TimeWindow) []int {
	var out []int
	for h := 0; h < 24; h++ {
		if a.Contains(h) && b.Contains(h) {
			out = append(out, h)
		}
	}
	return out
}
