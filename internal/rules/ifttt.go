package rules

import (
	"fmt"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/weather"
)

// Trigger is the "IF THIS" half of an IFTTT rule.
type Trigger int

// Trigger kinds, matching the paper's Table III "IF" column.
const (
	TrigSeason Trigger = iota + 1
	TrigWeather
	TrigTemperature
	TrigLight
	TrigDoor
)

// String returns the trigger name as printed in Table III.
func (t Trigger) String() string {
	switch t {
	case TrigSeason:
		return "Season"
	case TrigWeather:
		return "Weather"
	case TrigTemperature:
		return "Temperature"
	case TrigLight:
		return "Light Level"
	case TrigDoor:
		return "Door"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// Comparison relates a sensed value to a rule threshold.
type Comparison int

// Comparisons used by Table III's numeric triggers.
const (
	CmpEquals Comparison = iota
	CmpGreater
	CmpLess
)

// IFTTTRule is one trigger-action rule: IF <Trigger> <condition> THEN
// <Action> <Value>. It is the building block of the IFTTT baseline.
type IFTTTRule struct {
	Trigger Trigger `json:"trigger"`
	// Exactly one of the following condition fields is meaningful,
	// selected by Trigger.
	Season    simclock.Season   `json:"season,omitempty"`    // TrigSeason
	Condition weather.Condition `json:"condition,omitempty"` // TrigWeather
	Cmp       Comparison        `json:"cmp,omitempty"`       // TrigTemperature, TrigLight
	Threshold float64           `json:"threshold,omitempty"` // TrigTemperature, TrigLight
	DoorOpen  bool              `json:"doorOpen,omitempty"`  // TrigDoor

	Action Action  `json:"action"`
	Value  float64 `json:"value"`
}

// Validate reports whether the rule is well-formed.
func (r IFTTTRule) Validate() error {
	if r.Trigger < TrigSeason || r.Trigger > TrigDoor {
		return fmt.Errorf("rules: ifttt rule has invalid trigger %d", r.Trigger)
	}
	if !r.Action.Valid() || r.Action == ActionSetKWhLimit {
		return fmt.Errorf("rules: ifttt rule has invalid action %v", r.Action)
	}
	if (r.Trigger == TrigTemperature || r.Trigger == TrigLight) && r.Cmp == CmpEquals {
		return fmt.Errorf("rules: ifttt numeric trigger %v requires > or < comparison", r.Trigger)
	}
	return nil
}

// Matches reports whether the rule's trigger fires in the environment.
func (r IFTTTRule) Matches(env Env) bool {
	switch r.Trigger {
	case TrigSeason:
		return env.Season == r.Season
	case TrigWeather:
		return env.Condition == r.Condition
	case TrigTemperature:
		return compare(env.OutdoorTemp, r.Cmp, r.Threshold)
	case TrigLight:
		return compare(env.Light, r.Cmp, r.Threshold)
	case TrigDoor:
		return env.DoorOpen == r.DoorOpen
	default:
		return false
	}
}

func compare(v float64, cmp Comparison, threshold float64) bool {
	switch cmp {
	case CmpGreater:
		return v > threshold
	case CmpLess:
		return v < threshold
	default:
		return v == threshold
	}
}

// String formats the rule as a Table III row.
func (r IFTTTRule) String() string {
	var cond string
	switch r.Trigger {
	case TrigSeason:
		cond = r.Season.String()
	case TrigWeather:
		cond = r.Condition.String()
	case TrigTemperature, TrigLight:
		op := ">"
		if r.Cmp == CmpLess {
			op = "<"
		}
		cond = fmt.Sprintf("%s%g", op, r.Threshold)
	case TrigDoor:
		if r.DoorOpen {
			cond = "Open"
		} else {
			cond = "Closed"
		}
	}
	return fmt.Sprintf("IF %s %s THEN %s %g", r.Trigger, cond, r.Action, r.Value)
}

// Outputs resolves the trigger-action rule set against an environment:
// for each action kind, the value the IFTTT controller would set. Rules
// are evaluated in table order and later matching rules overwrite
// earlier ones, the standard last-writer-wins applet semantics.
func Outputs(ruleSet []IFTTTRule, env Env) map[Action]float64 {
	out := make(map[Action]float64)
	for _, r := range ruleSet {
		if r.Matches(env) {
			out[r.Action] = r.Value
		}
	}
	return out
}

// FlatIFTTT returns the paper's Table III: the ten IFTTT configurations
// used in the flat experiment.
func FlatIFTTT() []IFTTTRule {
	return []IFTTTRule{
		{Trigger: TrigSeason, Season: simclock.Summer, Action: ActionSetTemperature, Value: 25},
		{Trigger: TrigSeason, Season: simclock.Winter, Action: ActionSetTemperature, Value: 20},
		{Trigger: TrigWeather, Condition: weather.Sunny, Action: ActionSetTemperature, Value: 20},
		{Trigger: TrigWeather, Condition: weather.Cloudy, Action: ActionSetTemperature, Value: 22},
		{Trigger: TrigWeather, Condition: weather.Sunny, Action: ActionSetLight, Value: 0},
		{Trigger: TrigWeather, Condition: weather.Cloudy, Action: ActionSetLight, Value: 40},
		{Trigger: TrigTemperature, Cmp: CmpGreater, Threshold: 30, Action: ActionSetTemperature, Value: 23},
		{Trigger: TrigTemperature, Cmp: CmpLess, Threshold: 10, Action: ActionSetTemperature, Value: 24},
		{Trigger: TrigLight, Cmp: CmpGreater, Threshold: 15, Action: ActionSetLight, Value: 9},
		{Trigger: TrigDoor, DoorOpen: true, Action: ActionSetLight, Value: 0},
	}
}
