package rules

import (
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/simclock"
)

func window(s, e int) simclock.TimeWindow { return simclock.TimeWindow{StartHour: s, EndHour: e} }

func TestFlatMRTHasNoConflicts(t *testing.T) {
	// The paper's Table II is conflict-free by construction: its
	// windows are disjoint per action kind and it declares budgets.
	conflicts, err := AnalyzeConflicts(FlatMRT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("Table II reported conflicts: %+v", conflicts)
	}
}

func TestClashDetection(t *testing.T) {
	// The paper's own example: a rule that cools when >18°C clashes
	// with the exhausted budget — here modelled as two temperature
	// rules fighting over the same zone and hours.
	mrt := MRT{Rules: []MetaRule{
		{ID: "a", Name: "Warm Evening", Window: window(18, 23), Action: ActionSetTemperature, Value: 24},
		{ID: "b", Name: "Cool Evening", Window: window(20, 22), Action: ActionSetTemperature, Value: 18},
		{ID: "cap", Name: "Cap", Action: ActionSetKWhLimit, Value: 100},
	}}
	conflicts, err := AnalyzeConflicts(mrt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	c := conflicts[0]
	if c.Kind != ConflictClash {
		t.Errorf("kind = %v", c.Kind)
	}
	if len(c.Hours) != 2 || c.Hours[0] != 20 || c.Hours[1] != 21 {
		t.Errorf("hours = %v, want [20 21]", c.Hours)
	}
	if !strings.Contains(c.Detail, "Warm Evening") || !strings.Contains(c.Detail, "Cool Evening") {
		t.Errorf("detail = %q", c.Detail)
	}
}

func TestClashRequiresSameZoneAndAction(t *testing.T) {
	mrt := MRT{Rules: []MetaRule{
		{ID: "a", Name: "A", Window: window(18, 23), Action: ActionSetTemperature, Value: 24, Zone: 0},
		{ID: "b", Name: "B", Window: window(18, 23), Action: ActionSetTemperature, Value: 18, Zone: 1},
		{ID: "c", Name: "C", Window: window(18, 23), Action: ActionSetLight, Value: 18, Zone: 0},
		{ID: "cap", Name: "Cap", Action: ActionSetKWhLimit, Value: 100},
	}}
	conflicts, err := AnalyzeConflicts(mrt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("cross-zone/cross-action rules reported: %+v", conflicts)
	}
}

func TestShadowDetection(t *testing.T) {
	mrt := MRT{Rules: []MetaRule{
		{ID: "a", Name: "Morning", Window: window(6, 10), Action: ActionSetLight, Value: 40},
		{ID: "b", Name: "Breakfast", Window: window(7, 9), Action: ActionSetLight, Value: 40},
		{ID: "cap", Name: "Cap", Action: ActionSetKWhLimit, Value: 100},
	}}
	conflicts, err := AnalyzeConflicts(mrt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 || conflicts[0].Kind != ConflictShadow {
		t.Fatalf("conflicts = %+v", conflicts)
	}
}

func TestNoBudgetDetection(t *testing.T) {
	mrt := MRT{Rules: []MetaRule{
		{ID: "a", Name: "A", Window: window(6, 10), Action: ActionSetLight, Value: 40},
	}}
	conflicts, err := AnalyzeConflicts(mrt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 || conflicts[0].Kind != ConflictNoBudget {
		t.Fatalf("conflicts = %+v", conflicts)
	}
}

func TestBudgetInfeasibleDetection(t *testing.T) {
	mrt := MRT{Rules: []MetaRule{
		// A 24h necessity rule at 0.6 kWh/h ≈ 14.4 kWh/day ≈ 100/week.
		{ID: "fridge", Name: "Med Fridge", Window: window(0, 24), Action: ActionSetTemperature, Value: 8, Necessity: true},
		{ID: "cap", Name: "Weekly Cap", Action: ActionSetKWhLimit, Value: 50}, // ≤1000 → weekly horizon
	}}
	rater := func(r MetaRule) float64 { return 0.6 }
	conflicts, err := AnalyzeConflicts(mrt, rater)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range conflicts {
		if c.Kind == ConflictBudgetInfeasible {
			found = true
			if !strings.Contains(c.Detail, "Weekly Cap") {
				t.Errorf("detail = %q", c.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("infeasible budget not detected: %+v", conflicts)
	}

	// A generous cap is feasible.
	mrt.Rules[1].Value = 500
	conflicts, err = AnalyzeConflicts(mrt, rater)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conflicts {
		if c.Kind == ConflictBudgetInfeasible {
			t.Errorf("feasible budget flagged: %+v", c)
		}
	}
}

func TestAnalyzeConflictsInvalidTable(t *testing.T) {
	bad := MRT{Rules: []MetaRule{{ID: "x", Action: ActionSetLight, Value: 999}}}
	if _, err := AnalyzeConflicts(bad, nil); err == nil {
		t.Error("invalid table accepted")
	}
}

func TestConflictKindString(t *testing.T) {
	for k, want := range map[ConflictKind]string{
		ConflictClash:            "clash",
		ConflictShadow:           "shadow",
		ConflictBudgetInfeasible: "budget-infeasible",
		ConflictNoBudget:         "no-budget",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
