package rules

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

// This file implements the textual Meta-Rule Table format, the
// configuration-file face of IMCF in the spirit of openHAB's .rules and
// .items files. A table is a line-oriented document:
//
//	# The flat Meta-Rule Table
//	rule "Night Heat"     window 01:00-07:00 set temperature 25 zone 0 owner "Anna" priority 1
//	rule "Morning Lights" window 04:00-09:00 set light 40
//	rule "Med Fridge"     window 00:00-24:00 set temperature 8 necessity
//	budget "Energy Flat"  limit 11000 kWh
//
// Lines are independent; '#' starts a comment; names may be quoted to
// contain spaces. ParseMRT and FormatMRT round-trip: parsing the output
// of FormatMRT yields an identical table.

// ParseMRT parses the textual MRT format. Errors carry line numbers.
func ParseMRT(src string) (MRT, error) {
	var mrt MRT
	used := make(map[string]bool)
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		fields, err := splitQuoted(line)
		if err != nil {
			return MRT{}, fmt.Errorf("rules: line %d: %w", ln+1, err)
		}
		if len(fields) == 0 {
			continue
		}
		var rule MetaRule
		switch fields[0] {
		case "rule":
			rule, err = parseRuleLine(fields[1:])
		case "budget":
			rule, err = parseBudgetLine(fields[1:])
		default:
			err = fmt.Errorf("expected 'rule' or 'budget', got %q", fields[0])
		}
		if err != nil {
			return MRT{}, fmt.Errorf("rules: line %d: %w", ln+1, err)
		}
		if rule.ID == "" {
			rule.ID = deriveID(rule.Name)
			// Same-named rules get disambiguating suffixes.
			for n := 2; used[rule.ID]; n++ {
				rule.ID = fmt.Sprintf("%s-%d", deriveID(rule.Name), n)
			}
		}
		used[rule.ID] = true
		if rule.Priority == 0 {
			rule.Priority = len(mrt.Rules) + 1
		}
		mrt.Rules = append(mrt.Rules, rule)
	}
	if err := mrt.Validate(); err != nil {
		return MRT{}, err
	}
	return mrt, nil
}

// FormatMRT renders a table in the textual format, rules in priority
// order.
func FormatMRT(mrt MRT) string {
	rs := make([]MetaRule, len(mrt.Rules))
	copy(rs, mrt.Rules)
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Priority < rs[j].Priority })

	var b strings.Builder
	for _, r := range rs {
		if r.IsBudget() {
			fmt.Fprintf(&b, "budget %s limit %s kWh", quoteIfNeeded(r.Name), trimFloat(r.Value))
		} else {
			action := "temperature"
			if r.Action == ActionSetLight {
				action = "light"
			}
			fmt.Fprintf(&b, "rule %s window %02d:00-%02d:00 set %s %s",
				quoteIfNeeded(r.Name), r.Window.StartHour, r.Window.EndHour, action, trimFloat(r.Value))
			if r.Zone != 0 {
				fmt.Fprintf(&b, " zone %d", r.Zone)
			}
			if r.Owner != "" {
				fmt.Fprintf(&b, " owner %s", quoteIfNeeded(r.Owner))
			}
			if r.Necessity {
				b.WriteString(" necessity")
			}
		}
		fmt.Fprintf(&b, " priority %d", r.Priority)
		if r.ID != deriveID(r.Name) { // keep explicit IDs that differ from the derived default
			fmt.Fprintf(&b, " id %s", quoteIfNeeded(r.ID))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func parseRuleLine(fields []string) (MetaRule, error) {
	var r MetaRule
	if len(fields) == 0 {
		return r, fmt.Errorf("rule needs a name")
	}
	r.Name = fields[0]
	fields = fields[1:]
	for len(fields) > 0 {
		switch key := fields[0]; key {
		case "window":
			if len(fields) < 2 {
				return r, fmt.Errorf("window needs HH:00-HH:00")
			}
			w, err := parseWindow(fields[1])
			if err != nil {
				return r, err
			}
			r.Window = w
			fields = fields[2:]
		case "set":
			if len(fields) < 3 {
				return r, fmt.Errorf("set needs an action and a value")
			}
			switch fields[1] {
			case "temperature":
				r.Action = ActionSetTemperature
			case "light":
				r.Action = ActionSetLight
			default:
				return r, fmt.Errorf("unknown action %q (want temperature or light)", fields[1])
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return r, fmt.Errorf("bad value %q: %w", fields[2], err)
			}
			r.Value = v
			fields = fields[3:]
		case "zone":
			if len(fields) < 2 {
				return r, fmt.Errorf("zone needs an index")
			}
			z, err := strconv.Atoi(fields[1])
			if err != nil {
				return r, fmt.Errorf("bad zone %q: %w", fields[1], err)
			}
			r.Zone = z
			fields = fields[2:]
		case "owner":
			if len(fields) < 2 {
				return r, fmt.Errorf("owner needs a name")
			}
			r.Owner = fields[1]
			fields = fields[2:]
		case "priority":
			if len(fields) < 2 {
				return r, fmt.Errorf("priority needs a number")
			}
			p, err := strconv.Atoi(fields[1])
			if err != nil {
				return r, fmt.Errorf("bad priority %q: %w", fields[1], err)
			}
			r.Priority = p
			fields = fields[2:]
		case "id":
			if len(fields) < 2 {
				return r, fmt.Errorf("id needs a value")
			}
			r.ID = fields[1]
			fields = fields[2:]
		case "necessity":
			r.Necessity = true
			fields = fields[1:]
		default:
			return r, fmt.Errorf("unknown keyword %q", key)
		}
	}
	if r.Action == 0 {
		return r, fmt.Errorf("rule %q has no 'set' clause", r.Name)
	}
	if r.Window == (simclock.TimeWindow{}) {
		return r, fmt.Errorf("rule %q has no 'window' clause", r.Name)
	}
	return r, nil
}

func parseBudgetLine(fields []string) (MetaRule, error) {
	var r MetaRule
	r.Action = ActionSetKWhLimit
	if len(fields) == 0 {
		return r, fmt.Errorf("budget needs a name")
	}
	r.Name = fields[0]
	fields = fields[1:]
	for len(fields) > 0 {
		switch key := fields[0]; key {
		case "limit":
			if len(fields) < 2 {
				return r, fmt.Errorf("limit needs a value")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return r, fmt.Errorf("bad limit %q: %w", fields[1], err)
			}
			r.Value = v
			fields = fields[2:]
			// Optional unit suffix. Monetary limits convert to energy
			// at the paper's EU tariff (≈0.20 €/kWh): "limit 100 EUR"
			// means the energy 100 € buys.
			if len(fields) > 0 {
				switch fields[0] {
				case "kWh", "kwh":
					fields = fields[1:]
				case "EUR", "eur", "euro":
					r.Value = units.EUTariff.Energy(units.Money(r.Value)).KWh()
					fields = fields[1:]
				}
			}
		case "priority":
			if len(fields) < 2 {
				return r, fmt.Errorf("priority needs a number")
			}
			p, err := strconv.Atoi(fields[1])
			if err != nil {
				return r, fmt.Errorf("bad priority %q: %w", fields[1], err)
			}
			r.Priority = p
			fields = fields[2:]
		case "id":
			if len(fields) < 2 {
				return r, fmt.Errorf("id needs a value")
			}
			r.ID = fields[1]
			fields = fields[2:]
		default:
			return r, fmt.Errorf("unknown keyword %q", key)
		}
	}
	if r.Value == 0 {
		return r, fmt.Errorf("budget %q has no 'limit' clause", r.Name)
	}
	return r, nil
}

// parseWindow parses "HH:00-HH:00" (or "HH:00-24:00").
func parseWindow(s string) (simclock.TimeWindow, error) {
	var w simclock.TimeWindow
	parts := strings.Split(s, "-")
	if len(parts) != 2 {
		return w, fmt.Errorf("bad window %q (want HH:00-HH:00)", s)
	}
	parse := func(p string) (int, error) {
		hm := strings.Split(p, ":")
		if len(hm) != 2 || hm[1] != "00" {
			return 0, fmt.Errorf("bad time %q (whole hours only)", p)
		}
		return strconv.Atoi(hm[0])
	}
	var err error
	if w.StartHour, err = parse(parts[0]); err != nil {
		return w, err
	}
	if w.EndHour, err = parse(parts[1]); err != nil {
		return w, err
	}
	if err := w.Validate(); err != nil {
		return w, err
	}
	return w, nil
}

// stripComment removes a trailing # comment that is not inside quotes.
func stripComment(line string) string {
	inQuote := false
	for i, c := range line {
		switch c {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// splitQuoted splits on whitespace, honouring double-quoted strings.
func splitQuoted(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, c := range line {
		switch {
		case c == '"':
			if inQuote {
				out = append(out, cur.String()) // may be empty; quoted empty is explicit
				cur.Reset()
			} else {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (c == ' ' || c == '\t' || c == '\r'):
			flush()
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return out, nil
}

// deriveID builds a stable rule ID from the name.
func deriveID(name string) string {
	slug := strings.ToLower(name)
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r == ' ' || r == '-' || r == '_' || r == '/':
			return '-'
		default:
			return -1
		}
	}, slug)
	slug = strings.Trim(slug, "-")
	if slug == "" {
		slug = "rule"
	}
	return "mrt/" + slug
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"#") || s == "" {
		return strconv.Quote(s)
	}
	return s
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
