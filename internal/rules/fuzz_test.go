package rules

import (
	"strings"
	"testing"
)

// FuzzParseMRT asserts the textual-format parser never panics, and that
// everything it accepts survives a format→parse round trip.
func FuzzParseMRT(f *testing.F) {
	f.Add(sampleMRT)
	f.Add(FormatMRT(FlatMRT()))
	f.Add(`rule "X" window 01:00-07:00 set temperature 25`)
	f.Add(`budget "B" limit 100 kWh`)
	f.Add(`rule "unterminated`)
	f.Add("rule \"A\" window 22:00-06:00 set light 10 necessity\n# comment")
	f.Add(strings.Repeat(`rule "R" window 01:00-02:00 set light 1`+"\n", 40))

	f.Fuzz(func(t *testing.T, src string) {
		mrt, err := ParseMRT(src)
		if err != nil {
			return
		}
		if err := mrt.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		text := FormatMRT(mrt)
		back, err := ParseMRT(text)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
		}
		if len(back.Rules) != len(mrt.Rules) {
			t.Fatalf("round trip changed rule count: %d vs %d", len(back.Rules), len(mrt.Rules))
		}
	})
}
