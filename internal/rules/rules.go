// Package rules defines the two rule languages of the IMCF system: the
// Meta-Rule Table (MRT) of convenience preferences that the Energy
// Planner filters, and the IFTTT-style trigger-action rules used as the
// energy-oblivious baseline. It also provides the paper's exact Table II
// (flat MRT) and Table III (IFTTT configuration) contents and the
// convenience-error model used by the F_CE metric.
package rules

import (
	"encoding/json"
	"fmt"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
	"github.com/imcf/imcf/internal/weather"
)

// Action is what a rule does when it fires.
type Action int

// Rule actions, matching the paper's Table II "Action" column.
const (
	ActionSetTemperature Action = iota + 1
	ActionSetLight
	ActionSetKWhLimit
)

// String returns the action name as printed in the paper's tables.
func (a Action) String() string {
	switch a {
	case ActionSetTemperature:
		return "Set Temperature"
	case ActionSetLight:
		return "Set Light"
	case ActionSetKWhLimit:
		return "Set kWh Limit"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Valid reports whether a is a known action.
func (a Action) Valid() bool { return a >= ActionSetTemperature && a <= ActionSetKWhLimit }

// DeviceClass returns the device class the action targets, or false for
// actions (like budget limits) that target no device.
func (a Action) DeviceClass() (device.Class, bool) {
	switch a {
	case ActionSetTemperature:
		return device.ClassHVAC, true
	case ActionSetLight:
		return device.ClassLight, true
	default:
		return 0, false
	}
}

// MetaRule is one row of a Meta-Rule Table: a convenience preference
// ("Night Heat, 01:00–07:00, Set Temperature 25") or an energy budget
// meta-rule ("Energy Flat, three years, Set kWh Limit 11000").
type MetaRule struct {
	// ID is unique within an MRT.
	ID string `json:"id"`
	// Name is the human description ("Night Heat").
	Name string `json:"name"`
	// Window is the daily recurrence window; ignored for budget rules.
	Window simclock.TimeWindow `json:"window"`
	// Action and Value define the desired output Ω.
	Action Action  `json:"action"`
	Value  float64 `json:"value"`
	// Zone is the zone (room) whose devices the rule drives.
	Zone int `json:"zone"`
	// Owner attributes the rule to a resident, for per-resident
	// convenience accounting (Table V). Optional.
	Owner string `json:"owner,omitempty"`
	// Priority orders rules for reporting; lower is more important.
	Priority int `json:"priority"`
	// Necessity marks a rule that "should always be executed
	// regardless of whether the long-term target is met" (Section I-B
	// of the paper): the planner never drops it; its energy is
	// deducted from the budget before convenience rules compete.
	Necessity bool `json:"necessity,omitempty"`
}

// Validate reports whether the rule is well-formed.
func (r MetaRule) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("rules: meta-rule %q missing ID", r.Name)
	}
	if !r.Action.Valid() {
		return fmt.Errorf("rules: meta-rule %s: invalid action %d", r.ID, r.Action)
	}
	switch r.Action {
	case ActionSetTemperature:
		if r.Value < -20 || r.Value > 40 {
			return fmt.Errorf("rules: meta-rule %s: temperature %v outside [-20,40]", r.ID, r.Value)
		}
	case ActionSetLight:
		if r.Value < 0 || r.Value > 100 {
			return fmt.Errorf("rules: meta-rule %s: light level %v outside [0,100]", r.ID, r.Value)
		}
	case ActionSetKWhLimit:
		if r.Value <= 0 {
			return fmt.Errorf("rules: meta-rule %s: kWh limit %v not positive", r.ID, r.Value)
		}
		return nil // budget rules have no window or zone constraints
	}
	if err := r.Window.Validate(); err != nil {
		return fmt.Errorf("rules: meta-rule %s: %w", r.ID, err)
	}
	if r.Zone < 0 {
		return fmt.Errorf("rules: meta-rule %s: negative zone", r.ID)
	}
	return nil
}

// IsBudget reports whether the rule is an energy-budget meta-rule rather
// than a convenience rule.
func (r MetaRule) IsBudget() bool { return r.Action == ActionSetKWhLimit }

// ActiveAt reports whether a convenience rule applies during the given
// hour of day. Budget rules are never "active" in the scheduling sense.
func (r MetaRule) ActiveAt(hour int) bool {
	return !r.IsBudget() && r.Window.Contains(hour)
}

// MRT is a Meta-Rule Table: the user's convenience rules plus budget
// meta-rules.
type MRT struct {
	Rules []MetaRule `json:"rules"`
}

// Validate checks every rule and ID uniqueness.
func (t MRT) Validate() error {
	seen := make(map[string]bool, len(t.Rules))
	for _, r := range t.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.ID] {
			return fmt.Errorf("rules: duplicate meta-rule ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

// Convenience returns the non-budget rules — both tentative-comfort
// rules and necessity rules — in table order. (The paper folds
// necessity rules into the same MRT; the planner distinguishes them by
// the Necessity flag.)
func (t MRT) Convenience() []MetaRule {
	var out []MetaRule
	for _, r := range t.Rules {
		if !r.IsBudget() {
			out = append(out, r)
		}
	}
	return out
}

// Necessities returns only the necessity rules.
func (t MRT) Necessities() []MetaRule {
	var out []MetaRule
	for _, r := range t.Rules {
		if !r.IsBudget() && r.Necessity {
			out = append(out, r)
		}
	}
	return out
}

// BudgetLimit returns the total energy limit declared by the named budget
// meta-rule, or false if absent.
func (t MRT) BudgetLimit(name string) (units.Energy, bool) {
	for _, r := range t.Rules {
		if r.IsBudget() && r.Name == name {
			return units.Energy(r.Value), true
		}
	}
	return 0, false
}

// MarshalJSON/UnmarshalJSON use the default struct encoding; MRT persists
// via the store package's JSON helpers.
var (
	_ json.Marshaler   = rawMRT{}
	_ json.Unmarshaler = (*rawMRT)(nil)
)

// rawMRT exists only to pin the JSON round-trip contract in tests.
type rawMRT struct{ MRT }

func (r rawMRT) MarshalJSON() ([]byte, error)  { return json.Marshal(r.MRT) }
func (r *rawMRT) UnmarshalJSON(b []byte) error { return json.Unmarshal(b, &r.MRT) }

// FlatMRT returns the paper's Table II: the Meta-Rule Table used in the
// flat experiments, including the three budget meta-rules.
func FlatMRT() MRT {
	return MRT{Rules: []MetaRule{
		{ID: "flat/night-heat", Name: "Night Heat", Window: simclock.TimeWindow{StartHour: 1, EndHour: 7}, Action: ActionSetTemperature, Value: 25, Priority: 1},
		{ID: "flat/morning-lights", Name: "Morning Lights", Window: simclock.TimeWindow{StartHour: 4, EndHour: 9}, Action: ActionSetLight, Value: 40, Priority: 2},
		{ID: "flat/day-heat", Name: "Day Heat", Window: simclock.TimeWindow{StartHour: 8, EndHour: 16}, Action: ActionSetTemperature, Value: 22, Priority: 3},
		{ID: "flat/midday-lights", Name: "Midday Lights", Window: simclock.TimeWindow{StartHour: 10, EndHour: 17}, Action: ActionSetLight, Value: 30, Priority: 4},
		{ID: "flat/afternoon-preheat", Name: "Afternoon Preheat", Window: simclock.TimeWindow{StartHour: 17, EndHour: 24}, Action: ActionSetTemperature, Value: 24, Priority: 5},
		{ID: "flat/cosmetic-lights", Name: "Cosmetic Lights", Window: simclock.TimeWindow{StartHour: 18, EndHour: 24}, Action: ActionSetLight, Value: 40, Priority: 6},
		{ID: "budget/flat", Name: "Energy Flat", Action: ActionSetKWhLimit, Value: 11000, Priority: 7},
		{ID: "budget/house", Name: "Energy House", Action: ActionSetKWhLimit, Value: 25500, Priority: 8},
		{ID: "budget/dorms", Name: "Energy Dorms", Action: ActionSetKWhLimit, Value: 480000, Priority: 9},
	}}
}

// ErrorModel parameterizes the convenience-error function ce: the
// normalization scale and the comfort deadband within which a deviation
// is imperceptible. These are the paper's "domain-specific operators".
type ErrorModel struct {
	// TempScale normalizes temperature deviations (°C) to [0,1].
	TempScale float64
	// TempDeadband is the deviation (°C) users do not perceive.
	TempDeadband float64
	// LightScale normalizes light deviations (dimmer units) to [0,1].
	LightScale float64
	// LightDeadband is the light deviation users do not perceive.
	LightDeadband float64
}

// DefaultErrorModel returns the calibrated model used in the evaluation.
func DefaultErrorModel() ErrorModel {
	return ErrorModel{
		TempScale:     7.5,
		TempDeadband:  3,
		LightScale:    32,
		LightDeadband: 8,
	}
}

// Validate reports whether the model is usable.
func (m ErrorModel) Validate() error {
	if m.TempScale <= 0 || m.LightScale <= 0 {
		return fmt.Errorf("rules: non-positive error scale in %+v", m)
	}
	if m.TempDeadband < 0 || m.LightDeadband < 0 {
		return fmt.Errorf("rules: negative deadband in %+v", m)
	}
	return nil
}

// Error returns the normalized convenience error ce ∈ [0,1] of a rule
// with desired output Ω=desired when the achieved output is actual:
// zero inside the deadband, then linear in |Ω−actual| up to the scale.
func (m ErrorModel) Error(a Action, desired, actual float64) float64 {
	var scale, dead float64
	switch a {
	case ActionSetTemperature:
		scale, dead = m.TempScale, m.TempDeadband
	case ActionSetLight:
		scale, dead = m.LightScale, m.LightDeadband
	default:
		return 0
	}
	delta := desired - actual
	if delta < 0 {
		delta = -delta
	}
	if delta <= dead {
		return 0
	}
	e := (delta - dead) / scale
	if e > 1 {
		return 1
	}
	return e
}

// Env is the environmental context an IFTTT rule is evaluated against.
type Env struct {
	Season      simclock.Season
	Condition   weather.Condition
	OutdoorTemp float64 // °C
	Light       float64 // ambient light 0–100
	DoorOpen    bool
}
