package rules

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/simclock"
)

func TestFlatMRTMatchesTable2(t *testing.T) {
	mrt := FlatMRT()
	if err := mrt.Validate(); err != nil {
		t.Fatal(err)
	}
	conv := mrt.Convenience()
	if len(conv) != 6 {
		t.Fatalf("flat MRT has %d convenience rules, want 6", len(conv))
	}
	want := []struct {
		name   string
		start  int
		end    int
		action Action
		value  float64
	}{
		{"Night Heat", 1, 7, ActionSetTemperature, 25},
		{"Morning Lights", 4, 9, ActionSetLight, 40},
		{"Day Heat", 8, 16, ActionSetTemperature, 22},
		{"Midday Lights", 10, 17, ActionSetLight, 30},
		{"Afternoon Preheat", 17, 24, ActionSetTemperature, 24},
		{"Cosmetic Lights", 18, 24, ActionSetLight, 40},
	}
	for i, w := range want {
		r := conv[i]
		if r.Name != w.name || r.Window.StartHour != w.start || r.Window.EndHour != w.end ||
			r.Action != w.action || r.Value != w.value {
			t.Errorf("rule %d = %+v, want %+v", i, r, w)
		}
	}
	for name, limit := range map[string]float64{"Energy Flat": 11000, "Energy House": 25500, "Energy Dorms": 480000} {
		got, ok := mrt.BudgetLimit(name)
		if !ok || got.KWh() != limit {
			t.Errorf("BudgetLimit(%s) = %v, %v; want %v", name, got, ok, limit)
		}
	}
	if _, ok := mrt.BudgetLimit("Energy Nowhere"); ok {
		t.Error("BudgetLimit of missing rule found")
	}
}

func TestMetaRuleValidate(t *testing.T) {
	good := MetaRule{ID: "r1", Name: "x", Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}, Action: ActionSetTemperature, Value: 22}
	if err := good.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	cases := []MetaRule{
		{Name: "no id", Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}, Action: ActionSetTemperature, Value: 22},
		{ID: "r", Action: Action(99), Value: 22, Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}},
		{ID: "r", Action: ActionSetTemperature, Value: 99, Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}},
		{ID: "r", Action: ActionSetLight, Value: 150, Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}},
		{ID: "r", Action: ActionSetKWhLimit, Value: -5},
		{ID: "r", Action: ActionSetTemperature, Value: 22, Window: simclock.TimeWindow{StartHour: 9, EndHour: 9}},
		{ID: "r", Action: ActionSetTemperature, Value: 22, Window: simclock.TimeWindow{StartHour: 1, EndHour: 5}, Zone: -1},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v) should not validate", i, r)
		}
	}
}

func TestMRTDuplicateIDs(t *testing.T) {
	mrt := MRT{Rules: []MetaRule{
		{ID: "dup", Action: ActionSetKWhLimit, Value: 100},
		{ID: "dup", Action: ActionSetKWhLimit, Value: 200},
	}}
	if err := mrt.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestActiveAt(t *testing.T) {
	r := MetaRule{ID: "r", Window: simclock.TimeWindow{StartHour: 1, EndHour: 7}, Action: ActionSetTemperature, Value: 25}
	if !r.ActiveAt(3) || r.ActiveAt(7) || r.ActiveAt(0) {
		t.Error("ActiveAt window logic wrong")
	}
	b := MetaRule{ID: "b", Action: ActionSetKWhLimit, Value: 100}
	if b.ActiveAt(3) {
		t.Error("budget rule reported active")
	}
}

func TestActionDeviceClass(t *testing.T) {
	if c, ok := ActionSetTemperature.DeviceClass(); !ok || c != device.ClassHVAC {
		t.Errorf("temperature class = %v, %v", c, ok)
	}
	if c, ok := ActionSetLight.DeviceClass(); !ok || c != device.ClassLight {
		t.Errorf("light class = %v, %v", c, ok)
	}
	if _, ok := ActionSetKWhLimit.DeviceClass(); ok {
		t.Error("budget action has a device class")
	}
}

func TestMRTJSONRoundTrip(t *testing.T) {
	mrt := FlatMRT()
	b, err := json.Marshal(mrt)
	if err != nil {
		t.Fatal(err)
	}
	var got MRT
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != len(mrt.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(got.Rules), len(mrt.Rules))
	}
	for i := range mrt.Rules {
		if got.Rules[i] != mrt.Rules[i] {
			t.Errorf("rule %d changed: %+v vs %+v", i, got.Rules[i], mrt.Rules[i])
		}
	}
}

func TestErrorModel(t *testing.T) {
	m := DefaultErrorModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inside the deadband: no perceptible error.
	if got := m.Error(ActionSetTemperature, 22, 23.5); got != 0 {
		t.Errorf("deadband error = %v, want 0", got)
	}
	// Beyond deadband: linear.
	if got := m.Error(ActionSetTemperature, 25, 18); got <= 0 || got >= 1 {
		t.Errorf("7°C deviation error = %v, want in (0,1)", got)
	}
	// Saturates at 1.
	if got := m.Error(ActionSetTemperature, 25, 0); got != 1 {
		t.Errorf("25°C deviation error = %v, want 1", got)
	}
	// Symmetric.
	if m.Error(ActionSetTemperature, 20, 26) != m.Error(ActionSetTemperature, 26, 20) {
		t.Error("error not symmetric")
	}
	// Light uses its own scale.
	if got := m.Error(ActionSetLight, 40, 0); got <= 0 {
		t.Errorf("dark room error = %v", got)
	}
	// Budget actions have no convenience error.
	if got := m.Error(ActionSetKWhLimit, 100, 0); got != 0 {
		t.Errorf("budget action error = %v", got)
	}
}

func TestErrorModelValidate(t *testing.T) {
	bad := DefaultErrorModel()
	bad.TempScale = 0
	if bad.Validate() == nil {
		t.Error("zero scale accepted")
	}
	bad = DefaultErrorModel()
	bad.LightDeadband = -1
	if bad.Validate() == nil {
		t.Error("negative deadband accepted")
	}
}

func TestPropertyErrorBoundedMonotone(t *testing.T) {
	m := DefaultErrorModel()
	f := func(desired, actual int8) bool {
		d, a := float64(desired)/4+20, float64(actual)/4+20
		e := m.Error(ActionSetTemperature, d, a)
		if e < 0 || e > 1 {
			return false
		}
		// Moving actual 1° further from desired never decreases error.
		var further float64
		if a >= d {
			further = a + 1
		} else {
			further = a - 1
		}
		return m.Error(ActionSetTemperature, d, further) >= e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
