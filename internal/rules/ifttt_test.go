package rules

import (
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/weather"
)

func TestFlatIFTTTMatchesTable3(t *testing.T) {
	ruleSet := FlatIFTTT()
	if len(ruleSet) != 10 {
		t.Fatalf("Table III has 10 rules, got %d", len(ruleSet))
	}
	for i, r := range ruleSet {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %d invalid: %v", i, err)
		}
	}
	wantStrings := []string{
		"IF Season Summer THEN Set Temperature 25",
		"IF Season Winter THEN Set Temperature 20",
		"IF Weather Sunny THEN Set Temperature 20",
		"IF Weather Cloudy THEN Set Temperature 22",
		"IF Weather Sunny THEN Set Light 0",
		"IF Weather Cloudy THEN Set Light 40",
		"IF Temperature >30 THEN Set Temperature 23",
		"IF Temperature <10 THEN Set Temperature 24",
		"IF Light Level >15 THEN Set Light 9",
		"IF Door Open THEN Set Light 0",
	}
	for i, w := range wantStrings {
		if got := ruleSet[i].String(); got != w {
			t.Errorf("rule %d = %q, want %q", i, got, w)
		}
	}
}

func TestIFTTTMatches(t *testing.T) {
	env := Env{
		Season:      simclock.Winter,
		Condition:   weather.Cloudy,
		OutdoorTemp: 5,
		Light:       20,
		DoorOpen:    false,
	}
	ruleSet := FlatIFTTT()
	// Winter rule fires, summer does not.
	if ruleSet[0].Matches(env) {
		t.Error("summer rule fired in winter")
	}
	if !ruleSet[1].Matches(env) {
		t.Error("winter rule did not fire")
	}
	// Cloudy fires, sunny does not.
	if ruleSet[2].Matches(env) || !ruleSet[3].Matches(env) {
		t.Error("weather matching wrong")
	}
	// 5°C < 10 fires the cold rule but not the hot one.
	if ruleSet[6].Matches(env) || !ruleSet[7].Matches(env) {
		t.Error("temperature threshold matching wrong")
	}
	// Light 20 > 15 fires.
	if !ruleSet[8].Matches(env) {
		t.Error("light threshold did not fire")
	}
	// Door closed: door rule silent.
	if ruleSet[9].Matches(env) {
		t.Error("door rule fired with door closed")
	}
	env.DoorOpen = true
	if !ruleSet[9].Matches(env) {
		t.Error("door rule did not fire with door open")
	}
}

func TestOutputsLastWriterWins(t *testing.T) {
	env := Env{
		Season:      simclock.Winter,
		Condition:   weather.Cloudy,
		OutdoorTemp: 5,
		Light:       50,
		DoorOpen:    true,
	}
	out := Outputs(FlatIFTTT(), env)
	// Temperature: winter→20, cloudy→22, cold→24; last match (cold, row 8) wins.
	if got := out[ActionSetTemperature]; got != 24 {
		t.Errorf("temperature output = %v, want 24", got)
	}
	// Light: cloudy→40, bright→9, door open→0; door rule is last.
	if got := out[ActionSetLight]; got != 0 {
		t.Errorf("light output = %v, want 0", got)
	}
}

func TestOutputsNoMatches(t *testing.T) {
	// Spring, sunny-free env constructed to dodge every rule: spring
	// season, but weather must be either sunny or cloudy, so at least
	// the weather rules always fire. Verify that both action kinds are
	// present for any condition.
	env := Env{Season: simclock.Spring, Condition: weather.Sunny, OutdoorTemp: 15, Light: 10}
	out := Outputs(FlatIFTTT(), env)
	if _, ok := out[ActionSetTemperature]; !ok {
		t.Error("sunny env produced no temperature output")
	}
	if got := out[ActionSetLight]; got != 0 {
		t.Errorf("sunny light output = %v, want 0", got)
	}
}

func TestIFTTTValidate(t *testing.T) {
	bad := IFTTTRule{Trigger: Trigger(0), Action: ActionSetLight}
	if bad.Validate() == nil {
		t.Error("invalid trigger accepted")
	}
	bad = IFTTTRule{Trigger: TrigSeason, Action: ActionSetKWhLimit}
	if bad.Validate() == nil {
		t.Error("budget action accepted in IFTTT rule")
	}
	bad = IFTTTRule{Trigger: TrigTemperature, Cmp: CmpEquals, Action: ActionSetLight}
	if bad.Validate() == nil {
		t.Error("numeric trigger with equality accepted")
	}
}

func TestIFTTTStringClosedDoor(t *testing.T) {
	r := IFTTTRule{Trigger: TrigDoor, DoorOpen: false, Action: ActionSetLight, Value: 40}
	if !strings.Contains(r.String(), "Closed") {
		t.Errorf("String() = %q", r.String())
	}
}
