package rules

import (
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/simclock"
)

const sampleMRT = `
# The flat Meta-Rule Table
rule "Night Heat"     window 01:00-07:00 set temperature 25 owner "Anna K." priority 1
rule "Morning Lights" window 04:00-09:00 set light 40
rule "Med Fridge"     window 00:00-24:00 set temperature 8 necessity zone 1
budget "Energy Flat"  limit 11000 kWh
`

func TestParseMRTBasics(t *testing.T) {
	mrt, err := ParseMRT(sampleMRT)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrt.Rules) != 4 {
		t.Fatalf("parsed %d rules", len(mrt.Rules))
	}

	night := mrt.Rules[0]
	if night.Name != "Night Heat" || night.Window != (simclock.TimeWindow{StartHour: 1, EndHour: 7}) ||
		night.Action != ActionSetTemperature || night.Value != 25 ||
		night.Owner != "Anna K." || night.Priority != 1 {
		t.Errorf("night = %+v", night)
	}
	if night.ID != "mrt/night-heat" {
		t.Errorf("derived ID = %q", night.ID)
	}

	lights := mrt.Rules[1]
	if lights.Priority != 2 { // auto-assigned by position
		t.Errorf("lights priority = %d", lights.Priority)
	}

	fridge := mrt.Rules[2]
	if !fridge.Necessity || fridge.Zone != 1 || fridge.Window.Hours() != 24 {
		t.Errorf("fridge = %+v", fridge)
	}

	limit, ok := mrt.BudgetLimit("Energy Flat")
	if !ok || limit.KWh() != 11000 {
		t.Errorf("budget = %v, %v", limit, ok)
	}
}

func TestParseMRTErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown directive", `frobnicate "X"`, "expected 'rule' or 'budget'"},
		{"missing set", `rule "X" window 01:00-02:00`, "no 'set' clause"},
		{"missing window", `rule "X" set light 10`, "no 'window' clause"},
		{"bad action", `rule "X" window 01:00-02:00 set volume 3`, "unknown action"},
		{"bad value", `rule "X" window 01:00-02:00 set light ten`, "bad value"},
		{"bad window", `rule "X" window 01:30-02:00 set light 10`, "whole hours"},
		{"window shape", `rule "X" window 0100-0200 set light 10`, "bad time"},
		{"bad zone", `rule "X" window 01:00-02:00 set light 10 zone two`, "bad zone"},
		{"unknown keyword", `rule "X" window 01:00-02:00 set light 10 wat 5`, "unknown keyword"},
		{"unterminated quote", `rule "X window 01:00-02:00 set light 10`, "unterminated quote"},
		{"budget without limit", `budget "B"`, "no 'limit' clause"},
		{"budget bad limit", `budget "B" limit lots`, "bad limit"},
		{"nameless rule", `rule`, "rule needs a name"},
		{"invalid rule value", `rule "X" window 01:00-02:00 set light 500`, "outside [0,100]"},
		{"bad priority", `rule "X" window 01:00-02:00 set light 10 priority high`, "bad priority"},
	}
	for _, c := range cases {
		_, err := ParseMRT(c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseMRTLineNumbers(t *testing.T) {
	src := "rule \"A\" window 01:00-02:00 set light 10\n\nbadline here"
	_, err := ParseMRT(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v should point at line 3", err)
	}
}

func TestParseMRTDuplicateNames(t *testing.T) {
	src := `
rule "Evening Heat" window 18:00-23:00 set temperature 23 zone 0
rule "Evening Heat" window 18:00-23:00 set temperature 23 zone 1
rule "Evening Heat" window 18:00-23:00 set temperature 23 zone 2
`
	mrt, err := ParseMRT(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrt.Rules) != 3 {
		t.Fatalf("parsed %d rules", len(mrt.Rules))
	}
	seen := map[string]bool{}
	for _, r := range mrt.Rules {
		if seen[r.ID] {
			t.Errorf("duplicate ID %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	// The paper's Table II must survive format → parse unchanged.
	orig := FlatMRT()
	text := FormatMRT(orig)
	back, err := ParseMRT(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(back.Rules) != len(orig.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(back.Rules), len(orig.Rules))
	}
	for i := range orig.Rules {
		if back.Rules[i] != orig.Rules[i] {
			t.Errorf("rule %d changed:\n  orig %+v\n  back %+v", i, orig.Rules[i], back.Rules[i])
		}
	}
}

func TestFormatParseRoundTripWithExtras(t *testing.T) {
	orig := MRT{Rules: []MetaRule{
		{ID: "mrt/med-fridge", Name: "Med Fridge", Window: simclock.TimeWindow{StartHour: 0, EndHour: 24},
			Action: ActionSetTemperature, Value: 8, Zone: 2, Owner: "Nurse Joy", Priority: 1, Necessity: true},
		{ID: "custom/id", Name: "Odd # Name", Window: simclock.TimeWindow{StartHour: 22, EndHour: 6},
			Action: ActionSetLight, Value: 12.5, Priority: 2},
		{ID: "mrt/cap", Name: "Cap", Action: ActionSetKWhLimit, Value: 165, Priority: 3},
	}}
	text := FormatMRT(orig)
	back, err := ParseMRT(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	for i := range orig.Rules {
		if back.Rules[i] != orig.Rules[i] {
			t.Errorf("rule %d changed:\n  orig %+v\n  back %+v\n  text %s", i, orig.Rules[i], back.Rules[i], text)
		}
	}
}

func TestCommentsAndQuoting(t *testing.T) {
	src := `rule "Lounge # Lights" window 18:00-23:00 set light 40 # trailing comment`
	mrt, err := ParseMRT(src)
	if err != nil {
		t.Fatal(err)
	}
	if mrt.Rules[0].Name != "Lounge # Lights" {
		t.Errorf("name = %q", mrt.Rules[0].Name)
	}
}

func TestParseEmpty(t *testing.T) {
	mrt, err := ParseMRT("\n# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(mrt.Rules) != 0 {
		t.Errorf("rules = %v", mrt.Rules)
	}
}

func TestBudgetInEuros(t *testing.T) {
	// The paper's "monthly energy consumption budget below 100 euro"
	// converts at 0.20 €/kWh to 500 kWh.
	mrt, err := ParseMRT(`budget "Monthly Cap" limit 100 EUR`)
	if err != nil {
		t.Fatal(err)
	}
	limit, ok := mrt.BudgetLimit("Monthly Cap")
	if !ok || limit.KWh() != 500 {
		t.Errorf("limit = %v, want 500 kWh", limit)
	}
}
