package obs

import "github.com/imcf/imcf/internal/metrics"

// Canonical metric families of the observability layer. Declared here
// so the metrics-hygiene lint rule can verify every family is observed
// somewhere in the package.
var (
	// logRecords counts records accepted by the log ring.
	logRecords = metrics.NewCounter("imcf_obs_log_records_total",
		"Structured log records recorded by the in-memory ring.")

	// logDropped counts records evicted from the full ring.
	logDropped = metrics.NewCounter("imcf_obs_log_evicted_total",
		"Structured log records evicted from the bounded ring.")

	// sloSamples counts latency/error samples fed into the SLO engine.
	sloSamples = metrics.NewCounter("imcf_slo_samples_total",
		"Per-tenant plan-latency and error samples observed by the SLO engine.")

	// sloTenants reports how many tenants hold their own SLO series.
	sloTenants = metrics.NewGauge("imcf_slo_tenants",
		"Tenants tracked individually by the SLO engine (the rest aggregate into _other).")

	// sloOverflow counts samples routed into the _other aggregate
	// because the per-tenant series budget was exhausted.
	sloOverflow = metrics.NewCounter("imcf_slo_overflow_samples_total",
		"Samples aggregated into the _other bucket by the cardinality guard.")

	// sloState mirrors each tracked tenant's alert state: 0 ok, 1 warn,
	// 2 page.
	sloState = metrics.NewGaugeVec("imcf_slo_state",
		"Tenant alert state: 0 ok, 1 warn, 2 page.", "tenant")

	// sloBurnRate reports each tracked tenant's error-budget burn rate
	// per rolling window.
	sloBurnRate = metrics.NewGaugeVec("imcf_slo_burn_rate",
		"Error-budget burn rate per tenant and rolling window (1 = spending exactly the budget).",
		"tenant", "window")

	// sloErrorRate reports each tracked tenant's error rate over the
	// short window.
	sloErrorRate = metrics.NewGaugeVec("imcf_slo_error_rate",
		"Planning-cycle error rate per tenant over the 1m window.", "tenant")

	// sloLatencyP99 reports each tracked tenant's p99 plan latency over
	// the short window.
	sloLatencyP99 = metrics.NewGaugeVec("imcf_slo_plan_latency_p99_seconds",
		"p99 plan latency per tenant over the 1m window in seconds.", "tenant")

	// sloTransitions counts alert state transitions by direction.
	sloTransitions = metrics.NewCounterVec("imcf_slo_transitions_total",
		"Alert state-machine transitions.", "to")

	// bundles counts flight-recorder bundles written successfully.
	bundles = metrics.NewCounter("imcf_flight_bundles_total",
		"Flight-recorder diagnostic bundles written.")

	// bundleErrors counts bundle writes that failed or tore.
	bundleErrors = metrics.NewCounter("imcf_flight_bundle_errors_total",
		"Flight-recorder bundle writes that failed.")

	// bundleSuppressed counts triggers dropped by the rate limiter.
	bundleSuppressed = metrics.NewCounter("imcf_flight_bundles_suppressed_total",
		"Flight-recorder triggers suppressed by the per-reason rate limit.")
)
