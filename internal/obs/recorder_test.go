package obs

import (
	"encoding/json"
	"errors"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
)

// testSources returns deterministic taps so bundle contents (and the
// crash harness's failpoint schedule) replay exactly.
func testSources() Sources {
	return Sources{
		Logs: func(tenant, trace string) []Record {
			return []Record{
				{Level: "INFO", Msg: "first", Tenant: tenant, Trace: trace},
				{Level: "ERROR", Msg: "second", Tenant: tenant, Trace: trace},
			}
		},
		Spans: func(trace string) []metrics.SpanRecord {
			return []metrics.SpanRecord{{Name: "ep.plan", Trace: trace}}
		},
		Journal: func(tenant, trace string) []journal.Event {
			return []journal.Event{{Seq: 1, Tenant: tenant, Trace: trace, Rule: "r1"}}
		},
		Metrics:    func() []byte { return []byte("imcf_up 1\n") },
		Goroutines: func() []byte { return []byte("goroutine 1 [running]:\nmain.main()\n") },
	}
}

// testClock is a hand-advanced clock for the recorder's Now option.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time { return c.t }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func TestRecorderBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := newTestClock()
	r, err := NewRecorder(RecorderOptions{Dir: dir, Now: clock.now, Sources: testSources()})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := r.Trigger("degraded", "h1", "trace-1")
	if err != nil {
		t.Fatal(err)
	}

	meta, err := ReadMeta(bundle)
	if err != nil {
		t.Fatalf("bundle is not well-formed: %v", err)
	}
	if meta.Reason != "degraded" || meta.Tenant != "h1" || meta.Trace != "trace-1" {
		t.Fatalf("meta = %+v", meta)
	}
	wantFiles := []string{"logs.jsonl", "spans.json", "journal.jsonl", "metrics.prom", "goroutines.txt"}
	if len(meta.Files) != len(wantFiles) {
		t.Fatalf("files = %v, want %v", meta.Files, wantFiles)
	}
	for i, f := range wantFiles {
		if meta.Files[i] != f {
			t.Fatalf("files = %v, want %v", meta.Files, wantFiles)
		}
	}
	if meta.Counts["logs.jsonl"] != 2 || meta.Counts["journal.jsonl"] != 1 {
		t.Fatalf("counts = %v", meta.Counts)
	}

	// The log section is JSONL of Records carrying the correlation IDs.
	data, err := faultfs.OS{}.ReadFile(filepath.Join(bundle, "logs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("logs.jsonl has %d lines, want 2", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "h1" || rec.Trace != "trace-1" {
		t.Fatalf("log record lost correlation: %+v", rec)
	}
}

func TestRecorderRateLimit(t *testing.T) {
	clock := newTestClock()
	r, err := NewRecorder(RecorderOptions{Dir: t.TempDir(), Now: clock.now, Sources: testSources()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trigger("degraded", "h1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trigger("degraded", "h1", ""); !errors.Is(err, ErrSuppressed) {
		t.Fatalf("second trigger within the interval: err = %v, want ErrSuppressed", err)
	}
	// A different reason or tenant is its own bucket.
	if _, err := r.Trigger("sigquit", "h1", ""); err != nil {
		t.Fatalf("distinct reason suppressed: %v", err)
	}
	if _, err := r.Trigger("degraded", "h2", ""); err != nil {
		t.Fatalf("distinct tenant suppressed: %v", err)
	}
	// And the interval expiring reopens the bucket.
	clock.t = clock.t.Add(2 * time.Minute)
	if _, err := r.Trigger("degraded", "h1", ""); err != nil {
		t.Fatalf("trigger after interval: %v", err)
	}
}

func TestRecorderMaxRecordsKeepsNewest(t *testing.T) {
	clock := newTestClock()
	src := testSources()
	src.Logs = func(tenant, trace string) []Record {
		recs := make([]Record, 10)
		for i := range recs {
			recs[i] = Record{Msg: string(rune('a' + i))}
		}
		return recs
	}
	r, err := NewRecorder(RecorderOptions{Dir: t.TempDir(), Now: clock.now, MaxRecords: 3, Sources: src})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := r.Trigger("sigquit", "", "")
	if err != nil {
		t.Fatal(err)
	}
	data, err := faultfs.OS{}.ReadFile(filepath.Join(bundle, "logs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("kept %d records, want 3", len(lines))
	}
	if !strings.Contains(lines[2], `"j"`) {
		t.Fatalf("tail record %q, want the newest (j)", lines[2])
	}
}

func TestReadMetaRejectsTorn(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("ReadMeta accepted a directory with no marker")
	}
	path := filepath.Join(dir, MetaName)
	if err := (&Recorder{fs: faultfs.OS{}}).writeFile(path, []byte(`{"reason": "x`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("ReadMeta accepted a truncated marker")
	}
}

// metaFromFS is ReadMeta against an injected filesystem — the crash
// harness reads the simulated disk, not the host's.
func metaFromFS(fsys faultfs.FS, bundleDir string) (Meta, error) {
	b, err := fsys.ReadFile(filepath.Join(bundleDir, MetaName))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, err
	}
	if m.Reason == "" {
		return Meta{}, errors.New("marker missing reason")
	}
	return m, nil
}

// recorderOn builds a recorder over fsys with deterministic sources.
func recorderOn(t *testing.T, fsys faultfs.FS) *Recorder {
	t.Helper()
	clock := newTestClock()
	r, err := NewRecorder(RecorderOptions{
		Dir: "diag", FS: fsys, Now: clock.now, MinInterval: -1, Sources: testSources(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRecorderCrashEveryFailpoint kills the bundle write at every
// filesystem operation in turn and proves the crash-safety contract:
// after power loss, a bundle directory either carries a valid meta.json
// vouching for every listed artifact, or it is torn — recognizably
// incomplete, inert, and no obstacle to the next boot's recorder.
func TestRecorderCrashEveryFailpoint(t *testing.T) {
	// Pass 1: count the failpoints in a clean run.
	counter := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
	if _, err := recorderOn(t, counter).Trigger("degraded", "h1", "trace-1"); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few failpoints (%d); is the recorder still going through the seam?", total)
	}

	for n := 0; n < total; n++ {
		mem := faultfs.NewMemFS()
		faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
		_, err := recorderOn(t, faulty).Trigger("degraded", "h1", "trace-1")
		if err == nil {
			t.Fatalf("failpoint %d: Trigger succeeded through a crash", n)
		}
		// Power loss: unsynced state is gone, torn tails survive.
		mem.CrashTearing(uint64(n) + 1)

		// Invariant: any bundle whose marker parses must be complete.
		for _, dir := range bundleDirs(mem) {
			meta, err := metaFromFS(mem, dir)
			if err != nil {
				continue // torn: recognized and skipped, exactly as designed
			}
			for _, f := range meta.Files {
				if _, err := mem.Size(filepath.Join(dir, f)); err != nil {
					t.Fatalf("failpoint %d: marker in %s vouches for missing %s", n, dir, f)
				}
			}
		}

		// Reboot: a fresh recorder on the survivor disk must work —
		// torn leftovers never block the next bundle.
		bundle, err := recorderOn(t, mem).Trigger("reboot", "h1", "")
		if err != nil {
			t.Fatalf("failpoint %d: post-crash trigger failed: %v", n, err)
		}
		if _, err := metaFromFS(mem, bundle); err != nil {
			t.Fatalf("failpoint %d: post-crash bundle torn: %v", n, err)
		}
	}
}

// bundleDirs lists the bundle directories present on a MemFS, derived
// from its file paths (MemFS has no directory listing).
func bundleDirs(mem *faultfs.MemFS) []string {
	seen := make(map[string]bool)
	var dirs []string
	for _, p := range mem.Paths() {
		dir := filepath.Dir(p)
		if filepath.Dir(dir) == "diag" && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	return dirs
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"degraded":   "degraded",
		"":           "unknown",
		"a/b..c d":   "a-b--c-d",
		"slo-page_1": "slo-page_1",
	} {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRecorderTriggerNeverLogsRecursively guards against the recorder
// re-entering the obs layer under the ring lock: triggering from a log
// source that itself logs must not deadlock.
func TestRecorderTriggerNeverLogsRecursively(t *testing.T) {
	clock := newTestClock()
	src := testSources()
	src.Logs = func(tenant, trace string) []Record {
		L().LogAttrs(nil, slog.LevelDebug, "source self-log") //nolint:staticcheck // nil ctx exercises robustness
		return nil
	}
	r, err := NewRecorder(RecorderOptions{Dir: t.TempDir(), Now: clock.now, Sources: src})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Trigger("degraded", "h1", ""); err != nil {
			t.Errorf("trigger: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Trigger deadlocked while a source logged")
	}
}
