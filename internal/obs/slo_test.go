package obs

import (
	"math/rand"
	"testing"
	"time"
)

// sloT0 is an arbitrary fixed origin: the engine is driven entirely by
// explicit timestamps, so tests never touch the wall clock.
var sloT0 = time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)

func newTestSLO(cfg Config) *SLO {
	cfg.NoMetrics = true // keep test tenants out of the global registry
	return NewSLO(cfg)
}

func TestSLOStateMachine(t *testing.T) {
	var fired []string
	s := newTestSLO(Config{
		ErrorBudget: 0.1, // page at error rate 0.5, warn at 0.2
		WarnBurn:    2,
		PageBurn:    5,
		ClearAfter:  2,
		OnTransition: func(tenant string, from, to State) {
			fired = append(fired, tenant+":"+from.String()+">"+to.String())
		},
	})

	// Exactly on budget: burn 1, state ok.
	now := sloT0
	s.Observe("h1", now, 0.001, true)
	for i := 0; i < 9; i++ {
		s.Observe("h1", now, 0.001, false)
	}
	s.Evaluate(now)
	if got := s.State("h1"); got != StateOK {
		t.Fatalf("state after on-budget traffic = %v, want ok", got)
	}

	// A burst of failures pushes the rate past the page threshold in
	// both the 1m and 5m windows; escalation is immediate and may skip
	// warn entirely.
	now = now.Add(time.Second)
	for i := 0; i < 10; i++ {
		s.Observe("h1", now, 0.001, true)
	}
	s.Evaluate(now)
	if got := s.State("h1"); got != StatePage {
		t.Fatalf("state after failure burst = %v, want page", got)
	}

	// Hysteresis: one clean evaluation is not enough to step down...
	now = now.Add(6 * time.Minute) // both short windows have aged out
	s.Evaluate(now)
	if got := s.State("h1"); got != StatePage {
		t.Fatalf("state after 1 clean evaluation = %v, want page (hysteresis)", got)
	}
	// ...the second one is.
	now = now.Add(time.Second)
	s.Evaluate(now)
	if got := s.State("h1"); got != StateOK {
		t.Fatalf("state after %d clean evaluations = %v, want ok", 2, got)
	}

	want := []string{"h1:ok>page", "h1:page>ok"}
	if len(fired) != len(want) {
		t.Fatalf("transitions %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, fired[i], want[i])
		}
	}
}

func TestSLOWarnBetweenThresholds(t *testing.T) {
	s := newTestSLO(Config{ErrorBudget: 0.1, WarnBurn: 2, PageBurn: 5, ClearAfter: 2})
	now := sloT0
	// Error rate 0.3: past warn (0.2), short of page (0.5).
	for i := 0; i < 3; i++ {
		s.Observe("h1", now, 0.001, true)
	}
	for i := 0; i < 7; i++ {
		s.Observe("h1", now, 0.001, false)
	}
	s.Evaluate(now)
	if got := s.State("h1"); got != StateWarn {
		t.Fatalf("state = %v, want warn", got)
	}
}

func TestSLOPageNeedsBothWindows(t *testing.T) {
	s := newTestSLO(Config{ErrorBudget: 0.1, WarnBurn: 2, PageBurn: 5, ClearAfter: 2})
	// Old successes keep the 5m window healthy; a fresh 100%-error
	// minute alone must not page (the multi-window rule).
	now := sloT0
	for i := 0; i < 100; i++ {
		s.Observe("h1", now, 0.001, false)
	}
	now = now.Add(2 * time.Minute) // 1m window empty of successes now
	for i := 0; i < 3; i++ {
		s.Observe("h1", now, 0.001, true)
	}
	s.Evaluate(now)
	// 1m rate = 1.0 (burn 10), 5m rate = 3/103 (burn < 0.3): no page.
	if got := s.State("h1"); got == StatePage {
		t.Fatal("paged on a single-window spike; the 5m window should have held it back")
	}
}

func TestSLOCardinalityBudget(t *testing.T) {
	s := newTestSLO(Config{TenantBudget: 2})
	now := sloT0
	for _, id := range []string{"h1", "h2", "h3", "h4"} {
		s.Observe(id, now, 0.001, true)
	}
	snap := s.Snapshot(now)
	var ids []string
	for _, ts := range snap {
		ids = append(ids, ts.Tenant)
	}
	want := []string{OverflowTenant, "h1", "h2"}
	if len(ids) != len(want) {
		t.Fatalf("tenants %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("tenants %v, want %v", ids, want)
		}
	}
	// The overflow bucket aggregated both surplus tenants' samples.
	for _, ts := range snap {
		if ts.Tenant == OverflowTenant && ts.Windows[0].Count != 2 {
			t.Fatalf("overflow bucket count = %d, want 2", ts.Windows[0].Count)
		}
	}
	if got := s.State("h3"); got != StateOK {
		t.Fatalf("overflowed tenant state = %v, want ok (no per-tenant tracking)", got)
	}
}

// sloSample is one observation in the property tests' reference model.
type sloSample struct {
	at      time.Time
	seconds float64
	isErr   bool
}

// refMerge recomputes a window's aggregate from the raw sample list —
// the brute-force model the incremental ring must match.
func refMerge(samples []sloSample, span time.Duration, now time.Time) merged {
	bucketDur := span / windowSlots
	newest := now.UnixNano() / int64(bucketDur)
	oldest := newest - windowSlots + 1
	var m merged
	for _, s := range samples {
		idx := s.at.UnixNano() / int64(bucketDur)
		if idx < oldest || idx > newest {
			continue
		}
		m.count++
		if s.isErr {
			m.errs++
		}
		m.lat[latIndex(s.seconds)]++
	}
	return m
}

// TestSLOWindowMergeMatchesRecomputation is the window-math property:
// for random monotone sample streams, the incremental rolling-ring
// aggregate equals a brute-force recomputation over the raw samples,
// at every checkpoint, for every window.
func TestSLOWindowMergeMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := newTestSLO(Config{})
		var samples []sloSample
		now := sloT0
		steps := 200 + rng.Intn(400)
		for i := 0; i < steps; i++ {
			// Jumps up to ~4m routinely age buckets out of the 1m and 5m
			// windows mid-stream; the occasional ~40m jump cycles the 1h
			// ring past slot reuse.
			jump := time.Duration(rng.Intn(4000)) * 60 * time.Millisecond
			if rng.Intn(50) == 0 {
				jump = time.Duration(rng.Intn(40)) * time.Minute
			}
			now = now.Add(jump)
			sm := sloSample{at: now, seconds: rng.Float64() * 2, isErr: rng.Intn(3) == 0}
			samples = append(samples, sm)
			s.Observe("h1", sm.at, sm.seconds, sm.isErr)

			if i%17 != 0 {
				continue
			}
			s.mu.Lock()
			ten := s.tenants["h1"]
			for w := range windowSpans {
				got := ten.windows[w].mergeAt(now)
				want := refMerge(samples, windowSpans[w], now)
				if got != want {
					s.mu.Unlock()
					t.Fatalf("trial %d step %d window %s: merged %+v, recomputed %+v",
						trial, i, windowNames[w], got, want)
				}
			}
			s.mu.Unlock()
		}
	}
}

// TestSLOBurnRateMonotoneUnderSustainedErrors is the burn-rate
// property: once a tenant fails every cycle, each window's burn rate
// never decreases — old successes aging out can only push it up, until
// it saturates at 1/ErrorBudget.
func TestSLOBurnRateMonotoneUnderSustainedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		s := newTestSLO(Config{ErrorBudget: 0.01})
		now := sloT0
		// A healthy prefix: random successes over ~30 minutes.
		for i := 0; i < 200; i++ {
			now = now.Add(time.Duration(rng.Intn(9000)) * time.Millisecond)
			s.Observe("h1", now, 0.001, false)
		}
		// Then sustained failure, one cycle per second.
		prev := [len(windowSpans)]float64{}
		for i := 0; i < 400; i++ {
			now = now.Add(time.Second)
			s.Observe("h1", now, 0.001, true)
			snap := s.Snapshot(now)
			if len(snap) != 1 {
				t.Fatalf("snapshot has %d tenants, want 1", len(snap))
			}
			for w, ws := range snap[0].Windows {
				if ws.BurnRate < prev[w]-1e-9 {
					t.Fatalf("trial %d step %d window %s: burn fell %.6f -> %.6f under sustained errors",
						trial, i, ws.Window, prev[w], ws.BurnRate)
				}
				prev[w] = ws.BurnRate
			}
		}
		// Saturation: the short windows hold nothing but errors now.
		final := s.Snapshot(now)[0].Windows
		for _, w := range final[:2] {
			if got, want := w.BurnRate, 1/0.01; got != want {
				t.Fatalf("window %s burn = %v at saturation, want %v", w.Window, got, want)
			}
		}
	}
}

func TestSLOSnapshotIsReadOnly(t *testing.T) {
	s := newTestSLO(Config{ErrorBudget: 0.1, PageBurn: 5, WarnBurn: 2})
	now := sloT0
	for i := 0; i < 10; i++ {
		s.Observe("h1", now, 0.001, true)
	}
	for i := 0; i < 5; i++ {
		s.Snapshot(now)
	}
	if got := s.State("h1"); got != StateOK {
		t.Fatalf("Snapshot advanced the state machine to %v", got)
	}
	s.Evaluate(now)
	if got := s.State("h1"); got != StatePage {
		t.Fatalf("Evaluate left state %v, want page", got)
	}
}
