package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/metrics"
)

// testLogger builds an isolated handler/ring pair so tests never race
// on the package default.
func testLogger(capacity int) (*slog.Logger, *Handler) {
	h := NewHandler(NewRing(capacity), nil)
	return slog.New(h), h
}

func TestRingQueryFilters(t *testing.T) {
	l, h := testLogger(16)
	h.SetLevel(slog.LevelDebug)
	ctx := context.Background()
	l.LogAttrs(WithTenant(ctx, "h1"), slog.LevelInfo, "alpha")
	l.LogAttrs(WithTenant(ctx, "h2"), slog.LevelWarn, "beta", slog.String("trace", "t-42"))
	l.LogAttrs(ctx, slog.LevelDebug, "gamma")

	if got := h.Ring().Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if recs := h.Ring().Query("h1", "", slog.LevelDebug, 0); len(recs) != 1 || recs[0].Msg != "alpha" {
		t.Fatalf("tenant filter: got %+v", recs)
	}
	if recs := h.Ring().Query("", "t-42", slog.LevelDebug, 0); len(recs) != 1 || recs[0].Msg != "beta" {
		t.Fatalf("trace filter: got %+v", recs)
	}
	if recs := h.Ring().Query("", "", slog.LevelWarn, 0); len(recs) != 1 || recs[0].Msg != "beta" {
		t.Fatalf("level filter: got %+v", recs)
	}
	if recs := h.Ring().Query("", "", slog.LevelDebug, 2); len(recs) != 2 {
		t.Fatalf("limit: got %d records, want 2", len(recs))
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	l, h := testLogger(4)
	for _, msg := range []string{"a", "b", "c", "d", "e", "f"} {
		l.Info(msg)
	}
	recs := h.Ring().Query("", "", slog.LevelDebug, 0)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	// Oldest-first order, with the two oldest evicted.
	want := []string{"c", "d", "e", "f"}
	for i, rec := range recs {
		if rec.Msg != want[i] {
			t.Fatalf("record %d = %q, want %q", i, rec.Msg, want[i])
		}
	}
}

func TestHandlerCorrelatesContext(t *testing.T) {
	l, h := testLogger(8)
	tc, ok := metrics.ParseTraceparent("00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	if !ok {
		t.Fatal("ParseTraceparent rejected a valid header")
	}
	ctx := metrics.ContextWithTrace(WithTenant(context.Background(), "h7"), tc)
	l.LogAttrs(ctx, slog.LevelInfo, "correlated", slog.Int("n", 3))

	recs := h.Ring().Query("", "", slog.LevelDebug, 0)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Tenant != "h7" {
		t.Errorf("Tenant = %q, want h7", rec.Tenant)
	}
	if rec.Trace != tc.TraceIDString() {
		t.Errorf("Trace = %q, want %q", rec.Trace, tc.TraceIDString())
	}
	if rec.Attrs["n"] != "3" {
		t.Errorf("Attrs[n] = %q, want 3", rec.Attrs["n"])
	}
}

func TestHandlerExplicitAttrsOverrideContext(t *testing.T) {
	l, h := testLogger(8)
	ctx := WithTenant(context.Background(), "ctx-tenant")
	l.LogAttrs(ctx, slog.LevelInfo, "m",
		slog.String("tenant", "attr-tenant"), slog.String("trace", "attr-trace"))
	rec := h.Ring().Query("", "", slog.LevelDebug, 0)[0]
	if rec.Tenant != "attr-tenant" || rec.Trace != "attr-trace" {
		t.Fatalf("tenant/trace = %q/%q, want attr-tenant/attr-trace", rec.Tenant, rec.Trace)
	}
}

func TestHandlerLevelGate(t *testing.T) {
	l, h := testLogger(8)
	h.SetLevel(slog.LevelWarn)
	if l.Enabled(context.Background(), slog.LevelInfo) {
		t.Fatal("Info enabled despite Warn gate")
	}
	l.Info("dropped")
	l.Warn("kept")
	if got := h.Ring().Len(); got != 1 {
		t.Fatalf("ring holds %d records, want 1", got)
	}
}

func TestHandlerOutputJSONLines(t *testing.T) {
	var buf bytes.Buffer
	h := NewHandler(NewRing(8), &buf)
	slog.New(h).LogAttrs(WithTenant(context.Background(), "h1"), slog.LevelInfo, "hello")
	var rec Record
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("output is not a JSON line: %v (%q)", err, buf.String())
	}
	if rec.Msg != "hello" || rec.Tenant != "h1" {
		t.Fatalf("decoded %+v", rec)
	}
}

func TestGlobalDisableSuppresses(t *testing.T) {
	l, h := testLogger(8)
	SetEnabled(false)
	defer SetEnabled(true)
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("Enabled(Error) true while obs is globally disabled")
	}
	l.Error("suppressed")
	if got := h.Ring().Len(); got != 0 {
		t.Fatalf("ring holds %d records while disabled, want 0", got)
	}
}

// TestAllocsObsDisabledPath is the hot-path alloc gate: a log call
// below the active level — the common case on the serving path — must
// not allocate. check.sh enforces this via `go test -run AllocsObs`.
func TestAllocsObsDisabledPath(t *testing.T) {
	l, h := testLogger(8)
	h.SetLevel(slog.LevelInfo)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if l.Enabled(ctx, slog.LevelDebug) {
			l.LogAttrs(ctx, slog.LevelDebug, "never", slog.Int("n", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("below-level log call allocates %.1f times per op, want 0", allocs)
	}

	SetEnabled(false)
	defer SetEnabled(true)
	allocs = testing.AllocsPerRun(1000, func() {
		if l.Enabled(ctx, slog.LevelError) {
			l.LogAttrs(ctx, slog.LevelError, "never", slog.Int("n", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("globally-disabled log call allocates %.1f times per op, want 0", allocs)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestLogsHandler(t *testing.T) {
	l, h := testLogger(16)
	ctx := context.Background()
	l.LogAttrs(WithTenant(ctx, "h1"), slog.LevelInfo, "one")
	l.LogAttrs(WithTenant(ctx, "h2"), slog.LevelError, "two")

	srv := httptest.NewServer(LogsHandler(h.Ring()))
	defer srv.Close()

	get := func(q string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		defer resp.Body.Close() //nolint:errcheck // test teardown
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("?tenant=h1"); code != 200 || !strings.Contains(body, `"one"`) || strings.Contains(body, `"two"`) {
		t.Fatalf("tenant query: code %d body %q", code, body)
	}
	if code, body := get("?level=error"); code != 200 || strings.Contains(body, `"one"`) {
		t.Fatalf("level query: code %d body %q", code, body)
	}
	if code, _ := get("?level=loud"); code != 400 {
		t.Fatalf("bad level: code %d, want 400", code)
	}
	if code, _ := get("?limit=x"); code != 400 {
		t.Fatalf("bad limit: code %d, want 400", code)
	}
}
