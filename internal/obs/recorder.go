package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
)

// The flight recorder dumps a correlated diagnostic bundle the moment
// something goes wrong — degraded-mode entry, an SLO page transition,
// SIGQUIT — so the operator triages from evidence captured at the
// fault, not from whatever the rings still hold an hour later. A
// bundle is one directory, diagnostics/<ts>-<reason>/, holding the
// last log records, spans and journal events filtered to the
// triggering tenant/trace, a metrics snapshot, and a goroutine dump;
// cmd/imcf-debug reads it back.
//
// Bundles are written through the faultfs.FS seam so the
// kill-at-every-failpoint harness can prove crash safety: every
// artifact file is written and fsynced first, and meta.json — the
// completeness marker — is written last via create-tmp/rename. A crash
// anywhere in between leaves a directory without a valid meta.json,
// which readers (and imcf-debug) classify as torn and skip; a torn
// bundle can never corrupt the store (it lives in its own tree) or
// block boot (nothing replays it).

// MetaName is the bundle completeness marker: a bundle directory is
// well-formed iff it holds a parseable MetaName file, written last.
const MetaName = "meta.json"

// DefaultMaxRecords bounds how many log records and journal events a
// bundle section retains.
const DefaultMaxRecords = 1000

// ErrSuppressed reports a Trigger dropped by the per-(reason, tenant)
// rate limit.
var ErrSuppressed = errors.New("obs: flight-recorder trigger suppressed by rate limit")

// Meta is the bundle manifest, written last as the completeness marker.
type Meta struct {
	Reason string         `json:"reason"`
	Tenant string         `json:"tenant,omitempty"`
	Trace  string         `json:"trace,omitempty"`
	Time   time.Time      `json:"time"`
	Files  []string       `json:"files"`
	Counts map[string]int `json:"counts"`
}

// Sources are the recorder's read-only taps into the live process. Any
// nil source simply omits its section from the bundle.
type Sources struct {
	// Logs returns the retained log records filtered to the triggering
	// tenant/trace (either may be empty — the source decides the
	// fallback), oldest first.
	Logs func(tenant, trace string) []Record
	// Spans returns the retained spans; trace, when non-empty, selects
	// one causal trace.
	Spans func(trace string) []metrics.SpanRecord
	// Journal returns the planner decision events filtered to the
	// triggering tenant/trace, oldest first.
	Journal func(tenant, trace string) []journal.Event
	// Metrics returns a text-exposition snapshot of the registry.
	Metrics func() []byte
	// Goroutines returns a stack dump of every goroutine; nil uses
	// runtime.Stack.
	Goroutines func() []byte
}

// RecorderOptions configure a flight recorder.
type RecorderOptions struct {
	// Dir is the diagnostics root; bundles land in Dir/<ts>-<reason>/.
	Dir string
	// FS is the file layer (tests inject faultfs fakes); nil uses the
	// real filesystem.
	FS faultfs.FS
	// Now supplies timestamps for bundle names, metadata and rate
	// limiting — the daemon passes its clock so simulated time flows
	// through. Required.
	Now func() time.Time
	// MinInterval rate-limits bundles per (reason, tenant): a flapping
	// tenant cannot fill the disk. 0 means 1 minute; negative disables
	// the limit.
	MinInterval time.Duration
	// MaxRecords bounds the log and journal sections; 0 means
	// DefaultMaxRecords.
	MaxRecords int
	// Sources tap the live process.
	Sources Sources
}

// Recorder writes diagnostic bundles. It is safe for concurrent use;
// concurrent triggers serialize.
type Recorder struct {
	dir         string
	fs          faultfs.FS
	now         func() time.Time
	minInterval time.Duration
	maxRecords  int
	src         Sources

	mu   sync.Mutex
	last map[string]time.Time
	seq  int
}

// NewRecorder builds a recorder. Dir and Now are required.
func NewRecorder(opts RecorderOptions) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, errors.New("obs: recorder needs a diagnostics directory")
	}
	if opts.Now == nil {
		return nil, errors.New("obs: recorder needs a clock (Options.Now)")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	minInterval := opts.MinInterval
	if minInterval == 0 {
		minInterval = time.Minute
	}
	maxRecords := opts.MaxRecords
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	return &Recorder{
		dir:         opts.Dir,
		fs:          fsys,
		now:         opts.Now,
		minInterval: minInterval,
		maxRecords:  maxRecords,
		src:         opts.Sources,
		last:        make(map[string]time.Time),
	}, nil
}

// Dir returns the diagnostics root.
func (r *Recorder) Dir() string { return r.dir }

// sanitizeReason restricts bundle-name reasons to a path-safe charset;
// anything else becomes '-'.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "unknown"
	}
	b := []byte(reason)
	for i, c := range b {
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' || c == '_'
		if !ok {
			b[i] = '-'
		}
	}
	return string(b)
}

// Trigger dumps one bundle for the given reason, filtered to the
// triggering tenant and/or trace (either may be empty). It returns the
// bundle directory, or ErrSuppressed when the per-(reason, tenant)
// rate limit drops the trigger. Trigger never panics the serving path:
// every failure is an error return plus a counter.
func (r *Recorder) Trigger(reason, tenant, trace string) (string, error) {
	reason = sanitizeReason(reason)
	now := r.now()

	r.mu.Lock()
	key := reason + "\x00" + tenant
	if last, ok := r.last[key]; ok && r.minInterval > 0 && now.Sub(last) < r.minInterval {
		r.mu.Unlock()
		bundleSuppressed.Inc()
		return "", ErrSuppressed
	}
	r.last[key] = now
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	name := fmt.Sprintf("%s-%04d-%s", now.UTC().Format("20060102T150405"), seq, reason)
	dir := filepath.Join(r.dir, name)
	if err := r.write(dir, reason, tenant, trace, now); err != nil {
		bundleErrors.Inc()
		return "", fmt.Errorf("obs: flight recorder: %w", err)
	}
	bundles.Inc()
	return dir, nil
}

// write assembles the bundle at dir. Artifact files first (each synced),
// then the directory, then meta.json atomically — the completeness
// marker readers trust.
func (r *Recorder) write(dir, reason, tenant, trace string, now time.Time) error {
	if err := r.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := Meta{
		Reason: reason,
		Tenant: tenant,
		Trace:  trace,
		Time:   now.UTC(),
		Counts: make(map[string]int),
	}

	writeSection := func(name string, data []byte, count int) error {
		if err := r.writeFile(filepath.Join(dir, name), data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		meta.Files = append(meta.Files, name)
		meta.Counts[name] = count
		return nil
	}

	if r.src.Logs != nil {
		recs := r.src.Logs(tenant, trace)
		if len(recs) > r.maxRecords {
			recs = recs[len(recs)-r.maxRecords:]
		}
		data, count, err := marshalLines(recs)
		if err != nil {
			return err
		}
		if err := writeSection("logs.jsonl", data, count); err != nil {
			return err
		}
	}
	if r.src.Spans != nil {
		spans := r.src.Spans(trace)
		data, err := json.MarshalIndent(spans, "", "  ")
		if err != nil {
			return err
		}
		if err := writeSection("spans.json", append(data, '\n'), len(spans)); err != nil {
			return err
		}
	}
	if r.src.Journal != nil {
		evs := r.src.Journal(tenant, trace)
		if len(evs) > r.maxRecords {
			evs = evs[len(evs)-r.maxRecords:]
		}
		data, count, err := marshalLines(evs)
		if err != nil {
			return err
		}
		if err := writeSection("journal.jsonl", data, count); err != nil {
			return err
		}
	}
	if r.src.Metrics != nil {
		data := r.src.Metrics()
		if err := writeSection("metrics.prom", data, 0); err != nil {
			return err
		}
	}
	gor := r.src.Goroutines
	if gor == nil {
		gor = goroutineDump
	}
	if err := writeSection("goroutines.txt", gor(), runtime.NumGoroutine()); err != nil {
		return err
	}

	// The artifact names are durable before the marker that vouches for
	// them.
	if err := r.fs.SyncDir(dir); err != nil {
		return err
	}

	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, MetaName+".tmp")
	if err := r.writeFile(tmp, append(metaBytes, '\n')); err != nil {
		return fmt.Errorf("%s: %w", MetaName, err)
	}
	if err := r.fs.Rename(tmp, filepath.Join(dir, MetaName)); err != nil {
		return err
	}
	if err := r.fs.SyncDir(dir); err != nil {
		return err
	}
	return r.fs.SyncDir(r.dir)
}

// writeFile creates path, writes data, fsyncs and closes — every step
// through the seam, every error surfaced.
func (r *Recorder) writeFile(path string, data []byte) error {
	f, err := r.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	return f.Close()
}

// marshalLines renders a slice as JSON lines.
func marshalLines[T any](items []T) ([]byte, int, error) {
	var out []byte
	for _, it := range items {
		b, err := json.Marshal(it)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out, len(items), nil
}

// goroutineDump captures every goroutine's stack.
func goroutineDump() []byte {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return buf[:n]
}

// ReadMeta loads and validates a bundle's completeness marker from the
// real filesystem — the reader half (cmd/imcf-debug, tests). It reports
// an error for torn bundles (missing or unparseable meta.json).
func ReadMeta(bundleDir string) (Meta, error) {
	b, err := os.ReadFile(filepath.Join(bundleDir, MetaName))
	if err != nil {
		return Meta{}, fmt.Errorf("obs: torn or missing bundle marker: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, fmt.Errorf("obs: corrupt bundle marker: %w", err)
	}
	if m.Reason == "" {
		return Meta{}, errors.New("obs: bundle marker missing reason")
	}
	return m, nil
}
