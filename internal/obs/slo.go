package obs

import (
	"sort"
	"sync"
	"time"
)

// The SLO engine turns the fleet scheduler's Observe stream into
// per-tenant service-level state: rolling-window plan-latency
// percentiles, error rates and error-budget burn rates over 1m/5m/1h
// windows, driving a deterministic ok→warn→page alert state machine
// with hysteresis. Monitoring at fleet cardinality must stay bounded:
// a configurable tenant budget caps how many homes get their own
// series — overflow tenants aggregate into the OverflowTenant bucket,
// so a 10k-home fleet cannot blow up the metrics registry (the
// aggregation-strategy argument of the adaptable rule-engine framework
// paper, PAPERS.md).
//
// Everything is driven by explicit timestamps (the caller's clock):
// the engine itself never reads the wall clock, which keeps it inside
// the determinism lint scope and makes the window math property-testable.

// State is a tenant's alert state.
type State int

// Alert states, in escalation order.
const (
	StateOK State = iota
	StateWarn
	StatePage
)

// String returns the state's wire name.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	default:
		return "unknown"
	}
}

// OverflowTenant is the aggregate bucket for tenants beyond the series
// budget. The leading underscore keeps it outside the ParseTenantID
// charset, so it can never collide with a real home.
const OverflowTenant = "_other"

// windowSpans are the rolling windows, shortest first. Each window is
// windowSlots buckets of span/windowSlots.
var windowSpans = [...]time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// windowNames are the wire names of the windows, index-aligned with
// windowSpans.
var windowNames = [...]string{"1m", "5m", "1h"}

// windowSlots is the bucket count per window: percentile error from
// bucket granularity stays under ~2% of the span.
const windowSlots = 60

// latBounds are the latency histogram bucket upper bounds in seconds
// (the +Inf bucket is implicit). Plan cycles run microseconds to
// milliseconds; the tail covers degraded disks.
var latBounds = [...]float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Config parameterizes the SLO engine. The zero value adopts every
// default.
type Config struct {
	// ErrorBudget is the tolerated planning-cycle error rate (the SLO's
	// "allowed unreliability"); burn rate 1 means spending exactly this
	// budget. Default 0.01 (99% of cycles succeed).
	ErrorBudget float64
	// WarnBurn and PageBurn are the burn-rate thresholds: a tenant
	// escalates when its burn over BOTH the 1m and 5m windows reaches
	// the threshold (the multi-window rule that keeps one blip from
	// paging). Defaults 2 and 10.
	WarnBurn, PageBurn float64
	// ClearAfter is the hysteresis: consecutive clean evaluations
	// before a tenant steps down toward ok. Default 2.
	ClearAfter int
	// TenantBudget caps tenants with their own windows and label
	// series; the rest aggregate into OverflowTenant. Default 256.
	TenantBudget int
	// OnTransition, when set, observes every alert state change at
	// Evaluate time — the daemon hooks page entries into the flight
	// recorder. Called synchronously with the engine unlocked, in
	// tenant order.
	OnTransition func(tenant string, from, to State)
	// NoMetrics disables the imcf_slo_* families (large simulated
	// fleets in imcf-bench).
	NoMetrics bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 10
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = 256
	}
	return c
}

// bucket is one time slot of one rolling window.
type bucket struct {
	count uint64
	errs  uint64
	lat   [len(latBounds) + 1]uint64
}

// window is a rolling ring of windowSlots buckets. The absolute bucket
// index occupying each slot lives in the compact stamps array, apart
// from the payloads: mergeAt scans stamps for liveness — 8 cache lines
// instead of one line per 168-byte bucket — and only dereferences the
// few live payloads. Evaluate runs this scan per tenant per window
// every cycle, so the layout is what keeps fleet-cardinality SLO
// evaluation off the serving path's profile.
type window struct {
	bucketDur time.Duration
	stamps    [windowSlots]int64
	buckets   [windowSlots]bucket
}

// observeAt adds one sample. ns is the absolute timestamp in
// nanoseconds and li its precomputed latency bucket — both hoisted to
// the caller so the three windows share one UnixNano and one latIndex.
func (w *window) observeAt(ns int64, li int, isErr bool) {
	idx := ns / int64(w.bucketDur)
	slot := int(idx%windowSlots+windowSlots) % windowSlots
	b := &w.buckets[slot]
	if w.stamps[slot] != idx {
		*b = bucket{}
		w.stamps[slot] = idx
	}
	b.count++
	if isErr {
		b.errs++
	}
	b.lat[li]++
}

// latIndex maps a latency to its histogram bucket.
func latIndex(seconds float64) int {
	for i, ub := range latBounds {
		if seconds <= ub {
			return i
		}
	}
	return len(latBounds)
}

// merged is the aggregate of every live bucket in a window at now.
type merged struct {
	count uint64
	errs  uint64
	lat   [len(latBounds) + 1]uint64
}

// mergeAt folds the buckets still inside the window at now. The current
// (partial) bucket is included: alerting must see the newest errors.
func (w *window) mergeAt(now time.Time) merged {
	newest := now.UnixNano() / int64(w.bucketDur)
	oldest := newest - windowSlots + 1
	var m merged
	for i, stamp := range w.stamps {
		if stamp < oldest || stamp > newest {
			continue
		}
		b := &w.buckets[i]
		m.count += b.count
		m.errs += b.errs
		for j := range b.lat {
			m.lat[j] += b.lat[j]
		}
	}
	return m
}

// errorRate returns errs/count, 0 when empty.
func (m merged) errorRate() float64 {
	if m.count == 0 {
		return 0
	}
	return float64(m.errs) / float64(m.count)
}

// percentile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1), 0 when empty. The estimate is deterministic
// and conservative: it rounds latencies up to their bucket bound.
func (m merged) percentile(q float64) float64 {
	if m.count == 0 {
		return 0
	}
	rank := uint64(q * float64(m.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range m.lat {
		cum += c
		if cum >= rank {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return latBounds[len(latBounds)-1] * 2 // +Inf bucket: beyond the last bound
		}
	}
	return latBounds[len(latBounds)-1] * 2
}

// tenantSLO is one tenant's windows, alert state and resolved metric
// children.
type tenantSLO struct {
	id      string
	windows [len(windowSpans)]window
	state   State
	clean   int // consecutive clean evaluations (hysteresis)

	stateG *gaugeRef
	burnG  [len(windowSpans)]*gaugeRef
	errG   *gaugeRef
	p99G   *gaugeRef
}

// gaugeRef indirects metric children so NoMetrics engines carry nils
// without branching at every site.
type gaugeRef struct{ set func(float64) }

func (g *gaugeRef) Set(v float64) {
	if g != nil {
		g.set(v)
	}
}

// SLO is the per-tenant SLO/burn-rate engine. All methods are safe for
// concurrent use; Observe is called from fleet worker goroutines.
type SLO struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenantSLO
	order   []string // sorted tenant IDs: deterministic evaluation order
}

// NewSLO builds an engine with the given configuration.
func NewSLO(cfg Config) *SLO {
	return &SLO{cfg: cfg.withDefaults(), tenants: make(map[string]*tenantSLO)}
}

// tenantLocked resolves (or creates) the tenant's series, applying the
// cardinality budget: the OverflowTenant bucket never counts against
// it and is created on first overflow.
func (s *SLO) tenantLocked(id string) *tenantSLO {
	if t, ok := s.tenants[id]; ok {
		return t
	}
	if id != OverflowTenant && len(s.tenants) >= s.cfg.TenantBudget {
		sloOverflow.Inc()
		return s.tenantLocked(OverflowTenant)
	}
	t := &tenantSLO{id: id}
	for i := range t.windows {
		t.windows[i].bucketDur = windowSpans[i] / windowSlots
	}
	if !s.cfg.NoMetrics {
		t.stateG = &gaugeRef{sloState.With(id).Set}
		for i, name := range windowNames {
			t.burnG[i] = &gaugeRef{sloBurnRate.With(id, name).Set}
		}
		t.errG = &gaugeRef{sloErrorRate.With(id).Set}
		t.p99G = &gaugeRef{sloLatencyP99.With(id).Set}
	}
	s.tenants[id] = t
	s.order = append(s.order, id)
	sort.Strings(s.order)
	if !s.cfg.NoMetrics {
		sloTenants.Set(float64(len(s.tenants)))
	}
	return t
}

// Observe records one planning-cycle sample for the tenant: its latency
// in seconds and whether the cycle failed. now comes from the caller's
// clock — the engine never reads wall time.
func (s *SLO) Observe(tenant string, now time.Time, seconds float64, isErr bool) {
	ns := now.UnixNano()
	li := latIndex(seconds)
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	for i := range t.windows {
		t.windows[i].observeAt(ns, li, isErr)
	}
	s.mu.Unlock()
	sloSamples.Inc()
}

// transition is one state change surfaced by Evaluate.
type transition struct {
	tenant   string
	from, to State
}

// Evaluate advances every tenant's alert state machine against the
// windows as of now and publishes the imcf_slo_* gauges. Escalation is
// immediate; de-escalation needs ClearAfter consecutive clean
// evaluations (hysteresis). Transitions are reported through
// Config.OnTransition in tenant order, after the engine unlocks.
func (s *SLO) Evaluate(now time.Time) {
	var fired []transition
	s.mu.Lock()
	for _, id := range s.order {
		t := s.tenants[id]
		var burns [len(windowSpans)]float64
		var short merged
		for i := range t.windows {
			m := t.windows[i].mergeAt(now)
			burns[i] = m.errorRate() / s.cfg.ErrorBudget
			if i == 0 {
				short = m
			}
		}
		desired := StateOK
		switch {
		case burns[0] >= s.cfg.PageBurn && burns[1] >= s.cfg.PageBurn:
			desired = StatePage
		case burns[0] >= s.cfg.WarnBurn && burns[1] >= s.cfg.WarnBurn:
			desired = StateWarn
		}
		prev := t.state
		if desired >= t.state {
			t.state = desired
			t.clean = 0
		} else {
			t.clean++
			if t.clean >= s.cfg.ClearAfter {
				t.state = desired
				t.clean = 0
			}
		}
		if t.state != prev {
			fired = append(fired, transition{tenant: id, from: prev, to: t.state})
			if !s.cfg.NoMetrics {
				sloTransitions.With(t.state.String()).Inc()
			}
		}
		t.stateG.Set(float64(t.state))
		for i := range burns {
			t.burnG[i].Set(burns[i])
		}
		t.errG.Set(short.errorRate())
		t.p99G.Set(short.percentile(0.99))
	}
	s.mu.Unlock()
	if s.cfg.OnTransition != nil {
		for _, tr := range fired {
			s.cfg.OnTransition(tr.tenant, tr.from, tr.to)
		}
	}
}

// WindowStatus is one rolling window's view of a tenant in a Snapshot.
type WindowStatus struct {
	Window    string  `json:"window"`
	Count     uint64  `json:"count"`
	ErrorRate float64 `json:"errorRate"`
	BurnRate  float64 `json:"burnRate"`
	P50       float64 `json:"p50Seconds"`
	P95       float64 `json:"p95Seconds"`
	P99       float64 `json:"p99Seconds"`
}

// TenantStatus is one tenant's SLO state in a Snapshot — the /healthz
// detail block.
type TenantStatus struct {
	Tenant  string         `json:"tenant"`
	State   string         `json:"state"`
	Windows []WindowStatus `json:"windows"`
}

// State returns the tenant's current alert state (StateOK for unknown
// tenants).
func (s *SLO) State(tenant string) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok {
		return t.state
	}
	return StateOK
}

// Snapshot reports every tracked tenant's windows and alert state as of
// now, sorted by tenant ID. It is read-only: scraping /healthz never
// advances the state machine.
func (s *SLO) Snapshot(now time.Time) []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStatus, 0, len(s.order))
	for _, id := range s.order {
		t := s.tenants[id]
		ts := TenantStatus{Tenant: id, State: t.state.String()}
		for i := range t.windows {
			m := t.windows[i].mergeAt(now)
			ts.Windows = append(ts.Windows, WindowStatus{
				Window:    windowNames[i],
				Count:     m.count,
				ErrorRate: m.errorRate(),
				BurnRate:  m.errorRate() / s.cfg.ErrorBudget,
				P50:       m.percentile(0.50),
				P95:       m.percentile(0.95),
				P99:       m.percentile(0.99),
			})
		}
		out = append(out, ts)
	}
	return out
}
