// Package obs is the fleet flight recorder of the serving path: the
// structured-logging layer every serving package routes its output
// through, the per-tenant SLO/burn-rate engine fed by the fleet
// scheduler's Observe stream, and the flight recorder that dumps a
// correlated diagnostic bundle when a tenant degrades.
//
// The logging half is built on the standard library's log/slog: a
// Handler that renders records into a bounded in-memory ring (served at
// GET /debug/logs with ?tenant=&trace=&level=&limit= filters) and,
// optionally, as JSON lines to a writer. Records are correlated by
// construction: the handler pulls the causal trace ID minted by
// metrics.TraceMiddleware out of the context (metrics.TraceIDFrom) and
// the tenant ID out of the obs tenant context (WithTenant), so one
// trace ID reassembles logs, spans and journal events end to end.
//
// Hot-path contract: a log call below the active level performs zero
// heap allocations (slog's Enabled check returns before any attr
// escapes), and SetEnabled(false) silences the whole layer behind one
// atomic load — the same disabled-path discipline internal/metrics and
// internal/journal follow, enforced by TestAllocsObsDisabled and the
// equivalence harnesses (the obs layer is read-only w.r.t. the planner
// search).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imcf/imcf/internal/metrics"
)

// DefaultRingCap bounds the default in-memory log ring: enough for the
// last few thousand serving-path events without unbounded growth at
// fleet cardinality.
const DefaultRingCap = 4096

// disabled gates every record of every logger in the process, mirroring
// metrics.SetEnabled: equivalence tests flip it to prove logging does
// not perturb results.
var disabled atomic.Bool

// SetEnabled globally enables or disables log recording. The default is
// enabled.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether log records are currently recorded.
func Enabled() bool { return !disabled.Load() }

// tenantCtxKey keys the tenant ID in a context.Context.
type tenantCtxKey struct{}

// WithTenant returns ctx carrying the tenant (home) ID; the Handler
// stamps it onto every record logged under that context.
func WithTenant(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, id)
}

// TenantFrom extracts the tenant ID carried by ctx, or "".
func TenantFrom(ctx context.Context) string {
	id, _ := ctx.Value(tenantCtxKey{}).(string)
	return id
}

// Record is one rendered log record as retained by the ring and served
// on /debug/logs: the flat, queryable form of a slog.Record with its
// correlation identity (tenant, trace) promoted to first-class fields.
type Record struct {
	Time   time.Time         `json:"time"`
	Level  string            `json:"level"`
	Msg    string            `json:"msg"`
	Tenant string            `json:"tenant,omitempty"`
	Trace  string            `json:"trace,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Ring is the bounded in-memory record buffer behind /debug/logs and
// the flight recorder's log section. It is safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	ring []Record
	at   int
	n    int
}

// NewRing returns a ring keeping the most recent capacity records
// (capacity < 1 means DefaultRingCap).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultRingCap
	}
	return &Ring{ring: make([]Record, capacity)}
}

// append stores one record, evicting the oldest when full.
func (r *Ring) append(rec Record) {
	r.mu.Lock()
	r.ring[r.at] = rec
	r.at = (r.at + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	} else {
		logDropped.Inc()
	}
	r.mu.Unlock()
}

// Query selects retained records, oldest first. Empty tenant and trace
// match everything; minLevel filters out records below it; limit > 0
// bounds the result to the most recent matches.
func (r *Ring) Query(tenant, trace string, minLevel slog.Level, limit int) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.n)
	start := 0
	if r.n == len(r.ring) {
		start = r.at
	}
	for i := 0; i < r.n; i++ {
		rec := r.ring[(start+i)%len(r.ring)]
		if tenant != "" && rec.Tenant != tenant {
			continue
		}
		if trace != "" && rec.Trace != trace {
			continue
		}
		if lvl, err := parseLevel(rec.Level); err == nil && lvl < minLevel {
			continue
		}
		out = append(out, rec)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Len returns the number of records currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// parseLevel maps the wire level names (and slog's canonical strings)
// back to levels.
func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: bad level %q", s)
	}
	return l, nil
}

// Handler is the slog.Handler rendering records into a Ring and,
// optionally, as JSON lines to a writer (the daemon's stderr). Enabled
// consults an atomic level plus the package-wide disable gate, so a
// suppressed call costs one atomic load and allocates nothing.
type Handler struct {
	level *slog.LevelVar
	ring  *Ring
	attrs []slog.Attr // accumulated WithAttrs state, rendered onto every record

	mu  *sync.Mutex // serializes out writes; shared across WithAttrs clones
	out io.Writer   // nil silences line output
}

// NewHandler builds a handler recording into ring (nil allocates a
// DefaultRingCap one) and mirroring JSON lines to out (nil disables
// line output). The initial level is Info.
func NewHandler(ring *Ring, out io.Writer) *Handler {
	if ring == nil {
		ring = NewRing(0)
	}
	lv := new(slog.LevelVar)
	lv.Set(slog.LevelInfo)
	return &Handler{level: lv, ring: ring, mu: new(sync.Mutex), out: out}
}

// SetLevel adjusts the minimum recorded level at runtime.
func (h *Handler) SetLevel(l slog.Level) { h.level.Set(l) }

// Level reports the handler's current minimum level.
func (h *Handler) Level() slog.Level { return h.level.Level() }

// Ring exposes the handler's record ring (the /debug/logs source).
func (h *Handler) Ring() *Ring { return h.ring }

// Enabled implements slog.Handler: the zero-alloc gate of the disabled
// path.
func (h *Handler) Enabled(_ context.Context, level slog.Level) bool {
	return !disabled.Load() && level >= h.level.Level()
}

// Handle implements slog.Handler: correlation identity is pulled from
// the context (WithTenant, metrics trace context) unless the record
// carries explicit "tenant"/"trace" attrs, then the rendered record is
// appended to the ring and, when configured, written as one JSON line.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	rec := Record{
		Time:   r.Time,
		Level:  r.Level.String(),
		Msg:    r.Message,
		Tenant: TenantFrom(ctx),
		Trace:  metrics.TraceIDFrom(ctx),
	}
	addAttr := func(a slog.Attr) {
		switch a.Key {
		case "tenant":
			rec.Tenant = a.Value.String()
		case "trace":
			rec.Trace = a.Value.String()
		case "":
		default:
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]string)
			}
			rec.Attrs[a.Key] = a.Value.String()
		}
	}
	for _, a := range h.attrs {
		addAttr(a)
	}
	r.Attrs(func(a slog.Attr) bool { addAttr(a); return true })
	h.ring.append(rec)
	logRecords.Inc()
	h.mu.Lock()
	out := h.out
	h.mu.Unlock()
	if out != nil {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		h.mu.Lock()
		_, err = out.Write(b)
		h.mu.Unlock()
		return err
	}
	return nil
}

// SetOutput redirects the handler's JSON-line mirror (nil disables it).
// Clones minted by WithAttrs before the call keep their original writer;
// imcfd calls this once at startup, before any derived logger exists.
func (h *Handler) SetOutput(out io.Writer) {
	h.mu.Lock()
	h.out = out
	h.mu.Unlock()
}

// WithAttrs implements slog.Handler: the clone shares the ring, level
// and output, with the attrs prepended to every record.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	clone := *h
	clone.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &clone
}

// WithGroup implements slog.Handler. Groups are flattened: the ring's
// query surface is flat key=value, so the group name prefixes nothing.
// (No serving package uses groups; this keeps the handler honest if one
// ever does.)
func (h *Handler) WithGroup(string) slog.Handler { return h }

// defaultHandler backs the package-level logger: a DefaultRingCap ring
// with no line output until the daemon wires one.
var defaultHandler = NewHandler(nil, nil)

// defaultLogger is the process-wide structured logger the serving
// packages log through.
var defaultLogger = slog.New(defaultHandler)

// L returns the process-wide structured logger. Serving packages call
// L().LogAttrs(ctx, level, msg, attrs...) so the context's tenant and
// trace correlate every record.
func L() *slog.Logger { return defaultLogger }

// DefaultHandler returns the handler behind L — the daemon uses it to
// set the level and mount the ring on /debug/logs.
func DefaultHandler() *Handler { return defaultHandler }

// SetLevel adjusts the default handler's minimum level (imcfd
// -log-level).
func SetLevel(l slog.Level) { defaultHandler.SetLevel(l) }

// ParseLevel maps the flag-facing level names onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug", "DEBUG":
		return slog.LevelDebug, nil
	case "info", "INFO", "":
		return slog.LevelInfo, nil
	case "warn", "WARN":
		return slog.LevelWarn, nil
	case "error", "ERROR":
		return slog.LevelError, nil
	default:
		return parseLevel(s)
	}
}

// Error is the conventional attr for an error's message; a nil err
// renders as the empty string (and is elided from the record by the
// empty-value rule only when callers skip it themselves).
func Error(err error) slog.Attr {
	if err == nil {
		return slog.String("err", "")
	}
	return slog.String("err", err.Error())
}

// LogsHandler serves the ring at GET /debug/logs with
// ?tenant=&trace=&level=&limit= filters, newest-last JSON.
func LogsHandler(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		w.Header().Set("Content-Type", "application/json")
		minLevel := slog.LevelDebug // no filter: everything retained
		if s := q.Get("level"); s != "" {
			l, err := ParseLevel(s)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // response committed
				return
			}
			minLevel = l
		}
		limit := 0
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(map[string]string{"error": "obs: bad limit " + strconv.Quote(s)}) //nolint:errcheck // response committed
				return
			}
			limit = n
		}
		recs := ring.Query(q.Get("tenant"), q.Get("trace"), minLevel, limit)
		json.NewEncoder(w).Encode(recs) //nolint:errcheck // response committed
	})
}
