package obs

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// The package-level default logger is what the daemon and serving
// packages use; exercise its accessors end to end.
func TestDefaultLoggerPlumbing(t *testing.T) {
	h := DefaultHandler()
	oldLevel := h.Level()
	defer func() {
		SetLevel(oldLevel)
		h.SetOutput(nil)
	}()

	var buf bytes.Buffer
	h.SetOutput(&buf)
	SetLevel(slog.LevelDebug)
	if !Enabled() {
		t.Fatal("Enabled() false at rest")
	}
	L().LogAttrs(context.Background(), slog.LevelDebug, "plumbing", Error(errors.New("boom")))
	if !strings.Contains(buf.String(), `"boom"`) {
		t.Fatalf("default output missed the error attr: %q", buf.String())
	}
	if Error(nil).Value.String() != "" {
		t.Fatalf("Error(nil) = %v, want empty", Error(nil))
	}
}

func TestHandlerWithAttrsAndGroup(t *testing.T) {
	_, h := testLogger(8)
	derived := slog.New(h.WithAttrs([]slog.Attr{slog.String("site", "edge")}).
		WithGroup("ignored"))
	derived.Info("tagged")
	rec := h.Ring().Query("", "", slog.LevelDebug, 0)[0]
	if rec.Attrs["site"] != "edge" {
		t.Fatalf("derived handler lost bound attrs: %+v", rec)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateOK: "ok", StateWarn: "warn", StatePage: "page", State(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// The metric-backed gauge path (NoMetrics unset) resolves real registry
// children; distinct tenant labels keep this test's series isolated.
func TestSLOPublishesGauges(t *testing.T) {
	s := NewSLO(Config{})
	now := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	s.Observe("covg1", now, 0.002, false)
	s.Evaluate(now)
	if got := s.State("covg1"); got != StateOK {
		t.Fatalf("state = %v, want ok", got)
	}
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(RecorderOptions{Now: func() time.Time { return time.Time{} }}); err == nil {
		t.Fatal("NewRecorder accepted an empty Dir")
	}
	if _, err := NewRecorder(RecorderOptions{Dir: "x"}); err == nil {
		t.Fatal("NewRecorder accepted a nil clock")
	}
}

// A nil Goroutines source falls back to the real runtime.Stack dump.
func TestRecorderDefaultGoroutineDump(t *testing.T) {
	clock := newTestClock()
	src := testSources()
	src.Goroutines = nil
	r, err := NewRecorder(RecorderOptions{Dir: t.TempDir(), Now: clock.now, Sources: src})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Dir(), r.dir; got != want {
		t.Fatalf("Dir() = %q, want %q", got, want)
	}
	bundle, err := r.Trigger("sigquit", "", "")
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Counts["goroutines.txt"] < 1 {
		t.Fatalf("goroutine count = %d, want >= 1", meta.Counts["goroutines.txt"])
	}
}
