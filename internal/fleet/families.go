package fleet

import "github.com/imcf/imcf/internal/metrics"

// Canonical metric families of the fleet scheduler. Declared here so
// the metrics-hygiene lint rule can verify every family is observed
// somewhere in the package.
var (
	// fleetCycles counts completed fleet cycles (one cycle = every
	// tenant stepped once).
	fleetCycles = metrics.NewCounter("imcf_fleet_cycles_total",
		"Completed fleet planning cycles (every tenant stepped once).")

	// fleetTenants reports the fleet size.
	fleetTenants = metrics.NewGauge("imcf_fleet_tenants",
		"Tenants hosted by the fleet scheduler.")

	// fleetCycleSeconds is the wall time of a whole fleet cycle.
	fleetCycleSeconds = metrics.NewHistogram("imcf_fleet_cycle_seconds",
		"Wall time of one fleet cycle across all tenants in seconds.", nil)

	// tenantPlanSeconds reports each tenant's last planning-cycle
	// latency.
	tenantPlanSeconds = metrics.NewGaugeVec("imcf_fleet_tenant_plan_seconds",
		"Last planning-cycle latency per tenant in seconds.", "tenant")

	// tenantErrors counts failed planning cycles per tenant.
	tenantErrors = metrics.NewCounterVec("imcf_fleet_tenant_errors_total",
		"Failed planning cycles per tenant.", "tenant")
)
