package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func member(id string, step func(ctx context.Context) error) Member {
	if step == nil {
		step = func(context.Context) error { return nil }
	}
	return Member{ID: id, Step: step}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Member{member("", nil)}, Options{}); err == nil {
		t.Error("empty tenant ID accepted")
	}
	if _, err := New([]Member{{ID: "h1"}}, Options{}); err == nil {
		t.Error("nil Step accepted")
	}
	if _, err := New([]Member{member("h1", nil), member("h1", nil)}, Options{}); err == nil {
		t.Error("duplicate tenant ID accepted")
	}
	s, err := New(nil, Options{})
	if err != nil {
		t.Fatalf("empty fleet rejected: %v", err)
	}
	if err := s.Cycle(context.Background()); err != nil {
		t.Errorf("empty Cycle: %v", err)
	}
}

func TestAccessorsAndSortedOrder(t *testing.T) {
	s, err := New([]Member{member("h3", nil), member("h1", nil), member("h2", nil)},
		Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Workers() != 4 {
		t.Errorf("Workers = %d", s.Workers())
	}
	if got, want := s.Tenants(), []string{"h1", "h2", "h3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tenants = %v, want %v", got, want)
	}
}

// TestSequentialDispatchOrder pins the workers=1 reference schedule:
// strictly one at a time, in tenant-ID order.
func TestSequentialDispatchOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	mk := func(id string) Member {
		return member(id, func(context.Context) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		})
	}
	s, err := New([]Member{mk("b"), mk("c"), mk("a")}, Options{Workers: 1, NoMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		if err := s.Cycle(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("dispatch order = %v, want %v", order, want)
	}
}

// TestWorkerBound checks the pool really bounds concurrency and really
// uses it: with workers=4 and steps that block until enough peers
// arrive, the cycle only completes if 4 run at once, and in-flight
// never exceeds 4.
func TestWorkerBound(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int64
	arrived := make(chan struct{}, 16)
	release := make(chan struct{})
	var members []Member
	for _, id := range []string{"a", "b", "c", "d", "e", "f"} {
		members = append(members, member(id, func(context.Context) error {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			arrived <- struct{}{}
			<-release
			inFlight.Add(-1)
			return nil
		}))
	}
	s, err := New(members, Options{Workers: workers, NoMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Cycle(context.Background()) }()

	// Exactly `workers` steps can start before any is released.
	for i := 0; i < workers; i++ {
		<-arrived
	}
	select {
	case <-arrived:
		t.Fatal("more than Workers steps in flight")
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != workers {
		t.Errorf("peak concurrency = %d, want %d", got, workers)
	}
}

// TestErrorIsolationAndOrder: one failing tenant never stops the rest,
// and both OnError and the joined error report in tenant-ID order.
func TestErrorIsolationAndOrder(t *testing.T) {
	boomB := errors.New("b exploded")
	boomD := errors.New("d exploded")
	var stepped atomic.Int64
	ok := func(context.Context) error { stepped.Add(1); return nil }
	var reported []string
	s, err := New([]Member{
		member("d", func(context.Context) error { return boomD }),
		member("a", ok),
		member("b", func(context.Context) error { return boomB }),
		member("c", ok),
	}, Options{
		Workers: 8,
		OnError: func(id string, err error) { reported = append(reported, id) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cycleErr := s.Cycle(context.Background())
	if cycleErr == nil {
		t.Fatal("Cycle swallowed tenant errors")
	}
	if !errors.Is(cycleErr, boomB) || !errors.Is(cycleErr, boomD) {
		t.Errorf("joined error lost a cause: %v", cycleErr)
	}
	if stepped.Load() != 2 {
		t.Errorf("healthy tenants stepped = %d, want 2", stepped.Load())
	}
	if want := []string{"b", "d"}; !reflect.DeepEqual(reported, want) {
		t.Errorf("OnError order = %v, want %v", reported, want)
	}
	if !strings.Contains(cycleErr.Error(), "tenant b") {
		t.Errorf("error does not name the tenant: %v", cycleErr)
	}

	// The error scratch resets: a failing-then-clean schedule reports
	// nil on its clean cycle.
	var fail atomic.Bool
	fail.Store(true)
	s3, err := New([]Member{member("x", func(context.Context) error {
		if fail.Load() {
			return errors.New("first cycle only")
		}
		return nil
	})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Cycle(context.Background()); err == nil {
		t.Fatal("first cycle should fail")
	}
	fail.Store(false)
	if err := s3.Cycle(context.Background()); err != nil {
		t.Errorf("stale error leaked into clean cycle: %v", err)
	}
}

// TestMemberErrorsExtraction pins the typed-error contract: a Cycle
// error flattens into *MemberError values in tenant-ID order, each
// carrying the tenant ID as a field and unwrapping to the tenant's own
// cause, so callers never parse error strings.
func TestMemberErrorsExtraction(t *testing.T) {
	boomB := errors.New("b exploded")
	boomD := errors.New("d exploded")
	s, err := New([]Member{
		member("d", func(context.Context) error { return boomD }),
		member("b", func(context.Context) error { return boomB }),
		member("a", nil),
	}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cycleErr := s.Cycle(context.Background())
	mes := MemberErrors(cycleErr)
	if len(mes) != 2 {
		t.Fatalf("MemberErrors len = %d, want 2 (%v)", len(mes), cycleErr)
	}
	if mes[0].Tenant != "b" || mes[1].Tenant != "d" {
		t.Errorf("tenant order = %q, %q, want b, d", mes[0].Tenant, mes[1].Tenant)
	}
	if !errors.Is(mes[0], boomB) || !errors.Is(mes[1], boomD) {
		t.Errorf("unwrap lost the cause: %v, %v", mes[0], mes[1])
	}
	if got := mes[0].Error(); got != "tenant b: b exploded" {
		t.Errorf("message shape = %q", got)
	}

	if MemberErrors(nil) != nil {
		t.Error("MemberErrors(nil) != nil")
	}
	if MemberErrors(errors.New("foreign")) != nil {
		t.Error("foreign error yielded members")
	}

	// A single wrapped *MemberError (no Join) still extracts.
	single := fmt.Errorf("cycle: %w", &MemberError{Tenant: "z", Err: errors.New("zz")})
	if got := MemberErrors(single); len(got) != 1 || got[0].Tenant != "z" {
		t.Errorf("single wrapped extraction = %v", got)
	}
}

func TestObserveHook(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	s, err := New([]Member{member("h1", nil), member("h2", nil)}, Options{
		Workers: 2,
		Observe: func(id string, seconds float64) {
			mu.Lock()
			seen[id]++
			mu.Unlock()
			if seconds < 0 {
				t.Errorf("negative latency %f for %s", seconds, id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen["h1"] != 1 || seen["h2"] != 1 {
		t.Errorf("Observe calls = %v", seen)
	}
}

// TestCycleCanceledContext: a canceled context skips dispatch and
// reports every tenant's context error, without calling Steps.
func TestCycleCanceledContext(t *testing.T) {
	var stepped atomic.Int64
	s, err := New([]Member{
		member("h1", func(context.Context) error { stepped.Add(1); return nil }),
		member("h2", func(context.Context) error { stepped.Add(1); return nil }),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cErr := s.Cycle(ctx)
	if cErr == nil {
		t.Fatal("canceled Cycle returned nil")
	}
	if !errors.Is(cErr, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", cErr)
	}
	if stepped.Load() != 0 {
		t.Errorf("steps ran under canceled context: %d", stepped.Load())
	}
}

// TestCycleMetricsRecorded scrapes the package families after a cycle
// with metrics enabled.
func TestCycleMetricsRecorded(t *testing.T) {
	before := fleetCycles.Value()
	s, err := New([]Member{
		member("mh1", nil),
		member("mh2", func(context.Context) error { return errors.New("boom") }),
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fleetTenants.Value() != 2 {
		t.Errorf("fleetTenants = %v, want 2", fleetTenants.Value())
	}
	if err := s.Cycle(context.Background()); err == nil {
		t.Fatal("expected tenant error")
	}
	if got := fleetCycles.Value(); got != before+1 {
		t.Errorf("fleetCycles = %d, want %d", got, before+1)
	}
	if got := tenantErrors.With("mh2").Value(); got != 1 {
		t.Errorf("tenantErrors{mh2} = %d, want 1", got)
	}
}
