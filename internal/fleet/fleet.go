// Package fleet is the sharded scheduler of a multi-home daemon: it
// fans per-tenant planning cycles over a bounded worker pool, the same
// semaphore fan-out shape the simulation suite uses (Suite.Parallel),
// while keeping every observable outcome deterministic. Tenants are
// held in a slice sorted by ID — never ranged from a map — so dispatch
// order, error reporting order, and the OnError callback order are all
// identical run to run regardless of worker count. The planning work
// itself is per-tenant-isolated (each Member.Step closes over its own
// controller, store namespace, and journal), which is what makes a
// tenant's results bit-identical to the single-home path at any worker
// count: concurrency changes only which wall-clock instant a tenant
// steps at, never its inputs.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// MemberError is one tenant's cycle failure with the failing tenant ID
// carried as a typed field, so SLO attribution and flight-recorder
// filtering never parse error strings. It wraps the tenant's own error
// for errors.Is/As chains and renders as "tenant <id>: <err>".
type MemberError struct {
	Tenant string
	Err    error
}

// Error implements error, preserving the historical message shape.
func (e *MemberError) Error() string { return fmt.Sprintf("tenant %s: %v", e.Tenant, e.Err) }

// Unwrap exposes the tenant's underlying error.
func (e *MemberError) Unwrap() error { return e.Err }

// MemberErrors flattens the per-tenant failures out of a Cycle error
// (an errors.Join of *MemberError values), in tenant-ID order. A nil or
// foreign error yields nil.
func MemberErrors(err error) []*MemberError {
	if err == nil {
		return nil
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		var me *MemberError
		if errors.As(err, &me) {
			return []*MemberError{me}
		}
		return nil
	}
	var out []*MemberError
	for _, e := range joined.Unwrap() {
		var me *MemberError
		if errors.As(e, &me) {
			out = append(out, me)
		}
	}
	return out
}

// Member is one tenant's hook into the scheduler: a stable home ID and
// the function running one planning cycle for that home. Step closes
// over everything tenant-scoped (controller, store namespace, journal)
// and must be safe to call concurrently with other tenants' Steps —
// never with itself; the scheduler serializes per tenant by running at
// most one cycle at a time.
type Member struct {
	ID   string
	Step func(ctx context.Context) error
}

// Options configure a Scheduler.
type Options struct {
	// Workers bounds how many tenants plan concurrently within one
	// cycle. Zero or negative means 1: strictly sequential, in tenant-ID
	// order — the reference schedule the equivalence harness compares
	// parallel runs against.
	Workers int

	// OnError, when set, is invoked once per failed tenant after the
	// cycle's fan-out has drained, in tenant-ID order (deterministic, and
	// never concurrent with itself).
	OnError func(id string, err error)

	// Observe, when set, receives each tenant's cycle latency in
	// seconds. Bench harnesses aggregate percentiles from it. Called
	// from worker goroutines; must be safe for concurrent use.
	Observe func(id string, seconds float64)

	// ObserveResult, when set, receives each tenant's cycle latency in
	// seconds together with its outcome — the feed the SLO engine
	// attributes error budgets from. Called from worker goroutines; must
	// be safe for concurrent use.
	ObserveResult func(id string, seconds float64, err error)

	// AfterCycle, when set, runs at the end of every Cycle, after the
	// fan-out has drained and OnError has reported — the hook the daemon
	// evaluates SLO alert states on. Never concurrent with itself.
	AfterCycle func()

	// NoMetrics disables the per-tenant metric families. Large
	// simulated fleets (10k+ homes in imcf-bench -fleet) would otherwise
	// mint one gauge and counter child per home on the default registry.
	NoMetrics bool
}

// Scheduler fans planning cycles across a tenant fleet. A Scheduler is
// immutable after New; Cycle may be called from one goroutine at a
// time (the daemon's cron).
type Scheduler struct {
	members    []Member // sorted by ID: deterministic dispatch + report order
	workers    int
	onError    func(id string, err error)
	observe    func(id string, seconds float64)
	observeRes func(id string, seconds float64, err error)
	afterCycle func()
	metrics    bool

	mu   sync.Mutex // serializes Cycle
	errs []error    // per-member scratch, index-aligned with members
}

// New builds a Scheduler over the given tenants. The member slice is
// copied and sorted by ID; IDs must be non-empty and unique, Steps
// non-nil.
func New(members []Member, opts Options) (*Scheduler, error) {
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, errors.New("fleet: member with empty tenant ID")
		}
		if m.Step == nil {
			return nil, fmt.Errorf("fleet: tenant %s has no Step", m.ID)
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("fleet: duplicate tenant ID %s", m.ID)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	s := &Scheduler{
		members:    ms,
		workers:    workers,
		onError:    opts.OnError,
		observe:    opts.Observe,
		observeRes: opts.ObserveResult,
		afterCycle: opts.AfterCycle,
		metrics:    !opts.NoMetrics,
		errs:       make([]error, len(ms)),
	}
	if s.metrics {
		fleetTenants.Set(float64(len(ms)))
	}
	return s, nil
}

// Len returns the fleet size.
func (s *Scheduler) Len() int { return len(s.members) }

// Workers returns the bounded pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Tenants returns the tenant IDs in dispatch order (sorted).
func (s *Scheduler) Tenants() []string {
	ids := make([]string, len(s.members))
	for i, m := range s.members {
		ids[i] = m.ID
	}
	return ids
}

// Cycle steps every tenant once, at most Workers concurrently, and
// waits for all of them. Tenants that fail are reported through OnError
// and the joined return error, both in tenant-ID order; one tenant's
// failure never stops the others. A canceled context stops dispatching
// new tenants (already-running Steps see the cancellation through
// their own ctx) and the skipped tenants report the context error.
func (s *Scheduler) Cycle(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	//imcf:allow determinism cycle wall time feeds metrics only, never planning results
	start := time.Now()
	sem := make(chan struct{}, s.workers)
	var wg sync.WaitGroup
	for i := range s.members {
		if err := ctx.Err(); err != nil {
			s.errs[i] = fmt.Errorf("fleet: cycle canceled: %w", err)
			continue
		}
		//imcf:allow lockdiscipline s.mu serializes whole cycles by design; sem/wg are owned by this cycle, so no cross-lock wait is possible
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			m := &s.members[i]
			//imcf:allow determinism per-tenant latency feeds metrics/bench observers only
			tStart := time.Now()
			err := m.Step(ctx)
			//imcf:allow determinism per-tenant latency feeds metrics/bench observers only
			sec := time.Since(tStart).Seconds()
			if s.metrics {
				tenantPlanSeconds.With(m.ID).Set(sec)
			}
			if s.observe != nil {
				s.observe(m.ID, sec)
			}
			if s.observeRes != nil {
				s.observeRes(m.ID, sec, err)
			}
			s.errs[i] = err
		}(i)
	}
	//imcf:allow lockdiscipline cycle barrier: workers never touch s.mu, so waiting for them while holding it cannot deadlock
	wg.Wait()

	if s.metrics {
		fleetCycles.Inc()
		//imcf:allow determinism cycle wall time feeds metrics only, never planning results
		fleetCycleSeconds.Observe(time.Since(start).Seconds())
	}

	var failed []error
	for i, err := range s.errs {
		s.errs[i] = nil
		if err == nil {
			continue
		}
		id := s.members[i].ID
		if s.metrics {
			tenantErrors.With(id).Inc()
		}
		if s.onError != nil {
			s.onError(id, err)
		}
		failed = append(failed, &MemberError{Tenant: id, Err: err})
	}
	if s.afterCycle != nil {
		s.afterCycle()
	}
	return errors.Join(failed...)
}
