package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEnergyConversions(t *testing.T) {
	e := Energy(2.5)
	if got := e.KWh(); got != 2.5 {
		t.Errorf("KWh() = %v, want 2.5", got)
	}
	if got := e.Wh(); got != 2500 {
		t.Errorf("Wh() = %v, want 2500", got)
	}
	if WattHour.Wh() != 1 {
		t.Errorf("WattHour.Wh() = %v, want 1", WattHour.Wh())
	}
	if MegawattHour.KWh() != 1000 {
		t.Errorf("MegawattHour.KWh() = %v, want 1000", MegawattHour.KWh())
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{0, "0.00 kWh"},
		{3666, "3.67 MWh"},
		{130.64, "130.64 kWh"},
		{0.0005, "0.500 Wh"},
		{-2000, "-2.00 MWh"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Energy(%v).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestPowerOver(t *testing.T) {
	// A 1000 W device running for one hour consumes 1 kWh.
	if got := Power(1000).Over(time.Hour); got != 1 {
		t.Errorf("1000W over 1h = %v, want 1 kWh", got)
	}
	// 500 W for 30 minutes is 0.25 kWh.
	if got := Power(500).Over(30 * time.Minute); math.Abs(got.KWh()-0.25) > 1e-12 {
		t.Errorf("500W over 30m = %v, want 0.25 kWh", got)
	}
	if got := Power(0).Over(time.Hour); got != 0 {
		t.Errorf("0W over 1h = %v, want 0", got)
	}
}

func TestPowerString(t *testing.T) {
	if got := Power(750).String(); got != "750 W" {
		t.Errorf("Power(750).String() = %q", got)
	}
	if got := Power(2400).String(); got != "2.40 kW" {
		t.Errorf("Power(2400).String() = %q", got)
	}
}

func TestTemperatureDelta(t *testing.T) {
	if got := Temperature(25).DeltaTo(22); got != 3 {
		t.Errorf("DeltaTo = %v, want 3", got)
	}
	if got := Temperature(18).DeltaTo(22); got != 4 {
		t.Errorf("DeltaTo = %v, want 4 (symmetric)", got)
	}
}

func TestLightLevelClamp(t *testing.T) {
	cases := []struct {
		in, want LightLevel
	}{
		{-5, 0}, {0, 0}, {40, 40}, {100, 100}, {140, 100},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("LightLevel(%v).Clamp() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEmissions(t *testing.T) {
	// 1000 kWh at the EU grid intensity is 275 kg CO₂e.
	got := Energy(1000).Emissions(EUGridIntensity)
	if math.Abs(got.Kg()-275) > 1e-9 {
		t.Errorf("Emissions = %v, want 275 kg", got)
	}
	if Energy(0).Emissions(EUGridIntensity) != 0 {
		t.Error("zero energy emits")
	}
	if got := Mass(120).String(); got != "120.00 kg" {
		t.Errorf("Mass(120).String() = %q", got)
	}
	if got := Mass(41250).String(); got != "41.25 t" {
		t.Errorf("Mass(41250).String() = %q", got)
	}
}

func TestPropertyEmissionsLinear(t *testing.T) {
	f := func(a, b uint16) bool {
		ea, eb := Energy(a), Energy(b)
		sum := (ea + eb).Emissions(EUGridIntensity)
		parts := ea.Emissions(EUGridIntensity) + eb.Emissions(EUGridIntensity)
		return math.Abs(sum.Kg()-parts.Kg()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentRoundTrip(t *testing.T) {
	if got := Percent(62).Fraction(); got != 0.62 {
		t.Errorf("Fraction() = %v, want 0.62", got)
	}
	if got := FromFraction(0.0235); math.Abs(float64(got)-2.35) > 1e-12 {
		t.Errorf("FromFraction(0.0235) = %v, want 2.35", got)
	}
	if got := Percent(2.35).String(); got != "2.35%" {
		t.Errorf("String() = %q", got)
	}
}

func TestPropertyDeltaSymmetricNonNegative(t *testing.T) {
	f := func(a, b float64) bool {
		// Restrict to finite realistic values.
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ta, tb := Temperature(a), Temperature(b)
		d1, d2 := ta.DeltaTo(tb), tb.DeltaTo(ta)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPowerOverAdditive(t *testing.T) {
	// Energy over d1+d2 equals energy over d1 plus energy over d2.
	f := func(w uint16, m1, m2 uint16) bool {
		p := Power(w)
		d1 := time.Duration(m1) * time.Minute
		d2 := time.Duration(m2) * time.Minute
		sum := p.Over(d1).KWh() + p.Over(d2).KWh()
		whole := p.Over(d1 + d2).KWh()
		return math.Abs(sum-whole) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyClampIdempotentInRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := LightLevel(v).Clamp()
		return c >= 0 && c <= 100 && c.Clamp() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoneyAndTariff(t *testing.T) {
	// The paper: 1 kWh ≈ 0.20 €, so 100 € buys 500 kWh.
	if got := EUTariff.Energy(100); got.KWh() != 500 {
		t.Errorf("100 EUR buys %v, want 500 kWh", got)
	}
	if got := EUTariff.Cost(500); got.Euros() != 100 {
		t.Errorf("500 kWh costs %v, want 100 EUR", got)
	}
	if got := Tariff(0).Energy(100); got != 0 {
		t.Errorf("zero tariff energy = %v", got)
	}
	if got := Money(12.5).String(); got != "€12.50" {
		t.Errorf("Money.String() = %q", got)
	}
}

func TestPropertyTariffRoundTrip(t *testing.T) {
	f := func(kwhRaw uint16) bool {
		e := Energy(kwhRaw)
		back := EUTariff.Energy(EUTariff.Cost(e))
		return math.Abs(back.KWh()-e.KWh()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
