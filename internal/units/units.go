// Package units defines the physical quantities used across IMCF:
// energy (kWh), power (W), temperature (°C), light level, and percent.
//
// Quantities are small value types over float64 with explicit conversion
// helpers, so that a kWh can never be accidentally added to a Celsius.
// Formatting follows the conventions of the IMCF paper (kWh with two
// decimals, temperature in whole or half degrees, light on the 0–100
// dimmer scale).
package units

import (
	"fmt"
	"math"
	"time"
)

// Energy is an amount of electrical energy in kilowatt-hours.
type Energy float64

// Common energy constants.
const (
	WattHour     Energy = 0.001
	KilowattHour Energy = 1
	MegawattHour Energy = 1000
)

// KWh returns the energy as a float64 number of kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) }

// Wh returns the energy as a float64 number of watt-hours.
func (e Energy) Wh() float64 { return float64(e) * 1000 }

// String formats the energy with the unit used throughout the paper.
func (e Energy) String() string {
	switch {
	case math.Abs(float64(e)) >= 1000:
		return fmt.Sprintf("%.2f MWh", float64(e)/1000)
	case math.Abs(float64(e)) < 0.001 && e != 0:
		return fmt.Sprintf("%.3f Wh", float64(e)*1000)
	default:
		return fmt.Sprintf("%.2f kWh", float64(e))
	}
}

// IsZero reports whether the energy is exactly zero.
func (e Energy) IsZero() bool { return e == 0 }

// Power is an instantaneous power draw in watts.
type Power float64

// Common power constants.
const (
	Watt     Power = 1
	Kilowatt Power = 1000
)

// Watts returns the power as a float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// String formats the power in W or kW.
func (p Power) String() string {
	if math.Abs(float64(p)) >= 1000 {
		return fmt.Sprintf("%.2f kW", float64(p)/1000)
	}
	return fmt.Sprintf("%.0f W", float64(p))
}

// Over returns the energy consumed by drawing power p for duration d.
func (p Power) Over(d time.Duration) Energy {
	hours := d.Hours()
	return Energy(float64(p) / 1000 * hours)
}

// Temperature is a temperature in degrees Celsius.
type Temperature float64

// Celsius returns the temperature as a float64 number of degrees Celsius.
func (t Temperature) Celsius() float64 { return float64(t) }

// String formats the temperature as in the paper (°C).
func (t Temperature) String() string { return fmt.Sprintf("%.1f°C", float64(t)) }

// DeltaTo returns the absolute difference between t and other in degrees.
func (t Temperature) DeltaTo(other Temperature) float64 {
	return math.Abs(float64(t) - float64(other))
}

// LightLevel is a luminosity setting on the 0–100 dimmer scale used by the
// paper's Meta-Rule Table ("Set Light 40").
type LightLevel float64

// Level returns the light level as a float64 on the 0–100 scale.
func (l LightLevel) Level() float64 { return float64(l) }

// String formats the light level.
func (l LightLevel) String() string { return fmt.Sprintf("%.0f", float64(l)) }

// Clamp returns the light level clamped to the valid [0, 100] range.
func (l LightLevel) Clamp() LightLevel {
	if l < 0 {
		return 0
	}
	if l > 100 {
		return 100
	}
	return l
}

// DeltaTo returns the absolute difference between l and other.
func (l LightLevel) DeltaTo(other LightLevel) float64 {
	return math.Abs(float64(l) - float64(other))
}

// Mass is a mass in kilograms, used for CO₂ accounting — the paper's
// future-work direction of "CO₂ reduction methods with algorithms
// geared towards the environment".
type Mass float64

// Kg returns the mass as a float64 number of kilograms.
func (m Mass) Kg() float64 { return float64(m) }

// String formats the mass in kg or tonnes.
func (m Mass) String() string {
	if math.Abs(float64(m)) >= 1000 {
		return fmt.Sprintf("%.2f t", float64(m)/1000)
	}
	return fmt.Sprintf("%.2f kg", float64(m))
}

// EmissionFactor converts consumed energy to CO₂-equivalent mass, in
// kilograms per kWh.
type EmissionFactor float64

// EUGridIntensity is the approximate EU-average electricity carbon
// intensity in the paper's time frame (~275 g CO₂e per kWh).
const EUGridIntensity EmissionFactor = 0.275

// Emissions returns the CO₂-equivalent mass of consuming the energy at
// the given grid intensity.
func (e Energy) Emissions(f EmissionFactor) Mass {
	return Mass(float64(e) * float64(f))
}

// Money is an amount in euros. The paper converts budgets between money
// and energy directly ("Keep the monthly energy consumption budget below
// 100 euro" at ≈0.20 €/kWh).
type Money float64

// Euros returns the amount as a float64 number of euros.
func (m Money) Euros() float64 { return float64(m) }

// String formats the amount.
func (m Money) String() string { return fmt.Sprintf("€%.2f", float64(m)) }

// Tariff is an electricity price in euros per kWh.
type Tariff float64

// EUTariff is the paper's quoted EU average price: ≈0.20 €/kWh.
const EUTariff Tariff = 0.20

// Cost returns the price of the energy at this tariff.
func (t Tariff) Cost(e Energy) Money { return Money(float64(e) * float64(t)) }

// Energy returns the energy a budget buys at this tariff.
func (t Tariff) Energy(m Money) Energy {
	if t == 0 {
		return 0
	}
	return Energy(float64(m) / float64(t))
}

// Percent is a ratio expressed in percent (0–100 for the usual range,
// though values outside it are representable).
type Percent float64

// Fraction returns the percent as a 0–1 fraction.
func (p Percent) Fraction() float64 { return float64(p) / 100 }

// FromFraction converts a 0–1 fraction into a Percent.
func FromFraction(f float64) Percent { return Percent(f * 100) }

// String formats the percent with two decimals, as in the paper's tables.
func (p Percent) String() string { return fmt.Sprintf("%.2f%%", float64(p)) }
