package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpOpen:     "open",
		OpWrite:    "write",
		OpSyncDir:  "syncdir",
		OpSize:     "size",
		Op(0):      "unknown",
		Op(200):    "unknown",
		OpReadFile: "readfile",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestIsDiskFault(t *testing.T) {
	if !IsDiskFault(fmt.Errorf("wal append: %w", syscall.ENOSPC)) {
		t.Error("wrapped ENOSPC not classified as disk fault")
	}
	if !IsDiskFault(&os.PathError{Op: "write", Path: "x", Err: syscall.EIO}) {
		t.Error("EIO PathError not classified as disk fault")
	}
	if IsDiskFault(errors.New("bad request")) {
		t.Error("logic error misclassified as disk fault")
	}
	if IsDiskFault(nil) {
		t.Error("nil misclassified as disk fault")
	}
}

// TestOSRoundTrip drives the production passthrough against a real
// temp directory: create, append, sync, reopen, read, size, truncate,
// rename, syncdir, remove.
func TestOSRoundTrip(t *testing.T) {
	var fsys OS
	dir := filepath.Join(t.TempDir(), "sub", "dir")
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "f")

	f, err := fsys.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if b, err := fsys.ReadFile(p); err != nil || string(b) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if n, err := fsys.Size(p); err != nil || n != 11 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := fsys.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	if b, _ := fsys.ReadFile(p); string(b) != "hello" {
		t.Fatalf("after truncate: %q", b)
	}

	r, err := fsys.OpenFile(p, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "hello" {
		t.Fatalf("sequential read = %q, %v", got, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := filepath.Join(dir, "g")
	if err := fsys.Rename(p, p2); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Size(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old name still visible: %v", err)
	}
	if err := fsys.Remove(p2); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(""); err != nil {
		t.Fatalf("SyncDir(\"\") should sync the cwd: %v", err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("SyncDir of a missing directory should fail")
	}
}
