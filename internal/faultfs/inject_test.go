package faultfs

import (
	"errors"
	"os"
	"syscall"
	"testing"
)

func TestFaultyCountsWithNilInjector(t *testing.T) {
	fy := NewFaulty(NewMemFS(), nil)
	if err := fy.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fy.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fy.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fy.ReadFile("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fy.Size("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fy.Rename("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	if err := fy.Truncate("/d/g", 1); err != nil {
		t.Fatal(err)
	}
	if err := fy.Remove("/d/g"); err != nil {
		t.Fatal(err)
	}
	// mkdir, open, write, sync, close, syncdir, readfile, size, rename,
	// truncate, remove = 11 instrumented ops.
	if got := fy.Ops(); got != 11 {
		t.Fatalf("Ops = %d, want 11", got)
	}
	if fy.Dead() {
		t.Fatal("counting wrapper should never be dead")
	}
}

// TestFaultyOpSequence checks that the injector sees every operation
// with the right class, path and index.
func TestFaultyOpSequence(t *testing.T) {
	var seen []FaultOp
	inj := InjectorFunc(func(op FaultOp) *Fault {
		seen = append(seen, op)
		return nil
	})
	fy := NewFaulty(NewMemFS(), inj)
	if err := fy.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fy.OpenFile("/d/f", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 1)); err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	want := []struct {
		op   Op
		path string
		size int
	}{
		{OpMkdir, "/d", 0},
		{OpOpen, "/d/f", 0},
		{OpWrite, "/d/f", 3},
		{OpRead, "/d/f", 0},
	}
	if len(seen) != len(want) {
		t.Fatalf("saw %d ops, want %d: %+v", len(seen), len(want), seen)
	}
	for i, w := range want {
		got := seen[i]
		if got.Op != w.op || got.Path != w.path || got.Index != i || got.Size != w.size {
			t.Errorf("op %d = %+v, want {%v %s %d %d}", i, got, w.op, w.path, i, w.size)
		}
	}
}

func TestFaultyInjectedErrors(t *testing.T) {
	enospc := &Fault{Err: syscall.ENOSPC}
	inj := InjectorFunc(func(op FaultOp) *Fault {
		if op.Op == OpSync {
			return enospc
		}
		if op.Op == OpSyncDir {
			return &Fault{} // nil Err defaults to ErrInjected
		}
		return nil
	})
	fy := NewFaulty(NewMemFS(), inj)
	if err := fy.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fy.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sync error = %v, want ENOSPC", err)
	}
	if !IsDiskFault(func() error { return f.Sync() }()) {
		t.Fatal("injected ENOSPC should classify as a disk fault")
	}
	if err := fy.SyncDir("/d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir error = %v, want ErrInjected", err)
	}
	// Non-crash faults are transient: the layer is not dead and later
	// operations succeed.
	if fy.Dead() {
		t.Fatal("non-crash fault must not kill the layer")
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after transient fault: %v", err)
	}
}

func TestFaultyPartialWrite(t *testing.T) {
	inj := InjectorFunc(func(op FaultOp) *Fault {
		if op.Op == OpWrite {
			return &Fault{Err: syscall.EIO, Partial: 4}
		}
		return nil
	})
	mem := NewMemFS()
	fy := NewFaulty(mem, inj)
	if err := fy.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fy.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("write error = %v, want EIO", err)
	}
	if n != 4 {
		t.Fatalf("short write reported n=%d, want 4", n)
	}
	if b, _ := mem.ReadFile("/d/f"); string(b) != "abcd" {
		t.Fatalf("inner content after torn write = %q, want \"abcd\"", b)
	}

	// Partial larger than the buffer is clamped.
	inj2 := InjectorFunc(func(op FaultOp) *Fault {
		if op.Op == OpWrite {
			return &Fault{Partial: 99}
		}
		return nil
	})
	fy2 := NewFaulty(mem, inj2)
	f2, err := fy2.OpenFile("/d/f2", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f2.Write([]byte("xy")); !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("clamped partial: n=%d err=%v", n, err)
	}
}

func TestFaultyCrashAt(t *testing.T) {
	mem := NewMemFS()
	fy := NewFaulty(mem, CrashAt(3))
	if err := fy.MkdirAll("/d", 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	f, err := fy.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil { // op 2
		t.Fatal(err)
	}
	if fy.Dead() {
		t.Fatal("dead before the crash point")
	}
	n, err := f.Write([]byte("second")) // op 3: crash, deterministic tear
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point error = %v, want ErrCrashed", err)
	}
	if n < 0 || n > len("second") {
		t.Fatalf("torn write n=%d out of range", n)
	}
	if !fy.Dead() {
		t.Fatal("layer should be dead after the crash point")
	}

	// Everything after the crash fails with ErrCrashed, reaching nothing.
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash close = %v", err)
	}
	if _, err := fy.OpenFile("/d/g", os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v", err)
	}
	if _, err := fy.ReadFile("/d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readfile = %v", err)
	}
	if _, err := fy.Size("/d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash size = %v", err)
	}
	if err := fy.Truncate("/d/f", 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate = %v", err)
	}
	if err := fy.Rename("/d/f", "/d/g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename = %v", err)
	}
	if err := fy.Remove("/d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove = %v", err)
	}
	if err := fy.MkdirAll("/e", 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir = %v", err)
	}
	if err := fy.SyncDir("/d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir = %v", err)
	}

	// The inner FS itself stays usable: the harness reboots by calling
	// mem.Crash() and attaching a fresh Faulty.
	mem.Crash()
	fy2 := NewFaulty(mem, nil)
	if _, err := fy2.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("reboot open: %v", err)
	}

	// CrashAt tears deterministically: same schedule, same partial.
	run := func() int {
		m := NewMemFS()
		y := NewFaulty(m, CrashAt(2))
		if err := y.MkdirAll("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		h, err := y.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := h.Write([]byte("payload")) //nolint:errcheck // the crash is the point
		return n
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("CrashAt tear not deterministic: %d vs %d", a, b)
	}
}
