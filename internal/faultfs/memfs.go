package faultfs

import (
	"bytes"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with an explicit crash-durability model:
//
//   - File *content* survives a crash only up to the file's last Sync.
//   - Namespace entries (creates, renames, removes) survive only once
//     the parent directory has been SyncDir'd afterwards.
//   - Directories themselves are durable as soon as MkdirAll returns
//     (a simplification: the layers under test never remove them).
//
// Crash simulates power loss: the live state is replaced by the
// durable state. With a tearing seed, a deterministic prefix of each
// file's unsynced appended suffix additionally survives, modeling the
// partially-flushed pages a real disk can leave behind — which is
// exactly what the WAL's CRC-and-truncate replay path must absorb.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu   sync.Mutex
	live map[string]*memFile // current namespace
	dur  map[string]*memFile // namespace as of the last SyncDir
	dirs map[string]bool     // existing directories
}

type memFile struct {
	data   []byte // live content
	synced []byte // content as of the last Sync
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		live: make(map[string]*memFile),
		dur:  make(map[string]*memFile),
		dirs: make(map[string]bool),
	}
}

func memClean(p string) string { return filepath.Clean(p) }

func (m *MemFS) dirExists(dir string) bool {
	return dir == "." || dir == "/" || m.dirs[dir]
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs       *MemFS
	f        *memFile
	path     string
	off      int
	append   bool
	writable bool
	closed   bool
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExists(filepath.Dir(path)) {
		return nil, notExist("open", path)
	}
	f, ok := m.live[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		f = &memFile{}
		m.live[path] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil // the truncate is unsynced: f.synced keeps the old content
	}
	return &memHandle{
		fs:       m,
		f:        f,
		path:     path,
		append:   flag&os.O_APPEND != 0,
		writable: flag&(os.O_WRONLY|os.O_RDWR) != 0,
	}, nil
}

// Read implements File, reading sequentially from the handle's offset.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

// Write implements File. Append-mode handles always write at the end;
// others write at the handle offset, zero-extending as needed.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.path, Err: fs.ErrPermission}
	}
	if h.append {
		h.f.data = append(h.f.data, p...)
		h.off = len(h.f.data)
		return len(p), nil
	}
	end := h.off + len(p)
	for len(h.f.data) < end {
		h.f.data = append(h.f.data, 0)
	}
	copy(h.f.data[h.off:end], p)
	h.off = end
	return len(p), nil
}

// Sync implements File: the current content becomes crash-durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

// Close implements File. Closing does not sync.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		return nil, notExist("readfile", path)
	}
	return append([]byte(nil), f.data...), nil
}

// Size implements FS.
func (m *MemFS) Size(path string) (int64, error) {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		return 0, notExist("size", path)
	}
	return int64(len(f.data)), nil
}

// Truncate implements FS. Like a real truncate, the size change is not
// crash-durable until the next Sync of the file.
func (m *MemFS) Truncate(path string, size int64) error {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		return notExist("truncate", path)
	}
	if int(size) <= len(f.data) {
		f.data = f.data[:size]
		return nil
	}
	for len(f.data) < int(size) {
		f.data = append(f.data, 0)
	}
	return nil
}

// Rename implements FS. The move is visible immediately but durable
// only after SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = memClean(oldpath), memClean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	if !m.dirExists(filepath.Dir(newpath)) {
		return notExist("rename", newpath)
	}
	delete(m.live, oldpath)
	m.live[newpath] = f
	return nil
}

// Remove implements FS. Durable only after SyncDir.
func (m *MemFS) Remove(path string) error {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[path]; !ok {
		return notExist("remove", path)
	}
	delete(m.live, path)
	return nil
}

// MkdirAll implements FS. Directories are durable immediately.
func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	path = memClean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; p != "." && p != "/"; p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

// SyncDir implements FS: the directory's current set of direct entries
// becomes the durable namespace for that directory.
func (m *MemFS) SyncDir(dir string) error {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExists(dir) {
		return notExist("syncdir", dir)
	}
	for p, f := range m.live {
		if filepath.Dir(p) == dir {
			m.dur[p] = f
		}
	}
	for p := range m.dur {
		if filepath.Dir(p) == dir {
			if _, ok := m.live[p]; !ok {
				delete(m.dur, p)
			}
		}
	}
	return nil
}

// Crash simulates power loss and reboot: only durable directory
// entries survive, each holding its last-synced content. Outstanding
// handles keep referencing the pre-crash objects and must be
// discarded by the caller (the Faulty wrapper's dead state enforces
// this when the crash came from an injector).
func (m *MemFS) Crash() { m.crash(0) }

// CrashTearing is Crash with torn tails: for every surviving file
// whose live content extended its synced content, a deterministic
// (seeded) prefix of the unsynced suffix also survives — the
// partially-flushed pages of a real power loss. seed 0 tears nothing.
func (m *MemFS) CrashTearing(seed uint64) { m.crash(seed) }

func (m *MemFS) crash(seed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	newLive := make(map[string]*memFile, len(m.dur))
	newDur := make(map[string]*memFile, len(m.dur))
	for p, f := range m.dur {
		content := append([]byte(nil), f.synced...)
		if seed != 0 && bytes.HasPrefix(f.data, f.synced) && len(f.data) > len(f.synced) {
			delta := f.data[len(f.synced):]
			content = append(content, delta[:tearLen(seed, p, len(delta))]...)
		}
		nf := &memFile{data: content, synced: append([]byte(nil), content...)}
		newLive[p] = nf
		newDur[p] = nf
	}
	m.live = newLive
	m.dur = newDur
}

// tearLen deterministically picks how many of n unsynced bytes survive
// a tearing crash: a seeded FNV hash of the path, so distinct files
// and seeds tear at different offsets but a given run replays exactly.
func tearLen(seed uint64, path string, n int) int {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])         //nolint:errcheck // fnv never fails
	h.Write([]byte(path)) //nolint:errcheck // fnv never fails
	return int(h.Sum64() % uint64(n+1))
}

// Paths lists the live file paths, sorted — test introspection.
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.live))
	for p := range m.live {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
