package faultfs

import (
	"errors"
	"hash/fnv"
	"os"
	"sync"
)

// ErrCrashed is returned by every operation of a Faulty layer after a
// crash fault fired: the process would be dead, so nothing more can
// reach the disk.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrInjected is the default error for injected non-crash faults.
var ErrInjected = errors.New("faultfs: injected fault")

// FaultOp describes one instrumented operation about to execute.
type FaultOp struct {
	Op    Op
	Path  string
	Index int // 0-based sequence number of the operation in this Faulty
	Size  int // byte count for OpWrite, else 0
}

// Fault is an injector's verdict for one operation.
type Fault struct {
	// Err is returned from the operation. Nil with Crash set defaults
	// to ErrCrashed; nil otherwise defaults to ErrInjected.
	Err error
	// Partial, for OpWrite, is how many leading bytes still reach the
	// inner file before the error — a torn write.
	Partial int
	// Crash flips the Faulty into the dead state: this operation and
	// every later one fail with ErrCrashed.
	Crash bool
}

// Injector decides the fate of each instrumented operation. Returning
// nil lets the operation through. Implementations must be
// deterministic: the recovery harness replays workloads and expects
// identical fault schedules.
type Injector interface {
	Fault(op FaultOp) *Fault
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(op FaultOp) *Fault

// Fault implements Injector.
func (f InjectorFunc) Fault(op FaultOp) *Fault { return f(op) }

// CrashAt returns an injector that crashes at the n-th instrumented
// operation (0-based). If that operation is a write, a deterministic
// prefix of it tears through to the inner file first, so the crash
// point exercises torn-record recovery too.
func CrashAt(n int) Injector {
	return InjectorFunc(func(op FaultOp) *Fault {
		if op.Index != n {
			return nil
		}
		f := &Fault{Crash: true}
		if op.Op == OpWrite && op.Size > 0 {
			h := fnv.New64a()
			h.Write([]byte(op.Path)) //nolint:errcheck // fnv never fails
			f.Partial = int((h.Sum64() ^ uint64(n)) % uint64(op.Size+1))
		}
		return f
	})
}

// Faulty wraps an inner FS, consulting an Injector before every
// operation. With a nil injector it simply counts operations — the
// harness uses that to enumerate a workload's failpoints.
type Faulty struct {
	inner FS
	inj   Injector

	mu   sync.Mutex
	ops  int
	dead bool
}

// NewFaulty wraps inner with the given injector (nil = count only).
func NewFaulty(inner FS, inj Injector) *Faulty {
	return &Faulty{inner: inner, inj: inj}
}

// Ops reports how many instrumented operations have been attempted.
func (fy *Faulty) Ops() int {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	return fy.ops
}

// Dead reports whether a crash fault has fired.
func (fy *Faulty) Dead() bool {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	return fy.dead
}

// enter numbers the operation and consults the injector. It returns a
// non-nil fault to apply, or an error that preempts the operation
// entirely (the dead state).
func (fy *Faulty) enter(op Op, path string, size int) (*Fault, error) {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	if fy.dead {
		return nil, ErrCrashed
	}
	idx := fy.ops
	fy.ops++
	if fy.inj == nil {
		return nil, nil
	}
	f := fy.inj.Fault(FaultOp{Op: op, Path: path, Index: idx, Size: size})
	if f == nil {
		return nil, nil
	}
	if f.Crash {
		fy.dead = true
		if f.Err == nil {
			return f, ErrCrashed
		}
	}
	if f.Err == nil {
		return f, ErrInjected
	}
	return f, f.Err
}

// OpenFile implements FS.
func (fy *Faulty) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if _, err := fy.enter(OpOpen, path, 0); err != nil {
		return nil, err
	}
	inner, err := fy.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fy: fy, inner: inner, path: path}, nil
}

// ReadFile implements FS.
func (fy *Faulty) ReadFile(path string) ([]byte, error) {
	if _, err := fy.enter(OpReadFile, path, 0); err != nil {
		return nil, err
	}
	return fy.inner.ReadFile(path)
}

// Size implements FS.
func (fy *Faulty) Size(path string) (int64, error) {
	if _, err := fy.enter(OpSize, path, 0); err != nil {
		return 0, err
	}
	return fy.inner.Size(path)
}

// Truncate implements FS.
func (fy *Faulty) Truncate(path string, size int64) error {
	if _, err := fy.enter(OpTruncate, path, 0); err != nil {
		return err
	}
	return fy.inner.Truncate(path, size)
}

// Rename implements FS.
func (fy *Faulty) Rename(oldpath, newpath string) error {
	if _, err := fy.enter(OpRename, oldpath, 0); err != nil {
		return err
	}
	return fy.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (fy *Faulty) Remove(path string) error {
	if _, err := fy.enter(OpRemove, path, 0); err != nil {
		return err
	}
	return fy.inner.Remove(path)
}

// MkdirAll implements FS.
func (fy *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if _, err := fy.enter(OpMkdir, path, 0); err != nil {
		return err
	}
	return fy.inner.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (fy *Faulty) SyncDir(dir string) error {
	if _, err := fy.enter(OpSyncDir, dir, 0); err != nil {
		return err
	}
	return fy.inner.SyncDir(dir)
}

// faultyFile instruments a handle's Read/Write/Sync/Close.
type faultyFile struct {
	fy    *Faulty
	inner File
	path  string
}

// Read implements File.
func (ff *faultyFile) Read(p []byte) (int, error) {
	if _, err := ff.fy.enter(OpRead, ff.path, 0); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

// Write implements File. A fault with Partial > 0 lets that many bytes
// through to the inner file before reporting the error — a torn write.
func (ff *faultyFile) Write(p []byte) (int, error) {
	f, err := ff.fy.enter(OpWrite, ff.path, len(p))
	if f == nil && err == nil {
		return ff.inner.Write(p)
	}
	n := 0
	if f != nil && f.Partial > 0 {
		k := f.Partial
		if k > len(p) {
			k = len(p)
		}
		n, _ = ff.inner.Write(p[:k]) //nolint:errcheck // the injected error wins
	}
	return n, err
}

// Sync implements File.
func (ff *faultyFile) Sync() error {
	if _, err := ff.fy.enter(OpSync, ff.path, 0); err != nil {
		return err
	}
	return ff.inner.Sync()
}

// Close implements File.
func (ff *faultyFile) Close() error {
	if _, err := ff.fy.enter(OpClose, ff.path, 0); err != nil {
		return err
	}
	return ff.inner.Close()
}
