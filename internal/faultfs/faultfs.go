// Package faultfs is the file layer underneath the durable subsystems
// (internal/store's WAL+snapshot, internal/persistence's decision
// journal). It exists so crash consistency can be *tested*, not just
// claimed: every operation the durable layers perform — open, write,
// sync, close, rename, truncate, remove, directory sync — goes through
// the FS seam, and the test-only implementations can fail or "crash"
// at any of those points deterministically.
//
// Three implementations ship:
//
//   - OS — the production passthrough to the real filesystem. It adds
//     no state and no allocations beyond what the os package itself
//     performs, so the disabled path is zero-cost (per the imcf-lint
//     noalloc/determinism discipline; see DESIGN.md §11).
//   - MemFS — an in-memory filesystem with an explicit durability
//     model: file content survives a crash only up to the last Sync,
//     and namespace operations (create, rename, remove) survive only
//     after a SyncDir of the parent directory. Crash() simulates power
//     loss by discarding everything else.
//   - Faulty — a wrapper that consults an Injector before every
//     operation and can return short writes, ENOSPC/EIO, or flip the
//     whole layer into a dead post-crash state.
//
// The kill-at-every-failpoint harnesses in internal/store and
// internal/persistence enumerate the instrumented operations of a
// scripted workload, crash at each one in turn, reboot (MemFS.Crash +
// reopen) and assert that no acknowledged write is lost under
// SyncWrites and that reopen always succeeds.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// Op classifies an instrumented file-layer operation. Injectors match
// on it to target specific failpoints.
type Op uint8

// The operation classes the durable layers perform.
const (
	OpOpen Op = iota + 1
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpTruncate
	OpRemove
	OpMkdir
	OpSyncDir
	OpReadFile
	OpSize
)

var opNames = [...]string{
	OpOpen:     "open",
	OpRead:     "read",
	OpWrite:    "write",
	OpSync:     "sync",
	OpClose:    "close",
	OpRename:   "rename",
	OpTruncate: "truncate",
	OpRemove:   "remove",
	OpMkdir:    "mkdir",
	OpSyncDir:  "syncdir",
	OpReadFile: "readfile",
	OpSize:     "size",
}

// String returns the op's short name ("write", "syncdir", ...).
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "unknown"
}

// File is the handle surface the durable layers need: sequential reads
// for WAL replay, appends, fsync and close. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem seam. All paths are passed through verbatim;
// implementations may interpret them as real paths (OS) or as keys in
// a virtual namespace (MemFS).
type FS interface {
	// OpenFile opens path with os-style flags (os.O_RDONLY,
	// os.O_CREATE|os.O_WRONLY|os.O_APPEND, ...).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole content of path.
	ReadFile(path string) ([]byte, error)
	// Size reports the current length of the file at path.
	Size(path string) (int64, error)
	// Truncate resizes the file at path (zero-extending when growing).
	Truncate(path string, size int64) error
	// Rename atomically moves oldpath to newpath, replacing any
	// existing file. Durability of the new name requires SyncDir.
	Rename(oldpath, newpath string) error
	// Remove unlinks path.
	Remove(path string) error
	// MkdirAll creates path and its missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making the current set of
	// directory entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// OS is the production FS: a stateless passthrough to the os package.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Size implements FS.
func (OS) Size(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS: it opens the directory and fsyncs the handle,
// committing directory entries (the rename trick every WAL-based store
// relies on).
func (OS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// IsDiskFault reports whether err looks like a persistent media fault —
// out of space or an I/O error — as opposed to a logic or usage error.
// The daemon uses it to decide when to enter read-only degraded mode.
func IsDiskFault(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO)
}

// notExist returns the canonical missing-file error for a virtual path,
// shaped so errors.Is(err, os.ErrNotExist) holds like it does for os.
func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}
