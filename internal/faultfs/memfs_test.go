package faultfs

import (
	"errors"
	"io"
	"os"
	"reflect"
	"testing"
)

func memWrite(t *testing.T, m *MemFS, path, content string, sync bool) {
	t.Helper()
	f, err := m.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSBasicIO(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenFile("/missing/f", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if _, err := m.OpenFile("/d/f", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing without O_CREATE: %v", err)
	}

	memWrite(t, m, "/d/f", "abcdef", true)
	if b, err := m.ReadFile("/d/f"); err != nil || string(b) != "abcdef" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if n, err := m.Size("/d/f"); err != nil || n != 6 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if _, err := m.ReadFile("/d/none"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile missing: %v", err)
	}
	if _, err := m.Size("/d/none"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Size missing: %v", err)
	}

	// Sequential reads hit EOF like a real handle.
	r, err := m.OpenFile("/d/f", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Fatal("write on read-only handle should fail")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after close should fail")
	}

	// Non-append handles write at their offset, zero-extending.
	w, err := m.OpenFile("/d/g", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync after close should fail")
	}

	// O_TRUNC clears live content.
	w2, err := m.OpenFile("/d/g", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.ReadFile("/d/g"); string(b) != "new" {
		t.Fatalf("after O_TRUNC rewrite: %q", b)
	}

	if err := m.Truncate("/d/g", 2); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.ReadFile("/d/g"); string(b) != "ne" {
		t.Fatalf("after truncate: %q", b)
	}
	if err := m.Truncate("/d/g", 4); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.ReadFile("/d/g"); string(b) != "ne\x00\x00" {
		t.Fatalf("after growing truncate: %q", b)
	}
	if err := m.Truncate("/d/none", 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("truncate missing: %v", err)
	}
}

func TestMemFSNamespace(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	memWrite(t, m, "/d/a", "A", true)
	if err := m.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("/d/none", "/d/x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rename missing source: %v", err)
	}
	memWrite(t, m, "/d/c", "C", true)
	if err := m.Rename("/d/c", "/nodir/c"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rename into missing dir: %v", err)
	}
	if err := m.Remove("/d/c"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/d/c"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("remove missing: %v", err)
	}
	if err := m.SyncDir("/nodir"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("syncdir missing dir: %v", err)
	}
	if got, want := m.Paths(), []string{"/d/b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths = %v, want %v", got, want)
	}
}

// TestMemFSCrashDurability pins the durability model: content survives
// to the last Sync; namespace entries survive to the last SyncDir.
func TestMemFSCrashDurability(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	// synced file, durable name.
	memWrite(t, m, "/d/synced", "keep", true)
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// extra unsynced append on the synced file.
	memWrite(t, m, "/d/synced", "-lost", false)
	// removal not yet durable: the durable namespace still has the file.
	memWrite(t, m, "/d/removed", "back", true)
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/d/removed"); err != nil {
		t.Fatal(err)
	}
	// file whose name was never SyncDir'd: gone after the crash.
	memWrite(t, m, "/d/unlinked", "gone", true)

	m.Crash()

	if b, err := m.ReadFile("/d/synced"); err != nil || string(b) != "keep" {
		t.Fatalf("synced file after crash = %q, %v (want content as of last Sync)", b, err)
	}
	if _, err := m.ReadFile("/d/removed"); err != nil {
		t.Fatal("removal without SyncDir should roll back on crash")
	}
	if got, want := m.Paths(), []string{"/d/removed", "/d/synced"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths after crash = %v, want %v", got, want)
	}

	// Directories remain after a crash; new files can be created.
	memWrite(t, m, "/d/new", "ok", true)
}

func TestMemFSRenameDurability(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	memWrite(t, m, "/d/old", "v1", true)
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// A rename without SyncDir rolls back on crash.
	if err := m.Rename("/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, want := m.Paths(), []string{"/d/old"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("un-synced rename survived the crash: %v, want %v", got, want)
	}
	// The same rename followed by SyncDir survives.
	if err := m.Rename("/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, want := m.Paths(), []string{"/d/new"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("synced rename lost in the crash: %v, want %v", got, want)
	}
	if b, _ := m.ReadFile("/d/new"); string(b) != "v1" {
		t.Fatalf("content after durable rename = %q", b)
	}
}

func TestMemFSCrashTearing(t *testing.T) {
	const seed = 0xBEEF
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	memWrite(t, m, "/d/f", "durable|", true)
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	memWrite(t, m, "/d/f", "torn-tail", false)

	m.CrashTearing(seed)

	b, err := m.ReadFile("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	want := "durable|" + "torn-tail"[:tearLen(seed, "/d/f", len("torn-tail"))]
	if string(b) != want {
		t.Fatalf("torn content = %q, want %q", b, want)
	}

	// Determinism: same seed and path always tear identically.
	if a, b := tearLen(seed, "/d/f", 9), tearLen(seed, "/d/f", 9); a != b {
		t.Fatalf("tearLen not deterministic: %d vs %d", a, b)
	}
	// Tearing never exceeds the unsynced suffix.
	for n := 0; n < 20; n++ {
		if l := tearLen(seed, "/x", n); l < 0 || l > n {
			t.Fatalf("tearLen(%d) = %d out of range", n, l)
		}
	}
}
