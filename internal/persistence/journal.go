package persistence

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
)

// journalRecords counts decision events durably appended to the
// journal log.
var journalRecords = metrics.NewCounter("imcf_persistence_journal_records_total",
	"Decision-provenance events appended to the on-disk journal log.")

// JournalFile is the decision journal's file name inside the
// persistence directory.
const JournalFile = "decisions.jnl"

// JournalLog is the durable backing of the decision journal: one JSON
// event per line, appended and flushed synchronously so a crash loses
// at most the event being written. It implements journal.Sink; the
// daemon replays it on boot (Replay → journal.Preload) and installs it
// as the live journal's sink, making "why was rule R dropped"
// answerable across restarts. Safe for concurrent use.
type JournalLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	bw   *bufio.Writer
	enc  *json.Encoder
}

// OpenJournal opens (creating if needed) the journal log in dir.
func OpenJournal(dir string) (*JournalLog, error) {
	if dir == "" {
		return nil, errors.New("persistence: journal dir must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persistence: create journal dir: %w", err)
	}
	return OpenJournalFile(filepath.Join(dir, JournalFile))
}

// OpenJournalFile opens (creating if needed) a journal log at an
// explicit path — cmd/imcf-explain uses it to read arbitrary dumps.
func OpenJournalFile(path string) (*JournalLog, error) {
	if path == "" {
		return nil, errors.New("persistence: journal path must be set")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persistence: open journal: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &JournalLog{path: path, f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Path returns the log's file path.
func (l *JournalLog) Path() string { return l.path }

// AppendEvent durably appends one event (implements journal.Sink).
func (l *JournalLog) AppendEvent(ev journal.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("persistence: journal log is closed")
	}
	if err := l.enc.Encode(ev); err != nil {
		return fmt.Errorf("persistence: encode journal event: %w", err)
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("persistence: flush journal: %w", err)
	}
	journalRecords.Inc()
	return nil
}

// Replay reads the log from the start, invoking fn for each decoded
// event, and returns the number of events replayed. A torn final line
// (crash mid-append) is ignored; a malformed interior line aborts with
// an error.
func (l *JournalLog) Replay(fn func(journal.Event)) (int, error) {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return 0, fmt.Errorf("persistence: read journal: %w", err)
	}
	n := 0
	for len(data) > 0 {
		line := data
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No trailing newline: a torn final append. Skip it.
			break
		}
		line, data = data[:nl], data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev journal.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return n, fmt.Errorf("persistence: journal line %d: %w", n+1, err)
		}
		fn(ev)
		n++
	}
	return n, nil
}

// Close flushes and closes the log. The log is unusable after.
func (l *JournalLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	flushErr := l.bw.Flush()
	closeErr := l.f.Close()
	l.f = nil
	if flushErr != nil {
		return fmt.Errorf("persistence: flush journal: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("persistence: close journal: %w", closeErr)
	}
	return nil
}
