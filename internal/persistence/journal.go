package persistence

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
)

// Journal durability counters.
var (
	journalRecords = metrics.NewCounter("imcf_persistence_journal_records_total",
		"Decision-provenance events appended to the on-disk journal log.")
	journalSyncs = metrics.NewCounter("imcf_persistence_journal_syncs_total",
		"fsyncs of the journal log (cadence configured by -journal-sync).")
	journalSkippedLines = metrics.NewCounter("imcf_persistence_journal_skipped_lines_total",
		"Torn or corrupt journal lines skipped during replay.")
)

// JournalFile is the decision journal's file name inside the
// persistence directory.
const JournalFile = "decisions.jnl"

// JournalOptions tunes the durability of a JournalLog.
type JournalOptions struct {
	// SyncEvery fsyncs the log after every N appended events. 0 means
	// the default of 1 (sync every event); a negative value syncs only
	// on Close — the provenance journal is advisory, so operators can
	// trade a crash's worth of events for append latency
	// (imcfd -journal-sync).
	SyncEvery int
	// FS overrides the file layer (tests inject faultfs fakes); nil
	// uses the real filesystem.
	FS faultfs.FS
}

func (o JournalOptions) syncEvery() int {
	if o.SyncEvery == 0 {
		return 1
	}
	return o.SyncEvery
}

// JournalLog is the durable backing of the decision journal: one JSON
// event per line, appended and flushed synchronously so a crash loses
// at most the events since the last fsync. It implements journal.Sink;
// the daemon replays it on boot (Replay → journal.Preload) and installs
// it as the live journal's sink, making "why was rule R dropped"
// answerable across restarts. Safe for concurrent use.
type JournalLog struct {
	mu        sync.Mutex
	path      string
	fs        faultfs.FS
	opts      JournalOptions
	f         faultfs.File
	bw        *bufio.Writer
	enc       *json.Encoder
	sinceSync int
}

// OpenJournal opens (creating if needed) the journal log in dir with
// default durability (fsync every event).
func OpenJournal(dir string) (*JournalLog, error) {
	return OpenJournalOpts(dir, JournalOptions{})
}

// OpenJournalOpts opens (creating if needed) the journal log in dir.
func OpenJournalOpts(dir string, o JournalOptions) (*JournalLog, error) {
	if dir == "" {
		return nil, errors.New("persistence: journal dir must be set")
	}
	fsys := o.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persistence: create journal dir: %w", err)
	}
	return OpenJournalFileOpts(filepath.Join(dir, JournalFile), o)
}

// OpenJournalFile opens (creating if needed) a journal log at an
// explicit path — cmd/imcf-explain uses it to read arbitrary dumps.
func OpenJournalFile(path string) (*JournalLog, error) {
	return OpenJournalFileOpts(path, JournalOptions{})
}

// OpenJournalFileOpts opens (creating if needed) a journal log at an
// explicit path.
func OpenJournalFileOpts(path string, o JournalOptions) (*JournalLog, error) {
	if path == "" {
		return nil, errors.New("persistence: journal path must be set")
	}
	fsys := o.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persistence: open journal: %w", err)
	}
	// A freshly created log is only a directory entry until the parent
	// is synced; without this a crash right after boot could drop the
	// whole file rather than just unsynced events.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close() //nolint:errcheck // the syncdir error is already being returned
		return nil, fmt.Errorf("persistence: sync journal dir: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &JournalLog{path: path, fs: fsys, opts: o, f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Path returns the log's file path.
func (l *JournalLog) Path() string { return l.path }

// AppendEvent appends one event (implements journal.Sink) and fsyncs
// according to the configured cadence.
func (l *JournalLog) AppendEvent(ev journal.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("persistence: journal log is closed")
	}
	if err := l.enc.Encode(ev); err != nil {
		return fmt.Errorf("persistence: encode journal event: %w", err)
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("persistence: flush journal: %w", err)
	}
	journalRecords.Inc()
	l.sinceSync++
	if every := l.opts.syncEvery(); every > 0 && l.sinceSync >= every {
		//imcf:allow lockdiscipline sync cadence under l.mu keeps the fsync ordered after exactly the flushed records; appenders queueing behind it is the durability contract
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persistence: sync journal: %w", err)
		}
		l.sinceSync = 0
		journalSyncs.Inc()
	}
	return nil
}

// Replay reads the log from the start, invoking fn for each decoded
// event, and returns the number of events replayed. Torn or corrupt
// lines — a tail cut mid-append, or an interior record mangled by a
// torn page — are skipped and counted in
// imcf_persistence_journal_skipped_lines_total rather than aborting:
// the journal is provenance, so salvaging every readable event beats
// refusing to boot.
func (l *JournalLog) Replay(fn func(journal.Event)) (int, error) {
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		return 0, fmt.Errorf("persistence: read journal: %w", err)
	}
	n, skipped := 0, 0
	for len(data) > 0 {
		line := data
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No trailing newline: a torn final append. Skip it.
			if len(bytes.TrimSpace(line)) != 0 {
				journalSkippedLines.Inc()
				skipped++
			}
			break
		}
		line, data = data[:nl], data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev journal.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			journalSkippedLines.Inc()
			skipped++
			continue
		}
		fn(ev)
		n++
	}
	if skipped > 0 {
		obs.L().LogAttrs(context.Background(), slog.LevelWarn,
			"journal replay skipped torn or corrupt lines",
			slog.String("path", l.path),
			slog.Int("replayed", n),
			slog.Int("skipped", skipped))
	}
	return n, nil
}

// Close flushes, fsyncs and closes the log. The log is unusable after.
func (l *JournalLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	flushErr := l.bw.Flush()
	var syncErr error
	if flushErr == nil {
		//imcf:allow lockdiscipline final fsync under l.mu: Close must drain every buffered record before the handle is released
		syncErr = l.f.Sync()
		if syncErr == nil && l.sinceSync > 0 {
			l.sinceSync = 0
			journalSyncs.Inc()
		}
	}
	closeErr := l.f.Close()
	l.f = nil
	if flushErr != nil {
		return fmt.Errorf("persistence: flush journal: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("persistence: sync journal: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("persistence: close journal: %w", closeErr)
	}
	return nil
}
