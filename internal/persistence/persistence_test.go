package persistence

import (
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/trace"
)

var p0 = time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)

func openService(t *testing.T) *Service {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func record(t *testing.T, s *Service, item string, kind trace.Kind, offset time.Duration, v float64) {
	t.Helper()
	if err := s.Record(item, kind, trace.Record{Time: p0.Add(offset), Value: v}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestRecordAndQuery(t *testing.T) {
	s := openService(t)
	for i := 0; i < 100; i++ {
		record(t, s, "zone0/temperature", trace.KindTemperature, time.Duration(i)*time.Minute, 20+float64(i%5))
	}
	recs, err := s.Query("zone0/temperature", p0, p0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 60 {
		t.Fatalf("query returned %d records, want 60", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("query results unsorted")
		}
	}
}

func TestRecordValidation(t *testing.T) {
	s := openService(t)
	if err := s.Record("", trace.KindLight, trace.Record{Time: p0}); err == nil {
		t.Error("empty item accepted")
	}
	if err := s.Record("x", trace.Kind(99), trace.Record{Time: p0}); err == nil {
		t.Error("invalid kind accepted")
	}
	record(t, s, "x", trace.KindLight, 0, 1)
	if err := s.Record("x", trace.KindTemperature, trace.Record{Time: p0.Add(time.Minute), Value: 2}); err == nil {
		t.Error("kind change accepted")
	}
}

func TestQueryUnknownItem(t *testing.T) {
	s := openService(t)
	if _, err := s.Query("ghost", p0, p0.Add(time.Hour)); err == nil {
		t.Error("unknown item accepted")
	}
}

func TestItemsAndSlashedIDs(t *testing.T) {
	s := openService(t)
	record(t, s, "proto/z0/temperature", trace.KindTemperature, 0, 20)
	record(t, s, "proto/z0/light", trace.KindLight, 0, 40)
	record(t, s, "plain", trace.KindDoor, 0, 1)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	items, err := s.Items()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"plain", "proto/z0/light", "proto/z0/temperature"}
	if len(items) != len(want) {
		t.Fatalf("items = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Errorf("items[%d] = %q, want %q", i, items[i], want[i])
		}
	}
	// Slashed item queries work.
	recs, err := s.Query("proto/z0/light", p0, p0.Add(time.Hour))
	if err != nil || len(recs) != 1 || recs[0].Value != 40 {
		t.Errorf("slashed query = %v, %v", recs, err)
	}
}

func TestSegmentsAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s1.Record("item", trace.KindTemperature,
			trace.Record{Time: p0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s1.Record("item", trace.KindTemperature, trace.Record{Time: p0}); err == nil {
		t.Error("record after close accepted")
	}

	// Second session appends a new segment.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 10; i < 20; i++ {
		if err := s2.Record("item", trace.KindTemperature,
			trace.Record{Time: p0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s2.Query("item", p0, p0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("merged query = %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Value != float64(i) {
			t.Fatalf("record %d = %v", i, r.Value)
		}
	}
}

func TestAggregate(t *testing.T) {
	s := openService(t)
	// Two hours of readings: first hour values 10, second hour 20/30.
	for i := 0; i < 60; i += 10 {
		record(t, s, "temp", trace.KindTemperature, time.Duration(i)*time.Minute, 10)
	}
	record(t, s, "temp", trace.KindTemperature, 60*time.Minute, 20)
	record(t, s, "temp", trace.KindTemperature, 90*time.Minute, 30)

	buckets, err := s.Aggregate("temp", p0, p0.Add(2*time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
	b0, b1 := buckets[0], buckets[1]
	if b0.Count != 6 || b0.Mean != 10 || b0.Min != 10 || b0.Max != 10 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	if b1.Count != 2 || b1.Mean != 25 || b1.Min != 20 || b1.Max != 30 {
		t.Errorf("bucket 1 = %+v", b1)
	}
	if !b1.Start.Equal(p0.Add(time.Hour)) {
		t.Errorf("bucket 1 start = %v", b1.Start)
	}

	if _, err := s.Aggregate("temp", p0, p0.Add(time.Hour), 0); err == nil {
		t.Error("zero bucket accepted")
	}
}

func TestAggregateEmptyRange(t *testing.T) {
	s := openService(t)
	record(t, s, "temp", trace.KindTemperature, 0, 10)
	buckets, err := s.Aggregate("temp", p0.AddDate(1, 0, 0), p0.AddDate(1, 0, 1), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 0 {
		t.Errorf("buckets = %+v", buckets)
	}
}

func TestItemPrefixCollision(t *testing.T) {
	// "a" and "a.b" must not leak into each other's queries even though
	// one escaped name prefixes the other.
	s := openService(t)
	record(t, s, "a", trace.KindTemperature, 0, 1)
	record(t, s, "a.5", trace.KindTemperature, 0, 2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Query("a", p0, p0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Value != 1 {
		t.Errorf("query a = %v", recs)
	}
}

func TestCompactMergesSegments(t *testing.T) {
	dir := t.TempDir()
	// Three sessions → three segments for the same item.
	for session := 0; session < 3; session++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			off := time.Duration(session*10+i) * time.Minute
			if err := s.Record("item", trace.KindTemperature,
				trace.Record{Time: p0.Add(off), Value: float64(session*10 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	segs, err := s.segmentsOf("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("pre-compaction segments = %d", len(segs))
	}
	if err := s.Compact("item"); err != nil {
		t.Fatal(err)
	}
	segs, err = s.segmentsOf("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("post-compaction segments = %d", len(segs))
	}
	recs, err := s.Query("item", p0, p0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("post-compaction records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Value != float64(i) {
			t.Fatalf("record %d = %v", i, r.Value)
		}
	}
	// Compacting again is a no-op; unknown items error.
	if err := s.Compact("item"); err != nil {
		t.Errorf("re-compaction: %v", err)
	}
	if err := s.Compact("ghost"); err == nil {
		t.Error("compacting unknown item accepted")
	}
}

func TestCompactSealsLiveWriter(t *testing.T) {
	s := openService(t)
	record(t, s, "live", trace.KindLight, 0, 1)
	record(t, s, "live", trace.KindLight, time.Minute, 2)
	if err := s.Compact("live"); err != nil {
		t.Fatal(err)
	}
	// Recording continues in a fresh segment afterwards.
	record(t, s, "live", trace.KindLight, 2*time.Minute, 3)
	recs, err := s.Query("live", p0, p0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %v", recs)
	}
}

func TestAggregateValuesFinite(t *testing.T) {
	s := openService(t)
	record(t, s, "x", trace.KindLight, 0, 5)
	buckets, err := s.Aggregate("x", p0, p0.Add(time.Minute), time.Minute)
	if err != nil || len(buckets) != 1 {
		t.Fatalf("%v %v", buckets, err)
	}
	if math.IsInf(buckets[0].Min, 0) || math.IsInf(buckets[0].Max, 0) {
		t.Errorf("bucket min/max not finalized: %+v", buckets[0])
	}
}
