package persistence

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/journal"
)

func journalEvent(i int) journal.Event {
	return journal.Event{
		Seq:            uint64(i + 1),
		Slot:           time.Date(2025, 6, 1, i%24, 0, 0, 0, time.UTC),
		Window:         i,
		Rule:           "rule-heating",
		Owner:          "alice",
		Verdict:        journal.VerdictDropped,
		Trace:          "0af7651916cd43dd8448eb211c80319c",
		EpRemainingKWh: 0.4,
		EnergyKWh:      1.2,
		FCEDelta:       0.7,
		FlipIter:       i,
	}
}

func TestJournalLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendEvent(journalEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.AppendEvent(journalEvent(9)); err == nil {
		t.Fatal("append after close succeeded")
	}

	// Reopen appends; replay sees both sessions.
	l2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close() //nolint:errcheck // test cleanup
	if err := l2.AppendEvent(journalEvent(3)); err != nil {
		t.Fatal(err)
	}
	var got []journal.Event
	n, err := l2.Replay(func(ev journal.Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(got) != 4 {
		t.Fatalf("replayed %d events, want 4", n)
	}
	want := journalEvent(2)
	if got[2] != want {
		t.Fatalf("event 2 = %+v, want %+v", got[2], want)
	}
}

func TestJournalLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvent(journalEvent(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a truncated, newline-free tail.
	path := filepath.Join(dir, JournalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"ru`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close() //nolint:errcheck // test cleanup
	n, err := l2.Replay(func(journal.Event) {})
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d events, want 1", n)
	}
}

func TestJournalLogMalformedInterior(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JournalFile)
	// A torn page can mangle a record in the middle of the file, not
	// just the tail. Replay salvages everything around it.
	if err := os.WriteFile(path, []byte("{\"seq\":1}\nnot json\n{\"seq\":3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	var seqs []uint64
	n, err := l.Replay(func(ev journal.Event) { seqs = append(seqs, ev.Seq) })
	if err != nil {
		t.Fatalf("malformed interior line must not fail replay: %v", err)
	}
	if n != 2 || len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("replay salvaged %d events (%v), want seqs [1 3]", n, seqs)
	}
}

func TestOpenJournalErrors(t *testing.T) {
	if _, err := OpenJournal(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestJournalLogAsSink(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := journal.New(8)
	j.SetSink(l)
	j.Append(journal.Event{Rule: "r1", Verdict: journal.VerdictExecuted})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: preload the persisted events into a fresh journal.
	l2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close() //nolint:errcheck // test cleanup
	j2 := journal.New(8)
	if _, err := l2.Replay(j2.Preload); err != nil {
		t.Fatal(err)
	}
	got := j2.Recent(journal.Filter{})
	if len(got) != 1 || got[0].Rule != "r1" || got[0].Seq != 1 {
		t.Fatalf("restarted journal = %+v", got)
	}
}
