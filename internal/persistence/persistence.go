// Package persistence implements the measurement-recording service of
// the IMCF GUI: "record OpenHAB item measurements/values on local
// storage and present those on a table". Item readings stream into
// Gorilla-compressed trace segments on disk (one directory per
// controller), and time-range and downsampling queries read them back —
// the same role openHAB's persistence layer plays for the paper's
// Rules Table view.
//
// Layout: each item owns a set of segment files
//
//	<dir>/<escaped-item>.<startUnix>.imt
//
// A segment is an append-ordered trace file; a new segment starts per
// service session. Queries merge all of an item's segments.
package persistence

import (
	"errors"
	"fmt"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/trace"
)

// Recording counters.
var (
	recordsWritten = metrics.NewCounter("imcf_persistence_records_total",
		"Item readings appended to trace segments.")
	flushes = metrics.NewCounter("imcf_persistence_flushes_total",
		"Explicit flushes of buffered readings to disk.")
	flushErrors = metrics.NewCounter("imcf_persistence_flush_errors_total",
		"Flushes that failed for at least one item segment.")
)

const segmentExt = ".imt"

// Service records and queries item readings. It is safe for concurrent
// use.
type Service struct {
	dir string
	fs  faultfs.FS

	mu      sync.Mutex
	writers map[string]*trace.Writer
	kinds   map[string]trace.Kind
	closed  bool
}

// Open prepares a persistence directory, creating it if needed, on the
// real filesystem.
func Open(dir string) (*Service, error) {
	return OpenFS(dir, nil)
}

// OpenFS is Open with directory-level operations (create, compaction
// rename/remove) routed through the given faultfs.FS, so crash suites
// can inject faults into them. A nil fsys uses the real filesystem.
// Segment content I/O goes through internal/trace, which owns its own
// file handling.
func OpenFS(dir string, fsys faultfs.FS) (*Service, error) {
	if dir == "" {
		return nil, errors.New("persistence: dir must be set")
	}
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persistence: create dir: %w", err)
	}
	return &Service{
		dir:     dir,
		fs:      fsys,
		writers: make(map[string]*trace.Writer),
		kinds:   make(map[string]trace.Kind),
	}, nil
}

// Record appends one reading for an item. The first Record for an item
// in this session opens a fresh segment; the kind must stay consistent
// within the session.
func (s *Service) Record(item string, kind trace.Kind, rec trace.Record) error {
	if item == "" {
		return errors.New("persistence: empty item")
	}
	if !kind.Valid() {
		return fmt.Errorf("persistence: invalid kind %v", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persistence: service is closed")
	}
	w, ok := s.writers[item]
	if !ok {
		path := filepath.Join(s.dir, fmt.Sprintf("%s.%d%s", escapeItem(item), rec.Time.Unix(), segmentExt))
		var err error
		w, err = trace.CreateFile(path, kind, 0)
		if err != nil {
			return err
		}
		s.writers[item] = w
		s.kinds[item] = kind
	}
	if s.kinds[item] != kind {
		return fmt.Errorf("persistence: item %q is %v, got %v", item, s.kinds[item], kind)
	}
	if err := w.Append(rec); err != nil {
		return err
	}
	recordsWritten.Inc()
	return nil
}

// Flush forces buffered readings of every item to disk.
func (s *Service) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	flushes.Inc()
	var firstErr error
	for item, w := range s.writers {
		if err := w.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("persistence: flush %q: %w", item, err)
		}
	}
	if firstErr != nil {
		flushErrors.Inc()
	}
	return firstErr
}

// Close flushes and closes all segments. The service is unusable after.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for item, w := range s.writers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("persistence: close %q: %w", item, err)
		}
	}
	s.writers = nil
	return firstErr
}

// Items lists every item with at least one on-disk segment, sorted.
func (s *Service) Items() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persistence: list: %w", err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segmentExt) {
			continue
		}
		item, ok := itemOfSegment(e.Name())
		if ok {
			seen[item] = true
		}
	}
	out := make([]string, 0, len(seen))
	for item := range seen {
		out = append(out, item)
	}
	sort.Strings(out)
	return out, nil
}

// Query returns an item's readings in [from, to), merged across
// segments and sorted by time. Buffered readings are flushed first.
func (s *Service) Query(item string, from, to time.Time) ([]trace.Record, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	segments, err := s.segmentsOf(item)
	if err != nil {
		return nil, err
	}
	if len(segments) == 0 {
		return nil, fmt.Errorf("persistence: unknown item %q", item)
	}
	var out []trace.Record
	for _, seg := range segments {
		r, err := trace.OpenFile(seg)
		if err != nil {
			return nil, err
		}
		r.Restrict(from, to)
		recs, err := r.ReadAll()
		r.Close() //nolint:errcheck // read-only
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	trace.SortRecords(out)
	return out, nil
}

// Bucket is one downsampled interval of an item's readings.
type Bucket struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Mean  float64   `json:"mean"`
}

// Aggregate downsamples an item's readings into fixed buckets. Empty
// buckets are omitted.
func (s *Service) Aggregate(item string, from, to time.Time, bucket time.Duration) ([]Bucket, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("persistence: bucket %v must be positive", bucket)
	}
	recs, err := s.Query(item, from, to)
	if err != nil {
		return nil, err
	}
	var out []Bucket
	var cur *Bucket
	var curEnd time.Time
	var sum float64
	flush := func() {
		if cur != nil {
			cur.Mean = sum / float64(cur.Count)
			out = append(out, *cur)
			cur, sum = nil, 0
		}
	}
	for _, r := range recs {
		if cur == nil || !r.Time.Before(curEnd) {
			flush()
			start := r.Time.Truncate(bucket)
			curEnd = start.Add(bucket)
			cur = &Bucket{Start: start, Min: math.Inf(1), Max: math.Inf(-1)}
		}
		cur.Count++
		sum += r.Value
		if r.Value < cur.Min {
			cur.Min = r.Value
		}
		if r.Value > cur.Max {
			cur.Max = r.Value
		}
	}
	flush()
	return out, nil
}

// Compact merges an item's closed segments into one, shrinking the file
// count and rewriting the readings in a single time-ordered trace. The
// item's live writer (if any) is finalized first, so compaction also
// seals the current session's segment. The merge is crash-safe: the
// merged segment is written to a temp file and renamed before the old
// segments are removed.
func (s *Service) Compact(item string) error {
	// Seal the live writer so its records participate.
	s.mu.Lock()
	if w, ok := s.writers[item]; ok {
		if err := w.Close(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("persistence: seal %q: %w", item, err)
		}
		delete(s.writers, item)
		delete(s.kinds, item)
	}
	s.mu.Unlock()

	segments, err := s.segmentsOf(item)
	if err != nil {
		return err
	}
	if len(segments) == 0 {
		return fmt.Errorf("persistence: unknown item %q", item)
	}
	if len(segments) == 1 {
		return nil // already compact
	}

	var all []trace.Record
	var kind trace.Kind
	for _, seg := range segments {
		r, err := trace.OpenFile(seg)
		if err != nil {
			return err
		}
		kind = r.Kind()
		recs, err := r.ReadAll()
		r.Close() //nolint:errcheck // read-only
		if err != nil {
			return err
		}
		all = append(all, recs...)
	}
	trace.SortRecords(all)

	first := all[0].Time.Unix()
	final := filepath.Join(s.dir, fmt.Sprintf("%s.%d%s", escapeItem(item), first, segmentExt))
	tmp := final + ".tmp"
	w, err := trace.CreateFile(tmp, kind, 0)
	if err != nil {
		return err
	}
	for _, rec := range all {
		if err := w.Append(rec); err != nil {
			w.Close()        //nolint:errcheck
			s.fs.Remove(tmp) //nolint:errcheck
			return err
		}
	}
	if err := w.Close(); err != nil {
		s.fs.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("persistence: install merged segment: %w", err)
	}
	for _, seg := range segments {
		if seg == final {
			continue
		}
		if err := s.fs.Remove(seg); err != nil {
			return fmt.Errorf("persistence: remove old segment: %w", err)
		}
	}
	return nil
}

// segmentsOf lists an item's segment paths sorted by start time.
func (s *Service) segmentsOf(item string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persistence: list: %w", err)
	}
	prefix := escapeItem(item) + "."
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segmentExt) || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		// Guard against another item whose escaped name extends this
		// prefix: the remainder must be purely the start timestamp.
		rest := strings.TrimSuffix(strings.TrimPrefix(e.Name(), prefix), segmentExt)
		if !isDigits(rest) {
			continue
		}
		out = append(out, filepath.Join(s.dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// escapeItem encodes an item ID (which may contain slashes) into a safe
// file-name stem.
func escapeItem(item string) string {
	return url.PathEscape(item)
}

// itemOfSegment recovers the item ID from a segment file name.
func itemOfSegment(name string) (string, bool) {
	stem := strings.TrimSuffix(name, segmentExt)
	dot := strings.LastIndexByte(stem, '.')
	if dot < 0 || !isDigits(stem[dot+1:]) {
		return "", false
	}
	item, err := url.PathUnescape(stem[:dot])
	if err != nil {
		return "", false
	}
	return item, true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
