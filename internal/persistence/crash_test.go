package persistence

import (
	"fmt"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
)

// The journal's crash suite mirrors the store's: enumerate every file
// operation a scripted append workload performs, crash at each one,
// reboot, and assert the log always reopens and replays cleanly and —
// with sync-every-event cadence — that no acknowledged event is lost.

const journalCrashEvents = 6

func journalWorkload(t *testing.T, fsys faultfs.FS, syncEvery int) (acked int, dead bool) {
	t.Helper()
	o := JournalOptions{SyncEvery: syncEvery, FS: fsys}
	l, err := OpenJournalOpts("/jnl", o)
	if err != nil {
		return 0, true
	}
	for i := 0; i < journalCrashEvents; i++ {
		if err := l.AppendEvent(journalEvent(i)); err != nil {
			return acked, true
		}
		acked++
	}
	if err := l.Close(); err != nil {
		return acked, true
	}
	return acked, false
}

func countJournalOps(t *testing.T, syncEvery int) int {
	t.Helper()
	faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
	if acked, dead := journalWorkload(t, faulty, syncEvery); dead || acked != journalCrashEvents {
		t.Fatalf("fault-free workload failed: acked=%d dead=%v", acked, dead)
	}
	return faulty.Ops()
}

func TestJournalCrashRecoveryEveryFailpoint(t *testing.T) {
	for _, syncEvery := range []int{1, 3, -1} {
		for _, tear := range []uint64{0, 0xD15C} {
			t.Run(fmt.Sprintf("syncEvery=%d/tear=%#x", syncEvery, tear), func(t *testing.T) {
				total := countJournalOps(t, syncEvery)
				if total < journalCrashEvents {
					t.Fatalf("suspiciously few failpoints: %d", total)
				}
				for n := 0; n < total; n++ {
					mem := faultfs.NewMemFS()
					faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
					acked, deadAfter := journalWorkload(t, faulty, syncEvery)
					if !faulty.Dead() && !deadAfter {
						t.Fatalf("failpoint %d never fired (ops=%d)", n, faulty.Ops())
					}
					if tear == 0 {
						mem.Crash()
					} else {
						mem.CrashTearing(tear)
					}

					// Reboot: reopen and replay must always succeed.
					l, err := OpenJournalOpts("/jnl", JournalOptions{SyncEvery: syncEvery, FS: mem})
					if err != nil {
						t.Fatalf("failpoint %d: reopen failed: %v", n, err)
					}
					var got []journal.Event
					cnt, err := l.Replay(func(ev journal.Event) { got = append(got, ev) })
					if err != nil {
						t.Fatalf("failpoint %d: replay failed: %v", n, err)
					}
					if cnt > journalCrashEvents {
						t.Fatalf("failpoint %d: replayed %d events, more than ever written", n, cnt)
					}
					// Sync-every-event cadence: every acked event must
					// survive, in order, as a prefix of the workload.
					if syncEvery == 1 {
						if cnt < acked {
							t.Fatalf("failpoint %d: lost acked events: replayed %d < acked %d", n, cnt, acked)
						}
						for i, ev := range got {
							if ev != journalEvent(i) {
								t.Fatalf("failpoint %d: event %d = %+v, want %+v", n, i, ev, journalEvent(i))
							}
						}
					}
					// The rebooted log accepts new appends.
					if err := l.AppendEvent(journalEvent(journalCrashEvents)); err != nil {
						t.Fatalf("failpoint %d: post-recovery append: %v", n, err)
					}
					if err := l.Close(); err != nil {
						t.Fatalf("failpoint %d: post-recovery close: %v", n, err)
					}
				}
			})
		}
	}
}

// TestJournalSyncCadence pins the -journal-sync semantics: with
// SyncEvery=N only every Nth append fsyncs; with close-only cadence
// (negative) no append fsyncs but Close does.
func TestJournalSyncCadence(t *testing.T) {
	mem := faultfs.NewMemFS()
	var syncs int
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if op.Op == faultfs.OpSync {
			syncs++
		}
		return nil
	})

	l, err := OpenJournalOpts("/jnl", JournalOptions{SyncEvery: 3, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.AppendEvent(journalEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 2 { // after events 3 and 6
		t.Fatalf("SyncEvery=3: %d fsyncs after 7 appends, want 2", syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs != 3 { // Close syncs the remaining tail
		t.Fatalf("after Close: %d fsyncs, want 3", syncs)
	}

	syncs = 0
	l2, err := OpenJournalOpts("/jnl", JournalOptions{SyncEvery: -1, FS: faultfs.NewFaulty(mem, inj)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l2.AppendEvent(journalEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 0 {
		t.Fatalf("close-only cadence fsynced %d times during appends", syncs)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("close-only cadence: %d fsyncs at Close, want 1", syncs)
	}
}
