// Package cloud implements the cloud tier of the IMCF architecture
// (Fig. 3 of the paper): the Cloud Controller (CC) that lets a user's
// APP reach their Local Controller from outside the smart space's NAT,
// and the Cloud Meta-Controller (CMC) role — the paper's "IMCF-Cloud"
// future-work extension — that configures rules across many sites at
// once.
//
// The Relay is an HTTP service with two route families:
//
//	GET  /cc/sites                     — registered sites
//	POST /cc/register                  — register a site {"site","url"}
//	DELETE /cc/sites/{site}            — unregister a site
//	ANY  /cc/sites/{site}/rest/...     — reverse-proxy to that site's LC
//	POST /cmc/broadcast/mrt            — push a Meta-Rule Table to every site
//	POST /cmc/broadcast/plan           — trigger an EP cycle on every site
//	GET  /cmc/stream/snapshot          — merged cross-site decision stream state
//	GET  /cmc/stream                   — merged decision-stream deltas (long-poll/SSE)
//
// The /cmc/stream pair appears when an Aggregator is attached: per-site
// workers follow each Local Controller's /rest/stream and republish
// into one merged hub keyed "site/kind" (DESIGN.md §16).
//
// A non-empty bearer token gates every route, standing in for the
// user-account auth a production CC would carry.
package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
)

// Relay request counters, by route family and outcome.
var (
	relayRequests = metrics.NewCounterVec("imcf_cloud_requests_total",
		"Requests handled by the cloud relay, by route family.", "route")
	relayAuthFailures = metrics.NewCounter("imcf_cloud_auth_failures_total",
		"Relay requests rejected for a missing or invalid bearer token.")
	relayProxyErrors = metrics.NewCounter("imcf_cloud_proxy_errors_total",
		"Upstream failures while proxying or broadcasting to site LCs.")
)

// Relay is the CC/CMC service. It is safe for concurrent use.
type Relay struct {
	token  string
	client *http.Client

	mu    sync.RWMutex
	sites map[string]*url.URL
	// agg, when attached, fans site decision streams into one merged
	// hub served at /cmc/stream (see Aggregator).
	agg *Aggregator
}

// NewRelay returns a relay; token may be empty to disable auth (tests,
// trusted networks). client nil means http.DefaultClient.
func NewRelay(token string, client *http.Client) *Relay {
	if client == nil {
		client = http.DefaultClient
	}
	return &Relay{token: token, client: client, sites: make(map[string]*url.URL)}
}

// Register adds (or replaces) a site's Local Controller base URL.
func (r *Relay) Register(site, baseURL string) error {
	if site == "" || strings.ContainsAny(site, "/ \t") {
		return fmt.Errorf("cloud: invalid site name %q", site)
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("cloud: invalid base URL %q", baseURL)
	}
	r.mu.Lock()
	r.sites[site] = u
	agg := r.agg
	r.mu.Unlock()
	if agg != nil {
		agg.siteAdded(site, u)
	}
	return nil
}

// Unregister removes a site. Removing a missing site is a no-op.
func (r *Relay) Unregister(site string) {
	r.mu.Lock()
	delete(r.sites, site)
	agg := r.agg
	r.mu.Unlock()
	if agg != nil {
		agg.siteRemoved(site)
	}
}

// Sites returns the registered site names, sorted.
func (r *Relay) Sites() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sites))
	for s := range r.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (r *Relay) site(name string) (*url.URL, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.sites[name]
	return u, ok
}

// Handler returns the relay's HTTP handler.
func (r *Relay) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cc/sites", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Sites())
	}))
	mux.HandleFunc("POST /cc/register", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Site string `json:"site"`
			URL  string `json:"url"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := r.Register(body.Site, body.URL); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	mux.HandleFunc("DELETE /cc/sites/{site}", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		r.Unregister(req.PathValue("site"))
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	mux.HandleFunc("/cc/sites/{rest...}", r.withAuth(r.proxy))
	mux.HandleFunc("POST /cmc/broadcast/mrt", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		r.broadcast(w, req, "/rest/mrt", true)
	}))
	mux.HandleFunc("POST /cmc/broadcast/plan", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		r.broadcast(w, req, "/rest/plan/run", false)
	}))
	// The merged cross-site decision stream, present when an Aggregator
	// is attached (resolved per request: attachment may follow Handler).
	mux.HandleFunc("GET /cmc/stream/snapshot", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		hub := r.streamHub()
		if hub == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "stream aggregation is disabled"})
			return
		}
		hub.SnapshotHandler()(w, req)
	}))
	mux.HandleFunc("GET /cmc/stream", r.withAuth(func(w http.ResponseWriter, req *http.Request) {
		hub := r.streamHub()
		if hub == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "stream aggregation is disabled"})
			return
		}
		hub.DeltaHandler()(w, req)
	}))
	// TraceMiddleware propagates an incoming traceparent (or mints one)
	// so a cycle triggered through the relay shares the APP's trace end
	// to end: client.request → http.cloud → cloud.proxy → http.api.
	return metrics.TraceMiddleware("http.cloud", mux)
}

func (r *Relay) withAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.token != "" {
			if req.Header.Get("Authorization") != "Bearer "+r.token {
				relayAuthFailures.Inc()
				writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "invalid token"})
				return
			}
		}
		if strings.HasPrefix(req.URL.Path, "/cmc/") {
			relayRequests.With("cmc").Inc()
		} else {
			relayRequests.With("cc").Inc()
		}
		h(w, req)
	}
}

// proxy forwards /cc/sites/{site}/rest/... to the site's LC.
func (r *Relay) proxy(w http.ResponseWriter, req *http.Request) {
	rest := req.PathValue("rest")
	site, path, ok := strings.Cut(rest, "/")
	if !ok || !strings.HasPrefix(path, "rest/") {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "route is /cc/sites/{site}/rest/..."})
		return
	}
	base, found := r.site(site)
	if !found {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown site " + site})
		return
	}

	target := *base
	target.Path = strings.TrimSuffix(base.Path, "/") + "/" + path
	target.RawQuery = req.URL.RawQuery

	out, err := http.NewRequestWithContext(req.Context(), req.Method, target.String(), req.Body)
	if err != nil {
		relayProxyErrors.Inc()
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	// Forward the APP's end-to-end request headers (Accept matters: it
	// selects the LC's SSE delta transport) but not its hop-by-hop set,
	// and not Authorization — the bearer token authenticates to the
	// relay, not to the site.
	out.Header = req.Header.Clone()
	stripHopByHop(out.Header)
	out.Header.Del("Authorization")
	if tc, ok := metrics.TraceFrom(req.Context()); ok {
		metrics.InjectTrace(out, tc)
	}
	sp := metrics.StartSpanTrace("cloud.proxy", nil, metrics.TraceIDFrom(req.Context()))
	resp, err := r.client.Do(out)
	sp.End(err)
	if err != nil {
		relayProxyErrors.Inc()
		obs.L().LogAttrs(req.Context(), slog.LevelError, "relay proxy failed",
			slog.String("site", site), obs.Error(err))
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	defer resp.Body.Close()
	// The LC response's hop-by-hop headers describe its connection to
	// the relay, not the relay's connection to the APP — forwarding
	// them verbatim corrupts the client connection (a stray
	// "Transfer-Encoding: chunked" or "Connection: close" is the
	// classic failure). Strip them per RFC 9110 §7.6.1 before copying.
	stripHopByHop(resp.Header)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	copyStreaming(w, resp)
}

// hopByHopHeaders are connection-scoped per RFC 9110 §7.6.1 and must
// never cross an intermediary.
var hopByHopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "TE", "Trailer", "Transfer-Encoding", "Upgrade",
}

// stripHopByHop removes the hop-by-hop headers from h, including any
// additional ones the Connection header names.
func stripHopByHop(h http.Header) {
	for _, conn := range h.Values("Connection") {
		for _, name := range strings.Split(conn, ",") {
			if name = strings.TrimSpace(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// copyStreaming relays the upstream body. Event-stream responses (the
// LC's SSE delta feed) are flushed per chunk so batches cross the
// relay as they are produced, not when the buffer fills.
func copyStreaming(w http.ResponseWriter, resp *http.Response) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		io.Copy(w, resp.Body) //nolint:errcheck // best-effort stream to client
		return
	}
	// Push the header frame out before blocking on the first upstream
	// read: the APP's request does not complete until it sees headers,
	// and an idle stream may not produce a byte for a long time.
	fl.Flush()
	buf := make([]byte, 16*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush()
		}
		if err != nil {
			return
		}
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// closed the connection before the server finished. Nothing standard
// fits a caller-cancelled fan-out, and the write is best-effort anyway
// (the client is usually gone).
const statusClientClosedRequest = 499

// BroadcastResult reports one site's outcome of a CMC broadcast.
type BroadcastResult struct {
	Site   string `json:"site"`
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
}

// broadcastBodyLimit caps a CMC broadcast payload (an MRT is a few KB;
// a megabyte is already generous).
const broadcastBodyLimit = 1 << 20

// broadcast POSTs the request body (forwardBody) or an empty body to
// path on every registered site and reports per-site outcomes.
func (r *Relay) broadcast(w http.ResponseWriter, req *http.Request, path string, forwardBody bool) {
	var body []byte
	if forwardBody {
		// Read one byte past the limit: an oversized body must be
		// rejected outright, not silently truncated — a cut-short MRT
		// can still be valid JSON and would fan out a partial table to
		// every site.
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, broadcastBodyLimit+1))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if len(body) > broadcastBodyLimit {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": fmt.Sprintf("body exceeds %d bytes", broadcastBodyLimit)})
			return
		}
		if !json.Valid(body) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be JSON"})
			return
		}
	}

	results := make([]BroadcastResult, 0, len(r.Sites()))
	allOK := true
	for _, site := range r.Sites() {
		// A hung site burns its full dial/response timeout; once the
		// APP has hung up there is no one left to report to, so stop
		// between sites instead of marching down the rest of the fleet.
		if err := req.Context().Err(); err != nil {
			obs.L().LogAttrs(req.Context(), slog.LevelWarn, "broadcast abandoned mid-fleet",
				slog.String("next_site", site), obs.Error(err))
			writeJSON(w, statusClientClosedRequest, append(results, BroadcastResult{
				Site: site, Error: "broadcast cancelled: " + err.Error()}))
			return
		}
		base, ok := r.site(site)
		if !ok {
			continue // unregistered between listing and dispatch
		}
		res := BroadcastResult{Site: site}
		target := strings.TrimSuffix(base.String(), "/") + path
		out, err := http.NewRequestWithContext(req.Context(), http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			res.Error = err.Error()
		} else {
			out.Header.Set("Content-Type", "application/json")
			if tc, ok := metrics.TraceFrom(req.Context()); ok {
				metrics.InjectTrace(out, tc)
			}
			sp := metrics.StartSpanTrace("cloud.broadcast", nil, metrics.TraceIDFrom(req.Context()))
			resp, err := r.client.Do(out)
			sp.End(err)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Status = resp.StatusCode
				cerr := resp.Body.Close()
				if resp.StatusCode >= 300 {
					res.Error = http.StatusText(resp.StatusCode)
				} else if cerr != nil {
					res.Error = "close response body: " + cerr.Error()
				}
			}
		}
		if res.Error != "" {
			relayProxyErrors.Inc()
			allOK = false
			obs.L().LogAttrs(req.Context(), slog.LevelWarn, "broadcast site failed",
				slog.String("site", site),
				slog.String("err", res.Error))
		}
		results = append(results, res)
	}
	status := http.StatusOK
	if !allOK {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, results)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}
