package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestProxyStripsHopByHopHeaders is the regression test for the relay
// forwarding connection-scoped headers verbatim: an upstream that
// sends Connection, Keep-Alive, Transfer-Encoding, Upgrade and a
// Connection-named custom header must have all of them stripped, while
// end-to-end headers pass through.
func TestProxyStripsHopByHopHeaders(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-End-To-End", "keep-me")
		h.Set("Keep-Alive", "timeout=5")
		h.Set("Upgrade", "h2c")
		h.Set("Proxy-Authenticate", "Basic")
		h.Set("Trailer", "X-T")
		// Connection-named custom headers can't cross a real Go upstream
		// (net/http swallows handler-set Connection response headers),
		// so that path is covered by TestStripHopByHop directly.
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	t.Cleanup(up.Close)

	relay := NewRelay("", nil)
	if err := relay.Register("home", up.URL); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(relay.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/cc/sites/home/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, name := range []string{"Keep-Alive", "Upgrade", "Proxy-Authenticate", "Trailer"} {
		if got := resp.Header.Get(name); got != "" {
			t.Errorf("hop-by-hop header %s forwarded: %q", name, got)
		}
	}
	if got := resp.Header.Get("X-End-To-End"); got != "keep-me" {
		t.Errorf("end-to-end header lost: %q", got)
	}
}

// TestStripHopByHop exercises the Connection-named stripping directly:
// RFC 9110 §7.6.1 makes any header listed in Connection hop-by-hop,
// even a custom one.
func TestStripHopByHop(t *testing.T) {
	h := http.Header{}
	h.Set("Connection", "close, X-Hop-Custom")
	h.Set("X-Hop-Custom", "drop-me")
	h.Set("Keep-Alive", "timeout=5")
	h.Set("TE", "trailers")
	h.Set("Transfer-Encoding", "chunked")
	h.Set("Content-Type", "application/json")
	stripHopByHop(h)
	for _, name := range []string{"Connection", "X-Hop-Custom", "Keep-Alive", "TE", "Transfer-Encoding"} {
		if got := h.Get(name); got != "" {
			t.Errorf("%s survived the strip: %q", name, got)
		}
	}
	if got := h.Get("Content-Type"); got != "application/json" {
		t.Errorf("end-to-end header lost: %q", got)
	}
}

// TestBroadcastRejectsOversizedBody is the regression test for silent
// truncation: a payload over the limit must be refused with 413, not
// cut at 1 MiB and fanned out.
func TestBroadcastRejectsOversizedBody(t *testing.T) {
	var fanned atomic.Int64
	site := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fanned.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(site.Close)
	relay := NewRelay("", nil)
	if err := relay.Register("home", site.URL); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(relay.Handler())
	t.Cleanup(srv.Close)

	// Valid JSON either way: a long string. The oversized variant would
	// have been truncated to invalid JSON before — the dangerous case is
	// payloads whose 1 MiB prefix is still valid, so size, not syntax,
	// must be the rejection.
	huge := `{"rules":[{"id":"` + strings.Repeat("x", broadcastBodyLimit) + `"}]}`
	resp, err := http.Post(srv.URL+"/cmc/broadcast/mrt", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized broadcast = %d, want 413", resp.StatusCode)
	}
	if n := fanned.Load(); n != 0 {
		t.Fatalf("oversized body still fanned out to %d sites", n)
	}

	// At the limit exactly: accepted.
	okBody, err := json.Marshal(map[string]string{"pad": strings.Repeat("y", 1024)})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srv.URL+"/cmc/broadcast/mrt", "application/json", bytes.NewReader(okBody))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-limit broadcast = %d", resp2.StatusCode)
	}
}

// TestBroadcastStopsOnCancelledContext is the regression test for the
// relay marching down the whole fleet after the APP hung up: with the
// first site hanging until client timeout, the remaining sites must
// never be dialed.
func TestBroadcastStopsOnCancelledContext(t *testing.T) {
	var dialed atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dialed.Add(1)
		<-r.Context().Done() // hang until the relay's forward is cancelled
	}))
	t.Cleanup(slow.Close)
	var lateDials atomic.Int64
	late := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lateDials.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(late.Close)

	relay := NewRelay("", nil)
	// Sites broadcast in sorted order: a-slow first, then the rest.
	if err := relay.Register("a-slow", slow.URL); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b-late", "c-late", "d-late"} {
		if err := relay.Register(name, late.URL); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(relay.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/cmc/broadcast/plan", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled broadcast returned a response")
	}

	// Give the handler a moment to (incorrectly) continue, then assert
	// it stopped at the cancellation boundary.
	time.Sleep(200 * time.Millisecond)
	if n := dialed.Load(); n != 1 {
		t.Fatalf("slow site dialed %d times", n)
	}
	if n := lateDials.Load(); n != 0 {
		t.Fatalf("relay kept dialing %d sites after the client hung up", n)
	}
}
