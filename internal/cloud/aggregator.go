package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/stream"
)

// Aggregator health counters.
var (
	aggEvents = metrics.NewCounter("imcf_cloud_stream_events_total",
		"Site decision-stream events republished into the merged hub.")
	aggReconnects = metrics.NewCounter("imcf_cloud_stream_reconnects_total",
		"Site stream sessions re-established after an error or restart.")
)

// siteKinds are the components a Local Controller publishes; the
// fan-in diffs snapshots against this set.
var siteKinds = []stream.Kind{stream.KindMRT, stream.KindPlan, stream.KindFirewall}

// Aggregator is the relay's stream fan-in: one worker per registered
// site follows that site's decision stream (snapshot, then long-poll
// deltas) and republishes every event into a merged hub under the
// "site/kind" key, which the relay serves at /cmc/stream — the same
// protocol one level up. Workers reconnect with capped exponential
// backoff, re-snapshot when a site's controller restarts (its instance
// token changes), and a site's components are tombstoned when it
// unregisters.
type Aggregator struct {
	relay  *Relay
	hub    *stream.Hub
	client *http.Client
	// wait is the per-poll hold time requested from sites.
	wait time.Duration
	// backoff schedules reconnect attempt n (1-based); injectable so
	// tests reconnect fast.
	backoff func(attempt int) time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	workers map[string]context.CancelFunc
}

// AggregatorOptions tunes an Aggregator.
type AggregatorOptions struct {
	// Instance tokens the merged hub's lifetime (a relay restart must
	// mint a new one).
	Instance string
	// RingCap bounds the merged hub's delta ring (<= 0 means the
	// stream default).
	RingCap int
	// Client fetches from sites; nil means the relay's client.
	Client *http.Client
	// Wait is the long-poll hold requested from sites (default 25s).
	Wait time.Duration
	// Backoff overrides the reconnect schedule (default exponential
	// 50ms..2s).
	Backoff func(attempt int) time.Duration
}

// NewAggregator attaches a stream fan-in to the relay and starts a
// worker for every already-registered site. Close releases it.
func NewAggregator(r *Relay, opts AggregatorOptions) *Aggregator {
	if opts.Client == nil {
		opts.Client = r.client
	}
	if opts.Wait <= 0 {
		opts.Wait = stream.DefaultWait
	}
	if opts.Backoff == nil {
		opts.Backoff = defaultAggBackoff
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Aggregator{
		relay:   r,
		hub:     stream.NewHub(opts.Instance, opts.RingCap),
		client:  opts.Client,
		wait:    opts.Wait,
		backoff: opts.Backoff,
		ctx:     ctx,
		cancel:  cancel,
		workers: make(map[string]context.CancelFunc),
	}
	r.mu.Lock()
	r.agg = a
	sites := make(map[string]*url.URL, len(r.sites))
	for s, u := range r.sites {
		sites[s] = u
	}
	r.mu.Unlock()
	for s, u := range sites {
		a.siteAdded(s, u)
	}
	return a
}

// defaultAggBackoff grows 50ms..2s, deterministic (per-site workers
// already de-correlate by site activity).
func defaultAggBackoff(attempt int) time.Duration {
	d := 50 * time.Millisecond
	for i := 1; i < attempt && d < 2*time.Second; i++ {
		d *= 2
	}
	return min(d, 2*time.Second)
}

// Hub is the merged cross-site stream.
func (a *Aggregator) Hub() *stream.Hub { return a.hub }

// Close stops every worker and closes the merged hub.
func (a *Aggregator) Close() {
	a.relay.mu.Lock()
	if a.relay.agg == a {
		a.relay.agg = nil
	}
	a.relay.mu.Unlock()
	a.cancel()
	a.wg.Wait()
	a.hub.Close()
}

// streamHub returns the merged hub, nil when no aggregator is
// attached.
func (r *Relay) streamHub() *stream.Hub {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.agg == nil {
		return nil
	}
	return r.agg.hub
}

// siteAdded starts (or restarts) the site's follower.
func (a *Aggregator) siteAdded(site string, base *url.URL) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cancel, ok := a.workers[site]; ok {
		cancel() // re-registered, possibly at a new URL
	}
	ctx, cancel := context.WithCancel(a.ctx)
	a.workers[site] = cancel
	a.wg.Add(1)
	go a.follow(ctx, site, base)
}

// siteRemoved stops the follower and tombstones the site's components.
func (a *Aggregator) siteRemoved(site string) {
	a.mu.Lock()
	cancel, ok := a.workers[site]
	if ok {
		delete(a.workers, site)
	}
	a.mu.Unlock()
	if ok {
		cancel()
	}
	a.hub.RemoveSite(site)
}

// follow is one site's worker: follow the site's stream, reconnect on
// error with backoff, until the worker is cancelled.
func (a *Aggregator) follow(ctx context.Context, site string, base *url.URL) {
	defer a.wg.Done()
	var instance string
	var seq uint64
	attempt := 0
	for ctx.Err() == nil {
		err := a.followOnce(ctx, site, base, &instance, &seq)
		if ctx.Err() != nil {
			return
		}
		aggReconnects.Inc()
		attempt++
		if err != nil {
			obs.L().LogAttrs(ctx, slog.LevelDebug, "site stream session ended",
				slog.String("site", site), slog.Int("attempt", attempt), obs.Error(err))
		} else {
			attempt = 1 // resync request, not a failure: reconnect quickly
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(a.backoff(attempt)):
		}
	}
}

// followOnce runs one session: snapshot when the position is unknown,
// then long-poll deltas, republishing everything under the site's key.
// It returns nil when the site asks for a resync (the caller retries
// from a fresh snapshot) and an error for transport failures.
func (a *Aggregator) followOnce(ctx context.Context, site string, base *url.URL, instance *string, seq *uint64) error {
	if *instance == "" {
		snap, err := a.fetchSnapshot(ctx, base)
		if err != nil {
			return err
		}
		a.applySiteSnapshot(site, snap)
		*instance, *seq = snap.Instance, snap.Seq
	}
	for ctx.Err() == nil {
		b, resync, err := a.fetchDeltas(ctx, base, *instance, *seq)
		if err != nil {
			return err
		}
		if resync {
			// Site restarted or its ring lapped us: next session
			// re-snapshots.
			*instance, *seq = "", 0
			return nil
		}
		for _, ev := range b.Events {
			a.republish(site, ev)
		}
		*seq = b.Through
	}
	return ctx.Err()
}

// applySiteSnapshot reconciles the merged hub with one site's full
// state: present components are republished (Publish compacts, so
// unchanged values still coalesce cleanly downstream), absent ones are
// tombstoned.
func (a *Aggregator) applySiteSnapshot(site string, snap stream.Snapshot) {
	for _, kind := range siteKinds {
		data, ok := snap.State[string(kind)]
		if !ok {
			a.hub.Remove(site, kind)
			continue
		}
		if _, err := a.hub.Publish(site, kind, data); err != nil {
			obs.L().LogAttrs(a.ctx, slog.LevelWarn, "merged republish failed",
				slog.String("site", site), slog.String("kind", string(kind)), obs.Error(err))
		} else {
			aggEvents.Inc()
		}
	}
}

// republish forwards one site event into the merged hub.
func (a *Aggregator) republish(site string, ev stream.Event) {
	if ev.Data == nil {
		a.hub.Remove(site, ev.Kind)
		aggEvents.Inc()
		return
	}
	if _, err := a.hub.Publish(site, ev.Kind, ev.Data); err != nil {
		obs.L().LogAttrs(a.ctx, slog.LevelWarn, "merged republish failed",
			slog.String("site", site), slog.String("kind", string(ev.Kind)), obs.Error(err))
		return
	}
	aggEvents.Inc()
}

// fetchSnapshot GETs a site's /rest/stream/snapshot.
func (a *Aggregator) fetchSnapshot(ctx context.Context, base *url.URL) (stream.Snapshot, error) {
	var snap stream.Snapshot
	err := a.getJSON(ctx, strings.TrimSuffix(base.String(), "/")+"/rest/stream/snapshot", &snap)
	return snap, err
}

// fetchDeltas long-polls a site's /rest/stream. resync is true on 409.
func (a *Aggregator) fetchDeltas(ctx context.Context, base *url.URL, instance string, seq uint64) (b stream.Batch, resync bool, err error) {
	target := strings.TrimSuffix(base.String(), "/") + "/rest/stream?instance=" +
		url.QueryEscape(instance) + "&seq=" + strconv.FormatUint(seq, 10) +
		"&wait=" + strconv.FormatFloat(a.wait.Seconds(), 'f', -1, 64)
	err = a.getJSON(ctx, target, &b)
	var se *statusError
	if errors.As(err, &se) && se.status == http.StatusConflict {
		return stream.Batch{}, true, nil
	}
	return b, false, err
}

// statusError is a non-2xx site response.
type statusError struct{ status int }

func (e *statusError) Error() string { return fmt.Sprintf("site returned %d", e.status) }

// getJSON fetches one JSON document.
func (a *Aggregator) getJSON(ctx context.Context, target string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // draining for connection reuse
		return &statusError{status: resp.StatusCode}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
