package cloud

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/stream"
)

// newStreamSite boots a prototype controller with a decision-stream hub
// behind its REST API.
func newStreamSite(t *testing.T, seed uint64, instance string) (*controller.Controller, *httptest.Server) {
	t.Helper()
	res, err := home.Prototype(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.Config{
		Residence:    res,
		Clock:        simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC)),
		WeeklyBudget: home.PrototypeWeeklyBudget,
		Stream:       stream.NewHub(instance, 64),
	}
	cfg.Planner.Seed = seed
	c, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(controller.API(c))
	t.Cleanup(srv.Close)
	return c, srv
}

// fastAgg attaches an aggregator tuned for tests: short polls, near-
// instant reconnects.
func fastAgg(t *testing.T, r *Relay) *Aggregator {
	t.Helper()
	a := NewAggregator(r, AggregatorOptions{
		Instance: "agg-test",
		Wait:     200 * time.Millisecond,
		Backoff:  func(int) time.Duration { return 5 * time.Millisecond },
	})
	t.Cleanup(a.Close)
	return a
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestAggregatorMergesSiteStreams(t *testing.T) {
	ca, lcA := newStreamSite(t, 42, "boot-a")
	_, lcB := newStreamSite(t, 43, "boot-b")

	relay := NewRelay("", nil)
	if err := relay.Register("a", lcA.URL); err != nil {
		t.Fatal(err)
	}
	if err := relay.Register("b", lcB.URL); err != nil {
		t.Fatal(err)
	}
	agg := fastAgg(t, relay)

	// Both sites' seeded components fan in under site-prefixed keys.
	waitFor(t, func() bool {
		st := agg.Hub().Snapshot().State
		for _, key := range []string{"a/mrt", "a/firewall", "b/mrt", "b/firewall"} {
			if _, ok := st[key]; !ok {
				return false
			}
		}
		return true
	}, "seeded components never fanned in")

	// A step on one site flows through as a delta, byte-identical to
	// the site's own published value.
	if _, err := ca.Step(); err != nil {
		t.Fatal(err)
	}
	want := ca.Stream().Snapshot().State["plan"]
	waitFor(t, func() bool {
		got, ok := agg.Hub().Snapshot().State["a/plan"]
		return ok && bytes.Equal(got, want)
	}, "site a's plan never reached the merged hub")
	if _, ok := agg.Hub().Snapshot().State["b/plan"]; ok {
		t.Error("site b gained a plan it never produced")
	}

	// The relay serves the merged stream with the same protocol one
	// level up.
	srv := httptest.NewServer(relay.Handler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/cmc/stream/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap stream.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Instance != "agg-test" {
		t.Errorf("merged instance = %q", snap.Instance)
	}
	if !bytes.Equal(snap.State["a/plan"], want) {
		t.Error("served merged snapshot diverges from site a's plan")
	}

	// Resumable position: empty batch. Foreign instance: resync.
	resp2, err := http.Get(srv.URL + "/cmc/stream?instance=agg-test&seq=" +
		strconv.FormatUint(snap.Seq, 10) + "&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	var b stream.Batch
	if err := json.NewDecoder(resp2.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(b.Events) != 0 || b.Through != snap.Seq {
		t.Errorf("steady poll = %+v", b)
	}
	resp3, err := http.Get(srv.URL + "/cmc/stream?instance=other&seq=1&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("foreign instance = %d, want 409", resp3.StatusCode)
	}
}

func TestAggregatorResyncsOnSiteRestart(t *testing.T) {
	// A front server whose backend we can swap stands in for a site
	// whose controller restarts (new hub instance) at the same URL.
	var backend atomic.Value // http.Handler
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backend.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)

	c1, _ := newStreamSite(t, 42, "boot-1")
	if _, err := c1.Step(); err != nil {
		t.Fatal(err)
	}
	backend.Store(controller.API(c1))

	relay := NewRelay("", nil)
	if err := relay.Register("s", front.URL); err != nil {
		t.Fatal(err)
	}
	agg := fastAgg(t, relay)
	waitFor(t, func() bool {
		_, ok := agg.Hub().Snapshot().State["s/plan"]
		return ok
	}, "pre-restart plan never fanned in")

	// Restart: a fresh controller, fresh hub instance, no plan yet. The
	// follower's next poll answers 409, forcing a re-snapshot that must
	// also tombstone the component the new incarnation does not have.
	c2, _ := newStreamSite(t, 42, "boot-2")
	backend.Store(controller.API(c2))
	waitFor(t, func() bool {
		st := agg.Hub().Snapshot().State
		_, hasPlan := st["s/plan"]
		return !hasPlan && bytes.Equal(st["s/mrt"], c2.Stream().Snapshot().State["mrt"])
	}, "merged hub never reconciled to the restarted site")
}

func TestAggregatorUnregisterTombstones(t *testing.T) {
	_, lc := newStreamSite(t, 42, "boot-a")
	relay := NewRelay("", nil)
	if err := relay.Register("a", lc.URL); err != nil {
		t.Fatal(err)
	}
	agg := fastAgg(t, relay)
	waitFor(t, func() bool {
		_, ok := agg.Hub().Snapshot().State["a/mrt"]
		return ok
	}, "site never fanned in")

	relay.Unregister("a")
	waitFor(t, func() bool {
		return len(agg.Hub().Snapshot().State) == 0
	}, "unregistered site's components were not tombstoned")
}

func TestStreamWithoutAggregatorIs404(t *testing.T) {
	relay := newRelay(t, "", nil)
	for _, path := range []string{"/cmc/stream/snapshot", "/cmc/stream"} {
		resp, err := http.Get(relay.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without aggregator = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestProxyStreamsSSEThroughRelay proves the relay's body copy flushes
// event-stream responses chunk by chunk: an SSE batch published after
// the connection is up must arrive while the upstream holds the
// connection open — a buffered io.Copy would sit on it until EOF.
func TestProxyStreamsSSEThroughRelay(t *testing.T) {
	c, lc := newStreamSite(t, 42, "boot-sse")
	relay := newRelay(t, "", map[string]string{"home": lc.URL})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		relay.URL+"/cc/sites/home/rest/stream?instance=boot-sse&seq="+
			strconv.FormatUint(c.Stream().Seq(), 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type through relay = %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before a batch arrived")
			}
			if line == "event: batch" {
				return // the delta crossed the relay while the stream is live
			}
		case <-deadline:
			t.Fatal("no SSE batch crossed the relay within 5s")
		}
	}
}
