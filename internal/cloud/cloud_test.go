package cloud

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"net/url"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
)

// newSite boots a prototype controller behind its REST API.
func newSite(t *testing.T, seed uint64) (*controller.Controller, *httptest.Server) {
	t.Helper()
	res, err := home.Prototype(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.Config{
		Residence:    res,
		Clock:        simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC)),
		WeeklyBudget: home.PrototypeWeeklyBudget,
	}
	cfg.Planner.Seed = seed
	c, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(controller.API(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func newRelay(t *testing.T, token string, sites map[string]string) *httptest.Server {
	t.Helper()
	r := NewRelay(token, nil)
	for name, u := range sites {
		if err := r.Register(name, u); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestRegisterValidation(t *testing.T) {
	r := NewRelay("", nil)
	if err := r.Register("", "http://x"); err == nil {
		t.Error("empty site accepted")
	}
	if err := r.Register("a/b", "http://x"); err == nil {
		t.Error("slash in site accepted")
	}
	if err := r.Register("home", "not a url"); err == nil {
		t.Error("invalid URL accepted")
	}
	if err := r.Register("home", "http://127.0.0.1:1"); err != nil {
		t.Errorf("valid registration rejected: %v", err)
	}
	r.Unregister("home")
	r.Unregister("home") // no-op
	if len(r.Sites()) != 0 {
		t.Errorf("sites = %v", r.Sites())
	}
}

func TestProxyReachesLocalController(t *testing.T) {
	_, lc := newSite(t, 42)
	relay := newRelay(t, "", map[string]string{"home": lc.URL})

	resp, err := http.Get(relay.URL + "/cc/sites/home/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied GET items = %d", resp.StatusCode)
	}
	var items []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Errorf("items through relay = %d, want 6", len(items))
	}

	// POST proxying: run a plan remotely.
	resp, err = http.Post(relay.URL+"/cc/sites/home/rest/plan/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("proxied plan/run = %d", resp.StatusCode)
	}
}

func TestProxyUnknownSiteAndBadPaths(t *testing.T) {
	_, lc := newSite(t, 42)
	relay := newRelay(t, "", map[string]string{"home": lc.URL})

	for _, path := range []string{
		"/cc/sites/elsewhere/rest/items", // unknown site
		"/cc/sites/home/admin",           // not a /rest/ path
		"/cc/sites/home",                 // no path at all
	} {
		resp, err := http.Get(relay.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestProxyUnreachableSite(t *testing.T) {
	relay := newRelay(t, "", map[string]string{"dead": "http://127.0.0.1:1"})
	resp, err := http.Get(relay.URL + "/cc/sites/dead/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable site = %d, want 502", resp.StatusCode)
	}
}

func TestAuthToken(t *testing.T) {
	_, lc := newSite(t, 42)
	relay := newRelay(t, "s3cret", map[string]string{"home": lc.URL})

	resp, err := http.Get(relay.URL + "/cc/sites")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated = %d, want 401", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, relay.URL+"/cc/sites", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("authenticated = %d", resp.StatusCode)
	}
	var sites []string
	if err := json.NewDecoder(resp.Body).Decode(&sites); err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != "home" {
		t.Errorf("sites = %v", sites)
	}
}

func TestCMCBroadcastMRT(t *testing.T) {
	c1, lc1 := newSite(t, 1)
	c2, lc2 := newSite(t, 2)
	relay := newRelay(t, "", map[string]string{"dorm-a": lc1.URL, "dorm-b": lc2.URL})

	// The campus CMC pushes a reduced MRT to every site.
	mrt := c1.MRT()
	var reduced rules.MRT
	for _, r := range mrt.Rules {
		if r.Owner == "Father" || r.IsBudget() {
			reduced.Rules = append(reduced.Rules, r)
		}
	}
	payload, _ := json.Marshal(reduced)
	resp, err := http.Post(relay.URL+"/cmc/broadcast/mrt", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast = %d", resp.StatusCode)
	}
	var results []BroadcastResult
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Status != http.StatusOK || r.Error != "" {
			t.Errorf("site %s: %+v", r.Site, r)
		}
	}
	// Both controllers now hold the reduced table.
	if got := len(c1.MRT().Rules); got != len(reduced.Rules) {
		t.Errorf("site 1 has %d rules, want %d", got, len(reduced.Rules))
	}
	if got := len(c2.MRT().Rules); got != len(reduced.Rules) {
		t.Errorf("site 2 has %d rules, want %d", got, len(reduced.Rules))
	}
}

func TestCMCBroadcastPlan(t *testing.T) {
	c1, lc1 := newSite(t, 1)
	c2, lc2 := newSite(t, 2)
	relay := newRelay(t, "", map[string]string{"a": lc1.URL, "b": lc2.URL})

	resp, err := http.Post(relay.URL+"/cmc/broadcast/plan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast plan = %d", resp.StatusCode)
	}
	if c1.Summary().Steps != 1 || c2.Summary().Steps != 1 {
		t.Errorf("steps = %d, %d; want 1 each", c1.Summary().Steps, c2.Summary().Steps)
	}
}

func TestCMCBroadcastPartialFailure(t *testing.T) {
	_, lc := newSite(t, 1)
	relay := newRelay(t, "", map[string]string{"up": lc.URL, "down": "http://127.0.0.1:1"})

	resp, err := http.Post(relay.URL+"/cmc/broadcast/plan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial failure status = %d, want 502", resp.StatusCode)
	}
	var results []BroadcastResult
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	okCount, errCount := 0, 0
	for _, r := range results {
		if r.Error == "" {
			okCount++
		} else {
			errCount++
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Errorf("results = %+v", results)
	}
}

func TestCMCBroadcastRejectsBadBody(t *testing.T) {
	relay := newRelay(t, "", nil)
	resp, err := http.Post(relay.URL+"/cmc/broadcast/mrt", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", resp.StatusCode)
	}
}

func TestRegisterOverHTTP(t *testing.T) {
	_, lc := newSite(t, 42)
	relay := newRelay(t, "", nil)

	code := postJSONCloud(t, relay.URL+"/cc/register", map[string]string{"site": "home", "url": lc.URL})
	if code != http.StatusOK {
		t.Fatalf("register = %d", code)
	}
	resp, err := http.Get(relay.URL + "/cc/sites/home/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("proxy after HTTP registration = %d", resp.StatusCode)
	}

	// Invalid registrations are rejected.
	if code := postJSONCloud(t, relay.URL+"/cc/register", map[string]string{"site": "a/b", "url": lc.URL}); code != http.StatusUnauthorized && code != http.StatusUnprocessableEntity {
		t.Errorf("bad site name = %d", code)
	}

	// Unregister over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, relay.URL+"/cc/sites/home", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unregister = %d", resp.StatusCode)
	}
	resp, err = http.Get(relay.URL + "/cc/sites/home/rest/items")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("proxy after unregister = %d", resp.StatusCode)
	}
}

func postJSONCloud(t *testing.T, url string, body any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestProxyPreservesQueryParams(t *testing.T) {
	// Persistence queries carry from/to/bucket query strings; the CC
	// must forward them intact.
	res, err := home.Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := persistence.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	clock := simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC))
	cfg := controller.Config{
		Residence:    res,
		Clock:        clock,
		WeeklyBudget: home.PrototypeWeeklyBudget,
		Persistence:  svc,
	}
	c, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lc := httptest.NewServer(controller.API(c))
	defer lc.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}

	relay := newRelay(t, "", map[string]string{"home": lc.URL})
	from := time.Date(2015, time.January, 10, 0, 0, 0, 0, time.UTC).Format(time.RFC3339)
	to := time.Date(2015, time.January, 11, 0, 0, 0, 0, time.UTC).Format(time.RFC3339)
	u := relay.URL + "/cc/sites/home/rest/persistence/data/zone0/temperature?from=" +
		url.QueryEscape(from) + "&to=" + url.QueryEscape(to)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied persistence query = %d", resp.StatusCode)
	}
	var points []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&points); err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Errorf("points through relay = %d, want 3", len(points))
	}
}
