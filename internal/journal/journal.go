// Package journal is the Energy Planner's decision-provenance journal:
// a bounded, structured log holding one event per planner verdict —
// which rule, at which slot, executed or dropped, how much of E_p was
// left after the plan, and which k-opt iteration last flipped the bit.
// It is the subsystem that answers "why was rule R dropped at slot S"
// after the fact, from a live daemon (GET /debug/decisions) or from a
// persisted dump (cmd/imcf-explain over persistence's journal log).
//
// Events are produced by core's DecisionRecorder hook (the live
// controller and the simulator install adapters that enrich the
// planner's index-based callbacks with rule identity, slot and trace
// ID) and land in a fixed ring. Appending is a mutex-guarded ring
// assignment — allocation-free — and a single atomic load when the
// journal is disabled, so the planner stays instrumented
// unconditionally without perturbing the replay hot path.
package journal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// FlipIter sentinels, mirroring internal/core's FlipNever/FlipRepair
// (the packages are kept import-free of each other; the controller
// tests pin the correspondence).
const (
	// FlipNever marks a bit the search never flipped: it kept the value
	// the initialization strategy (or zero-gain pruning) gave it.
	FlipNever = -1
	// FlipRepair marks a bit switched off by the greedy feasibility
	// repair that runs after the search.
	FlipRepair = -2
)

// Verdict is a rule's planner outcome.
type Verdict uint8

// Verdicts.
const (
	// VerdictExecuted marks a rule admitted for execution.
	VerdictExecuted Verdict = iota + 1
	// VerdictDropped marks a rule dropped to hold the energy budget.
	VerdictDropped
)

// String returns the verdict's wire name.
func (v Verdict) String() string {
	switch v {
	case VerdictExecuted:
		return "executed"
	case VerdictDropped:
		return "dropped"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// ParseVerdict is the inverse of String for the wire names.
func ParseVerdict(s string) (Verdict, error) {
	switch s {
	case "executed":
		return VerdictExecuted, nil
	case "dropped":
		return VerdictDropped, nil
	default:
		return 0, fmt.Errorf("journal: unknown verdict %q", s)
	}
}

// MarshalJSON renders the verdict as its wire name.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON parses the wire name.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseVerdict(s)
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// Event is one planner verdict with its provenance. Slot is the
// decision slot (the controller's truncated cycle hour, or the first
// slot of the simulator's plan window); Window is the step/window
// ordinal within the producing run. EpRemainingKWh is the budget left
// after the whole plan (budget − F_E), EnergyKWh the rule's own cost,
// and FCEDelta the convenience error the verdict adds to F_CE (zero
// for executed rules). FlipIter is the k-opt iteration that last
// flipped the rule's bit, or a Flip* sentinel.
//
// Tenant is serving-time decoration only: a multi-home daemon stamps it
// onto copies when merging per-tenant journals for /debug/decisions.
// Producers never set it — each tenant's ring and persisted log hold
// the same bytes a single-home daemon would write, which is what lets
// the tenant-equivalence harness compare streams bit for bit.
type Event struct {
	Seq            uint64    `json:"seq"`
	Tenant         string    `json:"tenant,omitempty"`
	Slot           time.Time `json:"slot"`
	Window         int       `json:"window"`
	Rule           string    `json:"rule"`
	Owner          string    `json:"owner,omitempty"`
	Verdict        Verdict   `json:"verdict"`
	Trace          string    `json:"trace,omitempty"`
	EpRemainingKWh float64   `json:"epRemainingKWh"`
	EnergyKWh      float64   `json:"energyKWh"`
	FCEDelta       float64   `json:"fceDelta"`
	FlipIter       int       `json:"flipIter"`
}

// FlipIterString renders the k-opt provenance of the event's bit in
// words — the line imcf-explain prints.
func (e Event) FlipIterString() string {
	switch e.FlipIter {
	case FlipNever:
		return "held from initialization (never flipped by the search)"
	case FlipRepair:
		return "switched off by the feasibility repair"
	default:
		return fmt.Sprintf("last flipped at k-opt iteration %d", e.FlipIter)
	}
}

// Sink receives every appended event, synchronously — the persistence
// hook (see persistence.JournalLog). Sink errors are counted, not
// propagated: provenance must never fail a planning cycle.
type Sink interface {
	AppendEvent(Event) error
}

// Journal is the bounded event ring. It is safe for concurrent use.
type Journal struct {
	enabled atomic.Bool

	mu   sync.Mutex
	ring []Event
	at   int
	n    int
	seq  uint64
	sink Sink
}

// DefaultCap is the default ring capacity: a week of hourly cycles over
// a few dozen rules.
const DefaultCap = 4096

// New returns an enabled journal keeping the most recent capacity
// events (capacity < 1 means DefaultCap).
func New(capacity int) *Journal {
	if capacity < 1 {
		capacity = DefaultCap
	}
	j := &Journal{ring: make([]Event, capacity)}
	j.enabled.Store(true)
	return j
}

// SetEnabled switches event recording on or off. Disabled, Append is a
// single atomic load — the zero-alloc-when-disabled recorder contract.
func (j *Journal) SetEnabled(on bool) { j.enabled.Store(on) }

// Enabled reports whether events are being recorded.
func (j *Journal) Enabled() bool { return j.enabled.Load() }

// SetSink installs the persistence sink receiving every future event.
func (j *Journal) SetSink(s Sink) {
	j.mu.Lock()
	j.sink = s
	j.mu.Unlock()
}

// Append records one event, stamping its sequence number. The ring
// assignment allocates nothing; with a sink installed the event is
// also handed to it (sink failures increment
// imcf_journal_sink_errors_total and are otherwise swallowed).
func (j *Journal) Append(ev Event) {
	if !j.enabled.Load() {
		return
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	j.ring[j.at] = ev
	j.at = (j.at + 1) % len(j.ring)
	if j.n < len(j.ring) {
		j.n++
	} else {
		evicted.Inc()
	}
	sink := j.sink
	j.mu.Unlock()
	events.Inc()
	if sink != nil {
		if err := sink.AppendEvent(ev); err != nil {
			sinkErrors.Inc()
		}
	}
}

// Preload restores one event into the ring without stamping a sequence
// number or feeding the sink — the restart-replay path (the daemon
// preloads the persisted log on boot, then keeps appending to it).
func (j *Journal) Preload(ev Event) {
	j.mu.Lock()
	if ev.Seq > j.seq {
		j.seq = ev.Seq
	}
	j.ring[j.at] = ev
	j.at = (j.at + 1) % len(j.ring)
	if j.n < len(j.ring) {
		j.n++
	}
	j.mu.Unlock()
}

// Len returns the number of events currently retained.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Filter selects events. Zero-valued fields match everything; Limit
// bounds the result to the most recent matches (0 means all retained).
type Filter struct {
	Rule    string
	Owner   string
	Verdict Verdict
	Trace   string
	// Tenant matches the serving-time tenant decoration (multi-home
	// daemons); events without one only match an empty Tenant filter.
	Tenant string
	// Slot, when non-zero, matches events whose Slot equals it.
	Slot  time.Time
	Limit int
}

// Match reports whether ev passes the filter.
func (f Filter) Match(ev Event) bool {
	if f.Rule != "" && ev.Rule != f.Rule {
		return false
	}
	if f.Owner != "" && ev.Owner != f.Owner {
		return false
	}
	if f.Verdict != 0 && ev.Verdict != f.Verdict {
		return false
	}
	if f.Trace != "" && ev.Trace != f.Trace {
		return false
	}
	if f.Tenant != "" && ev.Tenant != f.Tenant {
		return false
	}
	if !f.Slot.IsZero() && !ev.Slot.Equal(f.Slot) {
		return false
	}
	return true
}

// ParseFilter builds a filter from /debug/decisions query parameters:
// rule, owner, verdict (executed|dropped), trace, tenant, slot
// (RFC 3339) and limit.
func ParseFilter(q url.Values) (Filter, error) {
	f := Filter{
		Rule:   q.Get("rule"),
		Owner:  q.Get("owner"),
		Trace:  q.Get("trace"),
		Tenant: q.Get("tenant"),
	}
	if s := q.Get("verdict"); s != "" {
		v, err := ParseVerdict(s)
		if err != nil {
			return Filter{}, err
		}
		f.Verdict = v
	}
	if s := q.Get("slot"); s != "" {
		at, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return Filter{}, fmt.Errorf("journal: bad slot: %w", err)
		}
		f.Slot = at
	}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return Filter{}, fmt.Errorf("journal: bad limit %q", s)
		}
		f.Limit = n
	}
	return f, nil
}

// Recent returns the retained events passing the filter, oldest first.
func (j *Journal) Recent(f Filter) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := 0
	if j.n == len(j.ring) {
		start = j.at
	}
	for i := 0; i < j.n; i++ {
		ev := j.ring[(start+i)%len(j.ring)]
		if f.Match(ev) {
			out = append(out, ev)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Handler serves the journal as JSON with Filter query parameters —
// the daemon's GET /debug/decisions.
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f, err := ParseFilter(req.URL.Query())
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // response committed
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(j.Recent(f)) //nolint:errcheck // response committed
	})
}
