package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func ev(i int, rule string, v Verdict) Event {
	return Event{
		Slot:           time.Date(2025, 6, 1, i%24, 0, 0, 0, time.UTC),
		Window:         i,
		Rule:           rule,
		Owner:          "alice",
		Verdict:        v,
		Trace:          fmt.Sprintf("trace-%d", i%2),
		EpRemainingKWh: 1.5,
		EnergyKWh:      0.2,
		FCEDelta:       0.1,
		FlipIter:       i,
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	for _, v := range []Verdict{VerdictExecuted, VerdictDropped} {
		got, err := ParseVerdict(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVerdict(%q) = %v, %v", v.String(), got, err)
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Verdict
		if err := json.Unmarshal(b, &back); err != nil || back != v {
			t.Fatalf("unmarshal %s = %v, %v", b, back, err)
		}
	}
	if _, err := ParseVerdict("bogus"); err == nil {
		t.Fatal("ParseVerdict accepted bogus")
	}
	var v Verdict
	if err := v.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("UnmarshalJSON accepted bogus")
	}
	if err := v.UnmarshalJSON([]byte(`7`)); err == nil {
		t.Fatal("UnmarshalJSON accepted a number")
	}
	if got := Verdict(9).String(); got != "Verdict(9)" {
		t.Fatalf("Verdict(9).String() = %q", got)
	}
}

func TestFlipIterString(t *testing.T) {
	cases := map[int]string{
		FlipNever:  "held from initialization",
		FlipRepair: "feasibility repair",
		12:         "iteration 12",
	}
	for fi, want := range cases {
		got := Event{FlipIter: fi}.FlipIterString()
		if !strings.Contains(got, want) {
			t.Errorf("FlipIterString(%d) = %q, want substring %q", fi, got, want)
		}
	}
}

func TestAppendRecentAndEviction(t *testing.T) {
	j := New(4)
	if !j.Enabled() {
		t.Fatal("new journal should be enabled")
	}
	for i := 0; i < 6; i++ {
		j.Append(ev(i, fmt.Sprintf("r%d", i), VerdictDropped))
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	got := j.Recent(Filter{})
	if len(got) != 4 {
		t.Fatalf("Recent len = %d, want 4", len(got))
	}
	// Oldest first, events 2..5 survive, seq stamped 3..6.
	for i, e := range got {
		if e.Window != i+2 || e.Seq != uint64(i+3) {
			t.Fatalf("event %d: window=%d seq=%d", i, e.Window, e.Seq)
		}
	}
}

func TestSetEnabledDropsEvents(t *testing.T) {
	j := New(4)
	j.SetEnabled(false)
	if j.Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	j.Append(ev(0, "r", VerdictDropped))
	if j.Len() != 0 {
		t.Fatal("disabled journal recorded an event")
	}
	j.SetEnabled(true)
	j.Append(ev(0, "r", VerdictDropped))
	if j.Len() != 1 {
		t.Fatal("re-enabled journal dropped an event")
	}
}

func TestNewDefaultCap(t *testing.T) {
	j := New(0)
	if len(j.ring) != DefaultCap {
		t.Fatalf("default cap = %d, want %d", len(j.ring), DefaultCap)
	}
}

func TestFilterMatch(t *testing.T) {
	e := ev(3, "ruleA", VerdictDropped)
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{Rule: "ruleA"}, true},
		{Filter{Rule: "ruleB"}, false},
		{Filter{Owner: "alice"}, true},
		{Filter{Owner: "bob"}, false},
		{Filter{Verdict: VerdictDropped}, true},
		{Filter{Verdict: VerdictExecuted}, false},
		{Filter{Trace: "trace-1"}, true},
		{Filter{Trace: "trace-0"}, false},
		{Filter{Slot: e.Slot}, true},
		{Filter{Slot: e.Slot.Add(time.Hour)}, false},
	}
	for i, c := range cases {
		if got := c.f.Match(e); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
}

func TestRecentLimit(t *testing.T) {
	j := New(8)
	for i := 0; i < 5; i++ {
		j.Append(ev(i, "r", VerdictExecuted))
	}
	got := j.Recent(Filter{Limit: 2})
	if len(got) != 2 || got[0].Window != 3 || got[1].Window != 4 {
		t.Fatalf("Limit=2 returned %+v", got)
	}
}

func TestParseFilter(t *testing.T) {
	slot := time.Date(2025, 6, 1, 7, 0, 0, 0, time.UTC)
	q := url.Values{
		"rule":    {"ruleA"},
		"owner":   {"alice"},
		"verdict": {"dropped"},
		"trace":   {"abc"},
		"slot":    {slot.Format(time.RFC3339)},
		"limit":   {"10"},
	}
	f, err := ParseFilter(q)
	if err != nil {
		t.Fatalf("ParseFilter: %v", err)
	}
	if f.Rule != "ruleA" || f.Owner != "alice" || f.Verdict != VerdictDropped ||
		f.Trace != "abc" || !f.Slot.Equal(slot) || f.Limit != 10 {
		t.Fatalf("ParseFilter = %+v", f)
	}
	for _, bad := range []url.Values{
		{"verdict": {"maybe"}},
		{"slot": {"yesterday"}},
		{"limit": {"-1"}},
		{"limit": {"many"}},
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%v) accepted", bad)
		}
	}
}

func TestHandler(t *testing.T) {
	j := New(8)
	j.Append(ev(0, "ruleA", VerdictDropped))
	j.Append(ev(1, "ruleB", VerdictExecuted))

	rr := httptest.NewRecorder()
	j.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions?verdict=dropped", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var got []Event
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 1 || got[0].Rule != "ruleA" || got[0].Verdict != VerdictDropped {
		t.Fatalf("filtered events = %+v", got)
	}

	rr = httptest.NewRecorder()
	j.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions?verdict=maybe", nil))
	if rr.Code != 400 {
		t.Fatalf("bad filter status = %d", rr.Code)
	}
}

func TestPreloadRestoresSeq(t *testing.T) {
	j := New(4)
	j.Preload(Event{Seq: 7, Rule: "old"})
	j.Preload(Event{Seq: 9, Rule: "older"})
	if j.Len() != 2 {
		t.Fatalf("Len = %d", j.Len())
	}
	j.Append(ev(0, "new", VerdictDropped))
	got := j.Recent(Filter{Rule: "new"})
	if len(got) != 1 || got[0].Seq != 10 {
		t.Fatalf("append after preload: %+v", got)
	}
	// Preload beyond capacity wraps without panic.
	for i := 0; i < 6; i++ {
		j.Preload(Event{Seq: uint64(20 + i)})
	}
	if j.Len() != 4 {
		t.Fatalf("Len after wrap = %d", j.Len())
	}
}

type recordingSink struct {
	got []Event
	err error
}

func (s *recordingSink) AppendEvent(e Event) error {
	s.got = append(s.got, e)
	return s.err
}

func TestSink(t *testing.T) {
	j := New(4)
	sink := &recordingSink{}
	j.SetSink(sink)
	j.Append(ev(0, "r", VerdictDropped))
	if len(sink.got) != 1 || sink.got[0].Seq != 1 {
		t.Fatalf("sink got %+v", sink.got)
	}
	before := sinkErrors.Value()
	sink.err = errors.New("disk full")
	j.Append(ev(1, "r", VerdictDropped))
	if sinkErrors.Value() != before+1 {
		t.Fatal("sink error not counted")
	}
	if j.Len() != 2 {
		t.Fatal("sink error lost the ring write")
	}
}
