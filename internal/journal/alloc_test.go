package journal

import (
	"testing"
	"time"
)

// TestAllocsTraceDisabledJournal pins the zero-alloc recorder contract:
// appending to a disabled journal is a single atomic load, and even an
// enabled, sink-free journal appends by ring assignment without heap
// allocation. check.sh gates on this (go test -run AllocsTrace).
func TestAllocsTraceDisabledJournal(t *testing.T) {
	slot := time.Date(2025, 6, 1, 7, 0, 0, 0, time.UTC)
	e := Event{Slot: slot, Rule: "r1", Verdict: VerdictDropped, FlipIter: 3}

	j := New(64)
	j.SetEnabled(false)
	if n := testing.AllocsPerRun(200, func() { j.Append(e) }); n != 0 {
		t.Fatalf("disabled Append allocates %v per op, want 0", n)
	}

	j.SetEnabled(true)
	if n := testing.AllocsPerRun(200, func() { j.Append(e) }); n != 0 {
		t.Fatalf("enabled Append allocates %v per op, want 0", n)
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	slot := time.Date(2025, 6, 1, 7, 0, 0, 0, time.UTC)
	e := Event{Slot: slot, Rule: "r1", Verdict: VerdictDropped, FlipIter: 3}

	b.Run("disabled", func(b *testing.B) {
		j := New(4096)
		j.SetEnabled(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j.Append(e)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		j := New(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j.Append(e)
		}
	})
}
