package journal

import "github.com/imcf/imcf/internal/metrics"

// Canonical metric families of the decision journal. Declared here so
// the metrics-hygiene lint rule can verify every family is observed
// somewhere in the package.
var (
	// events counts decision events accepted into the journal ring.
	events = metrics.NewCounter("imcf_journal_events_total",
		"Decision-provenance events appended to the journal.")

	// evicted counts events pushed out of the bounded ring by newer ones.
	evicted = metrics.NewCounter("imcf_journal_evicted_total",
		"Journal events evicted from the bounded ring by capacity pressure.")

	// sinkErrors counts persistence sink failures (events that reached
	// the in-memory ring but could not be durably appended).
	sinkErrors = metrics.NewCounter("imcf_journal_sink_errors_total",
		"Journal events the persistence sink failed to append.")
)
